// Campaign driver for the fuzzing subsystem (docs/FUZZING.md).
//
// A campaign runs a contiguous seed range through the differential harness,
// deduplicates findings by their stable signature, minimizes the first
// exemplar of each signature, writes the shrunk reproducers atomically into
// a corpus directory, and emits an `hcg-fuzz-v1` JSON report.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "fuzz/differential.hpp"
#include "fuzz/minimize.hpp"

namespace hcg::fuzz {

struct CampaignConfig {
  std::uint64_t seed_start = 1;
  int seeds = 100;
  HarnessConfig harness;
  /// Shrink the first exemplar of each distinct signature.
  bool minimize = true;
  /// Cap on signatures minimized per campaign (minimization compiles per
  /// candidate; a systematic miscompile would otherwise drown the run).
  int max_minimized = 4;
  /// Directory for reproducer XML files; empty = do not write any.
  std::string corpus_dir;
  /// Path for the hcg-fuzz-v1 JSON report; empty = do not write it.
  std::string report_path;
  /// Optional progress sink (one human-readable line per call).
  std::function<void(const std::string&)> progress;
};

/// One deduplicated failure class observed during a campaign.
struct CampaignFinding {
  Finding first;              // the first exemplar seen
  int count = 0;              // seeds that produced this signature
  std::string reproducer;     // corpus file path ("" if not written)
  int minimized_actors = -1;  // actor count after shrinking (-1 = not run)
};

struct CampaignResult {
  int seeds_run = 0;
  int variants_run = 0;
  std::vector<CampaignFinding> findings;  // deduped, discovery order
  std::string report_json;                // always populated

  bool ok() const { return findings.empty(); }
};

/// Runs the campaign; throws only on infrastructure failure (e.g. the
/// corpus directory is unwritable) — findings are data, not exceptions.
CampaignResult run_campaign(const CampaignConfig& config);

}  // namespace hcg::fuzz
