// Differential cross-check harness for the fuzzing subsystem
// (docs/FUZZING.md).
//
// One seed buys one generated model, executed for several synchronous steps
// through every cell of a (tool x isa x opt level) matrix and compared
// against the VM interpreter oracle.  The contract being checked:
//
//   * clean run (no faults armed): every variant must compile, run, and
//     agree with the oracle — any exception or mismatch is a finding;
//   * HCG_FAULTS armed by the environment (the armed-miscompile drill):
//     the harness must *detect* the sabotage — verifier rejections,
//     crashes, and divergences all become findings to minimize;
//   * fault sweep armed BY the harness (sweep_faults): degraded-mode
//     probes fire one site at a time, and each variant must either fail
//     cleanly through the hcg::Error hierarchy or still produce correct
//     output.  Silent wrong output under an injected fault is a finding.
//
// Independently of the matrix, every value the VM oracle produces is checked
// against the interval the value-range analysis predicted for that wire
// (src/analysis/range.hpp): an escape means an unsound transfer function —
// exactly the class of bug that would let range-driven lane narrowing
// miscompile — and becomes a kRangeUnsound finding.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fuzz/generator.hpp"
#include "model/model.hpp"
#include "model/tensor.hpp"

namespace hcg::fuzz {

/// What one matrix cell did for one seed.
enum class Outcome : std::uint8_t {
  kAgreed,          // outputs matched the oracle on every step
  kDivergence,      // compiled output differs from the oracle
  kVerifierReject,  // CodegenError (the cgir verifier refused the unit)
  kError,           // any other exception out of generate/compile/run
  kGeneratorBug,    // the generated model failed to resolve
  kRangeUnsound,    // an oracle value escaped its predicted interval
};

std::string_view outcome_name(Outcome outcome);

/// One cell of the cross-check matrix.
struct Variant {
  std::string tool;  // "hcg", "simulink", "simulink-sc", "dfsynth"
  std::string isa;   // builtin isa name; empty for scalar-only tools
  int opt_level = 0;

  std::string label() const;
};

/// A confirmed misbehavior: which seed, which cell, what happened.  The
/// signature is deliberately *stable under minimization* — it names the
/// outcome, the variant, and (for verifier rejections) the pass, but never
/// actor or buffer names, so a shrunk model that fails the same way keeps
/// the same signature.
struct Finding {
  std::uint64_t seed = 0;
  Variant variant;
  Outcome outcome = Outcome::kError;
  std::string detail;      // human-readable: error text / first mismatch
  std::string signature;   // stable dedup/minimization key
  std::string fault_spec;  // the harness-armed HCG_FAULTS entry, if any
};

struct HarnessConfig {
  /// Builtin ISA names for the hcg (and scattered-simulink) variants.  The
  /// defaults are the two tables that compile and run on any host.
  std::vector<std::string> isas = {"neon_sim", "sve"};
  /// hcg optimization levels to cross-check.
  std::vector<int> opt_levels = {0, 1, 2};
  /// Include the scalar baselines (simulink -O0, dfsynth -O0) as
  /// additional differential partners.
  bool baselines = true;
  /// Synchronous steps per variant — > 1 so delay state paths and feedback
  /// accumulation are exercised, not just the first step.
  int steps = 3;
  /// After the clean pass, re-run a reduced matrix once per fault-injection
  /// site with that site armed, checking the degraded-mode contract.
  bool sweep_faults = false;
  GeneratorConfig generator;
};

struct SeedResult {
  std::uint64_t seed = 0;
  int variants_run = 0;
  std::vector<Finding> findings;
};

/// The matrix the config describes, in deterministic order.
std::vector<Variant> variant_matrix(const HarnessConfig& config);

/// Stable signature for dedup and minimization (see Finding::signature).
std::string failure_signature(Outcome outcome, const Variant& variant,
                              std::string_view detail,
                              std::string_view fault_spec);

/// Tolerant comparison: integers and complex/float data compare against an
/// absolute floor plus a relative band scaled by the largest expected
/// magnitude (float reassociation and contraction in generated code are not
/// miscompiles).  On failure, `*why` describes the first offending element.
bool tensors_close(const Tensor& expected, const Tensor& got,
                   std::string* why);

/// Cross-checks one already-generated model (the minimizer re-enters here
/// with shrunk candidates).  `seed` only labels findings and salts the
/// workload.  Appends the number of executed matrix cells to
/// `*variants_run` when non-null.
std::vector<Finding> check_model(const Model& model, std::uint64_t seed,
                                 const HarnessConfig& config,
                                 int* variants_run = nullptr);

/// generate_model + check_model for one seed.
SeedResult run_seed(std::uint64_t seed, const HarnessConfig& config);

}  // namespace hcg::fuzz
