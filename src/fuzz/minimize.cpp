#include "fuzz/minimize.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "actors/resolve.hpp"
#include "model/tensor.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace hcg::fuzz {

namespace {

/// Rebuilds the model keeping only flagged actors (ids are renumbered, and
/// connections with a dropped endpoint vanish).
Model rebuild(const Model& m, const std::vector<bool>& keep) {
  Model out(m.name());
  std::vector<ActorId> remap(m.actors().size(), kNoActor);
  for (const Actor& actor : m.actors()) {
    if (!keep[static_cast<std::size_t>(actor.id())]) continue;
    const ActorId id = out.add_actor(actor.name(), actor.type());
    for (const auto& [key, value] : actor.params()) {
      out.actor(id).set_param(key, value);
    }
    remap[static_cast<std::size_t>(actor.id())] = id;
  }
  for (const Connection& c : m.connections()) {
    const ActorId src = remap[static_cast<std::size_t>(c.src)];
    const ActorId dst = remap[static_cast<std::size_t>(c.dst)];
    if (src == kNoActor || dst == kNoActor) continue;
    out.connect(src, c.src_port, dst, c.dst_port);
  }
  return out;
}

/// Drops every actor that does not (transitively) feed an Outport — the
/// shrink transforms use this so candidates never contain dead actors
/// (which would also trip the HCG104 lint gate on committed reproducers).
Model garbage_collect(const Model& m) {
  std::vector<bool> live(m.actors().size(), false);
  std::vector<ActorId> frontier = m.outports();
  for (ActorId id : frontier) live[static_cast<std::size_t>(id)] = true;
  while (!frontier.empty()) {
    const ActorId id = frontier.back();
    frontier.pop_back();
    for (const Connection& c : m.connections()) {
      if (c.dst != id) continue;
      if (live[static_cast<std::size_t>(c.src)]) continue;
      live[static_cast<std::size_t>(c.src)] = true;
      frontier.push_back(c.src);
    }
  }
  return rebuild(m, live);
}

bool resolves(const Model& m) {
  try {
    (void)resolved(m);
    return true;
  } catch (const Error&) {
    return false;
  }
}

/// True for the actor types that declare their own spec via dtype/shape
/// parameters — the places width/dtype shrinks apply.
bool declares_spec(const Actor& actor) {
  return actor.type() == "Inport" || actor.type() == "Constant" ||
         actor.type() == "UnitDelay";
}

/// Truncates a comma-separated Constant value list to `elements` entries
/// (single literals replicate, so they need no change).
void truncate_value(Actor& actor, int elements) {
  if (!actor.has_param("value")) return;
  std::vector<std::string> pieces = split(actor.param("value"), ',');
  if (static_cast<int>(pieces.size()) <= elements) return;
  pieces.resize(static_cast<std::size_t>(elements));
  actor.set_param("value", join(pieces, ","));
}

/// Applies `shape_from` -> `shape_to` to every spec-declaring actor.
Model with_shrunk_shape(const Model& m, const std::string& shape_from,
                        const std::string& shape_to) {
  Model out = m;
  const int elements = Shape::parse(shape_to).elements();
  for (Actor& actor : out.actors()) {
    if (!declares_spec(actor) || actor.param_or("shape", "") != shape_from) {
      continue;
    }
    actor.set_param("shape", shape_to);
    truncate_value(actor, elements);
  }
  return out;
}

Model with_simplified_dtype(const Model& m, const std::string& from,
                            const std::string& to) {
  Model out = m;
  for (Actor& actor : out.actors()) {
    if (declares_spec(actor) && actor.param_or("dtype", "") == from) {
      actor.set_param("dtype", to);
    }
  }
  return out;
}

/// The canonical dtype a source dtype shrinks toward ("" = already there).
std::string canonical_dtype(const std::string& name) {
  if (name == "i8" || name == "i16" || name == "i64") return "i32";
  if (name == "u8" || name == "u16" || name == "u64") return "u32";
  if (name == "f64") return "f32";
  return "";
}

/// Shrink rungs for a 1-D or square-matrix shape string ("" = none left).
std::vector<std::string> shape_targets(const std::string& text) {
  Shape shape;
  try {
    shape = Shape::parse(text);
  } catch (const Error&) {
    return {};
  }
  std::vector<std::string> targets;
  if (shape.rank() == 1) {
    if (shape.dims[0] > 4) targets.push_back("4");
    if (shape.dims[0] > 1) targets.push_back("1");
  } else if (shape.rank() == 2 && shape.dims[0] > 2 &&
             shape.dims[0] == shape.dims[1]) {
    targets.push_back("2x2");
  }
  return targets;
}

/// One round of candidate enumeration, deterministic order.  Returns the
/// first accepted candidate, or nullopt at fixpoint.
std::vector<Model> candidates(const Model& best) {
  std::vector<Model> out;

  // 1. Drop one Outport (keep at least one so the model stays observable).
  const std::vector<ActorId> outports = best.outports();
  if (outports.size() > 1) {
    for (ActorId id : outports) {
      std::vector<bool> keep(best.actors().size(), true);
      keep[static_cast<std::size_t>(id)] = false;
      out.push_back(garbage_collect(rebuild(best, keep)));
    }
  }

  // 2. Bypass an actor whose output spec equals one of its input specs:
  // consumers rewire to that input's source.  Needs resolved specs.
  Model specs("specs");
  bool have_specs = true;
  try {
    specs = resolved(best);
  } catch (const Error&) {
    have_specs = false;  // generator-bug findings: structure shrinks only
  }
  if (have_specs) {
    for (const Actor& actor : specs.actors()) {
      if (actor.type() == "Inport" || actor.type() == "Outport" ||
          actor.type() == "Constant" || !actor.is_resolved() ||
          actor.output_count() != 1) {
        continue;
      }
      for (int port = 0; port < actor.input_count(); ++port) {
        if (!(actor.input(port) == actor.output(0))) continue;
        const auto feed = specs.incoming(actor.id(), port);
        if (!feed.has_value()) continue;
        Model cand(best.name());
        // Rebuild without the actor, rerouting its consumers to the feed.
        std::vector<bool> keep(best.actors().size(), true);
        keep[static_cast<std::size_t>(actor.id())] = false;
        cand = rebuild(best, keep);
        // rebuild() dropped every edge touching the actor; re-add the
        // consumer edges, now fed by the bypassed input's source.
        const ActorId src = cand.find_actor(
            specs.actor(feed->src).name());
        if (src == kNoActor) continue;
        bool ok = true;
        for (const Connection& c : best.connections()) {
          if (c.src != actor.id()) continue;
          const ActorId dst =
              cand.find_actor(best.actor(c.dst).name());
          if (dst == kNoActor) { ok = false; break; }
          cand.connect(src, feed->src_port, dst, c.dst_port);
        }
        if (!ok) continue;
        out.push_back(garbage_collect(cand));
        break;  // one bypass candidate per actor
      }
    }
  }

  // 3. Shrink one distinct source shape at a time (all users together, so
  // elementwise partners stay consistent).
  std::set<std::string> shapes;
  for (const Actor& actor : best.actors()) {
    if (declares_spec(actor) && actor.has_param("shape")) {
      shapes.insert(actor.param("shape"));
    }
  }
  for (const std::string& shape : shapes) {
    for (const std::string& target : shape_targets(shape)) {
      out.push_back(with_shrunk_shape(best, shape, target));
    }
  }

  // 4. Simplify one distinct source dtype at a time.
  std::set<std::string> dtypes;
  for (const Actor& actor : best.actors()) {
    if (declares_spec(actor) && actor.has_param("dtype")) {
      dtypes.insert(actor.param("dtype"));
    }
  }
  for (const std::string& dtype : dtypes) {
    const std::string target = canonical_dtype(dtype);
    if (!target.empty()) {
      out.push_back(with_simplified_dtype(best, dtype, target));
    }
  }

  return out;
}

}  // namespace

Model minimize_model(const Model& original, const ReproduceFn& reproduces,
                     MinimizeStats* stats) {
  Model best = original;
  bool changed = true;
  while (changed) {
    changed = false;
    if (stats != nullptr) ++stats->rounds;
    for (Model& cand : candidates(best)) {
      // Cheap structural pre-check; generator-bug reproducers skip it
      // (their whole point is a model that does NOT resolve).
      if (resolves(best) && !resolves(cand)) continue;
      if (stats != nullptr) ++stats->candidates_tried;
      if (!reproduces(cand)) continue;
      if (stats != nullptr) ++stats->accepted;
      best = std::move(cand);
      changed = true;
      break;  // restart enumeration from the smaller model
    }
  }
  return best;
}

HarnessConfig single_variant_config(const HarnessConfig& base,
                                    const Variant& variant) {
  HarnessConfig out = base;
  out.sweep_faults = false;
  if (variant.tool == "hcg") {
    out.isas = {variant.isa};
    out.opt_levels = {variant.opt_level};
    out.baselines = false;
  } else if (variant.tool == "resolve") {
    out.isas.clear();
    out.opt_levels.clear();
    out.baselines = false;
  } else {
    out.isas.clear();
    if (!variant.isa.empty()) out.isas.push_back(variant.isa);
    out.opt_levels.clear();
    out.baselines = true;
  }
  return out;
}

ReproduceFn signature_reproducer(const HarnessConfig& base,
                                 const Finding& finding) {
  const HarnessConfig config = single_variant_config(base, finding.variant);
  const std::string signature = finding.signature;
  const std::uint64_t seed = finding.seed;
  return [config, signature, seed](const Model& candidate) {
    for (const Finding& f : check_model(candidate, seed, config)) {
      if (f.signature == signature) return true;
    }
    return false;
  };
}

}  // namespace hcg::fuzz
