// Seeded random model generation for the differential fuzzing subsystem
// (docs/FUZZING.md).
//
// generate_model(seed) grows a random — but always *valid* — model by
// construction: every production rule only wires actors whose type/shape
// constraints are satisfiable from the current value pool, so the resolver
// accepts every generated model.  The grammar deliberately covers the
// corners the pipeline treats specially:
//
//   * every actor class (source, sink, basic, batch, intensive, delay),
//   * every non-complex element type plus c64 FFT chains,
//   * sub-threshold widths (1..3), non-multiple-of-lane widths (5, 7, 17,
//     31, 33), and full vector widths,
//   * scale-boundary chains via Cast (mixed element widths in one region),
//   * UnitDelay chains and delay-broken feedback cycles.
//
// Numeric guardrails keep the comparison against the VM oracle meaningful:
// divisors/sqrt/recp operands are bounded away from zero, signed-integer
// chains track a magnitude bound so they can never overflow into undefined
// behavior, casts never narrow out of range, and intensive actors read
// bounded fresh sources (implementation-dependent rounding stays tiny).
// Unsigned chains are left free to wrap — wrapping is defined and both
// sides must agree exactly.
//
// Determinism contract: the same (seed, config) produces byte-for-byte
// identical model_to_xml() output on every platform (see support/rng.hpp).
#pragma once

#include <cstdint>

#include "model/model.hpp"

namespace hcg::fuzz {

struct GeneratorConfig {
  /// Upper bound on computational actors added by grammar rules (sources,
  /// sinks and rule-internal helpers come on top).  The actual budget is
  /// drawn from [4, max_actors] per seed.
  int max_actors = 20;
  /// Include Algorithm 1 actor classes (FFT/DCT/Conv/Mat*).
  bool intensive = true;
  /// Include UnitDelay chains and delay-broken feedback cycles.
  bool delays = true;
  /// Include Cast rules (scale-boundary chains across element widths).
  bool scale_chains = true;
};

/// Deterministically generates the model for `seed`.  The result is
/// unresolved (call hcg::resolved() or resolve_model()); resolution is
/// guaranteed to succeed — a resolve failure on a generated model is a
/// generator bug, and the fuzz harness reports it as such.
Model generate_model(std::uint64_t seed, const GeneratorConfig& config = {});

}  // namespace hcg::fuzz
