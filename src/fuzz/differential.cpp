#include "fuzz/differential.hpp"

#include <cmath>
#include <cstdlib>
#include <optional>
#include <utility>

#include "actors/resolve.hpp"
#include "analysis/range.hpp"
#include "benchmodels/benchmodels.hpp"
#include "codegen/generator.hpp"
#include "isa/builtin.hpp"
#include "support/error.hpp"
#include "support/faults.hpp"
#include "toolchain/compiled_model.hpp"
#include "vm/interpreter.hpp"

namespace hcg::fuzz {

namespace {

bool verifier_enabled() {
  const char* env = std::getenv("HCG_VERIFY");
  return env != nullptr && *env != '\0' &&
         std::string_view(env) != std::string_view("0");
}

std::unique_ptr<codegen::Generator> make_variant_tool(const Variant& v) {
  if (v.tool == "hcg") {
    return codegen::make_hcg_generator(isa::builtin(v.isa), nullptr, {},
                                       v.opt_level);
  }
  if (v.tool == "simulink") {
    return codegen::make_simulink_generator(nullptr, v.opt_level);
  }
  if (v.tool == "simulink-sc") {
    return codegen::make_simulink_generator(&isa::builtin(v.isa),
                                            v.opt_level);
  }
  if (v.tool == "dfsynth") return codegen::make_dfsynth_generator(v.opt_level);
  throw InternalError("fuzz: unknown variant tool '" + v.tool + "'");
}

/// Runs one matrix cell.  `fault_spec` non-empty marks a harness-armed
/// degraded-mode sweep, where clean hcg::Error failures are the contract
/// being *met*, not a finding.  `ambient_faults` marks env-armed sabotage
/// (the armed-miscompile drill), where every abnormality is a finding.
std::optional<Finding> run_variant(
    const Model& m, const Variant& variant, std::uint64_t seed,
    const std::vector<std::vector<Tensor>>& inputs,
    const std::vector<std::vector<Tensor>>& expected,
    const std::string& fault_spec) {
  auto finding = [&](Outcome outcome, std::string detail) {
    Finding f;
    f.seed = seed;
    f.variant = variant;
    f.outcome = outcome;
    f.detail = std::move(detail);
    f.fault_spec = fault_spec;
    f.signature = failure_signature(outcome, variant, f.detail, fault_spec);
    return f;
  };
  const bool tolerate_clean_errors = !fault_spec.empty();
  try {
    auto tool = make_variant_tool(variant);
    codegen::GeneratedCode code = tool->generate(m);
    toolchain::CompiledModel compiled(code);
    compiled.init();
    for (std::size_t k = 0; k < inputs.size(); ++k) {
      std::vector<Tensor> got = compiled.step_tensors(m, inputs[k]);
      for (std::size_t i = 0; i < got.size(); ++i) {
        std::string why;
        if (!tensors_close(expected[k][i], got[i], &why)) {
          return finding(Outcome::kDivergence,
                         "outport " + std::to_string(i) + " step " +
                             std::to_string(k) + ": " + why);
        }
      }
    }
    return std::nullopt;
  } catch (const CodegenError& e) {
    if (tolerate_clean_errors) return std::nullopt;
    return finding(Outcome::kVerifierReject, e.what());
  } catch (const Error& e) {
    if (tolerate_clean_errors) return std::nullopt;
    return finding(Outcome::kError, e.what());
  } catch (const std::exception& e) {
    // Even a harness-armed sweep must not see exceptions from outside the
    // hcg::Error hierarchy — that is a crash, not a clean degraded path.
    return finding(Outcome::kError, e.what());
  }
}

/// Interval-soundness cross-check (docs/ANALYSIS.md): every component the
/// oracle just produced must lie inside the interval analyze_ranges
/// predicted for that wire.  `corrupt` — set when the analysis.range fault
/// probe is armed — collapses every predicted interval to an empty one, so
/// the sweep can prove this check actually fires.
std::optional<std::string> range_escape(const Model& m,
                                        const analysis::RangeAnalysis& ranges,
                                        const Interpreter& oracle, int step,
                                        bool corrupt) {
  for (const Actor& actor : m.actors()) {
    for (int port = 0; port < actor.output_count(); ++port) {
      const analysis::Interval* predicted = ranges.find(actor.id(), port);
      if (predicted == nullptr) continue;
      analysis::Interval bound = *predicted;
      if (corrupt) bound = analysis::Interval{1.0, -1.0};  // empty
      const Tensor& t = oracle.value(actor.id(), port);
      const bool f32 = component_type(t.type()) == DataType::kFloat32;
      const int components =
          is_complex(t.type()) ? t.elements() * 2 : t.elements();
      for (int i = 0; i < components; ++i) {
        double v;
        if (is_complex(t.type()) || is_float(t.type())) {
          v = f32 ? t.as<float>()[i] : t.as<double>()[i];
        } else {
          v = t.get_double(i);
        }
        if (std::isnan(v)) continue;  // NaN has no order; intervals bound
                                      // only the ordered values
        if (bound.contains(v)) continue;
        return "actor '" + actor.name() + "' port " + std::to_string(port) +
               " step " + std::to_string(step) + " element " +
               std::to_string(i) + ": oracle value " + std::to_string(v) +
               " escaped predicted " + bound.to_string();
      }
    }
  }
  return std::nullopt;
}

}  // namespace

std::string_view outcome_name(Outcome outcome) {
  switch (outcome) {
    case Outcome::kAgreed: return "agreed";
    case Outcome::kDivergence: return "divergence";
    case Outcome::kVerifierReject: return "verifier-reject";
    case Outcome::kError: return "error";
    case Outcome::kGeneratorBug: return "generator-bug";
    case Outcome::kRangeUnsound: return "range-unsound";
  }
  return "unknown";
}

std::string Variant::label() const {
  std::string out = tool;
  if (!isa.empty()) out += "/" + isa;
  out += "/O" + std::to_string(opt_level);
  return out;
}

std::vector<Variant> variant_matrix(const HarnessConfig& config) {
  std::vector<Variant> matrix;
  for (const std::string& isa : config.isas) {
    for (int level : config.opt_levels) {
      matrix.push_back(Variant{"hcg", isa, level});
    }
  }
  if (config.baselines) {
    matrix.push_back(Variant{"simulink", "", 0});
    matrix.push_back(Variant{"dfsynth", "", 0});
    for (const std::string& isa : config.isas) {
      matrix.push_back(Variant{"simulink-sc", isa, 0});
    }
  }
  return matrix;
}

std::string failure_signature(Outcome outcome, const Variant& variant,
                              std::string_view detail,
                              std::string_view fault_spec) {
  std::string sig = std::string(outcome_name(outcome));
  sig += ':';
  sig += variant.label();
  if (!fault_spec.empty()) {
    sig += ":";
    sig += fault_spec;
  }
  if (outcome == Outcome::kVerifierReject) {
    // "... after pass 'fuse_loops': ..." — the pass name is structural and
    // survives minimization; the rest of the message embeds buffer/actor
    // names that do not.
    const std::string_view marker = "after pass '";
    const std::size_t at = detail.find(marker);
    if (at != std::string_view::npos) {
      const std::size_t begin = at + marker.size();
      const std::size_t end = detail.find('\'', begin);
      if (end != std::string_view::npos) {
        sig += ":";
        sig += detail.substr(begin, end - begin);
      }
    }
  }
  return sig;
}

bool tensors_close(const Tensor& expected, const Tensor& got,
                   std::string* why) {
  if (expected.type() != got.type() || !(expected.shape() == got.shape())) {
    if (why != nullptr) *why = "type/shape mismatch";
    return false;
  }
  if (is_integer(expected.type())) {
    if (expected.bytes_equal(got)) return true;
    for (int i = 0; i < expected.elements(); ++i) {
      if (expected.get_int(i) != got.get_int(i)) {
        if (why != nullptr) {
          *why = "element " + std::to_string(i) + ": expected " +
                 std::to_string(expected.get_int(i)) + ", got " +
                 std::to_string(got.get_int(i));
        }
        return false;
      }
    }
    return true;
  }
  // Float / complex: absolute floor plus a relative band scaled by the
  // largest expected magnitude — reassociation, fp contraction, and
  // different-but-correct summation orders in intensive kernels are not
  // miscompiles, while corruption (zeroed/garbage lanes) blows well past
  // this for the bounded values the generator produces.
  const int components =
      is_complex(expected.type()) ? expected.elements() * 2
                                  : expected.elements();
  const bool f32 = component_type(expected.type()) == DataType::kFloat32;
  double max_mag = 0.0;
  for (int i = 0; i < components; ++i) {
    const double a = f32 ? expected.as<float>()[i] : expected.as<double>()[i];
    if (std::isfinite(a)) max_mag = std::max(max_mag, std::fabs(a));
  }
  const double tol = 1e-2 + 1e-3 * max_mag;
  for (int i = 0; i < components; ++i) {
    const double a = f32 ? expected.as<float>()[i] : expected.as<double>()[i];
    const double b = f32 ? got.as<float>()[i] : got.as<double>()[i];
    if (std::isnan(a) && std::isnan(b)) continue;
    if (!std::isfinite(a) || !std::isfinite(b)) {
      if (a == b) continue;
    } else if (std::fabs(a - b) <= tol) {
      continue;
    }
    if (why != nullptr) {
      *why = "component " + std::to_string(i) + ": expected " +
             std::to_string(a) + ", got " + std::to_string(b) +
             " (tol " + std::to_string(tol) + ")";
    }
    return false;
  }
  return true;
}

std::vector<Finding> check_model(const Model& model, std::uint64_t seed,
                                 const HarnessConfig& config,
                                 int* variants_run) {
  std::vector<Finding> findings;
  Model m("empty");
  try {
    m = resolved(model);
  } catch (const Error& e) {
    Finding f;
    f.seed = seed;
    f.outcome = Outcome::kGeneratorBug;
    f.detail = e.what();
    f.variant = Variant{"resolve", "", 0};
    f.signature =
        failure_signature(f.outcome, f.variant, f.detail, f.fault_spec);
    findings.push_back(std::move(f));
    return findings;
  }

  // The range analysis runs once per model; its predictions are then
  // cross-checked against every value the oracle produces below.  A model it
  // refuses to analyze is itself a finding — lint and narrowing both depend
  // on it accepting anything that resolves.
  analysis::RangeAnalysis ranges;
  bool ranges_ok = false;
  try {
    ranges = analysis::analyze_ranges(m, nullptr);
    ranges_ok = true;
  } catch (const Error& e) {
    Finding f;
    f.seed = seed;
    f.outcome = Outcome::kError;
    f.detail = e.what();
    f.variant = Variant{"range", "", 0};
    f.signature =
        failure_signature(f.outcome, f.variant, f.detail, f.fault_spec);
    findings.push_back(std::move(f));
  }
  const bool corrupt_ranges =
      faults::probe("analysis.range", m.name()) != faults::Action::kNone;

  const int steps = std::max(1, config.steps);
  std::vector<std::vector<Tensor>> inputs, expected;
  Interpreter oracle(m);
  oracle.init();
  bool range_reported = false;
  for (int k = 0; k < steps; ++k) {
    inputs.push_back(
        benchmodels::workload(m, seed * 131 + static_cast<std::uint64_t>(k)));
    expected.push_back(oracle.step(inputs.back()));
    if (!ranges_ok || range_reported) continue;
    if (auto why = range_escape(m, ranges, oracle, k, corrupt_ranges)) {
      Finding f;
      f.seed = seed;
      f.variant = Variant{"range", "", 0};
      f.outcome = Outcome::kRangeUnsound;
      f.detail = std::move(*why);
      f.signature =
          failure_signature(f.outcome, f.variant, f.detail, f.fault_spec);
      findings.push_back(std::move(f));
      range_reported = true;  // one per seed; later steps repeat the story
    }
  }

  int cells = 0;
  for (const Variant& variant : variant_matrix(config)) {
    ++cells;
    if (auto f = run_variant(m, variant, seed, inputs, expected, "")) {
      findings.push_back(std::move(*f));
    }
  }

  // Degraded-mode sweep: one site at a time, against the most-optimized hcg
  // cell.  Skipped when the environment armed its own faults (the two rule
  // sets would clobber each other) and restored from the environment after.
  if (config.sweep_faults && !faults::Registry::instance().active() &&
      !config.isas.empty()) {
    Variant cell{"hcg", config.isas.front(), 2};
    if (!config.opt_levels.empty()) cell.opt_level = config.opt_levels.back();
    for (const faults::SiteInfo& site : faults::site_catalog()) {
      // cgir.pass corrupts the IR *by design*; silent wrong output is the
      // expected result unless the verifier is on to catch it.
      if (site.site == "cgir.pass" && !verifier_enabled()) continue;
      const std::string spec = std::string(site.site) + "=fail";
      faults::Registry::instance().configure(spec);
      ++cells;
      auto f = run_variant(m, cell, seed, inputs, expected, spec);
      faults::Registry::instance().configure_from_env();
      if (f) findings.push_back(std::move(*f));
    }
  }

  if (variants_run != nullptr) *variants_run += cells;
  return findings;
}

SeedResult run_seed(std::uint64_t seed, const HarnessConfig& config) {
  SeedResult result;
  result.seed = seed;
  Model model = generate_model(seed, config.generator);
  result.findings = check_model(model, seed, config, &result.variants_run);
  return result;
}

}  // namespace hcg::fuzz
