#include "fuzz/generator.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "actors/batch_op.hpp"
#include "model/builder.hpp"
#include "support/rng.hpp"

namespace hcg::fuzz {

namespace {

/// One wire the grammar can consume: where it comes from, its resolved
/// spec, and a conservative log2 bound on |value| used to keep signed
/// integer chains away from undefined overflow (see header).
struct Value {
  PortRef ref;
  DataType type;
  Shape shape;
  int mag = 0;
  bool consumed = false;
};

const DataType kScalarTypes[] = {
    DataType::kFloat32, DataType::kFloat64, DataType::kInt8,
    DataType::kInt16,   DataType::kInt32,   DataType::kInt64,
    DataType::kUInt8,   DataType::kUInt16,  DataType::kUInt32,
    DataType::kUInt64,
};

/// Vector widths: sub-threshold (1..3), sub-lane (5, 7), lane-exact (4, 8,
/// 16, 32, 64) and off-by-one remainder widths (17, 31, 33).
const int kWidths[] = {1, 2, 3, 4, 5, 7, 8, 12, 16, 17, 31, 32, 33, 48, 64};

class Generation {
 public:
  Generation(std::uint64_t seed, const GeneratorConfig& config)
      : builder_("fuzz_" + std::to_string(seed)),
        rng_(seed ^ 0x68636766757a7aull),  // "hcgfuzz" — decouple from
                                           // workload seeds
        config_(config) {}

  Model run() {
    const int budget =
        4 + static_cast<int>(rng_.bounded(
                static_cast<std::uint64_t>(std::max(1, config_.max_actors - 3))));
    // Seed the pool so every rule has material to work with.
    add_inport(random_scalar_type(), random_shape());
    if (chance(2, 3)) add_inport(random_scalar_type(), random_shape());

    int guard = 0;
    while (actors_added_ < budget && ++guard < budget * 8) {
      switch (rng_.bounded(12)) {
        case 0: add_source(); break;
        case 1: case 2: case 3: rule_binary(); break;
        case 4: rule_unary(); break;
        case 5: rule_shift(); break;
        case 6: rule_gain_bias(); break;
        case 7:
          if (config_.scale_chains) rule_cast();
          break;
        case 8: rule_switch(); break;
        case 9:
          if (config_.delays) rule_delay();
          break;
        case 10:
          if (config_.delays) rule_feedback();
          break;
        case 11:
          if (config_.intensive) rule_intensive();
          break;
      }
    }

    // Every unconsumed wire becomes an external output: the model has no
    // dead actors (lint --Werror clean) and every chain is observable.
    bool have_out = false;
    for (Value& v : pool_) {
      if (v.consumed) continue;
      builder_.outport(name("out", n_out_), v.ref);
      have_out = true;
    }
    if (!have_out && !pool_.empty()) {
      builder_.outport(name("out", n_out_), pool_.back().ref);
    }
    return builder_.take();
  }

 private:
  // ---- naming / dice ------------------------------------------------------
  static std::string name(const char* stem, int& counter) {
    return std::string(stem) + std::to_string(counter++);
  }
  bool chance(std::uint64_t num, std::uint64_t den) {
    return rng_.bounded(den) < num;
  }
  DataType random_scalar_type() {
    return kScalarTypes[rng_.bounded(std::size(kScalarTypes))];
  }
  Shape random_shape() {
    if (chance(1, 8)) return Shape{};  // scalar — the kBasic path
    return Shape{kWidths[rng_.bounded(std::size(kWidths))]};
  }
  static int source_mag(DataType type) {
    // benchmodels::workload fills integers from ±2^20, wrapped into the
    // element width; floats sit in [-1, 1).
    if (is_signed_int(type)) return std::min(20, bit_width(type) - 1);
    return 0;
  }

  // ---- pool helpers -------------------------------------------------------
  Value& push(PortRef ref, DataType type, Shape shape, int mag) {
    pool_.push_back(Value{ref, type, std::move(shape), mag, false});
    return pool_.back();
  }
  Value* pick(const std::function<bool(const Value&)>& want) {
    std::vector<std::size_t> matches;
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      if (want(pool_[i])) matches.push_back(i);
    }
    if (matches.empty()) return nullptr;
    return &pool_[matches[rng_.bounded(matches.size())]];
  }
  PortRef use(Value& v) {
    v.consumed = true;
    return v.ref;
  }

  // ---- sources ------------------------------------------------------------
  Value& add_inport(DataType type, Shape shape) {
    ++actors_added_;
    PortRef ref = builder_.inport(name("in", n_in_), type, shape);
    int mag = source_mag(type);
    // Sometimes declare a value-range contract on the port (range_min /
    // range_max — the facts the interval analysis starts from, which
    // benchmodels::workload honors).  Bounded inputs are what make the
    // range-soundness cross-check, the HCG6xx paths, and range-driven lane
    // narrowing actually bite in a campaign.
    if (!is_complex(type) && chance(1, 3)) {
      Actor& port = builder_.model().actor(ref.actor);
      if (is_float(type)) {
        port.set_param("range_min", "-0.5");
        port.set_param("range_max", "0.5");
      } else {
        const int k = 4 + static_cast<int>(rng_.bounded(9));  // 2^4 .. 2^12
        const long long hi = 1LL << k;
        port.set_param("range_min",
                       std::to_string(is_unsigned_int(type) ? 0 : -hi));
        port.set_param("range_max", std::to_string(hi));
        if (is_signed_int(type)) mag = std::min(mag, k);
      }
    }
    return push(ref, type, std::move(shape), mag);
  }

  std::string literal(DataType type, double lo, double hi) {
    if (is_float(type)) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f", rng_.uniform_real(lo, hi));
      return buf;
    }
    const auto ilo = static_cast<std::int64_t>(lo);
    const auto ihi = static_cast<std::int64_t>(hi);
    std::int64_t v = rng_.uniform_int(std::max<std::int64_t>(
                                          is_unsigned_int(type) ? 0 : ilo, ilo),
                                      ihi);
    if (is_unsigned_int(type) && v < 0) v = -v;
    return std::to_string(v);
  }

  /// A constant whose per-element values sit in [lo, hi] — `hi` small keeps
  /// integer products bounded, `lo` > 0 keeps divisors away from zero.
  Value& add_constant(DataType type, const Shape& shape, double lo, double hi,
                      int mag) {
    ++actors_added_;
    std::string value;
    if (chance(1, 3)) {
      value = literal(type, lo, hi);  // single literal, replicated
    } else {
      const int n = shape.elements();
      for (int i = 0; i < n; ++i) {
        if (i > 0) value += ",";
        value += literal(type, lo, hi);
      }
    }
    PortRef ref = builder_.constant(name("c", n_const_), type, shape, value);
    return push(ref, type, shape, mag);
  }

  /// Same-spec partner for a binary rule: an existing wire when available
  /// (longer chains), else a fresh small constant.  `max_mag` bounds the
  /// partner's magnitude ledger so the caller's result bound holds.
  Value& partner(DataType type, const Shape& shape, int max_mag) {
    Value* found = pick([&](const Value& v) {
      return v.type == type && v.shape == shape && v.mag <= max_mag;
    });
    if (found != nullptr && chance(2, 3)) return *found;
    if (is_float(type)) return add_constant(type, shape, -1.25, 1.25, 1);
    return add_constant(type, shape, -3, 3, 2);
  }

  PortRef op(const std::string& type, std::initializer_list<PortRef> inputs,
             std::initializer_list<std::pair<std::string_view,
                                             std::string_view>> params = {}) {
    ++actors_added_;
    return builder_.actor(name("a", n_op_), type, inputs, params);
  }

  /// Signed-integer overflow guard: true when a result bounded by 2^mag
  /// stays strictly inside the element type.
  static bool fits(DataType type, int mag) {
    if (!is_signed_int(type)) return true;
    return mag <= bit_width(type) - 2;
  }

  // ---- grammar rules ------------------------------------------------------
  void add_source() {
    if (chance(1, 2)) {
      add_inport(random_scalar_type(), random_shape());
    } else {
      const DataType type = random_scalar_type();
      add_constant(type, random_shape(), is_float(type) ? -1.25 : -3,
                   is_float(type) ? 1.25 : 3, 2);
    }
  }

  void rule_binary() {
    struct Entry {
      const char* actor;
      int grow;  // mag growth of the result
    };
    static const Entry kOps[] = {{"Add", 1},    {"Sub", 1},    {"Mul", 2},
                                 {"Min", 0},    {"Max", 0},    {"Abd", 1},
                                 {"BitAnd", 1}, {"BitOr", 1},  {"BitXor", 1},
                                 {"Div", 1}};
    const Entry& entry = kOps[rng_.bounded(std::size(kOps))];
    const BatchOp kind = batch_op_for_actor_type(entry.actor);
    Value* a = pick([&](const Value& v) {
      // Abd stays off unsigned wrapped chains: an x86 lowering via abs of
      // the wrapped difference legitimately differs from the scalar
      // conditional there (see test_property_e2e.cpp).
      if (kind == BatchOp::kAbd && is_unsigned_int(v.type)) return false;
      return op_supports_type(kind, v.type) &&
             fits(v.type, v.mag + entry.grow);
    });
    if (a == nullptr) return;
    const DataType type = a->type;
    const Shape shape = a->shape;
    const int mag_a = a->mag;
    PortRef lhs = use(*a);  // `a` may dangle once partner() grows the pool

    PortRef rhs;
    int mag;
    if (kind == BatchOp::kDiv) {
      // Divisor bounded away from zero: quotients stay finite and exact
      // comparison against the oracle stays meaningful.
      rhs = use(add_constant(type, shape, 0.5, 2.0, 1));
      mag = mag_a + 1;
    } else if (kind == BatchOp::kMul && is_integer(type)) {
      // Integer products only by small constants — the magnitude ledger
      // stays linear instead of doubling.
      rhs = use(add_constant(type, shape, -3, 3, 2));
      mag = mag_a + 2;
    } else if (kind == BatchOp::kMul) {
      // Products multiply the bounds, so the ledger is additive; the cap
      // keeps float chains eligible for later float->int casts.
      Value& b = partner(type, shape, std::max(1, 20 - mag_a));
      mag = mag_a + b.mag;
      rhs = use(b);
    } else {
      Value& b = partner(type, shape, 18);
      mag = std::max(mag_a, b.mag) + entry.grow;
      if (!fits(type, mag)) return;  // partner too hot; drop the rule
      rhs = use(b);
    }
    push(op(entry.actor, {lhs, rhs}), type, shape, mag);
  }

  void rule_unary() {
    switch (rng_.bounded(4)) {
      case 0: {  // Abs (signed int or float)
        Value* v = pick([](const Value& v) {
          return op_supports_type(BatchOp::kAbs, v.type);
        });
        if (v == nullptr) return;
        push(op("Abs", {use(*v)}), v->type, v->shape, v->mag);
        return;
      }
      case 1: {  // BitNot (integer)
        Value* v = pick([](const Value& v) { return is_integer(v.type); });
        if (v == nullptr) return;
        const int mag = std::min(bit_width(v->type) - 1, v->mag + 1);
        if (!fits(v->type, mag)) return;
        push(op("BitNot", {use(*v)}), v->type, v->shape, mag);
        return;
      }
      case 2: {  // Sqrt(Abs(x)) — operand forced non-negative
        Value* v = pick([](const Value& v) { return is_float(v.type); });
        if (v == nullptr) return;
        const DataType type = v->type;
        const Shape shape = v->shape;
        const int mag = v->mag;
        PortRef absolute = op("Abs", {use(*v)});
        push(op("Sqrt", {absolute}), type, shape, (mag + 1) / 2);
        return;
      }
      case 3: {  // Recp(Bias(Abs(x), 1)) — operand bounded into [1, inf)
        Value* v = pick([](const Value& v) { return is_float(v.type); });
        if (v == nullptr) return;
        const DataType type = v->type;
        const Shape shape = v->shape;
        PortRef absolute = op("Abs", {use(*v)});
        PortRef biased = op("Bias", {absolute}, {{"bias", "1.0"}});
        push(op("Recp", {biased}), type, shape, 0);
        return;
      }
    }
  }

  void rule_shift() {
    // Shifts stay on unsigned types: unsigned wrap is defined, so both
    // sides must agree bit-for-bit; signed shifts would drag in
    // implementation-defined corners that are not miscompiles.
    Value* v = pick([](const Value& v) { return is_unsigned_int(v.type); });
    if (v == nullptr) return;
    const bool left = chance(1, 2);
    // Amounts 2..7: a shift of exactly 1 after an Add fuses into a halving
    // add whose widened intermediate legitimately diverges once the wrapped
    // unsigned sum has overflowed (see test_property_e2e.cpp).
    const int amount =
        2 + static_cast<int>(rng_.bounded(static_cast<std::uint64_t>(
                std::min(6, bit_width(v->type) - 2))));
    push(op(left ? "Shl" : "Shr", {use(*v)},
            {{"amount", amounts_[amount]}}),
         v->type, v->shape, 0);
  }

  void rule_gain_bias() {
    Value* v = pick([](const Value& v) {
      return !is_complex(v.type) && fits(v.type, v.mag + 2);
    });
    if (v == nullptr) return;
    const bool gain = chance(1, 2);
    const std::string param = literal(v->type, gain ? -1.5 : -3,
                                      gain ? 1.5 : 3);
    push(op(gain ? "Gain" : "Bias", {use(*v)},
            {{gain ? "gain" : "bias", param}}),
         v->type, v->shape, v->mag + 2);
  }

  void rule_cast() {
    Value* v = pick([](const Value& v) { return !is_complex(v.type); });
    if (v == nullptr) return;
    // Candidate targets that cannot lose a value: float<->float always,
    // anything -> float, integers only widen within their signedness, and
    // float -> i32/i64 only when the magnitude ledger proves it fits.
    std::vector<DataType> targets;
    for (DataType to : kScalarTypes) {
      if (to == v->type) continue;
      if (is_float(to)) {
        targets.push_back(to);
      } else if (is_float(v->type)) {
        if (bit_width(to) >= 32 && is_signed_int(to) && v->mag <= 20) {
          targets.push_back(to);
        }
      } else if (is_signed_int(v->type) == is_signed_int(to) &&
                 bit_width(to) > bit_width(v->type)) {
        targets.push_back(to);
      }
    }
    if (targets.empty()) return;
    const DataType to = targets[rng_.bounded(targets.size())];
    const int mag = is_float(to) && is_unsigned_int(v->type)
                        ? bit_width(v->type)
                        : v->mag;
    push(op("Cast", {use(*v)}, {{"to", short_name(to)}}), to, v->shape, mag);
  }

  void rule_switch() {
    Value* a = pick([](const Value& v) {
      return op_supports_type(BatchOp::kSel, v.type);
    });
    if (a == nullptr) return;
    const DataType type = a->type;
    const Shape shape = a->shape;
    const int mag_a = a->mag;
    PortRef first = use(*a);
    Value& b = partner(type, shape, 18);
    const int mag_b = b.mag;
    PortRef second = use(b);
    Value& ctrl = partner(type, shape, 18);
    push(op("Switch", {first, second, use(ctrl)}), type, shape,
         std::max(mag_a, mag_b));
  }

  void rule_delay() {
    Value* v = pick([](const Value& v) { return !is_complex(v.type); });
    if (v == nullptr) return;
    ++actors_added_;
    const DataType type = v->type;
    const Shape shape = v->shape;
    const int mag = v->mag;
    PortRef d = builder_.actor(name("d", n_delay_), "UnitDelay", {use(*v)},
                               {{"dtype", short_name(type)},
                                {"shape", shape.to_string()}});
    push(d, type, shape, mag);
  }

  /// A delay-broken feedback cycle: s = Add(v, d); d.in = s.  Algorithm 2
  /// and the linter treat the cycle specially, and the harness runs several
  /// steps so the state path is actually exercised.
  void rule_feedback() {
    Value* v = pick([](const Value& v) {
      // Headroom for a few accumulation steps (the harness runs 3).
      return !is_complex(v.type) && fits(v.type, v.mag + 5);
    });
    if (v == nullptr) return;
    const DataType type = v->type;
    const Shape shape = v->shape;
    const int mag = v->mag;
    ++actors_added_;
    const std::string delay_name = name("d", n_delay_);
    Model& model = builder_.model();
    const ActorId delay_id = model.add_actor(delay_name, "UnitDelay");
    model.actor(delay_id).set_param("dtype", std::string(short_name(type)));
    model.actor(delay_id).set_param("shape", shape.to_string());
    PortRef sum = op("Add", {use(*v), PortRef{delay_id, 0}});
    model.connect(sum.actor, 0, delay_id, 0);
    push(PortRef{delay_id, 0}, type, shape, mag + 5);
    push(sum, type, shape, mag + 5);
  }

  void rule_intensive() {
    switch (rng_.bounded(7)) {
      case 0: {  // FFT / IFFT on a c64 vector (chainable)
        const char* type = chance(1, 2) ? "FFT" : "IFFT";
        Value* prior = pick([](const Value& v) {
          return v.type == DataType::kComplex64 && v.shape.rank() == 1;
        });
        Shape shape;
        PortRef in;
        if (prior != nullptr && chance(1, 2)) {
          shape = prior->shape;
          in = use(*prior);
        } else {
          shape = Shape{pow2_len()};
          in = use(add_inport(DataType::kComplex64, shape));
        }
        push(op(type, {in}), DataType::kComplex64, shape, 5);
        return;
      }
      case 1: {  // FFT2D / IFFT2D on a c64 matrix
        const int n = pow2_len();
        Value& in = add_inport(DataType::kComplex64, Shape{n, n});
        push(op(chance(1, 2) ? "FFT2D" : "IFFT2D", {use(in)}),
             DataType::kComplex64, Shape{n, n}, 6);
        return;
      }
      case 2: {  // DCT / IDCT on a bounded fresh float vector
        const DataType type = float_type();
        Value& in = add_inport(type, Shape{pow2_len()});
        push(op(chance(1, 2) ? "DCT" : "IDCT", {use(in)}), type, in.shape, 5);
        return;
      }
      case 3: {  // DCT2D
        const DataType type = float_type();
        const int n = pow2_len();
        Value& in = add_inport(type, Shape{n, n});
        push(op("DCT2D", {use(in)}), type, Shape{n, n}, 6);
        return;
      }
      case 4: {  // Conv / Conv2D — output width n + m - 1 (odd widths)
        const DataType type = float_type();
        if (chance(2, 3)) {
          const int n = 4 + static_cast<int>(rng_.bounded(13));
          const int m = 3 + static_cast<int>(rng_.bounded(3));
          // add_constant can reallocate the pool, so take the signal's ref
          // before creating the taps.
          PortRef sig = use(add_inport(type, Shape{n}));
          PortRef taps = use(add_constant(type, Shape{m}, -1.25, 1.25, 1));
          push(op("Conv", {sig, taps}), type, Shape{n + m - 1}, 5);
        } else {
          const int n = 3 + static_cast<int>(rng_.bounded(4));
          PortRef sig = use(add_inport(type, Shape{n, n}));
          PortRef kernel =
              use(add_constant(type, Shape{2, 2}, -1.25, 1.25, 1));
          push(op("Conv2D", {sig, kernel}), type, Shape{n + 1, n + 1}, 4);
        }
        return;
      }
      case 5: {  // MatMul of a fresh square matrix with a bounded constant
        const DataType type = float_type();
        const int n = chance(1, 2) ? 2 : 4;
        PortRef a = use(add_inport(type, Shape{n, n}));
        PortRef b = use(add_constant(type, Shape{n, n}, -1.25, 1.25, 1));
        push(op("MatMul", {a, b}), type, Shape{n, n}, 4);
        return;
      }
      case 6: {  // MatInv / MatDet of a diagonally dominant constant
        const DataType type = float_type();
        const int n = chance(1, 2) ? 2 : 3;
        std::string value;
        for (int r = 0; r < n; ++r) {
          for (int c = 0; c < n; ++c) {
            if (!value.empty()) value += ",";
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.2f",
                          r == c ? n + 1.0 + rng_.uniform_real(0.0, 1.0)
                                 : rng_.uniform_real(-0.4, 0.4));
            value += buf;
          }
        }
        ++actors_added_;
        PortRef m = builder_.constant(name("c", n_const_), type, Shape{n, n},
                                      value);
        if (chance(1, 2)) {
          push(op("MatInv", {m}), type, Shape{n, n}, 2);
        } else {
          push(op("MatDet", {m}), type, Shape{}, 8);
        }
        return;
      }
    }
  }

  int pow2_len() {
    static const int kLens[] = {4, 8, 16};
    return kLens[rng_.bounded(std::size(kLens))];
  }
  DataType float_type() {
    return chance(3, 4) ? DataType::kFloat32 : DataType::kFloat64;
  }

  ModelBuilder builder_;
  Rng rng_;
  GeneratorConfig config_;
  std::vector<Value> pool_;
  int actors_added_ = 0;
  int n_in_ = 0, n_const_ = 0, n_op_ = 0, n_delay_ = 0, n_out_ = 0;
  const char* amounts_[8] = {"0", "1", "2", "3", "4", "5", "6", "7"};
};

}  // namespace

Model generate_model(std::uint64_t seed, const GeneratorConfig& config) {
  return Generation(seed, config).run();
}

}  // namespace hcg::fuzz
