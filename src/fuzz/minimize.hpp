// Counterexample minimization for the fuzzing subsystem (docs/FUZZING.md).
//
// Given a model that misbehaves (diverges, crashes, or is rejected by the
// verifier) and a predicate that re-checks the *same* failure signature,
// minimize_model() greedily applies shrinking transforms and keeps every
// candidate the predicate confirms:
//
//   * drop an Outport (plus everything newly unreachable),
//   * bypass an actor whose output spec matches one of its inputs,
//   * shrink source widths (vectors toward 4, matrices toward 2x2),
//   * simplify source dtypes toward the canonical i32/u32/f32.
//
// Soundness is by construction: a candidate is accepted only if it still
// resolves AND still reproduces the signature, so the result is always a
// genuine reproducer.  The enumeration is deterministic and every accepted
// step strictly shrinks a bounded measure, so minimization terminates and
// is idempotent: minimize(minimize(m)) == minimize(m).
#pragma once

#include <functional>

#include "fuzz/differential.hpp"
#include "model/model.hpp"

namespace hcg::fuzz {

/// Returns true when the candidate still fails with the target signature.
using ReproduceFn = std::function<bool(const Model&)>;

struct MinimizeStats {
  int rounds = 0;
  int candidates_tried = 0;
  int accepted = 0;
};

/// Greedy fixpoint shrink of `original` under `reproduces`.  The original
/// itself must reproduce (callers obtained it from a finding).
Model minimize_model(const Model& original, const ReproduceFn& reproduces,
                     MinimizeStats* stats = nullptr);

/// A config that re-runs only the matrix cell a finding came from — one
/// compile per candidate instead of the whole matrix.
HarnessConfig single_variant_config(const HarnessConfig& base,
                                    const Variant& variant);

/// Builds the predicate minimize_model() needs from a finding: re-runs the
/// finding's variant on the candidate and checks for the same signature.
ReproduceFn signature_reproducer(const HarnessConfig& base,
                                 const Finding& finding);

}  // namespace hcg::fuzz
