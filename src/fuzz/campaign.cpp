#include "fuzz/campaign.hpp"

#include <filesystem>
#include <utility>

#include "model/loader.hpp"
#include "obs/json.hpp"
#include "support/fileio.hpp"
#include "support/strings.hpp"

namespace hcg::fuzz {

namespace {

void report_progress(const CampaignConfig& config, const std::string& line) {
  if (config.progress) config.progress(line);
}

std::string reproducer_filename(const CampaignFinding& finding) {
  return sanitize_identifier(finding.first.signature) + "_s" +
         std::to_string(finding.first.seed) + ".xml";
}

std::string render_report(const CampaignConfig& config,
                          const CampaignResult& result) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema").value("hcg-fuzz-v1");
  w.key("seed_start").value(config.seed_start);
  w.key("seeds").value(result.seeds_run);
  w.key("variants_run").value(result.variants_run);
  w.key("config").begin_object();
  w.key("isas").begin_array();
  for (const std::string& isa : config.harness.isas) w.value(isa);
  w.end_array();
  w.key("opt_levels").begin_array();
  for (int level : config.harness.opt_levels) w.value(level);
  w.end_array();
  w.key("baselines").value(config.harness.baselines);
  w.key("steps").value(config.harness.steps);
  w.key("sweep_faults").value(config.harness.sweep_faults);
  w.key("max_actors").value(config.harness.generator.max_actors);
  w.end_object();
  w.key("ok").value(result.ok());
  w.key("findings").begin_array();
  for (const CampaignFinding& f : result.findings) {
    w.begin_object();
    w.key("signature").value(f.first.signature);
    w.key("count").value(f.count);
    w.key("seed").value(f.first.seed);
    w.key("tool").value(f.first.variant.tool);
    w.key("isa").value(f.first.variant.isa);
    w.key("opt_level").value(f.first.variant.opt_level);
    w.key("outcome").value(outcome_name(f.first.outcome));
    w.key("detail").value(f.first.detail);
    w.key("fault_spec").value(f.first.fault_spec);
    if (f.reproducer.empty()) {
      w.key("reproducer").null();
    } else {
      w.key("reproducer").value(f.reproducer);
    }
    if (f.minimized_actors >= 0) {
      w.key("minimized_actors").value(f.minimized_actors);
    } else {
      w.key("minimized_actors").null();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

}  // namespace

CampaignResult run_campaign(const CampaignConfig& config) {
  CampaignResult result;
  std::map<std::string, std::size_t> by_signature;  // signature -> index

  for (int i = 0; i < config.seeds; ++i) {
    const std::uint64_t seed =
        config.seed_start + static_cast<std::uint64_t>(i);
    SeedResult sr = run_seed(seed, config.harness);
    ++result.seeds_run;
    result.variants_run += sr.variants_run;
    for (Finding& f : sr.findings) {
      auto [it, fresh] =
          by_signature.emplace(f.signature, result.findings.size());
      if (fresh) {
        report_progress(config, "seed " + std::to_string(seed) +
                                    ": NEW " + f.signature);
        CampaignFinding cf;
        cf.first = std::move(f);
        cf.count = 1;
        result.findings.push_back(std::move(cf));
      } else {
        ++result.findings[it->second].count;
      }
    }
    if ((i + 1) % 25 == 0) {
      report_progress(config,
                      std::to_string(i + 1) + "/" +
                          std::to_string(config.seeds) + " seeds, " +
                          std::to_string(result.findings.size()) +
                          " distinct findings");
    }
  }

  // Shrink and persist the first exemplar of each signature.  Sweep
  // findings (fault_spec set) are persisted unshrunk: reproducing them
  // requires re-arming the fault, which the signature already names.
  int minimized = 0;
  for (CampaignFinding& f : result.findings) {
    Model model = generate_model(f.first.seed, config.harness.generator);
    if (config.minimize && f.first.fault_spec.empty() &&
        minimized < config.max_minimized) {
      ++minimized;
      report_progress(config, "minimizing " + f.first.signature);
      MinimizeStats stats;
      model = minimize_model(
          model, signature_reproducer(config.harness, f.first), &stats);
      f.minimized_actors = model.actor_count();
      report_progress(config,
                      "  " + std::to_string(stats.candidates_tried) +
                          " candidates -> " +
                          std::to_string(f.minimized_actors) + " actors");
    }
    if (!config.corpus_dir.empty()) {
      const std::filesystem::path path =
          std::filesystem::path(config.corpus_dir) / reproducer_filename(f);
      write_file_atomic(path, model_to_xml(model));
      f.reproducer = path.string();
    }
  }

  result.report_json = render_report(config, result);
  if (!config.report_path.empty()) {
    write_file_atomic(config.report_path, result.report_json);
  }
  return result;
}

}  // namespace hcg::fuzz
