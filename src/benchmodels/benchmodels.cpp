#include "benchmodels/benchmodels.hpp"

#include <cmath>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace hcg::benchmodels {

namespace {

/// "v0,v1,..." literal list for a Constant actor.
std::string float_series(int n, double scale, double step) {
  std::string out;
  for (int i = 0; i < n; ++i) {
    if (i > 0) out += ",";
    out += std::to_string(scale * std::sin(step * i));
  }
  return out;
}

std::string int_series(int n, int modulus) {
  std::string out;
  for (int i = 0; i < n; ++i) {
    if (i > 0) out += ",";
    out += std::to_string((i * 7 + 3) % modulus - modulus / 2);
  }
  return out;
}

}  // namespace

Model fft_model(int n) {
  ModelBuilder b("fft_bench");
  PortRef x = b.inport("x", DataType::kComplex64, Shape{n});
  PortRef y = b.actor("fft", "FFT", {x});
  b.outport("y", y);
  return b.take();
}

Model dct_model(int n) {
  ModelBuilder b("dct_bench");
  PortRef x = b.inport("x", DataType::kFloat32, Shape{n});
  PortRef y = b.actor("dct", "DCT", {x});
  b.outport("y", y);
  return b.take();
}

Model conv_model(int n, int k) {
  ModelBuilder b("conv_bench");
  PortRef x = b.inport("x", DataType::kFloat32, Shape{n});
  PortRef taps =
      b.constant("taps", DataType::kFloat32, Shape{k}, float_series(k, 0.1, 0.37));
  PortRef y = b.actor("conv", "Conv", {x, taps});
  b.outport("y", y);
  return b.take();
}

Model highpass_model(int n) {
  ModelBuilder b("highpass_bench");
  PortRef x = b.inport("x", DataType::kFloat32, Shape{n});
  PortRef w = b.inport("w", DataType::kFloat32, Shape{n});
  PortRef taps =
      b.constant("taps", DataType::kFloat32, Shape{n}, float_series(n, 0.8, 0.11));
  PortRef zero = b.constant("zero", DataType::kFloat32, Shape{n}, "0");
  PortRef d = b.actor("d", "Sub", {x, w});
  PortRef m = b.actor("m", "Mul", {d, taps});
  PortRef s = b.actor("s", "Add", {m, w});
  PortRef y = b.actor("clip", "Max", {s, zero});
  b.outport("y", y);
  return b.take();
}

Model lowpass_model(int n) {
  ModelBuilder b("lowpass_bench");
  PortRef x = b.inport("x", DataType::kFloat32, Shape{n});
  PortRef w = b.inport("w", DataType::kFloat32, Shape{n});
  PortRef a = b.actor("a", "Add", {x, w});
  PortRef g = b.actor("g", "Gain", {a}, {{"gain", "0.5"}});
  PortRef d = b.actor("d", "Sub", {x, g});
  PortRef y = b.actor("mag", "Abs", {d});
  b.outport("y", y);
  return b.take();
}

Model fir_model(int n) {
  ModelBuilder b("fir_bench");
  PortRef x = b.inport("x", DataType::kInt32, Shape{n});
  PortRef acc = b.inport("acc", DataType::kInt32, Shape{n});
  PortRef taps = b.constant("taps", DataType::kInt32, Shape{n}, int_series(n, 19));
  PortRef m = b.actor("m", "Mul", {x, taps});
  PortRef y = b.actor("y_add", "Add", {m, acc});
  b.outport("y", y);
  return b.take();
}

Model paper_fig4_model(int n) {
  ModelBuilder b("fig4_sample");
  PortRef a = b.inport("a", DataType::kInt32, Shape{n});
  PortRef bb = b.inport("b", DataType::kInt32, Shape{n});
  PortRef c = b.inport("c", DataType::kInt32, Shape{n});
  PortRef d = b.inport("d", DataType::kInt32, Shape{n});
  PortRef sub = b.actor("Sub", "Sub", {bb, c});
  PortRef add1 = b.actor("Add1", "Add", {a, sub});
  PortRef shr = b.actor("Shr", "Shr", {add1}, {{"amount", "1"}});
  PortRef mul = b.actor("Mul", "Mul", {sub, d});
  PortRef add2 = b.actor("Add2", "Add", {sub, mul});
  b.outport("Shr_out", shr);
  b.outport("Add_out", add2);
  return b.take();
}

Model batch_chain_model(int actors, int n) {
  require(actors >= 1, "batch_chain_model: need at least one actor");
  ModelBuilder b("chain" + std::to_string(actors));
  PortRef x = b.inport("x", DataType::kFloat32, Shape{n});
  PortRef w = b.inport("w", DataType::kFloat32, Shape{n});
  PortRef prev = x;
  for (int i = 0; i < actors; ++i) {
    const char* type = (i % 2 == 0) ? "Add" : "Mul";
    prev = b.actor("op" + std::to_string(i), type, {prev, w});
  }
  b.outport("y", prev);
  return b.take();
}

Model intensive_farm_model(int actors, bool distinct_keys) {
  require(actors >= 1, "intensive_farm_model: need at least one actor");
  ModelBuilder b("ifarm" + std::to_string(actors) +
                 (distinct_keys ? "" : "_dup"));
  for (int i = 0; i < actors; ++i) {
    const int kind = i % 4;
    // Variant index: unique per actor of a kind when keys must be distinct,
    // else cycling through four sizes so keys repeat.
    const int v = distinct_keys ? i / 4 : (i / 4) % 4;
    const std::string tag = std::to_string(i);
    switch (kind) {
      case 0: {  // FFT over c64[4(v+1)]: multiples of four, mostly non-pow2
        PortRef x = b.inport("x" + tag, DataType::kComplex64, Shape{4 * (v + 1)});
        b.outport("y" + tag, b.actor("fft" + tag, "FFT", {x}));
        break;
      }
      case 1: {  // DCT over f32[8(v+1)], scaled on the way out
        PortRef x = b.inport("x" + tag, DataType::kFloat32, Shape{8 * (v + 1)});
        PortRef dct = b.actor("dct" + tag, "DCT", {x});
        b.outport("y" + tag,
                  b.actor("g" + tag, "Gain", {dct}, {{"gain", "0.5"}}));
        break;
      }
      case 2: {  // Conv f32[256] * taps[4(v+1)], scaled on the way out
        PortRef x = b.inport("x" + tag, DataType::kFloat32, Shape{256});
        PortRef taps = b.constant("taps" + tag, DataType::kFloat32,
                                  Shape{4 * (v + 1)},
                                  float_series(4 * (v + 1), 0.1, 0.37));
        PortRef conv = b.actor("conv" + tag, "Conv", {x, taps});
        b.outport("y" + tag,
                  b.actor("g" + tag, "Gain", {conv}, {{"gain", "0.5"}}));
        break;
      }
      default: {  // MatMul f32[(v+2) x (v+2)], scaled on the way out
        const int n = v + 2;
        PortRef a = b.inport("a" + tag, DataType::kFloat32, Shape{n, n});
        PortRef c = b.inport("c" + tag, DataType::kFloat32, Shape{n, n});
        PortRef mm = b.actor("mm" + tag, "MatMul", {a, c});
        b.outport("y" + tag,
                  b.actor("g" + tag, "Gain", {mm}, {{"gain", "0.5"}}));
        break;
      }
    }
  }
  return b.take();
}

Model mixed_pipeline_model(int n) {
  ModelBuilder b("mixed_pipeline");
  PortRef a = b.inport("a", DataType::kInt8, Shape{n});
  PortRef bb = b.inport("b", DataType::kInt8, Shape{n});
  PortRef s = b.actor("s", "Add", {a, bb});
  PortRef m = b.actor("m", "Mul", {s, bb});
  PortRef y = b.actor("y_sub", "Sub", {m, a});
  b.outport("y", y);
  return b.take();
}

Model rangepipe_model(int n, bool declared_ranges) {
  ModelBuilder b(declared_ranges ? "rangepipe" : "rangepipe_wide");
  PortRef a = b.inport("a", DataType::kInt32, Shape{n});
  PortRef bb = b.inport("b", DataType::kInt32, Shape{n});
  if (declared_ranges) {
    b.model().actor(a.actor).set_param("range_min", "-100");
    b.model().actor(a.actor).set_param("range_max", "100");
    b.model().actor(bb.actor).set_param("range_min", "-50");
    b.model().actor(bb.actor).set_param("range_max", "50");
  }
  // Interval bounds with declared ranges, stage by stage.  The Shr stages
  // halve the interval whenever the Add/Sub/Gain growth approaches the i16
  // ceiling, so a 20-actor region stays provably inside i16 while the two
  // boundary cast passes (in and out) stay amortized over the whole chain:
  //   d [-150,150]    g [-450,450]    s [-500,500]    t [-650,650]
  //   u [-1100,1100]  v [-2200,2200]  w [-2700,2700]  x [-3350,3350]
  //   h [-1675,1675]  p [-2775,2775]  q [-4450,4450]  r [-8900,8900]
  //   e [-2225,2225]  f [-5000,5000]  m [-7225,7225]  o [-8900,8900]
  //   z [-4450,4450]  z2 [-6675,6675] z3 [-11125,11125] clip [-11125,400]
  // — every one inside i16, none inside i8 (d already exceeds ±127).
  PortRef cap = b.constant("cap", DataType::kInt32, Shape{n}, "400");
  PortRef d = b.actor("d", "Sub", {a, bb});
  PortRef g = b.actor("g", "Gain", {d}, {{"gain", "3"}});
  PortRef s = b.actor("s", "Add", {g, bb});
  PortRef t = b.actor("t", "Sub", {s, d});
  PortRef u = b.actor("u", "Add", {t, g});
  PortRef v = b.actor("v", "Gain", {u}, {{"gain", "2"}});
  PortRef w = b.actor("w", "Sub", {v, s});
  PortRef x = b.actor("x", "Add", {w, t});
  PortRef h = b.actor("h", "Shr", {x}, {{"amount", "1"}});
  PortRef p = b.actor("p", "Add", {h, u});
  PortRef q = b.actor("q", "Sub", {p, h});
  PortRef r = b.actor("r", "Gain", {q}, {{"gain", "2"}});
  PortRef e = b.actor("e", "Shr", {r}, {{"amount", "2"}});
  PortRef f = b.actor("f", "Add", {e, p});
  PortRef m = b.actor("m", "Sub", {f, e});
  PortRef o = b.actor("o", "Add", {m, h});
  PortRef z = b.actor("z", "Shr", {o}, {{"amount", "1"}});
  PortRef z2 = b.actor("z2", "Sub", {z, e});
  PortRef z3 = b.actor("z3", "Add", {z2, z});
  PortRef clip = b.actor("clip", "Min", {z3, cap});
  b.outport("y", clip);
  return b.take();
}

Model matmul_pipeline_model(int n) {
  ModelBuilder b("matmul_pipeline");
  PortRef a = b.inport("a", DataType::kFloat32, Shape{n, n});
  PortRef c = b.inport("c", DataType::kFloat32, Shape{n, n});
  PortRef mm = b.actor("mm", "MatMul", {a, c});
  b.outport("y", mm);
  return b.take();
}

std::vector<Model> paper_models() {
  std::vector<Model> models;
  models.push_back(fft_model());
  models.push_back(dct_model());
  models.push_back(conv_model());
  models.push_back(highpass_model());
  models.push_back(lowpass_model());
  models.push_back(fir_model());
  return models;
}

std::vector<Tensor> workload(const Model& resolved_model, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> inputs;
  for (ActorId id : resolved_model.inports()) {
    const Actor& port = resolved_model.actor(id);
    require(port.is_resolved(), "workload: model must be resolved");
    const PortSpec& spec = port.output(0);
    Tensor t(spec.type, spec.shape);
    const DataType comp = component_type(spec.type);
    const int components =
        is_complex(spec.type) ? t.elements() * 2 : t.elements();
    // Inports may declare a value-range contract (range_min/range_max, the
    // interval analysis' input facts); generated workloads must respect it,
    // or else inputs would violate what range-driven codegen relied on.
    const double lo = port.double_param_or("range_min", -(1 << 20));
    const double hi = port.double_param_or("range_max", 1 << 20);
    for (int i = 0; i < components; ++i) {
      if (comp == DataType::kFloat32) {
        const double flo = port.double_param_or("range_min", -1.0);
        const double fhi = port.double_param_or("range_max", 1.0);
        t.as<float>()[i] = static_cast<float>(rng.uniform_real(flo, fhi));
      } else if (comp == DataType::kFloat64) {
        const double flo = port.double_param_or("range_min", -1.0);
        const double fhi = port.double_param_or("range_max", 1.0);
        t.as<double>()[i] = rng.uniform_real(flo, fhi);
      } else {
        const auto ilo = static_cast<std::int64_t>(std::ceil(lo));
        const auto ihi = static_cast<std::int64_t>(std::floor(hi));
        t.set_double(i, static_cast<double>(
                            rng.uniform_int(ilo, std::max(ilo, ihi))));
      }
    }
    inputs.push_back(std::move(t));
  }
  return inputs;
}

}  // namespace hcg::benchmodels
