// The benchmark models of the paper's evaluation (§4) plus the worked
// example of Figure 4, parameterized by size so benches can sweep scales.
//
//   FFT / DCT / Conv      — intensive computing actor models
//   HighPass / LowPass / FIR — batch computing actor models
//
// All are built with the public ModelBuilder API, so they double as API
// examples; sizes default to the paper's (FFT-1024, DCT-256, Conv-1024x64,
// filters over 1024-sample frames, FIR on i32*1024).
#pragma once

#include <cstdint>
#include <vector>

#include "model/builder.hpp"
#include "model/model.hpp"
#include "model/tensor.hpp"

namespace hcg::benchmodels {

/// x:c64[n] -> FFT -> y.
Model fft_model(int n = 1024);

/// x:f32[n] -> DCT -> y.
Model dct_model(int n = 256);

/// x:f32[n] (+ constant taps f32[k]) -> Conv -> y:f32[n+k-1].
Model conv_model(int n = 1024, int k = 64);

/// High-pass filter frame: d = x - w; m = d * taps; s = m + w; y = max(s, 0).
/// Four connected f32 batch actors; HCG fuses m+w into a multiply-add.
Model highpass_model(int n = 1024);

/// Low-pass filter frame: a = x + w; g = a * 0.5 (Gain); d = x - g; y = |d|.
Model lowpass_model(int n = 1024);

/// FIR frame (paper §4.1): m = Mul(x, taps) then y = Add(m, acc), i32*n.
/// HCG maps the pair onto a single vector multiply-accumulate.
Model fir_model(int n = 1024);

/// The sample model of Figure 4: inputs a,b,c,d (i32[n]);
///   Sub = b - c;  Shr_out = (a + Sub) >> 1;  Add_out = Sub + Sub * d.
/// Expected NEON mapping (Listing 1): vsubq_s32, vhaddq_s32, vmlaq_s32.
Model paper_fig4_model(int n = 4);

/// A chain of `actors` alternating batch Add/Mul actors over f32[n] — the
/// §4.3 threshold ablation workload.
Model batch_chain_model(int actors, int n = 1024);

/// A wide farm of `actors` independent intensive actors (FFT / DCT / Conv /
/// MatMul round-robin), each with its own Inport(s) and Outport — the
/// parallel-synthesis workload: every actor triggers an Algorithm 1
/// pre-calculation sweep.  With `distinct_keys` every actor gets a unique
/// (type, dtype, shapes) selection key; otherwise the sizes cycle through
/// four variants per kind, so 64 actors share 16 keys and the single-flight
/// dedup layer collapses the rest.  Sizes stay small enough that one sweep
/// is milliseconds, not seconds.
Model intensive_farm_model(int actors, bool distinct_keys = true);

/// A pipeline with a deliberate scale boundary (the -O2 cross-scale fusion
/// workload): s = a + b; m = s * b; y = m - a over i8[n].  The NEON table
/// has no i8 multiply, so `m` is translated conventionally — a scalar loop
/// splitting two vector regions (HCG407).  At -O2 the scalar loop
/// strip-mines into the vector loop's shape and the whole pipeline fuses.
Model mixed_pipeline_model(int n = 1024);

/// A single MatMul over f32[n x n] (default well above the n<=4 unrolled
/// forms): Algorithm 1 measures the generic row-column kernel against the
/// two cache-blocked tile widths, so the selected tile is measured-cost
/// data from the target.
Model matmul_pipeline_model(int n = 96);

/// The range-driven lane-narrowing workload: a twenty-actor i32 pipeline
/// whose declared Inport ranges (a in ±100, b in ±50) prove every
/// intermediate fits i16 (interleaved Shr stages cap the growth; the
/// widest, z3, stays within ±11125), so at -O1 the whole region re-plans
/// at i16 — 8 NEON lanes instead of 4, with the two boundary cast passes
/// amortized over the full chain.  With `declared_ranges` false the same
/// graph carries no range facts and must stay at i32, which is the bench
/// comparator for the narrowing win.
Model rangepipe_model(int n = 1024, bool declared_ranges = true);

/// The six evaluation models at paper sizes, in Table 2 order.
std::vector<Model> paper_models();

/// Deterministic random inputs for a *resolved* model's Inports.  Integer
/// signals stay within ±2^20 so vector and scalar halving-add semantics
/// agree; float signals are in [-1, 1).
std::vector<Tensor> workload(const Model& resolved_model,
                             std::uint64_t seed = 42);

}  // namespace hcg::benchmodels
