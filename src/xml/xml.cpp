#include "xml/xml.hpp"

#include "support/error.hpp"
#include "support/fileio.hpp"
#include "support/strings.hpp"

namespace hcg::xml {

// ---------------------------------------------------------------------------
// Element
// ---------------------------------------------------------------------------

bool Element::has_attribute(std::string_view key) const {
  for (const auto& [k, v] : attributes_) {
    if (k == key) return true;
  }
  return false;
}

const std::string& Element::attribute(std::string_view key) const {
  for (const auto& [k, v] : attributes_) {
    if (k == key) return v;
  }
  throw ParseError("element <" + name_ + "> missing attribute '" +
                   std::string(key) + "'");
}

std::string Element::attribute_or(std::string_view key,
                                  std::string_view fallback) const {
  for (const auto& [k, v] : attributes_) {
    if (k == key) return v;
  }
  return std::string(fallback);
}

long long Element::int_attribute(std::string_view key) const {
  return parse_int(attribute(key));
}

long long Element::int_attribute_or(std::string_view key,
                                    long long fallback) const {
  if (!has_attribute(key)) return fallback;
  return parse_int(attribute(key));
}

void Element::set_attribute(std::string_view key, std::string_view value) {
  for (auto& [k, v] : attributes_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  attributes_.emplace_back(std::string(key), std::string(value));
}

Element& Element::add_child(std::string name) {
  children_.push_back(std::make_unique<Element>(std::move(name)));
  return *children_.back();
}

void Element::adopt_child(std::unique_ptr<Element> child) {
  children_.push_back(std::move(child));
}

const Element* Element::find_child(std::string_view name) const {
  for (const auto& c : children_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

const Element& Element::child(std::string_view name) const {
  const Element* c = find_child(name);
  if (!c) {
    throw ParseError("element <" + name_ + "> missing child <" +
                     std::string(name) + ">");
  }
  return *c;
}

std::vector<const Element*> Element::find_children(std::string_view name) const {
  std::vector<const Element*> out;
  for (const auto& c : children_) {
    if (c->name() == name) out.push_back(c.get());
  }
  return out;
}

std::string Element::to_string(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out = pad + "<" + name_;
  for (const auto& [k, v] : attributes_) {
    out += " " + k + "=\"" + escape(v) + "\"";
  }
  if (children_.empty() && text_.empty()) {
    out += "/>\n";
    return out;
  }
  out += ">";
  if (!text_.empty()) out += escape(text_);
  if (!children_.empty()) {
    out += "\n";
    for (const auto& c : children_) out += c->to_string(indent + 1);
    out += pad;
  }
  out += "</" + name_ + ">\n";
  return out;
}

std::string Document::to_string() const {
  return "<?xml version=\"1.0\"?>\n" + root_->to_string();
}

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Document parse_document() {
    skip_prolog();
    auto root = parse_element();
    skip_misc();
    if (!at_end()) fail("trailing content after root element");
    return Document(std::move(root));
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError("XML: " + message, line_, column_);
  }

  bool at_end() const { return pos_ >= text_.size(); }

  char peek() const { return at_end() ? '\0' : text_[pos_]; }

  char advance() {
    if (at_end()) fail("unexpected end of input");
    char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  bool consume(std::string_view token) {
    if (text_.substr(pos_).substr(0, token.size()) != token) return false;
    for (size_t i = 0; i < token.size(); ++i) advance();
    return true;
  }

  void expect(std::string_view token) {
    if (!consume(token)) {
      fail("expected '" + std::string(token) + "'");
    }
  }

  void skip_whitespace() {
    while (!at_end()) {
      char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        advance();
      } else {
        break;
      }
    }
  }

  void skip_comment() {
    // Assumes "<!--" already consumed.
    while (!consume("-->")) {
      if (at_end()) fail("unterminated comment");
      advance();
    }
  }

  /// Skips the XML declaration, processing instructions and comments that
  /// may appear before / after the root element.
  void skip_prolog() {
    while (true) {
      skip_whitespace();
      if (consume("<?")) {
        while (!consume("?>")) {
          if (at_end()) fail("unterminated processing instruction");
          advance();
        }
      } else if (consume("<!--")) {
        skip_comment();
      } else if (consume("<!DOCTYPE")) {
        fail("DOCTYPE declarations are not supported");
      } else {
        return;
      }
    }
  }

  void skip_misc() {
    while (true) {
      skip_whitespace();
      if (consume("<!--")) {
        skip_comment();
      } else {
        return;
      }
    }
  }

  static bool is_name_start(char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  }
  static bool is_name_char(char c) {
    return is_name_start(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
  }

  std::string parse_name() {
    if (!is_name_start(peek())) fail("expected a name");
    std::string name;
    while (!at_end() && is_name_char(peek())) name += advance();
    return name;
  }

  std::string decode_entity() {
    // Assumes '&' already consumed.
    std::string entity;
    while (peek() != ';') {
      if (at_end() || entity.size() > 8) fail("malformed character entity");
      entity += advance();
    }
    advance();  // ';'
    if (entity == "lt") return "<";
    if (entity == "gt") return ">";
    if (entity == "amp") return "&";
    if (entity == "quot") return "\"";
    if (entity == "apos") return "'";
    if (!entity.empty() && entity[0] == '#') {
      long long code = 0;
      try {
        code = (entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X'))
                   ? std::stoll(entity.substr(2), nullptr, 16)
                   : parse_int(entity.substr(1));
      } catch (const std::exception&) {
        fail("malformed numeric entity '&" + entity + ";'");
      }
      if (code <= 0 || code > 127) {
        fail("numeric entity out of ASCII range: '&" + entity + ";'");
      }
      return std::string(1, static_cast<char>(code));
    }
    fail("unknown entity '&" + entity + ";'");
  }

  std::string parse_attribute_value() {
    char quote = advance();
    if (quote != '"' && quote != '\'') fail("attribute value must be quoted");
    std::string value;
    while (peek() != quote) {
      if (at_end()) fail("unterminated attribute value");
      char c = advance();
      if (c == '&') {
        value += decode_entity();
      } else if (c == '<') {
        fail("'<' is not allowed in attribute values");
      } else {
        value += c;
      }
    }
    advance();  // closing quote
    return value;
  }

  std::unique_ptr<Element> parse_element() {
    expect("<");
    auto element = std::make_unique<Element>(parse_name());

    // Attributes.
    while (true) {
      skip_whitespace();
      if (consume("/>")) return element;
      if (consume(">")) break;
      std::string key = parse_name();
      skip_whitespace();
      expect("=");
      skip_whitespace();
      if (element->has_attribute(key)) {
        fail("duplicate attribute '" + key + "'");
      }
      element->set_attribute(key, parse_attribute_value());
    }

    // Content.
    std::string text;
    while (true) {
      if (at_end()) fail("unterminated element <" + element->name() + ">");
      if (consume("<!--")) {
        skip_comment();
      } else if (consume("<![CDATA[")) {
        while (!consume("]]>")) {
          if (at_end()) fail("unterminated CDATA section");
          text += advance();
        }
      } else if (consume("</")) {
        std::string closing = parse_name();
        if (closing != element->name()) {
          fail("mismatched closing tag </" + closing + "> for <" +
               element->name() + ">");
        }
        skip_whitespace();
        expect(">");
        element->set_text(trim(text));
        return element;
      } else if (peek() == '<') {
        element->adopt_child(parse_element());
      } else if (peek() == '&') {
        advance();
        text += decode_entity();
      } else {
        text += advance();
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

Document parse(std::string_view text) { return Parser(text).parse_document(); }

Document parse_file(const std::string& path) { return parse(read_file(path)); }

}  // namespace hcg::xml
