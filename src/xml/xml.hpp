// Minimal DOM XML parser and writer.
//
// The paper's implementation parses Simulink's zipped-XML .slx files with
// TinyXML; this module is our self-contained substitute.  It supports the
// subset of XML needed for model files and .isa tables:
//   * elements with attributes and text content
//   * character entities (&lt; &gt; &amp; &quot; &apos; and &#NNN;)
//   * comments and XML declarations / processing instructions (skipped)
//   * CDATA sections
// It deliberately does not support DTDs or namespaces.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace hcg::xml {

/// One element of the document tree.  Children are owned by the parent.
class Element {
 public:
  explicit Element(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // ---- attributes -------------------------------------------------------
  bool has_attribute(std::string_view key) const;
  /// Returns the attribute value; throws hcg::ParseError if absent.
  const std::string& attribute(std::string_view key) const;
  /// Returns the attribute value or `fallback` if absent.
  std::string attribute_or(std::string_view key, std::string_view fallback) const;
  /// Attribute parsed as integer; throws on absence or garbage.
  long long int_attribute(std::string_view key) const;
  long long int_attribute_or(std::string_view key, long long fallback) const;
  void set_attribute(std::string_view key, std::string_view value);
  const std::vector<std::pair<std::string, std::string>>& attributes() const {
    return attributes_;
  }

  // ---- text content ------------------------------------------------------
  /// Concatenated character data directly inside this element (entity-decoded).
  const std::string& text() const { return text_; }
  void set_text(std::string_view text) { text_ = text; }

  // ---- children ----------------------------------------------------------
  const std::vector<std::unique_ptr<Element>>& children() const {
    return children_;
  }
  /// Adds a child and returns a reference to it.
  Element& add_child(std::string name);
  /// Takes ownership of an already-built element.
  void adopt_child(std::unique_ptr<Element> child);
  /// First child with the given element name, or nullptr.
  const Element* find_child(std::string_view name) const;
  /// First child with the given name; throws hcg::ParseError if absent.
  const Element& child(std::string_view name) const;
  /// All children with the given element name.
  std::vector<const Element*> find_children(std::string_view name) const;

  /// Serializes this element (and subtree) as indented XML.
  std::string to_string(int indent = 0) const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> attributes_;
  std::string text_;
  std::vector<std::unique_ptr<Element>> children_;
};

/// A parsed document: owns the root element.
class Document {
 public:
  explicit Document(std::unique_ptr<Element> root) : root_(std::move(root)) {}

  const Element& root() const { return *root_; }
  Element& root() { return *root_; }

  std::string to_string() const;

 private:
  std::unique_ptr<Element> root_;
};

/// Parses an XML document from text; throws hcg::ParseError with line/column
/// information on malformed input.
Document parse(std::string_view text);

/// Parses the file at `path`.
Document parse_file(const std::string& path);

/// Escapes the five XML special characters in `text`.
std::string escape(std::string_view text);

}  // namespace hcg::xml
