// Host toolchain harness: writes generated C to disk, compiles it with the
// system C compiler into a shared object, loads it with dlopen, and exposes
// the model's init/step entry points.
//
// This is what makes the benchmark numbers real: the code every generator
// produces is actually compiled and executed, not simulated.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "codegen/generator.hpp"
#include "model/tensor.hpp"
#include "support/fileio.hpp"

namespace hcg::toolchain {

struct CompileOptions {
  std::string cc = "gcc";
  /// Optimization configuration — the "compiler" axis of Figure 5.
  std::string opt_flags = "-O2";
  /// Extra flags beyond what the GeneratedCode requests.
  std::vector<std::string> extra_flags;
  /// Keep the temp directory with source/object for inspection.
  bool keep_artifacts = false;
  /// Wall-clock limit for one compiler invocation (`hcgc --cc-timeout`);
  /// <= 0 disables.  A hung cc is killed — whole process group — and
  /// reported as a ToolchainError, not waited on forever.
  double timeout_seconds = 300.0;
  /// Extra attempts when the compiler *process* cannot be spawned
  /// (`hcgc --cc-retries`); compile errors are never retried.
  int spawn_retries = 2;
};

/// True when a usable C compiler is present (tests skip otherwise).  A
/// compiler that crashes or hangs on --version counts as unavailable; the
/// decoded status is logged rather than swallowed.
bool compiler_available(const std::string& cc = "gcc");

class CompiledModel {
 public:
  /// Compiles and loads; throws hcg::ToolchainError with the compiler's
  /// stderr on failure.
  CompiledModel(const codegen::GeneratedCode& code,
                const CompileOptions& options = {});
  ~CompiledModel();

  CompiledModel(const CompiledModel&) = delete;
  CompiledModel& operator=(const CompiledModel&) = delete;

  /// Calls <model>_init.
  void init();

  /// Calls <model>_step with raw buffer pointers (one per Inport/Outport in
  /// declaration order).
  void step(const std::vector<const void*>& inputs,
            const std::vector<void*>& outputs);

  /// Tensor convenience wrapper: allocates outputs from the resolved model's
  /// Outport specs.
  std::vector<Tensor> step_tensors(const Model& resolved_model,
                                   const std::vector<Tensor>& inputs);

  double compile_seconds() const { return compile_seconds_; }
  const std::filesystem::path& source_path() const { return source_path_; }
  const std::string& compile_command() const { return command_; }

 private:
  TempDir dir_;
  std::filesystem::path source_path_;
  std::string command_;
  double compile_seconds_ = 0.0;
  void* handle_ = nullptr;
  void (*init_)() = nullptr;
  void (*step_)(const void* const*, void* const*) = nullptr;
};

}  // namespace hcg::toolchain
