// Runtime profiling of generated code (`hcgc profile`; docs/PROFILING.md).
//
// Takes a --profile-gen instrumented GeneratedCode, writes it plus a small
// generated driver to a temp dir, compiles both with -DHCG_PROF into a
// standalone harness executable, runs it for N repetitions of the step
// function through the hardened subprocess runner, and ingests the
// hcg-profile-v1 JSON the harness dumps.  Every failure mode — compiler
// missing, compile error, harness crash/timeout, unparsable dump — degrades
// to `ok == false` with a reason instead of throwing, so callers can fall
// back to a profile-less report (the HCG502 path).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "codegen/generator.hpp"
#include "model/model.hpp"

namespace hcg::toolchain {

struct ProfileRunOptions {
  std::string cc = "gcc";
  std::string opt_flags = "-O2";
  /// step() invocations the harness performs (after one warm-up call).
  int reps = 200;
  /// Wall-clock limit for the compile and for the harness run, each.
  double timeout_seconds = 300.0;
  int spawn_retries = 2;
  /// Keep the temp directory with harness source and dump for inspection.
  bool keep_artifacts = false;
};

/// One site's measured totals, straight from the hcg-profile-v1 dump.
struct ProfileSiteSample {
  std::string id;
  std::string kind;
  std::string label;
  std::uint64_t ns = 0;
  std::uint64_t calls = 0;
  std::uint64_t iters = 0;
};

struct ProfileResult {
  bool ok = false;
  std::string error;  // degrade reason when !ok
  std::string clock;  // "monotonic_ns" | "rdtsc"
  int reps = 0;
  std::vector<ProfileSiteSample> sites;
};

/// Compiles and runs the profiling harness.  `code` must have been emitted
/// with EmitConfig::profile_gen (checked: degrades otherwise), and
/// `resolved_model` must be the resolved model it was generated from (port
/// shapes size the harness I/O buffers).
ProfileResult run_profile(const codegen::GeneratedCode& code,
                          const Model& resolved_model,
                          const ProfileRunOptions& options = {});

}  // namespace hcg::toolchain
