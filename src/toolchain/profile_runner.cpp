#include "toolchain/profile_runner.hpp"

#include <filesystem>

#include "model/datatype.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/fileio.hpp"
#include "support/logging.hpp"
#include "support/strings.hpp"
#include "support/subprocess.hpp"

namespace hcg::toolchain {

namespace {

/// Scalar components (complex elements count twice) of one port buffer.
long long component_count(const PortSpec& spec) {
  return static_cast<long long>(spec.shape.elements()) *
         (is_complex(spec.type) ? 2 : 1);
}

/// The element fill expression for deterministic, denormal-free inputs.
std::string fill_expr(const PortSpec& spec) {
  const DataType comp = component_type(spec.type);
  const std::string ctype(c_name(comp));
  if (is_float(comp)) {
    return "(" + ctype + ")((k % 31) - 15) * (" + ctype + ")0.03125";
  }
  if (is_unsigned_int(comp)) {
    return "(" + ctype + ")(k % 31)";
  }
  return "(" + ctype + ")((k % 31) - 15)";
}

/// The standalone driver: static I/O buffers sized from the model's ports,
/// deterministic input fill, init + warm-up + N timed steps, then
/// hcg_prof_dump().  Kept plain C so it compiles with the same invocation
/// as the generated unit.
std::string harness_source(const codegen::GeneratedCode& code,
                           const Model& model) {
  const std::vector<ActorId> ins = model.inports();
  const std::vector<ActorId> outs = model.outports();

  std::string src;
  src += "/* hcgc profile harness for model '" + code.model_name + "' */\n";
  src += "#include <stdint.h>\n";
  src += "#include <stdio.h>\n";
  src += "#include <stdlib.h>\n\n";
  src += "void " + code.init_symbol + "(void);\n";
  src += "void " + code.step_symbol +
         "(const void* const* inputs, void* const* outputs);\n";
  src += "int hcg_prof_dump(const char* path);\n\n";

  for (std::size_t k = 0; k < ins.size(); ++k) {
    const PortSpec& spec = model.actor(ins[k]).output(0);
    src += "static " + std::string(c_name(component_type(spec.type))) +
           " hcg_in" + std::to_string(k) + "[" +
           std::to_string(component_count(spec)) + "];\n";
  }
  for (std::size_t k = 0; k < outs.size(); ++k) {
    const PortSpec& spec = model.actor(outs[k]).input(0);
    src += "static " + std::string(c_name(component_type(spec.type))) +
           " hcg_out" + std::to_string(k) + "[" +
           std::to_string(component_count(spec)) + "];\n";
  }

  src += "\nint main(int argc, char** argv) {\n";
  src += "  long reps = argc > 1 ? strtol(argv[1], 0, 10) : 200;\n";
  src += "  const char* dump_path = argc > 2 ? argv[2] : \"profile.json\";\n";
  src += "  const void* inputs[" + std::to_string(ins.empty() ? 1 : ins.size()) +
         "];\n";
  src += "  void* outputs[" + std::to_string(outs.empty() ? 1 : outs.size()) +
         "];\n";
  src += "  long k;\n  long r;\n";
  for (std::size_t k = 0; k < ins.size(); ++k) {
    const PortSpec& spec = model.actor(ins[k]).output(0);
    const std::string name = "hcg_in" + std::to_string(k);
    src += "  for (k = 0; k < " + std::to_string(component_count(spec)) +
           "; ++k) " + name + "[k] = " + fill_expr(spec) + ";\n";
    src += "  inputs[" + std::to_string(k) + "] = " + name + ";\n";
  }
  if (ins.empty()) src += "  inputs[0] = 0;\n";
  for (std::size_t k = 0; k < outs.size(); ++k) {
    src += "  outputs[" + std::to_string(k) + "] = hcg_out" +
           std::to_string(k) + ";\n";
  }
  if (outs.empty()) src += "  outputs[0] = 0;\n";
  src += "  " + code.init_symbol + "();\n";
  src += "  " + code.step_symbol + "(inputs, outputs); /* warm-up */\n";
  src += "  for (r = 0; r < reps; ++r) " + code.step_symbol +
         "(inputs, outputs);\n";
  src += "  if (hcg_prof_dump(dump_path) != 0) return 2;\n";
  src += "  return 0;\n";
  src += "}\n";
  return src;
}

ProfileResult degrade(ProfileResult result, std::string reason) {
  static obs::Counter& failures =
      obs::Registry::instance().counter("profile.failures");
  failures.add();
  result.ok = false;
  result.error = std::move(reason);
  result.sites.clear();
  result.reps = 0;
  log_warn("profile") << "profiling degraded: " << result.error;
  return result;
}

std::uint64_t member_u64(const obs::JsonValue& object, std::string_view name) {
  const obs::JsonValue* value = object.find(name);
  if (value == nullptr || value->kind != obs::JsonValue::Kind::kNumber ||
      value->number < 0) {
    return 0;
  }
  return static_cast<std::uint64_t>(value->number);
}

std::string member_str(const obs::JsonValue& object, std::string_view name) {
  const obs::JsonValue* value = object.find(name);
  return value != nullptr ? value->string : std::string();
}

}  // namespace

ProfileResult run_profile(const codegen::GeneratedCode& code,
                          const Model& resolved_model,
                          const ProfileRunOptions& options) {
  HCG_TRACE_SCOPE("profile.run");
  static obs::Counter& runs = obs::Registry::instance().counter("profile.runs");
  runs.add();

  ProfileResult result;
  if (code.profile_sites.empty()) {
    return degrade(std::move(result),
                   "generated code carries no profiling sites "
                   "(emitted without --profile-gen?)");
  }

  try {
    TempDir dir("hcg-prof");
    if (options.keep_artifacts) dir.keep();
    const std::filesystem::path unit_path =
        dir.path() / (code.model_name + "_" + code.tool_name + ".c");
    const std::filesystem::path main_path = dir.path() / "harness_main.c";
    const std::filesystem::path exe_path = dir.path() / "harness";
    const std::filesystem::path dump_path = dir.path() / "profile.json";
    write_file(unit_path, code.source);
    write_file(main_path, harness_source(code, resolved_model));

    std::vector<std::string> argv = {options.cc};
    for (const std::string& flag : split_whitespace(options.opt_flags)) {
      argv.push_back(flag);
    }
    argv.push_back("-fno-math-errno");
    argv.push_back("-fwrapv");
    argv.push_back("-DHCG_PROF");
    for (const std::string& flag : split_whitespace(code.compile_flags)) {
      argv.push_back(flag);
    }
    if (code.needs_neon_sim) {
      argv.push_back("-I");
      argv.push_back(HCG_DATA_DIR);
    }
    argv.push_back(unit_path.string());
    argv.push_back(main_path.string());
    argv.push_back("-o");
    argv.push_back(exe_path.string());
    argv.push_back("-lm");

    SubprocessOptions sub;
    sub.timeout_seconds = options.timeout_seconds;
    sub.spawn_retries = options.spawn_retries;
    SubprocessResult compile;
    {
      HCG_TRACE_SCOPE("toolchain.spawn");
      compile = run_subprocess(argv, sub);
    }
    if (!compile.ok()) {
      if (options.keep_artifacts) dir.keep();
      return degrade(std::move(result),
                     "harness compile " + compile.describe());
    }

    const int reps = options.reps > 0 ? options.reps : 1;
    SubprocessResult run;
    {
      HCG_TRACE_SCOPE("toolchain.spawn");
      run = run_subprocess({exe_path.string(), std::to_string(reps),
                            dump_path.string()},
                           sub);
    }
    if (!run.ok()) {
      if (options.keep_artifacts) dir.keep();
      return degrade(std::move(result), "harness run " + run.describe());
    }

    const obs::JsonValue dump = obs::json_parse(read_file(dump_path));
    if (member_str(dump, "schema") != "hcg-profile-v1") {
      return degrade(std::move(result),
                     "profile dump is not an hcg-profile-v1 document");
    }
    result.clock = member_str(dump, "clock");
    result.reps = reps;
    const obs::JsonValue* sites = dump.find("sites");
    if (sites == nullptr || !sites->is_array()) {
      return degrade(std::move(result), "profile dump has no sites array");
    }
    for (const obs::JsonValue& entry : sites->array) {
      ProfileSiteSample sample;
      sample.id = member_str(entry, "id");
      sample.kind = member_str(entry, "kind");
      sample.label = member_str(entry, "label");
      sample.ns = member_u64(entry, "ns");
      sample.calls = member_u64(entry, "calls");
      sample.iters = member_u64(entry, "iters");
      result.sites.push_back(std::move(sample));
    }
    result.ok = true;
    log_debug("profile") << "profiled " << code.model_name << ": "
                         << result.sites.size() << " sites, " << reps
                         << " reps";
    return result;
  } catch (const std::exception& e) {
    // FaultInjected from an armed subprocess probe, file I/O errors, or a
    // malformed dump: all degrade instead of killing the run.
    return degrade(std::move(result), e.what());
  }
}

}  // namespace hcg::toolchain
