#include "toolchain/compiled_model.hpp"

#include <dlfcn.h>

#include "actors/exec.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/faults.hpp"
#include "support/logging.hpp"
#include "support/stopwatch.hpp"
#include "support/strings.hpp"
#include "support/subprocess.hpp"

namespace hcg::toolchain {

namespace {

/// Last `max_lines` lines (at most `max_bytes`) of a compiler log, for
/// embedding into a ToolchainError without flooding it.
std::string log_tail(const std::string& log, int max_lines = 30,
                     std::size_t max_bytes = 4096) {
  std::size_t start = log.size();
  int lines = 0;
  while (start > 0 && lines < max_lines && log.size() - start < max_bytes) {
    --start;
    if (log[start] == '\n' && start + 1 < log.size()) ++lines;
  }
  if (start == 0) return log;
  return "...\n" + log.substr(start + 1);
}

/// Runs the compiler through the hardened runner, honoring an armed
/// toolchain.compile fault (fail: nonzero exit, timeout: killed run,
/// throw: FaultInjected) without ever spawning a process for it.
SubprocessResult run_compiler(const std::vector<std::string>& argv,
                              const CompileOptions& options,
                              const std::string& fault_key) {
  static obs::Counter& timeout_metric =
      obs::Registry::instance().counter("toolchain.compile_timeouts");
  static obs::Counter& retry_metric =
      obs::Registry::instance().counter("toolchain.spawn_retries");
  switch (faults::probe("toolchain.compile", fault_key)) {
    case faults::Action::kNone:
      break;
    case faults::Action::kThrow:
      throw faults::FaultInjected("injected fault at toolchain.compile [" +
                                  fault_key + "]");
    case faults::Action::kTimeout: {
      SubprocessResult injected;
      injected.kind = ExitKind::kTimedOut;
      injected.wall_seconds = options.timeout_seconds;
      injected.attempts = 1;
      injected.output = "(injected fault: compiler run timed out)";
      timeout_metric.add();
      return injected;
    }
    default: {  // kFail / kTorn: the compiler ran and reported an error
      SubprocessResult injected;
      injected.kind = ExitKind::kExited;
      injected.exit_code = 1;
      injected.attempts = 1;
      injected.output = "(injected fault: compiler exited with an error)";
      return injected;
    }
  }

  SubprocessOptions sub;
  sub.timeout_seconds = options.timeout_seconds;
  sub.spawn_retries = options.spawn_retries;
  // The spawn span lives here rather than in support/subprocess.cpp:
  // hcg_support must not depend on hcg_obs (the dependency runs the other
  // way), so the runner stays untraced and its call sites carry the span.
  HCG_TRACE_SCOPE("toolchain.spawn");
  SubprocessResult result = run_subprocess(argv, sub);
  if (result.kind == ExitKind::kTimedOut) timeout_metric.add();
  if (result.attempts > 1) retry_metric.add(result.attempts - 1);
  return result;
}

}  // namespace

bool compiler_available(const std::string& cc) {
  SubprocessOptions sub;
  sub.timeout_seconds = 20.0;
  const SubprocessResult result = run_subprocess({cc, "--version"}, sub);
  if (!result.ok()) {
    // Distinguish "not installed" from "installed but dying": a compiler
    // killed by a signal or hanging on --version is a real finding.
    log_debug("toolchain") << cc << " unavailable: " << result.describe();
  }
  return result.ok();
}

CompiledModel::CompiledModel(const codegen::GeneratedCode& code,
                             const CompileOptions& options)
    : dir_("hcg-cc") {
  HCG_TRACE_SCOPE("toolchain.compile");
  static obs::Counter& compiles_metric =
      obs::Registry::instance().counter("toolchain.compiles");
  static obs::Histogram& compile_ms_metric =
      obs::Registry::instance().histogram("toolchain.compile_ms");
  if (options.keep_artifacts) dir_.keep();

  source_path_ = dir_.path() / (code.model_name + "_" + code.tool_name + ".c");
  write_file(source_path_, code.source);
  const std::filesystem::path so_path =
      dir_.path() / (code.model_name + "_" + code.tool_name + ".so");
  const std::filesystem::path log_path = dir_.path() / "cc.log";

  // -fwrapv: generated element-wise code assumes two's-complement wrap on
  // integer overflow, matching the oracle and every SIMD lowering.
  std::vector<std::string> argv = {options.cc, "-shared", "-fPIC"};
  for (const std::string& flag : split_whitespace(options.opt_flags)) {
    argv.push_back(flag);
  }
  argv.push_back("-fno-math-errno");
  argv.push_back("-fwrapv");
  for (const std::string& flag : split_whitespace(code.compile_flags)) {
    argv.push_back(flag);
  }
  if (code.needs_neon_sim) {
    argv.push_back("-I");
    argv.push_back(HCG_DATA_DIR);
  }
  for (const std::string& flag : options.extra_flags) {
    for (const std::string& piece : split_whitespace(flag)) {
      argv.push_back(piece);
    }
  }
  argv.push_back(source_path_.string());
  argv.push_back("-o");
  argv.push_back(so_path.string());
  argv.push_back("-lm");
  command_ = join(argv, " ");

  Stopwatch timer;
  const SubprocessResult compile = run_compiler(
      argv, options, code.model_name + "/" + code.tool_name);
  compile_seconds_ = timer.elapsed_seconds();
  compiles_metric.add();
  compile_ms_metric.observe(compile_seconds_ * 1e3);
  // The captured diagnostics become cc.log whatever happens next, so a kept
  // temp dir always has the evidence beside the source.
  try {
    write_file(log_path, compile.output);
  } catch (const Error&) {
    // cc.log is best-effort; the diagnostics still ride in the exception.
  }
  if (!compile.ok()) {
    dir_.keep();  // leave evidence behind
    throw ToolchainError(
        "compilation failed: compiler " + compile.describe() + "\n  command: " +
        command_ + "\n" + log_tail(compile.output) + "\nsource kept at " +
        source_path_.string());
  }

  handle_ = ::dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle_ == nullptr) {
    throw ToolchainError(std::string("dlopen failed: ") + ::dlerror());
  }
  init_ = reinterpret_cast<void (*)()>(::dlsym(handle_, code.init_symbol.c_str()));
  step_ = reinterpret_cast<void (*)(const void* const*, void* const*)>(
      ::dlsym(handle_, code.step_symbol.c_str()));
  if (init_ == nullptr || step_ == nullptr) {
    throw ToolchainError("generated code is missing " + code.init_symbol +
                         " or " + code.step_symbol);
  }
  log_debug("toolchain") << "compiled " << code.model_name << " ["
                         << code.tool_name << "] in " << compile_seconds_
                         << "s";
}

CompiledModel::~CompiledModel() {
  if (handle_ != nullptr) ::dlclose(handle_);
}

void CompiledModel::init() { init_(); }

void CompiledModel::step(const std::vector<const void*>& inputs,
                         const std::vector<void*>& outputs) {
  step_(inputs.data(), outputs.data());
}

std::vector<Tensor> CompiledModel::step_tensors(
    const Model& resolved_model, const std::vector<Tensor>& inputs) {
  const std::vector<ActorId> ins = resolved_model.inports();
  const std::vector<ActorId> outs = resolved_model.outports();
  require(inputs.size() == ins.size(),
          "step_tensors: input count does not match the model's Inports");

  std::vector<const void*> in_ptrs;
  for (const Tensor& t : inputs) in_ptrs.push_back(t.data());

  std::vector<Tensor> results;
  std::vector<void*> out_ptrs;
  for (ActorId id : outs) {
    results.push_back(make_tensor(resolved_model.actor(id).input(0)));
    out_ptrs.push_back(results.back().data());
  }
  // Vector reallocation would invalidate pointers; gather after sizing.
  out_ptrs.clear();
  for (Tensor& t : results) out_ptrs.push_back(t.data());

  step(in_ptrs, out_ptrs);
  return results;
}

}  // namespace hcg::toolchain
