#include "toolchain/compiled_model.hpp"

#include <dlfcn.h>

#include <cstdlib>

#include "actors/exec.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/logging.hpp"
#include "support/stopwatch.hpp"

namespace hcg::toolchain {

namespace {

/// Shell-quotes a path/flag (conservative: single quotes).
std::string quote(const std::string& text) {
  std::string out = "'";
  for (char c : text) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += "'";
  return out;
}

}  // namespace

bool compiler_available(const std::string& cc) {
  const std::string cmd = cc + " --version > /dev/null 2>&1";
  return std::system(cmd.c_str()) == 0;
}

CompiledModel::CompiledModel(const codegen::GeneratedCode& code,
                             const CompileOptions& options)
    : dir_("hcg-cc") {
  HCG_TRACE_SCOPE("toolchain.compile");
  static obs::Counter& compiles_metric =
      obs::Registry::instance().counter("toolchain.compiles");
  static obs::Histogram& compile_ms_metric =
      obs::Registry::instance().histogram("toolchain.compile_ms");
  if (options.keep_artifacts) dir_.keep();

  source_path_ = dir_.path() / (code.model_name + "_" + code.tool_name + ".c");
  write_file(source_path_, code.source);
  const std::filesystem::path so_path =
      dir_.path() / (code.model_name + "_" + code.tool_name + ".so");
  const std::filesystem::path log_path = dir_.path() / "cc.log";

  // -fwrapv: generated element-wise code assumes two's-complement wrap on
  // integer overflow, matching the oracle and every SIMD lowering.
  std::string cmd = options.cc + " -shared -fPIC " + options.opt_flags +
                    " -fno-math-errno -fwrapv";
  if (!code.compile_flags.empty()) cmd += " " + code.compile_flags;
  if (code.needs_neon_sim) cmd += " -I " + quote(HCG_DATA_DIR);
  for (const std::string& flag : options.extra_flags) cmd += " " + flag;
  cmd += " " + quote(source_path_.string()) + " -o " + quote(so_path.string());
  cmd += " -lm 2> " + quote(log_path.string());
  command_ = cmd;

  Stopwatch timer;
  const int rc = std::system(cmd.c_str());
  compile_seconds_ = timer.elapsed_seconds();
  compiles_metric.add();
  compile_ms_metric.observe(compile_seconds_ * 1e3);
  if (rc != 0) {
    std::string log;
    try {
      log = read_file(log_path);
    } catch (const Error&) {
      log = "(no compiler output captured)";
    }
    dir_.keep();  // leave evidence behind
    throw ToolchainError("compilation failed (" + cmd + "):\n" + log +
                         "\nsource kept at " + source_path_.string());
  }

  handle_ = ::dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle_ == nullptr) {
    throw ToolchainError(std::string("dlopen failed: ") + ::dlerror());
  }
  init_ = reinterpret_cast<void (*)()>(::dlsym(handle_, code.init_symbol.c_str()));
  step_ = reinterpret_cast<void (*)(const void* const*, void* const*)>(
      ::dlsym(handle_, code.step_symbol.c_str()));
  if (init_ == nullptr || step_ == nullptr) {
    throw ToolchainError("generated code is missing " + code.init_symbol +
                         " or " + code.step_symbol);
  }
  log_debug("toolchain") << "compiled " << code.model_name << " ["
                         << code.tool_name << "] in " << compile_seconds_
                         << "s";
}

CompiledModel::~CompiledModel() {
  if (handle_ != nullptr) ::dlclose(handle_);
}

void CompiledModel::init() { init_(); }

void CompiledModel::step(const std::vector<const void*>& inputs,
                         const std::vector<void*>& outputs) {
  step_(inputs.data(), outputs.data());
}

std::vector<Tensor> CompiledModel::step_tensors(
    const Model& resolved_model, const std::vector<Tensor>& inputs) {
  const std::vector<ActorId> ins = resolved_model.inports();
  const std::vector<ActorId> outs = resolved_model.outports();
  require(inputs.size() == ins.size(),
          "step_tensors: input count does not match the model's Inports");

  std::vector<const void*> in_ptrs;
  for (const Tensor& t : inputs) in_ptrs.push_back(t.data());

  std::vector<Tensor> results;
  std::vector<void*> out_ptrs;
  for (ActorId id : outs) {
    results.push_back(make_tensor(resolved_model.actor(id).input(0)));
    out_ptrs.push_back(results.back().data());
  }
  // Vector reallocation would invalidate pointers; gather after sizing.
  out_ptrs.clear();
  for (Tensor& t : results) out_ptrs.push_back(t.data());

  step(in_ptrs, out_ptrs);
  return results;
}

}  // namespace hcg::toolchain
