#include "synth/batch.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/logging.hpp"
#include "support/strings.hpp"
#include "synth/matcher.hpp"

namespace hcg::synth {

namespace {

class BatchSynthesizer {
 public:
  BatchSynthesizer(const Model& model, const BatchRegion& region,
                   const isa::VectorIsa& isa, const BufferNameFn& buffer_name,
                   const BatchOptions& options, int indent)
      : model_(model),
        region_(region),
        graph_(region.graph),
        isa_(isa),
        buffer_name_(buffer_name),
        options_(options),
        pad_(static_cast<size_t>(indent) * 2, ' ') {}

  BatchSynthResult run() {
    HCG_TRACE_SCOPE("synth.batch");
    static obs::Counter& regions_metric =
        obs::Registry::instance().counter("batch.regions");
    static obs::Counter& simd_metric =
        obs::Registry::instance().counter("batch.simd_regions");
    static obs::Counter& scalar_metric =
        obs::Registry::instance().counter("batch.scalar_fallbacks");
    regions_metric.add();
    BatchSynthResult result;

    // Algorithm 2 lines 1-4: batch size / batch count — the same early
    // exits the emitter's buffer planner mirrors via the shared helper.
    const RegionVectorPlan plan = plan_region_vectorization(
        region_, isa_.capability(), options_.min_nodes_for_simd);
    result.batch_size = plan.lanes;
    result.batch_count = plan.batch_count;
    result.offset = plan.offset;
    if (!plan.viable) {
      // BatchCount < 1, the §4.3 threshold, or a node type the table cannot
      // vectorize at this width; conventional translation.
      result.used_simd = false;
      scalar_metric.add();
      return result;
    }
    if (plan.predicated) {
      // Scalable table: one predicated loop covers [0, length).  The region
      // shares one element bit-width, so any member type's predicate kit
      // governs every lane of the loop.
      predicated_ = true;
      pred_ = isa_.find_pred(graph_.node(0).out_type);
      require(pred_ != nullptr, "batch synth: missing predicate after filter");
      result.predicated = true;
      result.step_expr = pred_->vl_expr;
    }

    // Map the dataflow graph onto instructions (lines 10-22).
    std::vector<cgir::Stmt> calc_lines = map_graph(result);

    // Structured bodies: loads, calculations, stores for the vector loop;
    // the element-wise recomputation for the scalar remainder.
    result.vector_body = vector_body(std::move(calc_lines));
    if (result.offset != 0) result.remainder_body = remainder_body();

    // Assemble the text form: remainder first (line 25-26: "added to the
    // front"), then the main vector loop.
    std::string code;
    if (result.offset != 0) {
      code += render_remainder(result.remainder_body, result.offset);
    }
    code += render_loop(result.vector_body, result);
    result.code = std::move(code);
    result.used_simd = true;
    simd_metric.add();
    return result;
  }

 private:
  // ---- naming -------------------------------------------------------------

  std::string node_var(int index) const {
    return sanitize_identifier(
               model_.actor(graph_.node(index).actor).name()) +
           "_b";
  }

  std::string node_scalar_var(int index) const {
    return sanitize_identifier(
               model_.actor(graph_.node(index).actor).name()) +
           "_s";
  }

  std::string external_var(int index) const {
    const DfgExternal& ext = graph_.externals()[static_cast<size_t>(index)];
    std::string base = sanitize_identifier(model_.actor(ext.src).name());
    if (ext.src_port != 0) base += "_" + std::to_string(ext.src_port);
    return base + "_b";
  }

  std::string external_buffer(int index) const {
    const DfgExternal& ext = graph_.externals()[static_cast<size_t>(index)];
    return buffer_name_(ext.src, ext.src_port);
  }

  const isa::VType& vtype_of(DataType type) const {
    const isa::VType* v = isa_.find_vtype(type);
    require(v != nullptr, "batch synth: missing vtype after region filter");
    return *v;
  }

  /// The C expression for a vector operand.
  std::string value_expr(const ValueRef& value) const {
    switch (value.kind) {
      case ValueRef::Kind::kNode:
        return node_var(value.index);
      case ValueRef::Kind::kExternal:
        return external_var(value.index);
      default:
        throw InternalError("value_expr: non-vector operand");
    }
  }

  // ---- graph mapping --------------------------------------------------------

  std::vector<cgir::Stmt> map_graph(BatchSynthResult& result) {
    std::vector<cgir::Stmt> lines;
    std::vector<bool> mapped(static_cast<size_t>(graph_.node_count()), false);
    int remaining = graph_.node_count();

    while (remaining > 0) {
      const int seed = graph_.top_left_node(mapped);  // line 12
      require(seed != -1, "batch synth: no ready node but graph not mapped");

      const std::vector<std::vector<int>> subgraphs =
          graph_.extend_subgraphs(seed, mapped, isa_.max_pattern_nodes());

      bool advanced = false;
      for (const std::vector<int>& subgraph : subgraphs) {  // line 14
        if (!graph_.is_independent(subgraph, mapped)) continue;  // 15-16
        if (!graph_.interior_values_private(subgraph)) continue;

        const DfgNode& sink = graph_.node(subgraph.back());
        std::string line;
        std::string ins_name;
        if (subgraph.size() == 1 && sink.op == BatchOp::kCast) {
          line = emit_cvt(subgraph.back());
          ins_name = "cvt";
        } else {
          auto match = find_matching_instruction(graph_, subgraph, isa_);
          if (!match) continue;  // lines 18-19
          line = emit_instruction(subgraph.back(), *match);
          ins_name = match->instruction->name;
        }

        cgir::Stmt stmt = cgir::Stmt::text_line(std::move(line));  // line 20
        stmt.defines = node_var(subgraph.back());
        lines.push_back(std::move(stmt));
        result.instructions_used.push_back(ins_name);
        for (int member : subgraph) {  // line 21: removeNodes
          mapped[static_cast<size_t>(member)] = true;
        }
        remaining -= static_cast<int>(subgraph.size());
        advanced = true;
        break;  // line 22
      }
      if (!advanced) {
        throw SynthesisError(
            "batch synthesis: node '" +
            model_.actor(graph_.node(seed).actor).name() +
            "' has no matching SIMD instruction in isa '" + isa_.name + "'");
      }
    }
    return lines;
  }

  std::string emit_instruction(int sink, const InstructionMatch& match) const {
    const isa::Instruction& ins = *match.instruction;
    std::vector<std::pair<std::string, std::string>> repl;
    repl.emplace_back("O", vtype_of(ins.type).c_name + " " + node_var(sink));
    if (predicated_) repl.emplace_back("G", std::string(kPredVar));
    for (const auto& [slot, value] : match.binding.inputs) {
      repl.emplace_back("I" + std::to_string(slot), value_expr(value));
    }
    if (match.binding.has_scalar) {
      repl.emplace_back("C",
                        isa::scalar_literal(ins.type, match.binding.scalar));
    }
    if (match.binding.has_imm) {
      repl.emplace_back("IMM", std::to_string(match.binding.imm));
    }
    return isa::substitute_tokens(ins.code, repl);
  }

  std::string emit_cvt(int node_index) const {
    const DfgNode& node = graph_.node(node_index);
    const ValueRef& src = node.operands.at(0);
    const DataType from = src.kind == ValueRef::Kind::kNode
                              ? graph_.node(src.index).out_type
                              : graph_.externals()[static_cast<size_t>(src.index)].type;
    const isa::CvtCode* cvt = isa_.find_cvt(from, node.out_type);
    require(cvt != nullptr, "batch synth: missing cvt after region filter");
    std::vector<std::pair<std::string, std::string>> repl = {
        {"O", vtype_of(node.out_type).c_name + " " + node_var(node_index)},
        {"I1", value_expr(src)},
        {"I", value_expr(src)}};
    if (predicated_) repl.emplace_back("G", std::string(kPredVar));
    return isa::substitute_tokens(cvt->code, repl);
  }

  // ---- loop assembly ---------------------------------------------------------

  /// Assembles the main loop body: data preparation (line 9), the mapped
  /// calculation lines, and stores for region outputs (line 23).
  std::vector<cgir::Stmt> vector_body(std::vector<cgir::Stmt> calc_lines) const {
    std::vector<cgir::Stmt> body;
    if (predicated_) {
      // The loop-governing predicate is recomputed every iteration; the
      // final trip covers exactly the tail lanes, so no remainder exists.
      cgir::Stmt stmt = cgir::Stmt::text_line(isa::substitute_tokens(
          pred_->whilelt,
          {{"O", pred_->c_name + " " + std::string(kPredVar)},
           {"I", "i"},
           {"N", std::to_string(graph_.length())}}));
      stmt.defines = kPredVar;
      body.push_back(std::move(stmt));
    }
    for (size_t x = 0; x < graph_.externals().size(); ++x) {
      const DfgExternal& ext = graph_.externals()[x];
      const isa::IoCode* load = isa_.find_load(ext.type);
      require(load != nullptr, "batch synth: missing load");
      std::vector<std::pair<std::string, std::string>> repl = {
          {"O", vtype_of(ext.type).c_name + " " +
                    external_var(static_cast<int>(x))},
          {"P", "&" + external_buffer(static_cast<int>(x)) + "[i]"}};
      if (predicated_) repl.emplace_back("G", std::string(kPredVar));
      cgir::Stmt stmt =
          cgir::Stmt::text_line(isa::substitute_tokens(load->code, repl));
      stmt.defines = external_var(static_cast<int>(x));
      // Predicated loads read through a mask; they are not the plain
      // `v = vld(&buf[i])` shape copy forwarding may rewrite.
      stmt.is_load = !predicated_;
      stmt.accesses.push_back(
          {external_buffer(static_cast<int>(x)), false, true});
      body.push_back(std::move(stmt));
    }

    for (cgir::Stmt& line : calc_lines) body.push_back(std::move(line));

    for (int out : graph_.outputs()) {
      const DfgNode& node = graph_.node(out);
      const isa::IoCode* store = isa_.find_store(node.out_type);
      require(store != nullptr, "batch synth: missing store");
      std::vector<std::pair<std::string, std::string>> repl = {
          {"P", "&" + buffer_name_(node.actor, 0) + "[i]"},
          {"V", node_var(out)}};
      if (predicated_) repl.emplace_back("G", std::string(kPredVar));
      cgir::Stmt stmt =
          cgir::Stmt::text_line(isa::substitute_tokens(store->code, repl));
      stmt.stores_var = node_var(out);
      stmt.is_store = !predicated_;
      stmt.accesses.push_back({buffer_name_(node.actor, 0), true, true});
      body.push_back(std::move(stmt));
    }
    return body;
  }

  /// Lines 24-26: the scalar remainder, same computation element-wise.
  std::vector<cgir::Stmt> remainder_body() const {
    std::vector<cgir::Stmt> body;
    for (int n = 0; n < graph_.node_count(); ++n) {
      const DfgNode& node = graph_.node(n);
      cgir::Stmt stmt =
          cgir::Stmt::text_line(std::string(c_name(node.out_type)) + " " +
                                node_scalar_var(n) + " = " + scalar_expr(n) +
                                ";");
      stmt.defines = node_scalar_var(n);
      for (const ValueRef& operand : node.operands) {
        if (operand.kind == ValueRef::Kind::kExternal) {
          stmt.accesses.push_back(
              {external_buffer(operand.index), false, true});
        }
      }
      body.push_back(std::move(stmt));
    }
    for (int out : graph_.outputs()) {
      const std::string buffer = buffer_name_(graph_.node(out).actor, 0);
      cgir::Stmt stmt = cgir::Stmt::text_line(
          buffer + "[i] = " + node_scalar_var(out) + ";");
      stmt.stores_var = node_scalar_var(out);
      stmt.is_store = true;
      stmt.accesses.push_back({buffer, true, true});
      body.push_back(std::move(stmt));
    }
    return body;
  }

  std::string render_loop(const std::vector<cgir::Stmt>& body,
                          const BatchSynthResult& result) const {
    const std::string body_pad = pad_ + "  ";
    std::string code;
    if (result.predicated) {
      // One vector-length-agnostic loop over the whole domain; the final
      // partial trip is handled by the predicate, never by a remainder.
      code += pad_ + "for (int i = 0; i < " +
              std::to_string(graph_.length()) +
              "; i += " + result.step_expr + ") {\n";
    } else if (result.batch_count >= 2) {  // lines 7-8: addBatchLoop
      code += pad_ + "for (int i = " + std::to_string(result.offset) +
              "; i < " + std::to_string(graph_.length()) +
              "; i += " + std::to_string(result.batch_size) + ") {\n";
    } else {
      code += pad_ + "{\n";
      code += body_pad + "const int i = " + std::to_string(result.offset) +
              ";\n";
    }
    for (const cgir::Stmt& line : body) code += body_pad + line.text + "\n";
    code += pad_ + "}\n";
    return code;
  }

  std::string render_remainder(const std::vector<cgir::Stmt>& body,
                               int offset) const {
    const std::string body_pad = pad_ + "  ";
    std::string code = pad_ + "for (int i = 0; i < " + std::to_string(offset) +
                       "; ++i) {\n";
    for (const cgir::Stmt& line : body) code += body_pad + line.text + "\n";
    code += pad_ + "}\n";
    return code;
  }

  std::string scalar_operand(const ValueRef& value) const {
    switch (value.kind) {
      case ValueRef::Kind::kNode:
        return node_scalar_var(value.index);
      case ValueRef::Kind::kExternal:
        return external_buffer(value.index) + "[i]";
      case ValueRef::Kind::kScalarConst:
        return isa::scalar_literal(DataType::kFloat64, value.scalar);
      case ValueRef::Kind::kImmediate:
        return std::to_string(value.imm);
    }
    throw InternalError("scalar_operand: bad ValueRef kind");
  }

  std::string scalar_expr(int node_index) const {
    const DfgNode& node = graph_.node(node_index);
    const std::string a = scalar_operand(node.operands.at(0));
    std::string b, c;
    if (node.operands.size() > 1) {
      const ValueRef& second = node.operands[1];
      if (second.kind == ValueRef::Kind::kScalarConst) {
        b = isa::scalar_literal(node.out_type, second.scalar);
      } else {
        b = scalar_operand(second);
      }
    }
    if (node.operands.size() > 2) c = scalar_operand(node.operands[2]);
    return scalar_c_expr(node.op, node.out_type, a, b, c);
  }

  /// Name of the loop-governing predicate local in predicated loops.
  static constexpr const char* kPredVar = "pg";

  const Model& model_;
  const BatchRegion& region_;
  const Dataflow& graph_;
  const isa::VectorIsa& isa_;
  const BufferNameFn& buffer_name_;
  const BatchOptions& options_;
  std::string pad_;
  bool predicated_ = false;
  const isa::PredCode* pred_ = nullptr;
};

}  // namespace

BatchSynthResult synthesize_batch(const Model& model, const BatchRegion& region,
                                  const isa::VectorIsa& isa,
                                  const BufferNameFn& buffer_name,
                                  const BatchOptions& options, int indent) {
  return BatchSynthesizer(model, region, isa, buffer_name, options, indent)
      .run();
}

}  // namespace hcg::synth
