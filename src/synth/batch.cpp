#include "synth/batch.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/logging.hpp"
#include "support/strings.hpp"
#include "synth/matcher.hpp"

namespace hcg::synth {

namespace {

class BatchSynthesizer {
 public:
  BatchSynthesizer(const Model& model, const BatchRegion& region,
                   const isa::VectorIsa& isa, const BufferNameFn& buffer_name,
                   const BatchOptions& options, int indent)
      : model_(model),
        region_(region),
        graph_(region.graph),
        isa_(isa),
        buffer_name_(buffer_name),
        options_(options),
        pad_(static_cast<size_t>(indent) * 2, ' ') {}

  BatchSynthResult run() {
    HCG_TRACE_SCOPE("synth.batch");
    static obs::Counter& regions_metric =
        obs::Registry::instance().counter("batch.regions");
    static obs::Counter& simd_metric =
        obs::Registry::instance().counter("batch.simd_regions");
    static obs::Counter& scalar_metric =
        obs::Registry::instance().counter("batch.scalar_fallbacks");
    regions_metric.add();
    BatchSynthResult result;

    // Algorithm 2 lines 1-4: batch size / batch count.
    const int lanes = isa_.width_bits / graph_.data_bit_width();
    result.batch_size = lanes;
    result.batch_count = graph_.length() / lanes;
    result.offset = graph_.length() % lanes;
    if (result.batch_count < 1 ||
        graph_.node_count() < options_.min_nodes_for_simd) {
      result.used_simd = false;
      scalar_metric.add();
      return result;
    }
    for (const DfgNode& node : graph_.nodes()) {
      if (isa_.lanes(node.out_type) != lanes) {
        // A node type the table cannot vectorize at this width; conventional.
        result.used_simd = false;
        scalar_metric.add();
        return result;
      }
    }

    // Map the dataflow graph onto instructions (lines 10-22).
    std::vector<std::string> calc_lines = map_graph(result);

    // Assemble: remainder first (line 25-26: "added to the front"), then the
    // main vector loop.
    std::string code;
    if (result.offset != 0) {
      code += remainder_code(result.offset);
    }
    code += loop_code(calc_lines, result);
    result.code = std::move(code);
    result.used_simd = true;
    simd_metric.add();
    return result;
  }

 private:
  // ---- naming -------------------------------------------------------------

  std::string node_var(int index) const {
    return sanitize_identifier(
               model_.actor(graph_.node(index).actor).name()) +
           "_b";
  }

  std::string node_scalar_var(int index) const {
    return sanitize_identifier(
               model_.actor(graph_.node(index).actor).name()) +
           "_s";
  }

  std::string external_var(int index) const {
    const DfgExternal& ext = graph_.externals()[static_cast<size_t>(index)];
    std::string base = sanitize_identifier(model_.actor(ext.src).name());
    if (ext.src_port != 0) base += "_" + std::to_string(ext.src_port);
    return base + "_b";
  }

  std::string external_buffer(int index) const {
    const DfgExternal& ext = graph_.externals()[static_cast<size_t>(index)];
    return buffer_name_(ext.src, ext.src_port);
  }

  const isa::VType& vtype_of(DataType type) const {
    const isa::VType* v = isa_.find_vtype(type);
    require(v != nullptr, "batch synth: missing vtype after region filter");
    return *v;
  }

  /// The C expression for a vector operand.
  std::string value_expr(const ValueRef& value) const {
    switch (value.kind) {
      case ValueRef::Kind::kNode:
        return node_var(value.index);
      case ValueRef::Kind::kExternal:
        return external_var(value.index);
      default:
        throw InternalError("value_expr: non-vector operand");
    }
  }

  // ---- graph mapping --------------------------------------------------------

  std::vector<std::string> map_graph(BatchSynthResult& result) {
    std::vector<std::string> lines;
    std::vector<bool> mapped(static_cast<size_t>(graph_.node_count()), false);
    int remaining = graph_.node_count();

    while (remaining > 0) {
      const int seed = graph_.top_left_node(mapped);  // line 12
      require(seed != -1, "batch synth: no ready node but graph not mapped");

      const std::vector<std::vector<int>> subgraphs =
          graph_.extend_subgraphs(seed, mapped, isa_.max_pattern_nodes());

      bool advanced = false;
      for (const std::vector<int>& subgraph : subgraphs) {  // line 14
        if (!graph_.is_independent(subgraph, mapped)) continue;  // 15-16
        if (!graph_.interior_values_private(subgraph)) continue;

        const DfgNode& sink = graph_.node(subgraph.back());
        std::string line;
        std::string ins_name;
        if (subgraph.size() == 1 && sink.op == BatchOp::kCast) {
          line = emit_cvt(subgraph.back());
          ins_name = "cvt";
        } else {
          auto match = find_matching_instruction(graph_, subgraph, isa_);
          if (!match) continue;  // lines 18-19
          line = emit_instruction(subgraph.back(), *match);
          ins_name = match->instruction->name;
        }

        lines.push_back(std::move(line));  // line 20
        result.instructions_used.push_back(ins_name);
        for (int member : subgraph) {  // line 21: removeNodes
          mapped[static_cast<size_t>(member)] = true;
        }
        remaining -= static_cast<int>(subgraph.size());
        advanced = true;
        break;  // line 22
      }
      if (!advanced) {
        throw SynthesisError(
            "batch synthesis: node '" +
            model_.actor(graph_.node(seed).actor).name() +
            "' has no matching SIMD instruction in isa '" + isa_.name + "'");
      }
    }
    return lines;
  }

  std::string emit_instruction(int sink, const InstructionMatch& match) const {
    const isa::Instruction& ins = *match.instruction;
    std::vector<std::pair<std::string, std::string>> repl;
    repl.emplace_back("O", vtype_of(ins.type).c_name + " " + node_var(sink));
    for (const auto& [slot, value] : match.binding.inputs) {
      repl.emplace_back("I" + std::to_string(slot), value_expr(value));
    }
    if (match.binding.has_scalar) {
      repl.emplace_back("C",
                        isa::scalar_literal(ins.type, match.binding.scalar));
    }
    if (match.binding.has_imm) {
      repl.emplace_back("IMM", std::to_string(match.binding.imm));
    }
    return isa::substitute_tokens(ins.code, repl);
  }

  std::string emit_cvt(int node_index) const {
    const DfgNode& node = graph_.node(node_index);
    const ValueRef& src = node.operands.at(0);
    const DataType from = src.kind == ValueRef::Kind::kNode
                              ? graph_.node(src.index).out_type
                              : graph_.externals()[static_cast<size_t>(src.index)].type;
    const isa::CvtCode* cvt = isa_.find_cvt(from, node.out_type);
    require(cvt != nullptr, "batch synth: missing cvt after region filter");
    return isa::substitute_tokens(
        cvt->code,
        {{"O", vtype_of(node.out_type).c_name + " " + node_var(node_index)},
         {"I1", value_expr(src)},
         {"I", value_expr(src)}});
  }

  // ---- loop assembly ---------------------------------------------------------

  std::string loop_code(const std::vector<std::string>& calc_lines,
                        const BatchSynthResult& result) const {
    std::string body_pad = pad_ + "  ";
    std::string code;
    if (result.batch_count >= 2) {  // lines 7-8: addBatchLoop
      code += pad_ + "for (int i = " + std::to_string(result.offset) +
              "; i < " + std::to_string(graph_.length()) +
              "; i += " + std::to_string(result.batch_size) + ") {\n";
    } else {
      code += pad_ + "{\n";
      code += body_pad + "const int i = " + std::to_string(result.offset) +
              ";\n";
    }

    // Line 9: data preparation (loads) for every external array.
    for (size_t x = 0; x < graph_.externals().size(); ++x) {
      const DfgExternal& ext = graph_.externals()[x];
      const isa::IoCode* load = isa_.find_load(ext.type);
      require(load != nullptr, "batch synth: missing load");
      code += body_pad +
              isa::substitute_tokens(
                  load->code,
                  {{"O", vtype_of(ext.type).c_name + " " +
                             external_var(static_cast<int>(x))},
                   {"P", "&" + external_buffer(static_cast<int>(x)) + "[i]"}}) +
              "\n";
    }

    for (const std::string& line : calc_lines) code += body_pad + line + "\n";

    // Line 23: stores for region outputs.
    for (int out : graph_.outputs()) {
      const DfgNode& node = graph_.node(out);
      const isa::IoCode* store = isa_.find_store(node.out_type);
      require(store != nullptr, "batch synth: missing store");
      code += body_pad +
              isa::substitute_tokens(
                  store->code,
                  {{"P", "&" + buffer_name_(node.actor, 0) + "[i]"},
                   {"V", node_var(out)}}) +
              "\n";
    }
    code += pad_ + "}\n";
    return code;
  }

  /// Lines 24-26: the scalar remainder, same computation element-wise.
  std::string remainder_code(int offset) const {
    std::string body_pad = pad_ + "  ";
    std::string code = pad_ + "for (int i = 0; i < " + std::to_string(offset) +
                       "; ++i) {\n";
    for (int n = 0; n < graph_.node_count(); ++n) {
      const DfgNode& node = graph_.node(n);
      code += body_pad + std::string(c_name(node.out_type)) + " " +
              node_scalar_var(n) + " = " + scalar_expr(n) + ";\n";
    }
    for (int out : graph_.outputs()) {
      code += body_pad + buffer_name_(graph_.node(out).actor, 0) +
              "[i] = " + node_scalar_var(out) + ";\n";
    }
    code += pad_ + "}\n";
    return code;
  }

  std::string scalar_operand(const ValueRef& value) const {
    switch (value.kind) {
      case ValueRef::Kind::kNode:
        return node_scalar_var(value.index);
      case ValueRef::Kind::kExternal:
        return external_buffer(value.index) + "[i]";
      case ValueRef::Kind::kScalarConst:
        return isa::scalar_literal(DataType::kFloat64, value.scalar);
      case ValueRef::Kind::kImmediate:
        return std::to_string(value.imm);
    }
    throw InternalError("scalar_operand: bad ValueRef kind");
  }

  std::string scalar_expr(int node_index) const {
    const DfgNode& node = graph_.node(node_index);
    const std::string a = scalar_operand(node.operands.at(0));
    std::string b, c;
    if (node.operands.size() > 1) {
      const ValueRef& second = node.operands[1];
      if (second.kind == ValueRef::Kind::kScalarConst) {
        b = isa::scalar_literal(node.out_type, second.scalar);
      } else {
        b = scalar_operand(second);
      }
    }
    if (node.operands.size() > 2) c = scalar_operand(node.operands[2]);
    return scalar_c_expr(node.op, node.out_type, a, b, c);
  }

  const Model& model_;
  const BatchRegion& region_;
  const Dataflow& graph_;
  const isa::VectorIsa& isa_;
  const BufferNameFn& buffer_name_;
  const BatchOptions& options_;
  std::string pad_;
};

}  // namespace

BatchSynthResult synthesize_batch(const Model& model, const BatchRegion& region,
                                  const isa::VectorIsa& isa,
                                  const BufferNameFn& buffer_name,
                                  const BatchOptions& options, int indent) {
  return BatchSynthesizer(model, region, isa, buffer_name, options, indent)
      .run();
}

}  // namespace hcg::synth
