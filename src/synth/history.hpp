// Selection history (Algorithm 1, lines 1-6 and 18): a persistent cache of
// (actor type, data type, data size) -> chosen implementation, so repeated
// synthesis of the same actor shape skips the pre-calculation run.
#pragma once

#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "model/datatype.hpp"
#include "model/tensor.hpp"

namespace hcg::synth {

class SelectionHistory {
 public:
  /// loadSelectionHistory + match (Algorithm 1 lines 3-6).
  std::optional<std::string> lookup(std::string_view actor_type,
                                    DataType dtype,
                                    const std::vector<Shape>& in_shapes) const;

  /// storeSelection (Algorithm 1 line 18).
  void store(std::string_view actor_type, DataType dtype,
             const std::vector<Shape>& in_shapes, std::string_view impl_id);

  std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

  /// Lookup statistics since construction (a warm history shows hits, a cold
  /// one only misses).  Also mirrored into the process-wide metrics as
  /// synth.history.hits / synth.history.misses.
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  void reset_stats() { hits_ = misses_ = 0; }

  /// Line-based text form: "FFT c64 1024 fft_radix4".
  std::string serialize() const;
  static SelectionHistory deserialize(std::string_view text);

  void save(const std::filesystem::path& path) const;
  static SelectionHistory load(const std::filesystem::path& path);

 private:
  static std::string key(std::string_view actor_type, DataType dtype,
                         const std::vector<Shape>& in_shapes);
  std::map<std::string, std::string> entries_;
  /// Mutable: lookup() is logically const; the history is not thread-safe
  /// anyway (the entry map itself is unguarded).
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
};

}  // namespace hcg::synth
