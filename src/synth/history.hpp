// Selection history (Algorithm 1, lines 1-6 and 18): a persistent cache of
// (actor type, data type, data size) -> chosen implementation, so repeated
// synthesis of the same actor shape skips the pre-calculation run.
//
// Thread-safe: the entry map is sharded under per-shard mutexes (lookups of
// different keys rarely contend) and the hit/miss statistics are atomic, so
// the parallel synthesis engine can consult one history from every worker.
#pragma once

#include <array>
#include <atomic>
#include <filesystem>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "model/datatype.hpp"
#include "model/tensor.hpp"

namespace hcg::synth {

/// The canonical history key, "FFT c64 1024" — also the single-flight dedup
/// key of the parallel pre-calculation layer.
std::string selection_key(std::string_view actor_type, DataType dtype,
                          const std::vector<Shape>& in_shapes);

class SelectionHistory {
 public:
  SelectionHistory() = default;
  SelectionHistory(const SelectionHistory& other) { copy_from(other); }
  SelectionHistory(SelectionHistory&& other) noexcept { copy_from(other); }
  SelectionHistory& operator=(const SelectionHistory& other);
  SelectionHistory& operator=(SelectionHistory&& other) noexcept;

  /// loadSelectionHistory + match (Algorithm 1 lines 3-6).
  std::optional<std::string> lookup(std::string_view actor_type,
                                    DataType dtype,
                                    const std::vector<Shape>& in_shapes) const;

  /// storeSelection (Algorithm 1 line 18).
  void store(std::string_view actor_type, DataType dtype,
             const std::vector<Shape>& in_shapes, std::string_view impl_id);

  std::size_t size() const;
  void clear();

  /// Lookup statistics since construction (a warm history shows hits, a cold
  /// one only misses).  Also mirrored into the process-wide metrics as
  /// synth.history.hits / synth.history.misses.
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  void reset_stats() {
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
  }

  /// Line-based text form: "FFT c64 1024 fft_radix4".  Entries are emitted
  /// in key order regardless of which shard holds them, so the serialized
  /// form is deterministic.
  std::string serialize() const;
  static SelectionHistory deserialize(std::string_view text);

  /// What a tolerant load saw: entries kept, lines dropped as unparseable
  /// (also counted by the synth.history.dropped_lines metric).
  struct LoadStats {
    std::size_t loaded = 0;
    std::size_t dropped = 0;
  };

  /// Like deserialize() but never throws on a bad line: corrupt, truncated
  /// or alien lines are skipped and counted, CRLF endings are accepted, so
  /// one torn entry cannot cost a whole warm cache.
  static SelectionHistory deserialize_tolerant(std::string_view text,
                                               LoadStats* stats = nullptr);

  /// Atomic save: temp file + rename with a "# hcg-history-v1" header.  A
  /// crash mid-save leaves the previous complete file, never a partial one;
  /// concurrent savers leave one well-formed winner.
  void save(const std::filesystem::path& path) const;

  /// Tolerant load (see deserialize_tolerant); throws only when the file
  /// cannot be read at all.
  static SelectionHistory load(const std::filesystem::path& path,
                               LoadStats* stats = nullptr);

 private:
  static constexpr std::size_t kShards = 8;
  struct Shard {
    mutable std::mutex mutex;
    std::map<std::string, std::string> entries;
  };

  static std::size_t shard_index(std::string_view key);
  void copy_from(const SelectionHistory& other);

  std::array<Shard, kShards> shards_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
};

}  // namespace hcg::synth
