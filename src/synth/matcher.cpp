#include "synth/matcher.hpp"

#include <algorithm>
#include <set>

#include "obs/metrics.hpp"
#include "support/error.hpp"

namespace hcg::synth {

namespace {

class Matcher {
 public:
  Matcher(const Dataflow& graph, const std::vector<int>& subgraph,
          const isa::Instruction& ins)
      : graph_(graph), ins_(ins), members_(subgraph.begin(), subgraph.end()) {}

  std::optional<MatchBinding> run(int sink) {
    MatchBinding binding;
    std::set<int> used;
    if (!match_node(0, sink, binding, used)) return std::nullopt;
    // The pattern must cover the subgraph exactly.
    if (used.size() != members_.size()) return std::nullopt;
    return binding;
  }

 private:
  /// Matches pattern node `p` against dataflow node `d`.
  bool match_node(int p, int d, MatchBinding& binding, std::set<int>& used) {
    const isa::PatternNode& pattern = ins_.nodes[static_cast<size_t>(p)];
    const DfgNode& node = graph_.node(d);
    if (pattern.op != node.op) return false;
    if (node.out_type != ins_.type) return false;
    if (!members_.count(d) || used.count(d)) return false;
    if (pattern.args.size() != node.operands.size()) return false;
    used.insert(d);

    if (match_args_in_order(pattern, node, binding, used)) return true;

    // Commutative binary ops: retry with swapped operands.
    if (is_commutative(node.op) && node.operands.size() == 2) {
      DfgNode swapped = node;
      std::swap(swapped.operands[0], swapped.operands[1]);
      if (match_args_in_order(pattern, swapped, binding, used)) return true;
    }
    used.erase(d);
    return false;
  }

  bool match_args_in_order(const isa::PatternNode& pattern, const DfgNode& node,
                           MatchBinding& binding, std::set<int>& used) {
    // Backtracking point: snapshot bindings.
    const MatchBinding saved_binding = binding;
    const std::set<int> saved_used = used;

    for (size_t i = 0; i < pattern.args.size(); ++i) {
      if (!match_arg(pattern.args[i], node.operands[i], binding, used)) {
        binding = saved_binding;
        used = saved_used;
        return false;
      }
    }
    return true;
  }

  bool match_arg(const isa::PatternArg& arg, const ValueRef& operand,
                 MatchBinding& binding, std::set<int>& used) {
    switch (arg.kind) {
      case isa::PatternArg::Kind::kChild:
        if (operand.kind != ValueRef::Kind::kNode) return false;
        return match_node(arg.index, operand.index, binding, used);

      case isa::PatternArg::Kind::kInput: {
        // Vector input: a node result from outside the subgraph or an
        // external array.  (Nodes inside the subgraph must be covered by
        // pattern structure, not consumed as opaque inputs.)
        if (operand.kind == ValueRef::Kind::kNode) {
          if (members_.count(operand.index)) return false;
        } else if (operand.kind != ValueRef::Kind::kExternal) {
          return false;
        }
        auto it = binding.inputs.find(arg.index);
        if (it != binding.inputs.end()) return it->second == operand;
        binding.inputs.emplace(arg.index, operand);
        return true;
      }

      case isa::PatternArg::Kind::kScalar:
        if (operand.kind != ValueRef::Kind::kScalarConst) return false;
        if (binding.has_scalar && binding.scalar != operand.scalar) return false;
        binding.has_scalar = true;
        binding.scalar = operand.scalar;
        return true;

      case isa::PatternArg::Kind::kFixedImm:
        return operand.kind == ValueRef::Kind::kImmediate &&
               operand.imm == arg.imm;

      case isa::PatternArg::Kind::kAnyImm:
        if (operand.kind != ValueRef::Kind::kImmediate) return false;
        if (binding.has_imm && binding.imm != operand.imm) return false;
        binding.has_imm = true;
        binding.imm = operand.imm;
        return true;
    }
    return false;
  }

  const Dataflow& graph_;
  const isa::Instruction& ins_;
  std::set<int> members_;
};

}  // namespace

std::optional<MatchBinding> match_instruction(const Dataflow& graph,
                                              const std::vector<int>& subgraph,
                                              const isa::Instruction& ins) {
  require(!subgraph.empty(), "match_instruction: empty subgraph");
  if (ins.node_count() != static_cast<int>(subgraph.size())) {
    return std::nullopt;
  }
  return Matcher(graph, subgraph, ins).run(subgraph.back());
}

std::optional<InstructionMatch> find_matching_instruction(
    const Dataflow& graph, const std::vector<int>& subgraph,
    const isa::VectorIsa& isa) {
  static obs::Counter& attempts_metric =
      obs::Registry::instance().counter("matcher.match_attempts");
  static obs::Counter& matched_metric =
      obs::Registry::instance().counter("matcher.matches");
  const DfgNode& sink = graph.node(subgraph.back());
  for (const isa::Instruction* ins : isa.candidates(sink.op, sink.out_type)) {
    attempts_metric.add();
    if (auto binding = match_instruction(graph, subgraph, *ins)) {
      matched_metric.add();
      return InstructionMatch{ins, std::move(*binding)};
    }
  }
  return std::nullopt;
}

}  // namespace hcg::synth
