#include "synth/history.hpp"

#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "support/fileio.hpp"
#include "support/strings.hpp"

namespace hcg::synth {

std::string SelectionHistory::key(std::string_view actor_type, DataType dtype,
                                  const std::vector<Shape>& in_shapes) {
  std::string out(actor_type);
  out += " ";
  out += short_name(dtype);
  for (const Shape& s : in_shapes) {
    out += " ";
    out += s.to_string();
  }
  return out;
}

std::optional<std::string> SelectionHistory::lookup(
    std::string_view actor_type, DataType dtype,
    const std::vector<Shape>& in_shapes) const {
  static obs::Counter& hit_metric =
      obs::Registry::instance().counter("synth.history.hits");
  static obs::Counter& miss_metric =
      obs::Registry::instance().counter("synth.history.misses");
  auto it = entries_.find(key(actor_type, dtype, in_shapes));
  if (it == entries_.end()) {
    ++misses_;
    miss_metric.add();
    return std::nullopt;
  }
  ++hits_;
  hit_metric.add();
  return it->second;
}

void SelectionHistory::store(std::string_view actor_type, DataType dtype,
                             const std::vector<Shape>& in_shapes,
                             std::string_view impl_id) {
  entries_[key(actor_type, dtype, in_shapes)] = std::string(impl_id);
}

std::string SelectionHistory::serialize() const {
  std::string out;
  for (const auto& [k, v] : entries_) {
    out += k + " -> " + v + "\n";
  }
  return out;
}

SelectionHistory SelectionHistory::deserialize(std::string_view text) {
  SelectionHistory history;
  for (const std::string& line : split(text, '\n')) {
    if (line.empty() || line[0] == '#') continue;
    const size_t arrow = line.find(" -> ");
    if (arrow == std::string::npos) {
      throw ParseError("bad selection-history line: '" + line + "'");
    }
    history.entries_[line.substr(0, arrow)] = line.substr(arrow + 4);
  }
  return history;
}

void SelectionHistory::save(const std::filesystem::path& path) const {
  write_file(path, serialize());
}

SelectionHistory SelectionHistory::load(const std::filesystem::path& path) {
  return deserialize(read_file(path));
}

}  // namespace hcg::synth
