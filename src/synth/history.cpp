#include "synth/history.hpp"

#include <functional>

#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "support/fileio.hpp"
#include "support/logging.hpp"
#include "support/strings.hpp"

namespace hcg::synth {

std::string selection_key(std::string_view actor_type, DataType dtype,
                          const std::vector<Shape>& in_shapes) {
  std::string out(actor_type);
  out += " ";
  out += short_name(dtype);
  for (const Shape& s : in_shapes) {
    out += " ";
    out += s.to_string();
  }
  return out;
}

std::size_t SelectionHistory::shard_index(std::string_view key) {
  return std::hash<std::string_view>{}(key) % kShards;
}

void SelectionHistory::copy_from(const SelectionHistory& other) {
  for (std::size_t i = 0; i < kShards; ++i) {
    std::lock_guard<std::mutex> lock(other.shards_[i].mutex);
    shards_[i].entries = other.shards_[i].entries;
  }
  hits_.store(other.hits(), std::memory_order_relaxed);
  misses_.store(other.misses(), std::memory_order_relaxed);
}

SelectionHistory& SelectionHistory::operator=(const SelectionHistory& other) {
  if (this == &other) return *this;
  copy_from(other);
  return *this;
}

SelectionHistory& SelectionHistory::operator=(
    SelectionHistory&& other) noexcept {
  if (this == &other) return *this;
  copy_from(other);
  return *this;
}

std::optional<std::string> SelectionHistory::lookup(
    std::string_view actor_type, DataType dtype,
    const std::vector<Shape>& in_shapes) const {
  static obs::Counter& hit_metric =
      obs::Registry::instance().counter("synth.history.hits");
  static obs::Counter& miss_metric =
      obs::Registry::instance().counter("synth.history.misses");
  const std::string key = selection_key(actor_type, dtype, in_shapes);
  const Shard& shard = shards_[shard_index(key)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    miss_metric.add();
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  hit_metric.add();
  return it->second;
}

void SelectionHistory::store(std::string_view actor_type, DataType dtype,
                             const std::vector<Shape>& in_shapes,
                             std::string_view impl_id) {
  std::string key = selection_key(actor_type, dtype, in_shapes);
  Shard& shard = shards_[shard_index(key)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.entries[std::move(key)] = std::string(impl_id);
}

std::size_t SelectionHistory::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.entries.size();
  }
  return total;
}

void SelectionHistory::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.entries.clear();
  }
}

std::string SelectionHistory::serialize() const {
  // Merge the shards so the text form is sorted by key, independent of the
  // shard hash — serialized histories diff cleanly across runs.
  std::map<std::string, std::string> merged;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    merged.insert(shard.entries.begin(), shard.entries.end());
  }
  std::string out;
  for (const auto& [k, v] : merged) {
    out += k + " -> " + v + "\n";
  }
  return out;
}

SelectionHistory SelectionHistory::deserialize(std::string_view text) {
  SelectionHistory history;
  for (const std::string& line : split(text, '\n')) {
    if (line.empty() || line[0] == '#') continue;
    const size_t arrow = line.find(" -> ");
    if (arrow == std::string::npos) {
      throw ParseError("bad selection-history line: '" + line + "'");
    }
    std::string key = line.substr(0, arrow);
    Shard& shard = history.shards_[shard_index(key)];
    shard.entries[std::move(key)] = line.substr(arrow + 4);
  }
  return history;
}

SelectionHistory SelectionHistory::deserialize_tolerant(std::string_view text,
                                                        LoadStats* stats) {
  static obs::Counter& dropped_metric =
      obs::Registry::instance().counter("synth.history.dropped_lines");
  SelectionHistory history;
  LoadStats local;
  for (std::string line : split(text, '\n')) {
    if (!line.empty() && line.back() == '\r') line.pop_back();  // CRLF file
    if (line.empty() || line[0] == '#') continue;
    const size_t arrow = line.find(" -> ");
    std::string key =
        arrow == std::string::npos ? std::string() : line.substr(0, arrow);
    std::string value =
        arrow == std::string::npos ? std::string() : line.substr(arrow + 4);
    if (key.empty() || value.empty()) {
      // Corrupt or truncated entry (a torn legacy write, stray bytes, a
      // half-flushed final line): skip it, keep the rest of the cache.
      ++local.dropped;
      dropped_metric.add();
      continue;
    }
    Shard& shard = history.shards_[shard_index(key)];
    shard.entries[std::move(key)] = std::move(value);
    ++local.loaded;
  }
  if (local.dropped > 0) {
    log_warn("synth") << "selection history: dropped " << local.dropped
                      << " unparseable line(s), kept " << local.loaded;
  }
  if (stats != nullptr) *stats = local;
  return history;
}

void SelectionHistory::save(const std::filesystem::path& path) const {
  write_file_atomic(path, "# hcg-history-v1\n" + serialize());
}

SelectionHistory SelectionHistory::load(const std::filesystem::path& path,
                                        LoadStats* stats) {
  return deserialize_tolerant(read_file(path), stats);
}

}  // namespace hcg::synth
