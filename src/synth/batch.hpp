// Algorithm 2: code synthesis for batch computing actors.
//
// Maps a batch region's dataflow graph onto SIMD instructions by iterative
// largest-subgraph-first matching from the topmost-leftmost node, and emits
// the main vector loop plus the scalar remainder that handles lengths not
// divisible by the vector width.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "cgir/cgir.hpp"
#include "graph/regions.hpp"
#include "isa/instruction.hpp"
#include "model/model.hpp"

namespace hcg::synth {

/// Resolves the C array variable that holds the signal produced on
/// (actor, output port).  Provided by the surrounding code generator.
using BufferNameFn = std::function<std::string(ActorId, int port)>;

struct BatchOptions {
  /// Minimum region node count before SIMD synthesis is attempted (the
  /// threshold discussed in paper §4.3; 0 = always vectorize).
  int min_nodes_for_simd = 0;
};

struct BatchSynthResult {
  /// True when SIMD code was produced; false means the caller must fall
  /// back to conventionalTranslate (BatchCount < 1, Algorithm 2 lines 3-4,
  /// or the §4.3 threshold).
  bool used_simd = false;
  /// The emitted C snippet (remainder + main loop), `indent`-prefixed lines.
  /// Rendered from `remainder_body` + `vector_body`, so the string and the
  /// structured form always agree.
  std::string code;
  /// Instruction names selected, in emission order — white-box test surface.
  std::vector<std::string> instructions_used;
  int batch_size = 0;
  int batch_count = 0;
  int offset = 0;
  /// Scalable ISAs: the whole [0, length) domain is covered by one
  /// predicated loop — offset is 0, remainder_body stays empty, and the
  /// loop strides by the runtime lane-count expression `step_expr`.
  /// batch_size/batch_count then describe the minimum-granule geometry.
  bool predicated = false;
  std::string step_expr;
  /// Structured body lines (annotated with defines/loads/stores/accesses)
  /// for the cgir lowering: the main vector loop and the scalar remainder.
  /// Empty when used_simd is false.
  std::vector<cgir::Stmt> vector_body;
  std::vector<cgir::Stmt> remainder_body;
};

/// Synthesizes one batch region against an instruction table.  `buffer_name`
/// maps region externals and outputs to C arrays.  Throws
/// hcg::SynthesisError if a node cannot be mapped (which region construction
/// should have prevented).
BatchSynthResult synthesize_batch(const Model& model, const BatchRegion& region,
                                  const isa::VectorIsa& isa,
                                  const BufferNameFn& buffer_name,
                                  const BatchOptions& options = {},
                                  int indent = 1);

}  // namespace hcg::synth
