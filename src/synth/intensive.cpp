#include "synth/intensive.hpp"

#include <limits>

#include "actors/exec.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/faults.hpp"
#include "support/logging.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"

namespace hcg::synth {

namespace {

std::vector<Shape> input_shapes(const Actor& actor) {
  std::vector<Shape> shapes;
  for (const PortSpec& in : actor.inputs()) shapes.push_back(in.shape);
  return shapes;
}

void fill_random(Tensor& t, Rng& rng, bool diagonally_dominant) {
  const DataType comp = component_type(t.type());
  const int components = is_complex(t.type()) ? t.elements() * 2 : t.elements();
  for (int i = 0; i < components; ++i) {
    const double v = rng.uniform_real(-1.0, 1.0);
    if (comp == DataType::kFloat32) {
      t.as<float>()[i] = static_cast<float>(v);
    } else if (comp == DataType::kFloat64) {
      t.as<double>()[i] = v;
    } else {
      t.set_double(i, static_cast<double>(rng.uniform_int(-100, 100)));
    }
  }
  if (diagonally_dominant && t.shape().rank() == 2) {
    const int n = t.shape().dims[0];
    for (int i = 0; i < n; ++i) {
      const double bump = n + 1.0;
      if (comp == DataType::kFloat32) {
        t.as<float>()[i * n + i] += static_cast<float>(bump);
      } else if (comp == DataType::kFloat64) {
        t.as<double>()[i * n + i] += bump;
      }
    }
  }
}

/// Degraded-mode bookkeeping for one dropped candidate: warning log, the
/// per-reason failure metrics, and the failure record on the selection.
void drop_candidate(IntensiveSelection& result, const Actor& actor,
                    const std::string& impl_id, const char* reason,
                    const std::string& detail) {
  static obs::Counter& failures_metric =
      obs::Registry::instance().counter("synth.precalc.candidate_failures");
  failures_metric.add();
  obs::Registry::instance()
      .counter(std::string("synth.precalc.candidate_failures.") + reason)
      .add();
  log_warn("synth") << "Algorithm 1: dropping candidate " << impl_id
                    << " for " << actor.type() << " '" << actor.name()
                    << "' (" << reason << "): " << detail;
  result.failures.push_back({impl_id, reason, detail});
}

/// Serializes the stopwatch windows of concurrent pre-calculations: no two
/// candidates are ever timed at once, so a measurement never competes with
/// another measurement for cores, caches or memory bandwidth.  Warm-up runs
/// and input generation deliberately stay outside this mutex.
std::mutex& measurement_mutex() {
  static std::mutex mutex;
  return mutex;
}

}  // namespace

std::vector<Tensor> generate_test_inputs(const Actor& actor,
                                         std::uint64_t seed) {
  Rng rng(seed);
  const bool dominant = actor.type() == "MatInv" || actor.type() == "MatDet";
  std::vector<Tensor> inputs;
  for (const PortSpec& in : actor.inputs()) {
    Tensor t = make_tensor(in);
    fill_random(t, rng, dominant);
    inputs.push_back(std::move(t));
  }
  return inputs;
}

IntensiveSelection select_implementation(const Actor& actor,
                                         SelectionHistory& history,
                                         const IntensiveOptions& options) {
  HCG_TRACE_SCOPE("synth.intensive");
  static obs::Counter& stale_metric =
      obs::Registry::instance().counter("synth.history.stale");
  static obs::Counter& precalc_metric =
      obs::Registry::instance().counter("synth.precalc.runs");
  static obs::Counter& candidate_metric =
      obs::Registry::instance().counter("synth.precalc.candidates");
  static obs::Histogram& candidate_ns_metric =
      obs::Registry::instance().histogram("synth.precalc.candidate_ns");
  require(actor.is_resolved(), "select_implementation: unresolved actor");
  const DataType dtype = actor.input(0).type;
  const std::vector<Shape> shapes = input_shapes(actor);
  const kernels::CodeLibrary& library = kernels::CodeLibrary::instance();

  IntensiveSelection result;

  // Lines 3-6: preliminary lightweight search over the synthesis history.
  if (options.use_history) {
    if (auto hit = history.lookup(actor.type(), dtype, shapes)) {
      const kernels::KernelImpl* impl = library.find(*hit, dtype);
      if (impl != nullptr && impl->can_handle(dtype, shapes)) {
        result.impl = impl;
        result.from_history = true;
        return result;
      }
      // A stale entry (library changed since it was stored): fall through to
      // a fresh pre-calculation, which will overwrite it.
      stale_metric.add();
    }
  }
  precalc_metric.add();

  // Lines 7-8: load the code library and default to the general impl.
  std::vector<const kernels::KernelImpl*> impls =
      library.implementations(actor.type(), dtype);
  if (impls.empty()) {
    throw SynthesisError("no implementations for intensive actor type '" +
                         actor.type() + "' with element type " +
                         std::string(short_name(dtype)));
  }
  result.impl = &library.general_implementation(actor.type(), dtype);

  // Line 10: generateTestInput.
  const std::vector<Tensor> inputs = generate_test_inputs(actor, options.seed);
  std::vector<const Tensor*> input_ptrs;
  for (const Tensor& t : inputs) input_ptrs.push_back(&t);
  Tensor output = make_tensor(actor.output(0));

  // Lines 11-17: filter, measure, keep the cheapest.  A candidate that
  // fails — for real or through an armed precalc.measure fault — is dropped
  // with a warning instead of aborting the run (degraded mode).
  double min_cost = std::numeric_limits<double>::infinity();
  for (const kernels::KernelImpl* impl : impls) {
    if (!impl->can_handle(dtype, shapes)) continue;  // lines 12-13
    switch (faults::probe("precalc.measure", impl->id)) {
      case faults::Action::kNone:
        break;
      case faults::Action::kFail:
        drop_candidate(result, actor, impl->id, "compile",
                       "injected candidate compile failure");
        continue;
      case faults::Action::kTimeout:
        drop_candidate(result, actor, impl->id, "timeout",
                       "injected measurement timeout");
        continue;
      default:  // kThrow / kTorn: a simulated candidate crash
        drop_candidate(result, actor, impl->id, "crash",
                       "injected candidate crash");
        continue;
    }
    double best = std::numeric_limits<double>::infinity();
    try {
      // Warm-up run (also validates the kernel doesn't blow up on this
      // size).  Runs outside the measurement mutex: concurrent warm-ups are
      // fine.
      kernels::run_kernel(*impl, input_ptrs, &output);
      std::lock_guard<std::mutex> lock(measurement_mutex());
      Stopwatch budget;
      for (int rep = 0; rep < options.repetitions; ++rep) {
        Stopwatch timer;
        kernels::run_kernel(*impl, input_ptrs, &output);
        best = std::min(best, timer.elapsed_seconds());
        if (options.measure_budget_seconds > 0 &&
            budget.elapsed_seconds() >= options.measure_budget_seconds) {
          break;  // slow kernel: one long run is already noise-robust
        }
      }
    } catch (const std::exception& e) {
      drop_candidate(result, actor, impl->id, "exception", e.what());
      continue;
    }
    result.measured_costs[impl->id] = best;
    candidate_metric.add();
    candidate_ns_metric.observe(best * 1e9);
    if (best < min_cost) {  // lines 15-17
      min_cost = best;
      result.impl = impl;
    }
  }

  if (result.measured_costs.empty() && !result.failures.empty()) {
    // Every candidate that could handle the size failed: the general
    // implementation (already in result.impl since line 8) carries the run.
    static obs::Counter& fallback_metric =
        obs::Registry::instance().counter("synth.precalc.fallbacks");
    fallback_metric.add();
    result.degraded = true;
    log_warn("synth") << "Algorithm 1: all " << result.failures.size()
                      << " candidate(s) for " << actor.type() << " '"
                      << actor.name() << "' failed; falling back to reference "
                      << result.impl->id;
  }

  // Line 18: storeSelection.  A degraded fallback is deliberately not
  // memoized — the failure may be transient, and a poisoned warm cache
  // would silently pin the slow reference implementation forever.
  if (options.use_history && !result.degraded) {
    history.store(actor.type(), dtype, shapes, result.impl->id);
  }
  log_debug("synth") << "Algorithm 1: " << actor.type() << "/"
              << short_name(dtype) << " size " << shapes[0].to_string()
              << " -> " << result.impl->id;
  return result;
}

IntensiveSelection SingleFlightSelector::select(const Actor& actor,
                                                SelectionHistory& history,
                                                const IntensiveOptions& options) {
  static obs::Counter& dedup_metric =
      obs::Registry::instance().counter("synth.pool.dedup_hits");
  require(actor.is_resolved(), "SingleFlightSelector: unresolved actor");
  const std::string key =
      selection_key(actor.type(), actor.input(0).type, input_shapes(actor));

  std::promise<IntensiveSelection> promise;
  std::shared_future<IntensiveSelection> shared;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = done_.try_emplace(key);
    if (inserted) {
      it->second = promise.get_future().share();
      leader = true;
    }
    shared = it->second;
  }

  if (!leader) {
    // Follower: the measurement is (or was) in flight — share its result.
    dedup_hits_.fetch_add(1, std::memory_order_relaxed);
    dedup_metric.add();
    IntensiveSelection result = shared.get();
    result.deduped = true;
    return result;
  }

  try {
    IntensiveSelection result = select_implementation(actor, history, options);
    promise.set_value(result);
    return result;
  } catch (...) {
    // Followers blocked on the future see the same error the leader throws.
    promise.set_exception(std::current_exception());
    throw;
  }
}

}  // namespace hcg::synth
