// Algorithm 1: code synthesis for intensive computing actors.
//
// Selects the optimal implementation for an actor's concrete input scale by
// adaptively pre-calculating: every candidate that can handle the data type
// and size is run on randomly generated test input of exactly that size, and
// the cheapest wins.  Results are memoized in a SelectionHistory.
//
// Concurrency: select_implementation may be called from many threads at
// once (the parallel synthesis engine does exactly that).  Input generation,
// warm-up and can_handle filtering run fully parallel; only the timed
// repetitions serialize through a process-wide measurement mutex, so no two
// stopwatch windows ever overlap and the measured numbers stay trustworthy.
// SingleFlightSelector adds the dedup layer on top: concurrent requests for
// the same (type, dtype, shapes) key share one measurement run.
#pragma once

#include <future>
#include <map>
#include <mutex>
#include <string>

#include "kernels/library.hpp"
#include "model/model.hpp"
#include "synth/history.hpp"

namespace hcg::synth {

struct IntensiveOptions {
  /// Timing repetitions per candidate; the minimum is taken.
  int repetitions = 3;
  /// Per-candidate measurement budget: once the timed repetitions have
  /// consumed this much wall clock, the loop stops early (at least one
  /// repetition always runs).  Long kernel runs are noise-robust, so extra
  /// repetitions only stretch the serialized measurement section that
  /// every other synthesis thread waits behind.  <= 0 disables the budget.
  double measure_budget_seconds = 2e-3;
  /// Consult/update the selection history (Algorithm 1 lines 3-6, 18).
  bool use_history = true;
  /// Seed for generateTestInput.
  std::uint64_t seed = 0x4c4f54;
};

/// One candidate dropped by degraded-mode pre-calculation.  `reason` is one
/// of "compile" | "crash" | "timeout" | "exception" (docs/ROBUSTNESS.md);
/// the same strings key the synth.precalc.candidate_failures.* metrics and
/// the report's degraded section.
struct CandidateFailure {
  std::string impl;
  std::string reason;
  std::string detail;
};

struct IntensiveSelection {
  const kernels::KernelImpl* impl = nullptr;
  bool from_history = false;
  /// True when this result was shared from another in-flight or completed
  /// selection of the same key instead of being measured again.
  bool deduped = false;
  /// impl id -> measured seconds (empty on a history hit).
  std::map<std::string, double> measured_costs;
  /// Candidates dropped instead of measured (degraded mode).  Non-empty
  /// means the run was lossy; the selection is still usable.
  std::vector<CandidateFailure> failures;
  /// True when *no* candidate survived measurement and the selection fell
  /// back to the reference (general) implementation.  Degraded selections
  /// are not stored into the history, so a healthy later run re-measures.
  bool degraded = false;
};

/// Generates the random test input tensors for an actor's input specs
/// (generateTestInput, Algorithm 1 line 10).  MatInv inputs are made
/// diagonally dominant so every candidate sees an invertible matrix.
std::vector<Tensor> generate_test_inputs(const Actor& actor,
                                         std::uint64_t seed);

/// Runs Algorithm 1 for a resolved intensive actor.  Throws
/// hcg::SynthesisError if the actor type has no implementations.
///
/// Degraded mode: a candidate that throws during warm-up/measurement — or
/// is forced down by an armed `precalc.measure` fault — is dropped with a
/// warning and recorded in IntensiveSelection::failures instead of aborting
/// the generation; the general implementation is the guaranteed fallback
/// when every candidate fails.
IntensiveSelection select_implementation(const Actor& actor,
                                         SelectionHistory& history,
                                         const IntensiveOptions& options = {});

/// Single-flight dedup + in-run memoization over select_implementation.
///
/// The first caller for a (actor type, dtype, shapes) key runs the full
/// pre-calculation; concurrent callers for the same key block on its future
/// and share the result, and later callers get it without waiting.  One
/// instance spans one code-generation run, so duplicate actors in a model
/// never re-measure even with the history disabled or at --jobs 1.
/// Thread-safe.
class SingleFlightSelector {
 public:
  IntensiveSelection select(const Actor& actor, SelectionHistory& history,
                            const IntensiveOptions& options = {});

  /// Requests that were answered from another caller's measurement.
  std::uint64_t dedup_hits() const {
    return dedup_hits_.load(std::memory_order_relaxed);
  }

 private:
  std::mutex mutex_;
  std::map<std::string, std::shared_future<IntensiveSelection>> done_;
  std::atomic<std::uint64_t> dedup_hits_{0};
};

}  // namespace hcg::synth
