// Algorithm 1: code synthesis for intensive computing actors.
//
// Selects the optimal implementation for an actor's concrete input scale by
// adaptively pre-calculating: every candidate that can handle the data type
// and size is run on randomly generated test input of exactly that size, and
// the cheapest wins.  Results are memoized in a SelectionHistory.
#pragma once

#include <map>
#include <string>

#include "kernels/library.hpp"
#include "model/model.hpp"
#include "synth/history.hpp"

namespace hcg::synth {

struct IntensiveOptions {
  /// Timing repetitions per candidate; the minimum is taken.
  int repetitions = 3;
  /// Consult/update the selection history (Algorithm 1 lines 3-6, 18).
  bool use_history = true;
  /// Seed for generateTestInput.
  std::uint64_t seed = 0x4c4f54;
};

struct IntensiveSelection {
  const kernels::KernelImpl* impl = nullptr;
  bool from_history = false;
  /// impl id -> measured seconds (empty on a history hit).
  std::map<std::string, double> measured_costs;
};

/// Generates the random test input tensors for an actor's input specs
/// (generateTestInput, Algorithm 1 line 10).  MatInv inputs are made
/// diagonally dominant so every candidate sees an invertible matrix.
std::vector<Tensor> generate_test_inputs(const Actor& actor,
                                         std::uint64_t seed);

/// Runs Algorithm 1 for a resolved intensive actor.  Throws
/// hcg::SynthesisError if the actor type has no implementations.
IntensiveSelection select_implementation(const Actor& actor,
                                         SelectionHistory& history,
                                         const IntensiveOptions& options = {});

}  // namespace hcg::synth
