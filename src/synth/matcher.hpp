// Subgraph-to-instruction pattern matching (the getMatchInstruction step of
// Algorithm 2).
//
// A subgraph (member node indices, sink last) matches an instruction when
// the instruction's pattern tree covers exactly the subgraph's nodes with
// compatible ops/types, every vector-input slot binds consistently to a
// value available outside the subgraph, scalar/immediate slots bind to the
// graph's constant operands, and commutative ops may swap operands.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "graph/dataflow.hpp"
#include "isa/instruction.hpp"

namespace hcg::synth {

struct MatchBinding {
  /// Input slot number (1-based, I1..) -> bound value.
  std::map<int, ValueRef> inputs;
  bool has_scalar = false;
  double scalar = 0.0;
  bool has_imm = false;
  long long imm = 0;
};

/// Tries to match `ins` against `subgraph` of `graph` (sink last).  Returns
/// the binding on success.
std::optional<MatchBinding> match_instruction(const Dataflow& graph,
                                              const std::vector<int>& subgraph,
                                              const isa::Instruction& ins);

/// Searches all candidates of `isa` whose root op/type fit the subgraph's
/// sink, in descending pattern-cost order; returns the first match.
struct InstructionMatch {
  const isa::Instruction* instruction = nullptr;
  MatchBinding binding;
};
std::optional<InstructionMatch> find_matching_instruction(
    const Dataflow& graph, const std::vector<int>& subgraph,
    const isa::VectorIsa& isa);

}  // namespace hcg::synth
