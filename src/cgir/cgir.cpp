#include "cgir/cgir.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"

namespace hcg::cgir {

namespace {

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

void print_stmt(const Stmt& stmt, int depth, std::string& out) {
  const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  if (stmt.kind == Stmt::Kind::kText) {
    // Empty text prints as a blank separator line, not an indented one.
    if (stmt.text.empty()) {
      out += "\n";
    } else {
      out += pad + stmt.text + "\n";
    }
    return;
  }
  if (stmt.banner_actors > 0) {
    out += pad + "/* batch region (" + std::to_string(stmt.banner_actors) +
           " actors) -> " + stmt.banner_isa + " SIMD */\n";
  }
  const std::string& iv = stmt.induction_var;
  if (stmt.single_iteration) {
    out += pad + "{\n";
    out += pad + "  const int " + iv + " = " + std::to_string(stmt.begin) +
           ";\n";
  } else if (stmt.predicated) {
    out += pad + "for (int " + iv + " = " + std::to_string(stmt.begin) +
           "; " + iv + " < " + std::to_string(stmt.end) + "; " + iv + " += " +
           stmt.step_expr + ") {\n";
  } else if (stmt.vector_loop) {
    out += pad + "for (int " + iv + " = " + std::to_string(stmt.begin) +
           "; " + iv + " < " + std::to_string(stmt.end) + "; " + iv + " += " +
           std::to_string(stmt.step) + ") {\n";
  } else {
    out += pad + "for (int " + iv + " = " + std::to_string(stmt.begin) +
           "; " + iv + " < " + std::to_string(stmt.end) + "; ++" + iv +
           ") {\n";
  }
  for (const Stmt& child : stmt.body) print_stmt(child, depth + 1, out);
  out += pad + "}\n";
}

}  // namespace

std::string print_decl(const BufferDecl& decl) {
  if (decl.is_const) {
    return "static const " + decl.ctype + " " + decl.name + "[" +
           std::to_string(decl.components) + "] = {" + decl.init_values + "};";
  }
  return "static " + decl.ctype + " " + decl.name + "[" +
         std::to_string(decl.components) + "];";
}

std::string print(const TranslationUnit& tu) {
  std::string out;
  for (const std::string& line : tu.header_lines) out += line + "\n";
  if (!tu.kernel_sources.empty()) {
    out += "/* ---- intensive-actor kernel library (embedded) ---- */\n";
    for (const std::string& source : tu.kernel_sources) {
      out += source;
      out += "\n";
    }
  }
  out += "/* ---- signal buffers ---- */\n";
  for (const BufferDecl& decl : tu.buffers) out += print_decl(decl) + "\n";
  out += "\n";
  out += tu.init.opener + "\n";
  for (const Stmt& stmt : tu.init.body) print_stmt(stmt, 1, out);
  out += "}\n\n";
  out += tu.step.opener + "\n";
  for (const Stmt& stmt : tu.step.body) print_stmt(stmt, 1, out);
  out += "}\n";
  return out;
}

// ---------------------------------------------------------------------------
// Dump ("cgir-v1": one line per IR node, children indented two spaces)
// ---------------------------------------------------------------------------

namespace {

std::string quoted(const std::string& text) {
  std::string out = "\"";
  for (char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  out += "\"";
  return out;
}

std::string access_list(const std::vector<BufferAccess>& accesses) {
  std::string out;
  for (const BufferAccess& a : accesses) {
    if (!out.empty()) out += ",";
    out += a.buffer;
    out += a.write ? ":w" : ":r";
    if (a.elementwise) out += "e";
  }
  return out;
}

void dump_stmt(const Stmt& stmt, int depth, std::string& out) {
  const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  if (stmt.kind == Stmt::Kind::kText) {
    out += pad + "text t=" + quoted(stmt.text);
    if (!stmt.defines.empty()) out += " def=" + stmt.defines;
    if (!stmt.stores_var.empty()) out += " var=" + stmt.stores_var;
    if (stmt.is_load) out += " load=1";
    if (stmt.is_store) out += " store=1";
    if (!stmt.accesses.empty()) out += " acc=" + access_list(stmt.accesses);
    if (!stmt.prof_tag.empty()) out += " prof=" + quoted(stmt.prof_tag);
    out += "\n";
    return;
  }
  out += pad + "loop begin=" + std::to_string(stmt.begin) +
         " end=" + std::to_string(stmt.end) +
         " step=" + std::to_string(stmt.step);
  if (stmt.vector_loop) out += " vector=1";
  if (stmt.single_iteration) out += " single=1";
  if (stmt.fusible) out += " fusible=1";
  if (stmt.strip_mined) out += " strip=1";
  if (stmt.predicated) out += " pred=1 stepx=" + quoted(stmt.step_expr);
  if (stmt.induction_var != "i") out += " ivar=" + stmt.induction_var;
  if (stmt.banner_actors > 0) {
    out += " actors=" + std::to_string(stmt.banner_actors) +
           " isa=" + quoted(stmt.banner_isa);
  }
  out += "\n";
  for (const Stmt& child : stmt.body) dump_stmt(child, depth + 1, out);
}

}  // namespace

std::string dump(const TranslationUnit& tu) {
  std::string out = "cgir-v1\n";
  for (const std::string& line : tu.header_lines) {
    out += "header t=" + quoted(line) + "\n";
  }
  for (const std::string& source : tu.kernel_sources) {
    out += "kernel t=" + quoted(source) + "\n";
  }
  for (const BufferDecl& decl : tu.buffers) {
    out += "buffer name=" + decl.name + " ctype=" + quoted(decl.ctype) +
           " components=" + std::to_string(decl.components) +
           " elem_bytes=" + std::to_string(decl.elem_bytes) +
           " const=" + (decl.is_const ? std::string("1") : std::string("0")) +
           " eligible=" +
           (decl.arena_eligible ? std::string("1") : std::string("0")) +
           " init=" + quoted(decl.init_values) + "\n";
  }
  out += "func init opener=" + quoted(tu.init.opener) + "\n";
  for (const Stmt& stmt : tu.init.body) dump_stmt(stmt, 1, out);
  out += "func step opener=" + quoted(tu.step.opener) + "\n";
  for (const Stmt& stmt : tu.step.body) dump_stmt(stmt, 1, out);
  return out;
}

// ---------------------------------------------------------------------------
// Parser for the dump format
// ---------------------------------------------------------------------------

namespace {

/// Splits one dump line into "key=value" fields.  Values are either bare
/// tokens (up to the next space) or quoted strings with \\ \" \n escapes.
std::vector<std::pair<std::string, std::string>> parse_fields(
    std::string_view line, std::size_t start) {
  std::vector<std::pair<std::string, std::string>> fields;
  std::size_t i = start;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    if (i >= line.size()) break;
    const std::size_t eq = line.find('=', i);
    if (eq == std::string_view::npos) {
      throw ParseError("cgir dump: expected key=value in '" +
                       std::string(line) + "'");
    }
    std::string key(line.substr(i, eq - i));
    std::string value;
    i = eq + 1;
    if (i < line.size() && line[i] == '"') {
      ++i;
      while (i < line.size() && line[i] != '"') {
        if (line[i] == '\\' && i + 1 < line.size()) {
          ++i;
          value += line[i] == 'n' ? '\n' : line[i];
        } else {
          value += line[i];
        }
        ++i;
      }
      if (i >= line.size()) {
        throw ParseError("cgir dump: unterminated string in '" +
                         std::string(line) + "'");
      }
      ++i;  // closing quote
    } else {
      const std::size_t end = line.find(' ', i);
      value = std::string(
          line.substr(i, end == std::string_view::npos ? end : end - i));
      i = end == std::string_view::npos ? line.size() : end;
    }
    fields.emplace_back(std::move(key), std::move(value));
  }
  return fields;
}

std::string field(
    const std::vector<std::pair<std::string, std::string>>& fields,
    const std::string& key, const std::string& fallback = "") {
  for (const auto& [k, v] : fields) {
    if (k == key) return v;
  }
  return fallback;
}

std::vector<BufferAccess> parse_access_list(const std::string& text) {
  std::vector<BufferAccess> accesses;
  if (text.empty()) return accesses;
  for (const std::string& piece : split(text, ',')) {
    const std::size_t colon = piece.rfind(':');
    if (colon == std::string::npos) {
      throw ParseError("cgir dump: bad access '" + piece + "'");
    }
    BufferAccess access;
    access.buffer = piece.substr(0, colon);
    const std::string mode = piece.substr(colon + 1);
    access.write = !mode.empty() && mode[0] == 'w';
    access.elementwise = ends_with(mode, "e");
    accesses.push_back(std::move(access));
  }
  return accesses;
}

}  // namespace

TranslationUnit parse_dump(const std::string& text) {
  TranslationUnit tu;
  const std::vector<std::string> raw = [&] {
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start <= text.size()) {
      const std::size_t nl = text.find('\n', start);
      if (nl == std::string::npos) {
        if (start < text.size()) lines.push_back(text.substr(start));
        break;
      }
      lines.push_back(text.substr(start, nl - start));
      start = nl + 1;
    }
    return lines;
  }();
  if (raw.empty() || raw[0] != "cgir-v1") {
    throw ParseError("cgir dump: missing cgir-v1 signature");
  }

  Function* func = nullptr;
  // Stack of open statement bodies by depth; depth 0 is the function body.
  std::vector<std::vector<Stmt>*> bodies;

  for (std::size_t n = 1; n < raw.size(); ++n) {
    const std::string& line = raw[n];
    if (line.empty()) continue;
    std::size_t indent = 0;
    while (indent < line.size() && line[indent] == ' ') ++indent;
    const std::size_t depth = indent / 2;
    std::size_t word_end = line.find(' ', indent);
    const std::string word = line.substr(
        indent, word_end == std::string::npos ? word_end : word_end - indent);
    std::string func_name;
    if (word == "func" && word_end != std::string::npos) {
      // "func init opener=..." — the function name is a bare second word.
      const std::size_t name_start = word_end + 1;
      const std::size_t name_end = line.find(' ', name_start);
      func_name = line.substr(name_start, name_end == std::string::npos
                                              ? name_end
                                              : name_end - name_start);
      word_end = name_end;
    }
    const auto fields = parse_fields(
        line, word_end == std::string::npos ? line.size() : word_end);

    if (word == "header") {
      tu.header_lines.push_back(field(fields, "t"));
    } else if (word == "kernel") {
      tu.kernel_sources.push_back(field(fields, "t"));
    } else if (word == "buffer") {
      BufferDecl decl;
      decl.name = field(fields, "name");
      decl.ctype = field(fields, "ctype");
      decl.components = static_cast<int>(parse_int(field(fields, "components", "0")));
      decl.elem_bytes =
          static_cast<std::size_t>(parse_int(field(fields, "elem_bytes", "0")));
      decl.is_const = field(fields, "const") == "1";
      decl.arena_eligible = field(fields, "eligible") == "1";
      decl.init_values = field(fields, "init");
      tu.buffers.push_back(std::move(decl));
    } else if (word == "func") {
      if (func_name != "init" && func_name != "step") {
        throw ParseError("cgir dump: unknown function '" + func_name + "'");
      }
      func = func_name == "init" ? &tu.init : &tu.step;
      func->opener = field(fields, "opener");
      bodies.assign(1, &func->body);
    } else if (word == "text" || word == "loop") {
      if (func == nullptr || depth < 1 || depth > bodies.size()) {
        throw ParseError("cgir dump: statement outside a function at line " +
                         std::to_string(n + 1));
      }
      bodies.resize(depth);  // close deeper loops
      Stmt stmt;
      if (word == "text") {
        stmt.kind = Stmt::Kind::kText;
        stmt.text = field(fields, "t");
        stmt.defines = field(fields, "def");
        stmt.stores_var = field(fields, "var");
        stmt.is_load = field(fields, "load") == "1";
        stmt.is_store = field(fields, "store") == "1";
        stmt.accesses = parse_access_list(field(fields, "acc"));
        stmt.prof_tag = field(fields, "prof");
        bodies.back()->push_back(std::move(stmt));
      } else {
        stmt.kind = Stmt::Kind::kLoop;
        stmt.begin = static_cast<int>(parse_int(field(fields, "begin", "0")));
        stmt.end = static_cast<int>(parse_int(field(fields, "end", "0")));
        stmt.step = static_cast<int>(parse_int(field(fields, "step", "1")));
        stmt.vector_loop = field(fields, "vector") == "1";
        stmt.single_iteration = field(fields, "single") == "1";
        stmt.fusible = field(fields, "fusible") == "1";
        stmt.strip_mined = field(fields, "strip") == "1";
        stmt.predicated = field(fields, "pred") == "1";
        stmt.step_expr = field(fields, "stepx");
        stmt.induction_var = field(fields, "ivar", "i");
        stmt.banner_actors =
            static_cast<int>(parse_int(field(fields, "actors", "0")));
        stmt.banner_isa = field(fields, "isa");
        bodies.back()->push_back(std::move(stmt));
        bodies.push_back(&bodies.back()->back().body);
      }
    } else {
      throw ParseError("cgir dump: unknown node '" + word + "'");
    }
  }
  return tu;
}

}  // namespace hcg::cgir
