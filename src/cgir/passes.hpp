// Optimization passes over the codegen IR.
//
// The pipeline runs three passes in order:
//
//   1. Loop fusion — adjacent region loops with the same iteration domain
//      merge into one loop when every buffer they share is accessed
//      elementwise (so per-iteration body order preserves semantics).
//      Statements sitting between two fusion candidates either stay behind
//      the merged loop (when independent of the later loop) or hoist above
//      it (when independent of the earlier loop and everything that stays).
//   2. Copy forwarding — inside fused vector loops, a load of a buffer that
//      an earlier line in the same body stored becomes a rename of the
//      stored vector variable; inside scalar remainder loops, `buf[i]`
//      reads of a just-stored element become the stored scalar variable.
//      Handoff buffers left with stores but no remaining reads are deleted
//      together with their declarations (dead-copy elimination).
//   3. Arena reuse — intermediate signal buffers whose live ranges (first
//      write to last access, at whole-statement granularity) do not overlap
//      rebind onto shared arena slots, shrinking static footprint.
//
// At -O2 four more passes join the pipeline (see PassOptions): cross-scale
// producer-consumer fusion (strip-mine a scalar loop into an adjacent vector
// loop's shape, then fuse), scalar-loop tiling (constant-trip inner chunks
// plus a tail), coalescing-aware buffer layout (declaration reordering by
// first co-access), and strip-body lane localization (strip-mined lane loops
// compute through fixed-size local lane buffers moved with full-width block
// copies).  The -O2 order is fuse_loops, fuse_cross_scale, forward_copies,
// eliminate_dead_buffers, tile_loops, reuse_arena, coalesce_layout,
// localize_strips, with the verifier checkpoint after every pass.
//
// All passes are deterministic: they iterate the tree in order and never
// consult addresses, hashes, or time.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "cgir/cgir.hpp"

namespace hcg::cgir {

struct PassStats;

/// Called after each pass with the pass's name and the rewritten unit.
/// codegen installs the cgir verifier here (analysis/verifier.hpp), so a
/// pass that breaks an invariant is caught naming the pass that broke it.
/// The hook may throw; run_passes lets the exception propagate.
using PassHook =
    std::function<void(std::string_view pass, const TranslationUnit& tu,
                       const PassStats& stats)>;

struct PassOptions {
  bool fuse_loops = true;    // pass 1 + the forwarding it exposes (pass 2)
  bool reuse_arena = true;   // pass 3
  // ---- -O2 passes (all default off; -O1 output is pinned) --------------
  /// Producer-consumer fusion across scale boundaries: a conventional
  /// scalar loop over [0, n) that could not join a batch region strip-mines
  /// into the shape of an adjacent vector loop over the same width (outer
  /// loop strides by the vector step, a strip_mined inner lane loop covers
  /// the gap), then the same-shape fuser merges the pair.  A strip-mine
  /// that fails to fuse is rolled back.
  bool fuse_cross_scale = false;
  /// Chunk large scalar loops into a constant-trip inner loop (outer loop
  /// strides by tile_elems, strip_mined inner covers the tile) plus a
  /// scalar tail, giving the C compiler a known trip count to unroll and
  /// vectorize.
  bool tile_scalar_loops = false;
  /// Re-order buffer declarations so buffers co-accessed by the same
  /// top-level statement of the step body are adjacent in memory.
  bool coalesce_layout = false;
  /// Rewrite each strip-mined lane loop whose body indexes arrays purely
  /// elementwise to compute through fixed-size local lane buffers, moved
  /// with full-width memcpy block copies.  The lane loop then runs over
  /// distinct locals (no runtime alias checks, so conservative host-compiler
  /// cost models still vectorize it) and never interleaves scalar byte
  /// stores with the surrounding vector loads/stores (which would defeat
  /// store-to-load forwarding).
  bool localize_strips = false;
  /// Tile width for tile_scalar_loops; 0 picks a static heuristic.  Must
  /// be derived deterministically (never from timings): generated code is
  /// byte-identical across runs and job counts.
  int tile_elems = 0;
  PassHook after_pass;       // optional per-pass checkpoint (verifier)
};

/// One buffer the arena-reuse pass renamed onto a shared slot, with the live
/// range (statement indices over the flattened step body) that justified the
/// rebinding.  Kept in PassStats so the verifier can re-check disjointness:
/// after renaming, overlaps are invisible in the IR itself.
struct ArenaBinding {
  std::string slot;    // arena slot buffer name the member was renamed to
  std::string buffer;  // original buffer name
  int first_write = -1;
  int last_access = -1;
};

/// What the pipeline did, for the obs report and metrics.
struct PassStats {
  int loops_fused = 0;          // number of merge events (N loops -> N-1)
  int copies_elided = 0;        // forwarded loads / dead stores removed
  int buffers_eliminated = 0;   // handoff buffers deleted outright
  int buffers_rebound = 0;      // buffers renamed onto arena slots
  std::size_t arena_bytes_saved = 0;
  // ---- -O2 ------------------------------------------------------------
  int cross_scale_fused = 0;    // strip-mined loops merged into vector loops
  int loops_tiled = 0;          // scalar loops chunked by tile_scalar_loops
  int buffers_relocated = 0;    // decls moved by the layout pass
  int strips_localized = 0;     // strip bodies rewritten onto lane buffers
  int stride1_accesses = 0;     // elementwise accesses in the final step body
  std::vector<ArenaBinding> arena_bindings;  // one entry per rebound buffer
};

/// Runs the enabled passes over `tu` in place and reports their effect.
PassStats run_passes(TranslationUnit& tu, const PassOptions& options);

// ---------------------------------------------------------------------------
// Profiling instrumentation (hcgc --profile-gen, docs/PROFILING.md)
// ---------------------------------------------------------------------------

/// One instrumented site of the step function: a region loop (vector body,
/// scalar remainder, or a fused loop) or an intensive kernel call.
struct ProfileSite {
  std::string id;     // "L0", "L1", ... for loops; "I0", ... for calls
  std::string kind;   // "vector" | "scalar" | "intensive"
  std::string label;  // "batch_region(5 actors, neon)" or "actor:impl"
  long long iters_per_call = 1;  // loop trips per step() call (1 for calls)
};

struct ProfileOptions {
  std::string model_name;  // embedded into the hcg-profile-v1 dump
};

/// Wraps every top-level loop of the step body and every statement carrying
/// an "intensive:" prof_tag in per-site nanosecond counters, and appends the
/// profiling runtime (counter arrays, hcg_prof_now_ns(), hcg_prof_dump())
/// to the unit's header.  Everything is guarded by the HCG_PROF preprocessor
/// macro: compiled without -DHCG_PROF the instrumented source is behaviorally
/// identical to the un-instrumented one (the macros expand to nothing).
/// hcg_prof_dump(path) writes an "hcg-profile-v1" JSON file keyed by site id.
/// Returns the site table in emission order.  Run this AFTER run_passes —
/// it instruments the final loop structure, and the verifier checkpoints
/// never see the injected statements.
std::vector<ProfileSite> instrument_profiling(TranslationUnit& tu,
                                              const ProfileOptions& options);

}  // namespace hcg::cgir
