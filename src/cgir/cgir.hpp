// Structured codegen IR: a small C-AST sitting between synthesis and text.
//
// The emitter lowers scheduled actors and matched batch regions into a
// TranslationUnit instead of concatenating strings; optimization passes
// (cgir/passes.hpp) then rewrite the tree — fusing region loops, forwarding
// buffer handoffs, rebinding intermediate buffers onto an arena — before the
// deterministic pretty-printer turns it back into C.  print() reproduces the
// historical string emitter byte for byte when no pass has run.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hcg::cgir {

/// One static array touched by a statement.  `elementwise` means the access
/// is `buffer[i]` under the enclosing loop's induction variable, so two
/// elementwise accesses with disjoint iteration domains never alias.
struct BufferAccess {
  std::string buffer;
  bool write = false;
  bool elementwise = false;

  bool operator==(const BufferAccess&) const = default;
};

/// A statement: either one line of C text or a counted `for` loop.
///
/// Text statements carry just enough structure for the passes to reason
/// about them: which local they define, which buffers they touch, and
/// whether they are a pure load (`v = vld(&buf[i]);`) or a pure store
/// (`buf[i] = v;`) — the two shapes dead-copy forwarding rewrites.
struct Stmt {
  enum class Kind : unsigned char { kText, kLoop };

  Kind kind = Kind::kText;

  // ---- kText ---------------------------------------------------------
  std::string text;        // the C line, unindented, no trailing newline
  std::string defines;     // local variable this line declares ("" = none)
  std::string stores_var;  // for is_store lines: the value being stored
  bool is_load = false;    // pure elementwise load into `defines`
  bool is_store = false;   // pure elementwise store of `stores_var`
  std::vector<BufferAccess> accesses;
  /// Profiling site tag ("intensive:<actor>:<impl>") set by the emitter on
  /// statements the --profile-gen instrumentation pass should wrap.  Empty
  /// for everything else; carried losslessly through dump()/parse_dump().
  std::string prof_tag;

  // ---- kLoop ---------------------------------------------------------
  int begin = 0;
  int end = 0;
  int step = 1;
  bool vector_loop = false;      // `i += step` stride instead of `++i`
  bool single_iteration = false; // `{ const int i = begin; ... }` block
  bool fusible = false;          // region loop eligible for loop fusion
  /// Predicated vector-length-agnostic loop (scalable ISAs): strides by the
  /// runtime lane-count expression `step_expr` and covers [begin, end) by
  /// itself — no scalar remainder exists.  `step` keeps the minimum-granule
  /// lane count so trip estimates stay integer-valued; passes that reshape
  /// iteration domains (fusion, tiling, strip-mining) must leave these
  /// loops alone, since the true stride is unknown until runtime.
  bool predicated = false;
  std::string step_expr;         // runtime stride, e.g. "svcntw()"
  /// Inner lane loop produced by strip-mining: iterates `induction_var`
  /// over [0, outer step) while the enclosing loop strides by its step, so
  /// the pair together walks the outer loop's full [begin, end) domain.
  /// Elementwise accesses inside a strip-mined loop index `i + <var>` and
  /// belong to the *enclosing* loop's iteration domain, not this one's.
  bool strip_mined = false;
  std::string induction_var = "i";  // loop variable name in printed C
  int banner_actors = 0;         // > 0: print the batch-region banner
  std::string banner_isa;
  std::vector<Stmt> body;

  static Stmt text_line(std::string line) {
    Stmt s;
    s.text = std::move(line);
    return s;
  }
};

/// One static buffer declaration.  `arena_eligible` marks plain intermediate
/// signal buffers (not constants, delay state, or I/O aliases) that the
/// buffer-reuse pass may rebind onto shared arena slots.
struct BufferDecl {
  std::string name;
  std::string ctype;
  int components = 0;
  std::size_t elem_bytes = 0;
  bool is_const = false;
  std::string init_values;  // joined literal list for const decls
  bool arena_eligible = false;

  std::size_t bytes() const {
    return static_cast<std::size_t>(components) * elem_bytes;
  }
};

/// A function with a fixed opening line ("void m_init(void) {") and a body.
struct Function {
  std::string opener;
  std::vector<Stmt> body;
};

/// A whole generated C translation unit.
struct TranslationUnit {
  std::vector<std::string> header_lines;    // printed verbatim, one per line
  std::vector<std::string> kernel_sources;  // embedded kernel C, verbatim
  std::vector<BufferDecl> buffers;
  Function init;
  Function step;
};

/// Deterministic pretty-printer.  Statement depth d indents 2*d spaces;
/// loops print their optional batch-region banner, then the `for` header
/// (or the single-iteration block form), body at depth d+1, and `}`.
std::string print(const TranslationUnit& tu);

/// The C declaration line for one buffer (exactly as print() emits it).
std::string print_decl(const BufferDecl& decl);

/// Serializes the IR one line per node, in stable order ("cgir-v1" format).
/// The dump is lossless: parse_dump() reconstructs an equivalent tree, so
/// print(parse_dump(dump(tu))) == print(tu).
std::string dump(const TranslationUnit& tu);

/// Inverse of dump().  Throws hcg::ParseError on malformed input.
TranslationUnit parse_dump(const std::string& text);

}  // namespace hcg::cgir
