#include "cgir/passes.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "support/faults.hpp"
#include "support/strings.hpp"

namespace hcg::cgir {
namespace {

// ---------------------------------------------------------------------------
// Access summaries.
//
// A statement's effect on memory is summarized as a list of (buffer, write,
// range) entries.  Elementwise accesses inside a loop cover exactly the
// loop's iteration domain [begin, end); everything else is treated as
// touching the whole buffer.  Two ranged accesses with disjoint domains
// never alias, which is what lets a scalar remainder loop over [0, off)
// slide past a vector loop over [off, len).
// ---------------------------------------------------------------------------

struct AccessSummary {
  std::string buffer;
  bool write = false;
  bool ranged = false;
  int begin = 0;
  int end = 0;
};

std::vector<AccessSummary> summarize(const Stmt& stmt) {
  std::vector<AccessSummary> out;
  if (stmt.kind == Stmt::Kind::kText) {
    for (const BufferAccess& access : stmt.accesses) {
      out.push_back({access.buffer, access.write, false, 0, 0});
    }
    return out;
  }
  for (const Stmt& line : stmt.body) {
    for (const AccessSummary& access : summarize(line)) {
      AccessSummary entry = access;
      entry.ranged = false;
      out.push_back(entry);
    }
    if (line.kind == Stmt::Kind::kText) {
      // Re-tag the direct children: elementwise accesses are confined to
      // this loop's iteration domain.
      std::size_t base = out.size() - line.accesses.size();
      for (std::size_t k = 0; k < line.accesses.size(); ++k) {
        if (line.accesses[k].elementwise) {
          out[base + k].ranged = true;
          out[base + k].begin = stmt.begin;
          out[base + k].end = stmt.end;
        }
      }
    }
  }
  return out;
}

bool disjoint(const AccessSummary& a, const AccessSummary& b) {
  return a.ranged && b.ranged && (a.end <= b.begin || b.end <= a.begin);
}

bool conflicts(const std::vector<AccessSummary>& a,
               const std::vector<AccessSummary>& b) {
  for (const AccessSummary& lhs : a) {
    for (const AccessSummary& rhs : b) {
      if (lhs.buffer != rhs.buffer) continue;
      if (!lhs.write && !rhs.write) continue;
      if (disjoint(lhs, rhs)) continue;
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Loop fusion.
// ---------------------------------------------------------------------------

bool same_shape(const Stmt& a, const Stmt& b) {
  return a.begin == b.begin && a.end == b.end && a.step == b.step &&
         a.vector_loop == b.vector_loop &&
         a.single_iteration == b.single_iteration;
}

const std::string* read_buffer(const Stmt& line) {
  for (const BufferAccess& access : line.accesses) {
    if (!access.write) return &access.buffer;
  }
  return nullptr;
}

const std::string* write_buffer(const Stmt& line) {
  for (const BufferAccess& access : line.accesses) {
    if (access.write) return &access.buffer;
  }
  return nullptr;
}

std::set<std::string> stored_buffers(const Stmt& loop) {
  std::set<std::string> stored;
  for (const Stmt& line : loop.body) {
    if (!line.is_store) continue;
    if (const std::string* buf = write_buffer(line)) stored.insert(*buf);
  }
  return stored;
}

/// Merging `later` into `earlier` preserves semantics when every buffer the
/// two bodies share (with at least one write) is accessed elementwise on
/// both sides: with identical iteration domains, running the bodies
/// back-to-back per iteration sees exactly the values the separate loops
/// saw.  Local-variable collisions are allowed only when forwarding or
/// deduplication is guaranteed to remove the colliding line.
bool merge_compatible(const Stmt& earlier, const Stmt& later) {
  for (const Stmt& a : earlier.body) {
    for (const BufferAccess& lhs : a.accesses) {
      for (const Stmt& b : later.body) {
        for (const BufferAccess& rhs : b.accesses) {
          if (lhs.buffer != rhs.buffer) continue;
          if (!lhs.write && !rhs.write) continue;
          if (!lhs.elementwise || !rhs.elementwise) return false;
        }
      }
    }
  }
  std::map<std::string, const Stmt*> defined;
  for (const Stmt& a : earlier.body) {
    if (!a.defines.empty()) defined.emplace(a.defines, &a);
  }
  std::set<std::string> stored = stored_buffers(earlier);
  for (const Stmt& b : later.body) {
    if (b.defines.empty()) continue;
    auto it = defined.find(b.defines);
    if (it == defined.end()) continue;
    if (b.is_load) {
      const std::string* buf = read_buffer(b);
      if (buf != nullptr && stored.count(*buf)) continue;   // forwarded away
      if (it->second->text == b.text) continue;             // shared load
    }
    return false;
  }
  return true;
}

/// Appends `later`'s body to `earlier`'s, dropping loads that duplicate a
/// load `earlier` already performs (same variable, same text).
void merge_bodies(Stmt& earlier, Stmt&& later, PassStats& stats) {
  // Keep copies, not Stmt pointers: the push_back below grows earlier.body
  // and would invalidate any pointer into it.
  std::map<std::string, std::string> defined;
  for (const Stmt& a : earlier.body) {
    if (!a.defines.empty()) defined.emplace(a.defines, a.text);
  }
  std::set<std::string> stored = stored_buffers(earlier);
  for (Stmt& line : later.body) {
    if (line.is_load && !line.defines.empty()) {
      auto it = defined.find(line.defines);
      const std::string* buf = read_buffer(line);
      if (it != defined.end() && it->second == line.text &&
          (buf == nullptr || !stored.count(*buf))) {
        ++stats.copies_elided;
        continue;
      }
    }
    earlier.body.push_back(std::move(line));
  }
  earlier.banner_actors += later.banner_actors;
}

/// One fusion step: find the first loop that can merge into an earlier
/// same-shape loop.  Intervening statements stay behind the merged loop
/// when independent of the later loop, or hoist above it when independent
/// of the earlier loop and of everything that stays; any other conflict
/// aborts this pairing.
bool try_fuse_once(std::vector<Stmt>& body, PassStats& stats) {
  std::vector<std::vector<AccessSummary>> summaries(body.size());
  for (std::size_t i = 0; i < body.size(); ++i) summaries[i] = summarize(body[i]);

  for (std::size_t p = 0; p < body.size(); ++p) {
    const Stmt& later = body[p];
    if (later.kind != Stmt::Kind::kLoop || !later.fusible) continue;
    for (std::size_t q = p; q-- > 0;) {
      const Stmt& earlier = body[q];
      if (earlier.kind != Stmt::Kind::kLoop || !earlier.fusible) continue;
      if (!same_shape(earlier, later)) continue;

      std::vector<std::size_t> stay;
      std::vector<std::size_t> hoist;
      bool ok = true;
      for (std::size_t m = q + 1; m < p && ok; ++m) {
        if (!conflicts(summaries[m], summaries[p])) {
          stay.push_back(m);
          continue;
        }
        bool can_hoist = !conflicts(summaries[m], summaries[q]);
        for (std::size_t t : stay) {
          if (!can_hoist) break;
          can_hoist = !conflicts(summaries[m], summaries[t]);
        }
        if (can_hoist) {
          hoist.push_back(m);
        } else {
          ok = false;
        }
      }
      if (!ok || !merge_compatible(earlier, later)) continue;

      std::vector<Stmt> rebuilt;
      rebuilt.reserve(body.size() - 1);
      for (std::size_t i = 0; i < q; ++i) rebuilt.push_back(std::move(body[i]));
      for (std::size_t m : hoist) rebuilt.push_back(std::move(body[m]));
      Stmt merged = std::move(body[q]);
      merge_bodies(merged, std::move(body[p]), stats);
      rebuilt.push_back(std::move(merged));
      for (std::size_t m : stay) rebuilt.push_back(std::move(body[m]));
      for (std::size_t i = p + 1; i < body.size(); ++i) {
        rebuilt.push_back(std::move(body[i]));
      }
      body = std::move(rebuilt);
      ++stats.loops_fused;
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Copy forwarding.
// ---------------------------------------------------------------------------

/// Vector bodies: a load of a buffer some earlier line in the same body
/// stored is dropped, and uses of the loaded variable are renamed to the
/// stored vector variable.
void forward_vector(Stmt& loop, PassStats& stats) {
  std::map<std::string, std::string> stored;  // buffer -> vector variable
  std::vector<std::pair<std::string, std::string>> renames;
  std::vector<Stmt> rebuilt;
  rebuilt.reserve(loop.body.size());
  for (Stmt& line : loop.body) {
    for (const auto& rename : renames) {
      line.text = replace_identifier(line.text, rename.first, rename.second);
      if (line.stores_var == rename.first) line.stores_var = rename.second;
    }
    if (line.is_load) {
      const std::string* buf = read_buffer(line);
      if (buf != nullptr) {
        auto it = stored.find(*buf);
        if (it != stored.end()) {
          if (line.defines != it->second) {
            renames.emplace_back(line.defines, it->second);
          }
          ++stats.copies_elided;
          continue;
        }
      }
    }
    if (line.is_store) {
      if (const std::string* buf = write_buffer(line)) {
        stored[*buf] = line.stores_var;
      }
    }
    rebuilt.push_back(std::move(line));
  }
  loop.body = std::move(rebuilt);
}

bool identifier_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// Replaces `buf[i]` (token-boundary checked on the left) with `var`.
bool replace_indexed_read(std::string& text, const std::string& buf,
                          const std::string& var) {
  const std::string pattern = buf + "[i]";
  bool changed = false;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t hit = text.find(pattern, pos);
    if (hit == std::string::npos) break;
    if (hit == 0 || !identifier_char(text[hit - 1])) {
      text.replace(hit, pattern.size(), var);
      pos = hit + var.size();
      changed = true;
    } else {
      pos = hit + 1;
    }
  }
  return changed;
}

/// Scalar remainder bodies: reads of `buf[i]` where an earlier line in the
/// same body stored `buf[i] = var;` become `var` directly.
void forward_scalar(Stmt& loop) {
  std::map<std::string, std::string> stored;  // buffer -> scalar variable
  for (Stmt& line : loop.body) {
    const std::string* own_store = line.is_store ? write_buffer(line) : nullptr;
    for (const auto& entry : stored) {
      if (own_store != nullptr && *own_store == entry.first) continue;
      if (replace_indexed_read(line.text, entry.first, entry.second)) {
        auto dead = std::remove_if(
            line.accesses.begin(), line.accesses.end(),
            [&](const BufferAccess& access) {
              return !access.write && access.buffer == entry.first;
            });
        line.accesses.erase(dead, line.accesses.end());
      }
    }
    if (line.is_store && own_store != nullptr) {
      stored[*own_store] = line.stores_var;
    }
  }
}

// ---------------------------------------------------------------------------
// Dead handoff-buffer elimination.
// ---------------------------------------------------------------------------

void for_each_stmt(std::vector<Stmt>& body,
                   const std::function<void(Stmt&)>& fn) {
  for (Stmt& stmt : body) {
    fn(stmt);
    if (stmt.kind == Stmt::Kind::kLoop) for_each_stmt(stmt.body, fn);
  }
}

bool buffer_is_read(std::vector<Stmt>& body, const std::string& name) {
  bool read = false;
  for_each_stmt(body, [&](Stmt& stmt) {
    for (const BufferAccess& access : stmt.accesses) {
      if (!access.write && access.buffer == name) read = true;
    }
  });
  return read;
}

/// True when every write to `name` is a pure store line (safe to delete).
bool only_store_writes(std::vector<Stmt>& body, const std::string& name) {
  bool ok = true;
  for_each_stmt(body, [&](Stmt& stmt) {
    for (const BufferAccess& access : stmt.accesses) {
      if (access.write && access.buffer == name && !stmt.is_store) ok = false;
    }
  });
  return ok;
}

int erase_stores(std::vector<Stmt>& body, const std::string& name) {
  int removed = 0;
  for (Stmt& stmt : body) {
    if (stmt.kind == Stmt::Kind::kLoop) removed += erase_stores(stmt.body, name);
  }
  auto dead = std::remove_if(body.begin(), body.end(), [&](const Stmt& stmt) {
    if (stmt.kind != Stmt::Kind::kText || !stmt.is_store) return false;
    const std::string* buf = write_buffer(stmt);
    return buf != nullptr && *buf == name;
  });
  removed += static_cast<int>(body.end() - dead);
  body.erase(dead, body.end());
  return removed;
}

void eliminate_dead_buffers(TranslationUnit& tu, PassStats& stats) {
  for (std::size_t i = 0; i < tu.buffers.size();) {
    const BufferDecl& decl = tu.buffers[i];
    if (!decl.arena_eligible || decl.is_const ||
        buffer_is_read(tu.init.body, decl.name) ||
        buffer_is_read(tu.step.body, decl.name) ||
        !only_store_writes(tu.init.body, decl.name) ||
        !only_store_writes(tu.step.body, decl.name)) {
      ++i;
      continue;
    }
    std::string name = decl.name;
    stats.copies_elided += erase_stores(tu.init.body, name);
    stats.copies_elided += erase_stores(tu.step.body, name);
    tu.buffers.erase(tu.buffers.begin() + static_cast<std::ptrdiff_t>(i));
    ++stats.buffers_eliminated;
  }
}

// ---------------------------------------------------------------------------
// Arena reuse.
// ---------------------------------------------------------------------------

struct LiveRange {
  int first_write = -1;
  int last_access = -1;
};

void record_liveness(std::vector<Stmt>& body, int& position,
                     std::map<std::string, LiveRange>& ranges) {
  for (Stmt& top : body) {
    for (const AccessSummary& access : summarize(top)) {
      auto it = ranges.find(access.buffer);
      if (it == ranges.end()) continue;
      if (access.write &&
          (it->second.first_write < 0 || position < it->second.first_write)) {
        it->second.first_write = position;
      }
      it->second.last_access = std::max(it->second.last_access, position);
    }
    ++position;
  }
}

struct ArenaSlot {
  std::string ctype;
  std::size_t elem_bytes = 0;
  int components = 0;
  int free_at = -1;
  std::string first_member;  // decl whose position the slot inherits
};

void reuse_arena(TranslationUnit& tu, PassStats& stats) {
  std::map<std::string, LiveRange> ranges;
  for (const BufferDecl& decl : tu.buffers) {
    if (decl.arena_eligible && !decl.is_const) ranges.emplace(decl.name, LiveRange{});
  }
  if (ranges.empty()) return;
  int position = 0;
  record_liveness(tu.init.body, position, ranges);
  record_liveness(tu.step.body, position, ranges);

  // Process buffers in order of first write so slot intervals stay disjoint.
  std::vector<const BufferDecl*> eligible;
  for (const BufferDecl& decl : tu.buffers) {
    if (!decl.arena_eligible || decl.is_const) continue;
    if (ranges.at(decl.name).first_write < 0) continue;  // never written
    eligible.push_back(&decl);
  }
  std::stable_sort(eligible.begin(), eligible.end(),
                   [&](const BufferDecl* a, const BufferDecl* b) {
                     return ranges.at(a->name).first_write <
                            ranges.at(b->name).first_write;
                   });

  std::vector<ArenaSlot> slots;
  std::map<std::string, std::size_t> slot_of;  // buffer -> slot index
  std::size_t before_bytes = 0;
  for (const BufferDecl* decl : eligible) {
    before_bytes += decl->bytes();
    const LiveRange& range = ranges.at(decl->name);
    std::size_t chosen = slots.size();
    for (std::size_t s = 0; s < slots.size(); ++s) {
      if (slots[s].ctype == decl->ctype &&
          slots[s].elem_bytes == decl->elem_bytes &&
          slots[s].free_at < range.first_write) {
        chosen = s;
        break;
      }
    }
    if (chosen == slots.size()) {
      slots.push_back({decl->ctype, decl->elem_bytes, 0, -1, decl->name});
    }
    ArenaSlot& slot = slots[chosen];
    slot.components = std::max(slot.components, decl->components);
    slot.free_at = std::max(slot.free_at, range.last_access);
    slot_of[decl->name] = chosen;
  }
  if (slot_of.empty()) return;

  // Pick collision-free slot names.
  std::set<std::string> taken;
  for (const BufferDecl& decl : tu.buffers) {
    if (!slot_of.count(decl.name)) taken.insert(decl.name);
  }
  std::vector<std::string> slot_names;
  int next_id = 0;
  for (std::size_t s = 0; s < slots.size(); ++s) {
    std::string name;
    do {
      name = "buf" + std::to_string(next_id++);
    } while (taken.count(name));
    taken.insert(name);
    slot_names.push_back(name);
  }

  // Rename every rebound buffer across the whole unit.
  auto rename_everywhere = [&](const std::string& from, const std::string& to) {
    auto apply = [&](Stmt& stmt) {
      if (stmt.kind != Stmt::Kind::kText) return;
      stmt.text = replace_identifier(stmt.text, from, to);
      for (BufferAccess& access : stmt.accesses) {
        if (access.buffer == from) access.buffer = to;
      }
    };
    for_each_stmt(tu.init.body, apply);
    for_each_stmt(tu.step.body, apply);
  };
  for (const auto& entry : slot_of) {
    rename_everywhere(entry.first, slot_names[slot_of.at(entry.first)]);
  }

  // Rebuild the declaration list: the first member of each slot (in decl
  // order) becomes the slot's declaration; later members disappear.
  std::vector<BufferDecl> rebuilt;
  std::set<std::size_t> declared;
  std::size_t after_bytes = 0;
  for (const BufferDecl& decl : tu.buffers) {
    auto it = slot_of.find(decl.name);
    if (it == slot_of.end()) {
      rebuilt.push_back(decl);
      continue;
    }
    if (!declared.insert(it->second).second) continue;
    const ArenaSlot& slot = slots[it->second];
    BufferDecl merged = decl;
    merged.name = slot_names[it->second];
    merged.components = slot.components;
    rebuilt.push_back(merged);
    after_bytes += merged.bytes();
  }
  tu.buffers = std::move(rebuilt);

  stats.buffers_rebound = static_cast<int>(slot_of.size());
  if (before_bytes > after_bytes) {
    stats.arena_bytes_saved = before_bytes - after_bytes;
  }

  // Record each rebinding with the live range that justified it, so the
  // verifier can re-check slot disjointness (invisible in the renamed IR).
  for (const auto& [name, slot] : slot_of) {
    const LiveRange& range = ranges.at(name);
    stats.arena_bindings.push_back(ArenaBinding{
        slot_names[slot], name, range.first_write, range.last_access});
  }
}

/// "cgir.pass" fault action: deliberately breaks the IR so the after-pass
/// verifier (when installed) must catch it — the broken-pass drill of
/// docs/ROBUSTNESS.md.  Two guaranteed-detectable mutations: the first step
/// loop over-runs its domain by one, and a statement referencing an
/// undeclared buffer appears.
void corrupt_unit(TranslationUnit& tu) {
  Stmt broken = Stmt::text_line("hcg_injected[0] = 1;");
  broken.accesses.push_back(BufferAccess{"hcg_injected", true, false});
  for (Stmt& stmt : tu.step.body) {
    if (stmt.kind == Stmt::Kind::kLoop) {
      stmt.end += 1;
      break;
    }
  }
  tu.step.body.push_back(std::move(broken));
}

}  // namespace

PassStats run_passes(TranslationUnit& tu, const PassOptions& options) {
  PassStats stats;
  auto checkpoint = [&](std::string_view pass) {
    if (faults::probe("cgir.pass", pass) != faults::Action::kNone) {
      corrupt_unit(tu);
    }
    if (options.after_pass) options.after_pass(pass, tu, stats);
  };
  if (options.fuse_loops) {
    while (try_fuse_once(tu.step.body, stats)) {
    }
    checkpoint("fuse_loops");
    for (Stmt& stmt : tu.step.body) {
      if (stmt.kind != Stmt::Kind::kLoop) continue;
      if (stmt.vector_loop || stmt.single_iteration) {
        forward_vector(stmt, stats);
      } else {
        forward_scalar(stmt);
      }
    }
    checkpoint("forward_copies");
    eliminate_dead_buffers(tu, stats);
    checkpoint("eliminate_dead_buffers");
  }
  if (options.reuse_arena) {
    reuse_arena(tu, stats);
    checkpoint("reuse_arena");
  }
  return stats;
}

// ---------------------------------------------------------------------------
// Profiling instrumentation.
// ---------------------------------------------------------------------------

namespace {

/// Labels end up inside C string literals and JSON; rather than escaping,
/// restrict them to a charset that needs none in either context.
std::string prof_sanitize(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                (c >= '0' && c <= '9') || c == '_' || c == ':' || c == '-' ||
                c == '.' || c == ',' || c == ' ' || c == '(' || c == ')' ||
                c == '[' || c == '+' || c == '*' || c == '/';
    out.push_back(safe ? c : '_');
  }
  return out;
}

long long loop_trips(const Stmt& loop) {
  if (loop.single_iteration) return 1;
  if (loop.step <= 0 || loop.end <= loop.begin) return 0;
  return (static_cast<long long>(loop.end) - loop.begin + loop.step - 1) /
         loop.step;
}

std::string loop_label(const Stmt& loop) {
  if (loop.banner_actors > 0) {
    std::string label = "batch_region(" + std::to_string(loop.banner_actors) +
                        " actors";
    if (!loop.banner_isa.empty()) label += ", " + loop.banner_isa;
    return prof_sanitize(label + ")");
  }
  return "loop(" + std::to_string(loop.begin) + ".." +
         std::to_string(loop.end) + " step " + std::to_string(loop.step) + ")";
}

constexpr std::string_view kIntensiveTagPrefix = "intensive:";

}  // namespace

std::vector<ProfileSite> instrument_profiling(TranslationUnit& tu,
                                              const ProfileOptions& options) {
  std::vector<ProfileSite> sites;
  std::vector<Stmt> rebuilt;
  rebuilt.reserve(tu.step.body.size());
  int loop_count = 0;
  int call_count = 0;
  for (Stmt& stmt : tu.step.body) {
    const bool is_loop = stmt.kind == Stmt::Kind::kLoop;
    const bool is_call =
        stmt.kind == Stmt::Kind::kText &&
        stmt.prof_tag.compare(0, kIntensiveTagPrefix.size(),
                              kIntensiveTagPrefix) == 0;
    if (!is_loop && !is_call) {
      rebuilt.push_back(std::move(stmt));
      continue;
    }
    ProfileSite site;
    if (is_loop) {
      site.id = "L" + std::to_string(loop_count++);
      site.kind = (stmt.vector_loop || stmt.single_iteration) ? "vector"
                                                              : "scalar";
      site.label = loop_label(stmt);
      site.iters_per_call = loop_trips(stmt);
    } else {
      site.id = "I" + std::to_string(call_count++);
      site.kind = "intensive";
      site.label =
          prof_sanitize(stmt.prof_tag.substr(kIntensiveTagPrefix.size()));
      site.iters_per_call = 1;
    }
    const std::string idx = std::to_string(sites.size());
    rebuilt.push_back(Stmt::text_line("HCG_PROF_ENTER(" + idx + ");"));
    rebuilt.push_back(std::move(stmt));
    rebuilt.push_back(Stmt::text_line(
        "HCG_PROF_LEAVE(" + idx + ", " +
        std::to_string(site.iters_per_call) + ");"));
    sites.push_back(std::move(site));
  }
  tu.step.body = std::move(rebuilt);

  // The counter arrays must have at least one element even for a site-less
  // unit (zero-length arrays are not standard C); the dump loop still runs
  // HCG_PROF_SITES times, so a pad entry is never reported.
  const std::size_t array_len = sites.empty() ? 1 : sites.size();
  std::string ids;
  std::string kinds;
  std::string labels;
  for (const ProfileSite& site : sites) {
    if (!ids.empty()) {
      ids += ", ";
      kinds += ", ";
      labels += ", ";
    }
    ids += "\"" + site.id + "\"";
    kinds += "\"" + site.kind + "\"";
    labels += "\"" + site.label + "\"";
  }
  if (sites.empty()) {
    ids = kinds = labels = "\"\"";
  }

  auto add = [&](std::string line) {
    tu.header_lines.push_back(std::move(line));
  };
  const std::string len = std::to_string(array_len);
  add("");
  add("#ifdef HCG_PROF");
  add("#include <stdint.h>");
  add("#include <stdio.h>");
  add("#include <time.h>");
  add("#define HCG_PROF_SITES " + std::to_string(sites.size()));
  add("static uint64_t hcg_prof_ns[" + len + "];");
  add("static uint64_t hcg_prof_calls[" + len + "];");
  add("static uint64_t hcg_prof_iters[" + len + "];");
  add("static const char* const hcg_prof_site_id[" + len + "] = {" + ids +
      "};");
  add("static const char* const hcg_prof_site_kind[" + len + "] = {" + kinds +
      "};");
  add("static const char* const hcg_prof_site_label[" + len + "] = {" +
      labels + "};");
  add("#if defined(HCG_PROF_RDTSC) && (defined(__x86_64__) || defined(__i386__))");
  add("#define HCG_PROF_CLOCK \"rdtsc\"");
  add("static inline uint64_t hcg_prof_now_ns(void) {");
  add("  uint32_t hcg_prof_lo, hcg_prof_hi;");
  add("  __asm__ __volatile__(\"rdtsc\" : \"=a\"(hcg_prof_lo), \"=d\"(hcg_prof_hi));");
  add("  return ((uint64_t)hcg_prof_hi << 32) | hcg_prof_lo;");
  add("}");
  add("#else");
  add("#define HCG_PROF_CLOCK \"monotonic_ns\"");
  add("static inline uint64_t hcg_prof_now_ns(void) {");
  add("  struct timespec hcg_prof_ts;");
  add("  clock_gettime(CLOCK_MONOTONIC, &hcg_prof_ts);");
  add("  return (uint64_t)hcg_prof_ts.tv_sec * 1000000000u +");
  add("         (uint64_t)hcg_prof_ts.tv_nsec;");
  add("}");
  add("#endif");
  add("#define HCG_PROF_ENTER(idx) const uint64_t hcg_prof_t##idx = hcg_prof_now_ns()");
  add("#define HCG_PROF_LEAVE(idx, n) do { \\");
  add("    hcg_prof_ns[idx] += hcg_prof_now_ns() - hcg_prof_t##idx; \\");
  add("    hcg_prof_calls[idx] += 1u; \\");
  add("    hcg_prof_iters[idx] += (uint64_t)(n); \\");
  add("  } while (0)");
  add("int hcg_prof_dump(const char* path) {");
  add("  FILE* hcg_prof_file = fopen(path, \"w\");");
  add("  if (!hcg_prof_file) return -1;");
  add(R"(  fprintf(hcg_prof_file, "{\n");)");
  add(R"(  fprintf(hcg_prof_file, "  \"schema\": \"hcg-profile-v1\",\n");)");
  add(R"(  fprintf(hcg_prof_file, "  \"model\": \")" +
      prof_sanitize(options.model_name) + R"(\",\n");)");
  add(R"(  fprintf(hcg_prof_file, "  \"clock\": \"" HCG_PROF_CLOCK "\",\n");)");
  add(R"(  fprintf(hcg_prof_file, "  \"sites\": [");)");
  add("  for (int hcg_prof_s = 0; hcg_prof_s < HCG_PROF_SITES; ++hcg_prof_s) {");
  add(R"(    fprintf(hcg_prof_file, "%s\n    {\"id\": \"%s\", \"kind\": \"%s\", \"label\": \"%s\",",)");
  add("            hcg_prof_s ? \",\" : \"\", hcg_prof_site_id[hcg_prof_s],");
  add("            hcg_prof_site_kind[hcg_prof_s], hcg_prof_site_label[hcg_prof_s]);");
  add(R"(    fprintf(hcg_prof_file, " \"ns\": %llu, \"calls\": %llu, \"iters\": %llu}",)");
  add("            (unsigned long long)hcg_prof_ns[hcg_prof_s],");
  add("            (unsigned long long)hcg_prof_calls[hcg_prof_s],");
  add("            (unsigned long long)hcg_prof_iters[hcg_prof_s]);");
  add("  }");
  add(R"(  fprintf(hcg_prof_file, "\n  ]\n}\n");)");
  add("  return fclose(hcg_prof_file) == 0 ? 0 : -1;");
  add("}");
  add("#else");
  add("#define HCG_PROF_ENTER(idx)");
  add("#define HCG_PROF_LEAVE(idx, n)");
  add("#endif");

  return sites;
}

}  // namespace hcg::cgir
