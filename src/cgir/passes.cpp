#include "cgir/passes.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "support/faults.hpp"
#include "support/strings.hpp"

namespace hcg::cgir {
namespace {

// ---------------------------------------------------------------------------
// Access summaries.
//
// A statement's effect on memory is summarized as a list of (buffer, write,
// range) entries.  Elementwise accesses inside a loop cover exactly the
// loop's iteration domain [begin, end); everything else is treated as
// touching the whole buffer.  Two ranged accesses with disjoint domains
// never alias, which is what lets a scalar remainder loop over [0, off)
// slide past a vector loop over [off, len).
// ---------------------------------------------------------------------------

struct AccessSummary {
  std::string buffer;
  bool write = false;
  bool ranged = false;
  int begin = 0;
  int end = 0;
};

/// Appends every access under `stmt`, all unranged (whole-buffer).
void summarize_conservative(const Stmt& stmt, std::vector<AccessSummary>& out) {
  if (stmt.kind == Stmt::Kind::kText) {
    for (const BufferAccess& access : stmt.accesses) {
      out.push_back({access.buffer, access.write, false, 0, 0});
    }
    return;
  }
  for (const Stmt& line : stmt.body) summarize_conservative(line, out);
}

/// Appends one body line's accesses; elementwise ones are ranged over the
/// enclosing loop's [begin, end) iteration domain.
void summarize_line(const Stmt& line, int begin, int end,
                    std::vector<AccessSummary>& out) {
  for (const BufferAccess& access : line.accesses) {
    if (access.elementwise) {
      out.push_back({access.buffer, access.write, true, begin, end});
    } else {
      out.push_back({access.buffer, access.write, false, 0, 0});
    }
  }
}

std::vector<AccessSummary> summarize(const Stmt& stmt) {
  std::vector<AccessSummary> out;
  if (stmt.kind == Stmt::Kind::kText) {
    summarize_conservative(stmt, out);
    return out;
  }
  for (const Stmt& line : stmt.body) {
    if (line.kind == Stmt::Kind::kText) {
      summarize_line(line, stmt.begin, stmt.end, out);
    } else if (line.strip_mined) {
      // A strip-mined lane loop iterates [0, step) while the enclosing loop
      // strides by step: together they cover exactly the enclosing loop's
      // domain, so its elementwise accesses are ranged at the outer level.
      for (const Stmt& inner : line.body) {
        if (inner.kind == Stmt::Kind::kText) {
          summarize_line(inner, stmt.begin, stmt.end, out);
        } else {
          summarize_conservative(inner, out);
        }
      }
    } else {
      summarize_conservative(line, out);
    }
  }
  return out;
}

bool disjoint(const AccessSummary& a, const AccessSummary& b) {
  return a.ranged && b.ranged && (a.end <= b.begin || b.end <= a.begin);
}

bool conflicts(const std::vector<AccessSummary>& a,
               const std::vector<AccessSummary>& b) {
  for (const AccessSummary& lhs : a) {
    for (const AccessSummary& rhs : b) {
      if (lhs.buffer != rhs.buffer) continue;
      if (!lhs.write && !rhs.write) continue;
      if (disjoint(lhs, rhs)) continue;
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Loop fusion.
// ---------------------------------------------------------------------------

bool same_shape(const Stmt& a, const Stmt& b) {
  return a.begin == b.begin && a.end == b.end && a.step == b.step &&
         a.vector_loop == b.vector_loop &&
         a.single_iteration == b.single_iteration;
}

const std::string* read_buffer(const Stmt& line) {
  for (const BufferAccess& access : line.accesses) {
    if (!access.write) return &access.buffer;
  }
  return nullptr;
}

const std::string* write_buffer(const Stmt& line) {
  for (const BufferAccess& access : line.accesses) {
    if (access.write) return &access.buffer;
  }
  return nullptr;
}

std::set<std::string> stored_buffers(const Stmt& loop) {
  std::set<std::string> stored;
  for (const Stmt& line : loop.body) {
    if (!line.is_store) continue;
    if (const std::string* buf = write_buffer(line)) stored.insert(*buf);
  }
  return stored;
}

/// Flattens one body line's accesses to the enclosing loop's iteration
/// level.  A strip-mined child loop's elementwise accesses cover the same
/// per-iteration footprint as a direct elementwise access, so they keep the
/// tag; accesses inside any other nested loop conservatively lose it.
void effective_accesses(const Stmt& line, bool elementwise_ok,
                        std::vector<BufferAccess>& out) {
  if (line.kind == Stmt::Kind::kText) {
    for (const BufferAccess& access : line.accesses) {
      out.push_back({access.buffer, access.write,
                     elementwise_ok && access.elementwise});
    }
    return;
  }
  for (const Stmt& child : line.body) {
    effective_accesses(child, elementwise_ok && line.strip_mined, out);
  }
}

std::vector<BufferAccess> body_accesses(const Stmt& loop) {
  std::vector<BufferAccess> out;
  for (const Stmt& line : loop.body) effective_accesses(line, true, out);
  return out;
}

/// Merging `later` into `earlier` preserves semantics when every buffer the
/// two bodies share (with at least one write) is accessed elementwise on
/// both sides: with identical iteration domains, running the bodies
/// back-to-back per iteration sees exactly the values the separate loops
/// saw.  Local-variable collisions are allowed only when forwarding or
/// deduplication is guaranteed to remove the colliding line.
bool merge_compatible(const Stmt& earlier, const Stmt& later) {
  const std::vector<BufferAccess> earlier_accesses = body_accesses(earlier);
  const std::vector<BufferAccess> later_accesses = body_accesses(later);
  for (const BufferAccess& lhs : earlier_accesses) {
    for (const BufferAccess& rhs : later_accesses) {
      if (lhs.buffer != rhs.buffer) continue;
      if (!lhs.write && !rhs.write) continue;
      if (!lhs.elementwise || !rhs.elementwise) return false;
    }
  }
  std::map<std::string, const Stmt*> defined;
  for (const Stmt& a : earlier.body) {
    if (!a.defines.empty()) defined.emplace(a.defines, &a);
  }
  std::set<std::string> stored = stored_buffers(earlier);
  for (const Stmt& b : later.body) {
    if (b.defines.empty()) continue;
    auto it = defined.find(b.defines);
    if (it == defined.end()) continue;
    if (b.is_load) {
      const std::string* buf = read_buffer(b);
      if (buf != nullptr && stored.count(*buf)) continue;   // forwarded away
      if (it->second->text == b.text) continue;             // shared load
    }
    return false;
  }
  return true;
}

/// Appends `later`'s body to `earlier`'s, dropping loads that duplicate a
/// load `earlier` already performs (same variable, same text).
void merge_bodies(Stmt& earlier, Stmt&& later, PassStats& stats) {
  // Keep copies, not Stmt pointers: the push_back below grows earlier.body
  // and would invalidate any pointer into it.
  std::map<std::string, std::string> defined;
  for (const Stmt& a : earlier.body) {
    if (!a.defines.empty()) defined.emplace(a.defines, a.text);
  }
  std::set<std::string> stored = stored_buffers(earlier);
  for (Stmt& line : later.body) {
    if (line.is_load && !line.defines.empty()) {
      auto it = defined.find(line.defines);
      const std::string* buf = read_buffer(line);
      if (it != defined.end() && it->second == line.text &&
          (buf == nullptr || !stored.count(*buf))) {
        ++stats.copies_elided;
        continue;
      }
    }
    earlier.body.push_back(std::move(line));
  }
  earlier.banner_actors += later.banner_actors;
}

/// One fusion step: find the first loop that can merge into an earlier
/// same-shape loop.  Intervening statements stay behind the merged loop
/// when independent of the later loop, or hoist above it when independent
/// of the earlier loop and of everything that stays; any other conflict
/// aborts this pairing.
bool try_fuse_once(std::vector<Stmt>& body, PassStats& stats) {
  std::vector<std::vector<AccessSummary>> summaries(body.size());
  for (std::size_t i = 0; i < body.size(); ++i) summaries[i] = summarize(body[i]);

  for (std::size_t p = 0; p < body.size(); ++p) {
    const Stmt& later = body[p];
    if (later.kind != Stmt::Kind::kLoop || !later.fusible) continue;
    for (std::size_t q = p; q-- > 0;) {
      const Stmt& earlier = body[q];
      if (earlier.kind != Stmt::Kind::kLoop || !earlier.fusible) continue;
      if (!same_shape(earlier, later)) continue;

      std::vector<std::size_t> stay;
      std::vector<std::size_t> hoist;
      bool ok = true;
      for (std::size_t m = q + 1; m < p && ok; ++m) {
        if (!conflicts(summaries[m], summaries[p])) {
          stay.push_back(m);
          continue;
        }
        bool can_hoist = !conflicts(summaries[m], summaries[q]);
        for (std::size_t t : stay) {
          if (!can_hoist) break;
          can_hoist = !conflicts(summaries[m], summaries[t]);
        }
        if (can_hoist) {
          hoist.push_back(m);
        } else {
          ok = false;
        }
      }
      if (!ok || !merge_compatible(earlier, later)) continue;

      std::vector<Stmt> rebuilt;
      rebuilt.reserve(body.size() - 1);
      for (std::size_t i = 0; i < q; ++i) rebuilt.push_back(std::move(body[i]));
      for (std::size_t m : hoist) rebuilt.push_back(std::move(body[m]));
      Stmt merged = std::move(body[q]);
      merge_bodies(merged, std::move(body[p]), stats);
      rebuilt.push_back(std::move(merged));
      for (std::size_t m : stay) rebuilt.push_back(std::move(body[m]));
      for (std::size_t i = p + 1; i < body.size(); ++i) {
        rebuilt.push_back(std::move(body[i]));
      }
      body = std::move(rebuilt);
      ++stats.loops_fused;
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Copy forwarding.
// ---------------------------------------------------------------------------

/// Vector bodies: a load of a buffer some earlier line in the same body
/// stored is dropped, and uses of the loaded variable are renamed to the
/// stored vector variable.
void apply_rename(Stmt& stmt, const std::string& from, const std::string& to) {
  stmt.text = replace_identifier(stmt.text, from, to);
  if (stmt.stores_var == from) stmt.stores_var = to;
  for (Stmt& child : stmt.body) apply_rename(child, from, to);
}

void forward_vector(Stmt& loop, PassStats& stats) {
  std::map<std::string, std::string> stored;  // buffer -> vector variable
  std::vector<std::pair<std::string, std::string>> renames;
  std::vector<Stmt> rebuilt;
  rebuilt.reserve(loop.body.size());
  for (Stmt& line : loop.body) {
    for (const auto& rename : renames) {
      apply_rename(line, rename.first, rename.second);
    }
    if (line.kind == Stmt::Kind::kLoop) {
      // A nested loop (a strip-mined lane body after cross-scale fusion)
      // may rewrite buffers this pass is tracking; later loads of those
      // buffers must not forward across it.
      std::vector<BufferAccess> nested;
      effective_accesses(line, true, nested);
      for (const BufferAccess& access : nested) {
        if (access.write) stored.erase(access.buffer);
      }
      rebuilt.push_back(std::move(line));
      continue;
    }
    if (line.is_load) {
      const std::string* buf = read_buffer(line);
      if (buf != nullptr) {
        auto it = stored.find(*buf);
        if (it != stored.end()) {
          if (line.defines != it->second) {
            renames.emplace_back(line.defines, it->second);
          }
          ++stats.copies_elided;
          continue;
        }
      }
    }
    if (line.is_store) {
      if (const std::string* buf = write_buffer(line)) {
        stored[*buf] = line.stores_var;
      }
    }
    rebuilt.push_back(std::move(line));
  }
  loop.body = std::move(rebuilt);
}

bool identifier_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// Replaces `buf[i]` (token-boundary checked on the left) with `var`.
bool replace_indexed_read(std::string& text, const std::string& buf,
                          const std::string& var) {
  const std::string pattern = buf + "[i]";
  bool changed = false;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t hit = text.find(pattern, pos);
    if (hit == std::string::npos) break;
    if (hit == 0 || !identifier_char(text[hit - 1])) {
      text.replace(hit, pattern.size(), var);
      pos = hit + var.size();
      changed = true;
    } else {
      pos = hit + 1;
    }
  }
  return changed;
}

/// Scalar remainder bodies: reads of `buf[i]` where an earlier line in the
/// same body stored `buf[i] = var;` become `var` directly.
void forward_scalar(Stmt& loop) {
  std::map<std::string, std::string> stored;  // buffer -> scalar variable
  for (Stmt& line : loop.body) {
    if (line.kind == Stmt::Kind::kLoop) {
      std::vector<BufferAccess> nested;
      effective_accesses(line, true, nested);
      for (const BufferAccess& access : nested) {
        if (access.write) stored.erase(access.buffer);
      }
      continue;
    }
    const std::string* own_store = line.is_store ? write_buffer(line) : nullptr;
    for (const auto& entry : stored) {
      if (own_store != nullptr && *own_store == entry.first) continue;
      if (replace_indexed_read(line.text, entry.first, entry.second)) {
        auto dead = std::remove_if(
            line.accesses.begin(), line.accesses.end(),
            [&](const BufferAccess& access) {
              return !access.write && access.buffer == entry.first;
            });
        line.accesses.erase(dead, line.accesses.end());
      }
    }
    if (line.is_store && own_store != nullptr) {
      stored[*own_store] = line.stores_var;
    }
  }
}

// ---------------------------------------------------------------------------
// Dead handoff-buffer elimination.
// ---------------------------------------------------------------------------

void for_each_stmt(std::vector<Stmt>& body,
                   const std::function<void(Stmt&)>& fn) {
  for (Stmt& stmt : body) {
    fn(stmt);
    if (stmt.kind == Stmt::Kind::kLoop) for_each_stmt(stmt.body, fn);
  }
}

bool buffer_is_read(std::vector<Stmt>& body, const std::string& name) {
  bool read = false;
  for_each_stmt(body, [&](Stmt& stmt) {
    for (const BufferAccess& access : stmt.accesses) {
      if (!access.write && access.buffer == name) read = true;
    }
  });
  return read;
}

/// True when every write to `name` is a pure store line (safe to delete).
bool only_store_writes(std::vector<Stmt>& body, const std::string& name) {
  bool ok = true;
  for_each_stmt(body, [&](Stmt& stmt) {
    for (const BufferAccess& access : stmt.accesses) {
      if (access.write && access.buffer == name && !stmt.is_store) ok = false;
    }
  });
  return ok;
}

int erase_stores(std::vector<Stmt>& body, const std::string& name) {
  int removed = 0;
  for (Stmt& stmt : body) {
    if (stmt.kind == Stmt::Kind::kLoop) removed += erase_stores(stmt.body, name);
  }
  auto dead = std::remove_if(body.begin(), body.end(), [&](const Stmt& stmt) {
    if (stmt.kind != Stmt::Kind::kText || !stmt.is_store) return false;
    const std::string* buf = write_buffer(stmt);
    return buf != nullptr && *buf == name;
  });
  removed += static_cast<int>(body.end() - dead);
  body.erase(dead, body.end());
  return removed;
}

void eliminate_dead_buffers(TranslationUnit& tu, PassStats& stats) {
  for (std::size_t i = 0; i < tu.buffers.size();) {
    const BufferDecl& decl = tu.buffers[i];
    if (!decl.arena_eligible || decl.is_const ||
        buffer_is_read(tu.init.body, decl.name) ||
        buffer_is_read(tu.step.body, decl.name) ||
        !only_store_writes(tu.init.body, decl.name) ||
        !only_store_writes(tu.step.body, decl.name)) {
      ++i;
      continue;
    }
    std::string name = decl.name;
    stats.copies_elided += erase_stores(tu.init.body, name);
    stats.copies_elided += erase_stores(tu.step.body, name);
    tu.buffers.erase(tu.buffers.begin() + static_cast<std::ptrdiff_t>(i));
    ++stats.buffers_eliminated;
  }
}

// ---------------------------------------------------------------------------
// Arena reuse.
// ---------------------------------------------------------------------------

struct LiveRange {
  int first_write = -1;
  int last_access = -1;
};

void record_liveness(std::vector<Stmt>& body, int& position,
                     std::map<std::string, LiveRange>& ranges) {
  for (Stmt& top : body) {
    for (const AccessSummary& access : summarize(top)) {
      auto it = ranges.find(access.buffer);
      if (it == ranges.end()) continue;
      if (access.write &&
          (it->second.first_write < 0 || position < it->second.first_write)) {
        it->second.first_write = position;
      }
      it->second.last_access = std::max(it->second.last_access, position);
    }
    ++position;
  }
}

struct ArenaSlot {
  std::string ctype;
  std::size_t elem_bytes = 0;
  int components = 0;
  int free_at = -1;
  std::string first_member;  // decl whose position the slot inherits
};

void reuse_arena(TranslationUnit& tu, PassStats& stats) {
  std::map<std::string, LiveRange> ranges;
  for (const BufferDecl& decl : tu.buffers) {
    if (decl.arena_eligible && !decl.is_const) ranges.emplace(decl.name, LiveRange{});
  }
  if (ranges.empty()) return;
  int position = 0;
  record_liveness(tu.init.body, position, ranges);
  record_liveness(tu.step.body, position, ranges);

  // Process buffers in order of first write so slot intervals stay disjoint.
  std::vector<const BufferDecl*> eligible;
  for (const BufferDecl& decl : tu.buffers) {
    if (!decl.arena_eligible || decl.is_const) continue;
    if (ranges.at(decl.name).first_write < 0) continue;  // never written
    eligible.push_back(&decl);
  }
  std::stable_sort(eligible.begin(), eligible.end(),
                   [&](const BufferDecl* a, const BufferDecl* b) {
                     return ranges.at(a->name).first_write <
                            ranges.at(b->name).first_write;
                   });

  std::vector<ArenaSlot> slots;
  std::map<std::string, std::size_t> slot_of;  // buffer -> slot index
  std::size_t before_bytes = 0;
  for (const BufferDecl* decl : eligible) {
    before_bytes += decl->bytes();
    const LiveRange& range = ranges.at(decl->name);
    std::size_t chosen = slots.size();
    for (std::size_t s = 0; s < slots.size(); ++s) {
      if (slots[s].ctype == decl->ctype &&
          slots[s].elem_bytes == decl->elem_bytes &&
          slots[s].free_at < range.first_write) {
        chosen = s;
        break;
      }
    }
    if (chosen == slots.size()) {
      slots.push_back({decl->ctype, decl->elem_bytes, 0, -1, decl->name});
    }
    ArenaSlot& slot = slots[chosen];
    slot.components = std::max(slot.components, decl->components);
    slot.free_at = std::max(slot.free_at, range.last_access);
    slot_of[decl->name] = chosen;
  }
  if (slot_of.empty()) return;

  // Pick collision-free slot names.
  std::set<std::string> taken;
  for (const BufferDecl& decl : tu.buffers) {
    if (!slot_of.count(decl.name)) taken.insert(decl.name);
  }
  std::vector<std::string> slot_names;
  int next_id = 0;
  for (std::size_t s = 0; s < slots.size(); ++s) {
    std::string name;
    do {
      name = "buf" + std::to_string(next_id++);
    } while (taken.count(name));
    taken.insert(name);
    slot_names.push_back(name);
  }

  // Rename every rebound buffer across the whole unit.
  auto rename_everywhere = [&](const std::string& from, const std::string& to) {
    auto apply = [&](Stmt& stmt) {
      if (stmt.kind != Stmt::Kind::kText) return;
      stmt.text = replace_identifier(stmt.text, from, to);
      for (BufferAccess& access : stmt.accesses) {
        if (access.buffer == from) access.buffer = to;
      }
    };
    for_each_stmt(tu.init.body, apply);
    for_each_stmt(tu.step.body, apply);
  };
  for (const auto& entry : slot_of) {
    rename_everywhere(entry.first, slot_names[slot_of.at(entry.first)]);
  }

  // Rebuild the declaration list: the first member of each slot (in decl
  // order) becomes the slot's declaration; later members disappear.
  std::vector<BufferDecl> rebuilt;
  std::set<std::size_t> declared;
  std::size_t after_bytes = 0;
  for (const BufferDecl& decl : tu.buffers) {
    auto it = slot_of.find(decl.name);
    if (it == slot_of.end()) {
      rebuilt.push_back(decl);
      continue;
    }
    if (!declared.insert(it->second).second) continue;
    const ArenaSlot& slot = slots[it->second];
    BufferDecl merged = decl;
    merged.name = slot_names[it->second];
    merged.components = slot.components;
    rebuilt.push_back(merged);
    after_bytes += merged.bytes();
  }
  tu.buffers = std::move(rebuilt);

  stats.buffers_rebound = static_cast<int>(slot_of.size());
  if (before_bytes > after_bytes) {
    stats.arena_bytes_saved = before_bytes - after_bytes;
  }

  // Record each rebinding with the live range that justified it, so the
  // verifier can re-check slot disjointness (invisible in the renamed IR).
  for (const auto& [name, slot] : slot_of) {
    const LiveRange& range = ranges.at(name);
    stats.arena_bindings.push_back(ArenaBinding{
        slot_names[slot], name, range.first_write, range.last_access});
  }
}

// ---------------------------------------------------------------------------
// -O2: cross-scale fusion, scalar-loop tiling, coalescing buffer layout.
// ---------------------------------------------------------------------------

/// True for a conventional scalar loop the -O2 passes may restructure:
/// full-range ([0, n) step 1), body entirely single-assignment text lines
/// (no locals, no nested loops), not itself produced by strip-mining.
/// Predicated VLA loops are excluded outright: their runtime stride makes
/// any static reshaping of the iteration domain unsound.
bool plain_scalar_loop(const Stmt& stmt) {
  if (stmt.kind != Stmt::Kind::kLoop || stmt.vector_loop ||
      stmt.single_iteration || stmt.strip_mined || stmt.predicated) {
    return false;
  }
  if (stmt.begin != 0 || stmt.step != 1) return false;
  for (const Stmt& line : stmt.body) {
    if (line.kind != Stmt::Kind::kText || !line.defines.empty()) return false;
  }
  return true;
}

/// Builds the strip-mined lane loop for `source`'s body: iterates k over
/// [0, lanes) with every use of the outer induction variable rewritten to
/// `(i + k)`.  Elementwise tags survive — the per-outer-iteration footprint
/// is still exactly [i, i + lanes).
Stmt make_strip_inner(const Stmt& source, int lanes) {
  Stmt inner;
  inner.kind = Stmt::Kind::kLoop;
  inner.begin = 0;
  inner.end = lanes;
  inner.step = 1;
  inner.strip_mined = true;
  inner.induction_var = "k";
  for (const Stmt& line : source.body) {
    Stmt moved = line;
    moved.text = replace_identifier(moved.text, "i", "(i + k)");
    inner.body.push_back(std::move(moved));
  }
  return inner;
}

/// Cross-scale producer-consumer fusion: a plain scalar loop over [0, n)
/// that could not join a batch region (a scale boundary — the HCG4xx
/// remarks name the reason) strip-mines into the shape of a fusible vector
/// loop over the same width, then the same-shape fuser merges the pair (and
/// the scalar front cover [0, begin) merges with the region's remainder
/// loop).  A strip-mine that does not end in a fusion is rolled back, so
/// the pass never leaves pure strip wrappers behind.
void fuse_cross_scale(std::vector<Stmt>& body, PassStats& stats) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t s = 0; s < body.size() && !changed; ++s) {
      if (!plain_scalar_loop(body[s]) || !body[s].fusible) continue;
      for (std::size_t v = 0; v < body.size() && !changed; ++v) {
        if (v == s) continue;
        const Stmt& vec = body[v];
        if (vec.kind != Stmt::Kind::kLoop || !vec.fusible) continue;
        if (!vec.vector_loop && !vec.single_iteration) continue;
        if (vec.step <= 1 || vec.end != body[s].end) continue;

        std::vector<Stmt> backup = body;
        const int fused_before = stats.loops_fused;
        const int elided_before = stats.copies_elided;

        Stmt strip;
        strip.kind = Stmt::Kind::kLoop;
        strip.begin = vec.begin;
        strip.end = vec.end;
        strip.step = vec.step;
        strip.vector_loop = vec.vector_loop;
        strip.single_iteration = vec.single_iteration;
        strip.fusible = true;
        strip.body.push_back(make_strip_inner(body[s], vec.step));

        std::vector<Stmt> pieces;
        if (strip.begin > 0) {
          Stmt front = body[s];  // scalar cover of [0, begin)
          front.end = strip.begin;
          pieces.push_back(std::move(front));
        }
        pieces.push_back(std::move(strip));
        body.erase(body.begin() + static_cast<std::ptrdiff_t>(s));
        body.insert(body.begin() + static_cast<std::ptrdiff_t>(s),
                    std::make_move_iterator(pieces.begin()),
                    std::make_move_iterator(pieces.end()));

        while (try_fuse_once(body, stats)) {
        }
        bool unfused_wrapper = false;
        for (const Stmt& top : body) {
          if (top.kind == Stmt::Kind::kLoop && top.body.size() == 1 &&
              top.body[0].kind == Stmt::Kind::kLoop &&
              top.body[0].strip_mined) {
            unfused_wrapper = true;
          }
        }
        if (stats.loops_fused > fused_before && !unfused_wrapper) {
          ++stats.cross_scale_fused;
          changed = true;
        } else {
          body = std::move(backup);
          stats.loops_fused = fused_before;
          stats.copies_elided = elided_before;
        }
      }
    }
  }
}

/// Chunks each remaining large plain scalar loop into an outer tile loop
/// (stride tile_elems) over a strip-mined constant-trip inner loop, plus a
/// scalar tail for the last partial tile.  The constant inner trip count
/// lets the C compiler unroll and vectorize without runtime remainder
/// checks.  Loops acting as remainder cover for a later vector loop are
/// left alone — the verifier's coverage rule depends on their exact shape.
void tile_plain_loops(std::vector<Stmt>& body, int tile, PassStats& stats) {
  for (std::size_t i = 0; i < body.size(); ++i) {
    if (!plain_scalar_loop(body[i])) continue;
    const int n = body[i].end;
    if (tile < 2 || n < 2 * tile) continue;
    bool covers_vector = false;
    for (std::size_t j = i + 1; j < body.size(); ++j) {
      if (body[j].kind == Stmt::Kind::kLoop && body[j].vector_loop &&
          body[j].begin == n) {
        covers_vector = true;
      }
    }
    if (covers_vector) continue;

    const int tiled_end = n - n % tile;
    Stmt outer;
    outer.kind = Stmt::Kind::kLoop;
    outer.begin = 0;
    outer.end = tiled_end;
    outer.step = tile;
    outer.vector_loop = true;
    outer.body.push_back(make_strip_inner(body[i], tile));

    std::vector<Stmt> pieces;
    pieces.push_back(std::move(outer));
    if (tiled_end < n) {
      Stmt tail = std::move(body[i]);
      tail.begin = tiled_end;
      pieces.push_back(std::move(tail));
    }
    const std::size_t emitted = pieces.size();
    body.erase(body.begin() + static_cast<std::ptrdiff_t>(i));
    body.insert(body.begin() + static_cast<std::ptrdiff_t>(i),
                std::make_move_iterator(pieces.begin()),
                std::make_move_iterator(pieces.end()));
    ++stats.loops_tiled;
    i += emitted - 1;
  }
}

int count_stride1(const std::vector<Stmt>& body) {
  int n = 0;
  for (const Stmt& stmt : body) {
    for (const BufferAccess& access : stmt.accesses) {
      if (access.elementwise) ++n;
    }
    n += count_stride1(stmt.body);
  }
  return n;
}

void collect_buffer_names(const Stmt& stmt, std::vector<std::string>& out) {
  for (const BufferAccess& access : stmt.accesses) out.push_back(access.buffer);
  for (const Stmt& child : stmt.body) collect_buffer_names(child, out);
}

/// Coalescing-aware layout: re-orders the buffer declarations so buffers
/// first co-accessed by the same top-level statement sit adjacent in the
/// static data segment, in first-touch order (fused loops then walk their
/// working set contiguously).  Also counts the stride-1 (elementwise)
/// accesses of the final step body for the codegen.layout metrics.
void coalesce_layout(TranslationUnit& tu, PassStats& stats) {
  std::map<std::string, std::size_t> first_touch;
  std::size_t position = 0;
  auto record = [&](const std::vector<Stmt>& fn_body) {
    for (const Stmt& top : fn_body) {
      std::vector<std::string> names;
      collect_buffer_names(top, names);
      for (std::string& name : names) {
        first_touch.emplace(std::move(name), position);
      }
      ++position;
    }
  };
  record(tu.init.body);
  record(tu.step.body);

  const std::size_t untouched = position;  // sorts after every real touch
  std::vector<BufferDecl> reordered = tu.buffers;
  std::stable_sort(reordered.begin(), reordered.end(),
                   [&](const BufferDecl& a, const BufferDecl& b) {
                     auto ia = first_touch.find(a.name);
                     auto ib = first_touch.find(b.name);
                     const std::size_t ka =
                         ia == first_touch.end() ? untouched : ia->second;
                     const std::size_t kb =
                         ib == first_touch.end() ? untouched : ib->second;
                     return ka < kb;
                   });
  for (std::size_t i = 0; i < reordered.size(); ++i) {
    if (reordered[i].name != tu.buffers[i].name) ++stats.buffers_relocated;
  }
  tu.buffers = std::move(reordered);
  stats.stride1_accesses = count_stride1(tu.step.body);
}

// ---------------------------------------------------------------------------
// -O2: strip-body lane localization.
// ---------------------------------------------------------------------------

bool lane_ident_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// Element C type for every array a strip-mined body may index: static
/// buffers from their declarations, plus the I/O pointer locals the emitter
/// opens the step body with ("const int8_t* in_a = (const int8_t*)...;").
std::map<std::string, std::string> lane_array_types(const TranslationUnit& tu) {
  std::map<std::string, std::string> types;
  for (const BufferDecl& decl : tu.buffers) types[decl.name] = decl.ctype;
  for (const Stmt& stmt : tu.step.body) {
    if (stmt.kind != Stmt::Kind::kText) continue;
    const std::vector<std::string> words = split_whitespace(stmt.text);
    std::size_t at = 0;
    if (at < words.size() && words[at] == "const") ++at;
    if (at + 2 >= words.size()) continue;
    std::string ctype = words[at];
    if (ctype.size() < 2 || ctype.back() != '*') continue;
    ctype.pop_back();
    if (words[at + 2] == "=" && is_identifier(words[at + 1])) {
      types[words[at + 1]] = ctype;
    }
  }
  return types;
}

/// Arrays a strip body touches, in first-appearance order.  An array in
/// `written` but not `read` is fully overwritten by the lane loop (every
/// line runs unconditionally for every lane), so it needs no copy-in.
struct StripArrays {
  std::vector<std::string> names;
  std::set<std::string> read;
  std::set<std::string> written;
};

/// Collects the arrays `strip`'s body indexes, requiring every bracketed
/// index to be exactly `[(<outer_iv> + <lane_iv>)]` on a known array and the
/// induction variables to appear nowhere else.  Returns false when the body
/// does anything the lane rewrite cannot represent.
bool collect_strip_arrays(const Stmt& strip, const std::string& outer_iv,
                          const std::map<std::string, std::string>& types,
                          StripArrays& out) {
  const std::string index = "[(" + outer_iv + " + " + strip.induction_var + ")]";
  for (const Stmt& line : strip.body) {
    if (line.kind != Stmt::Kind::kText || !line.defines.empty()) return false;
    const std::string& text = line.text;
    std::string residual;
    std::size_t pos = 0;
    bool first_access = true;
    while (pos < text.size()) {
      const std::size_t open = text.find('[', pos);
      if (open == std::string::npos) {
        residual += text.substr(pos);
        break;
      }
      if (text.compare(open, index.size(), index) != 0) return false;
      std::size_t start = open;
      while (start > pos && lane_ident_char(text[start - 1])) --start;
      if (start == open) return false;  // no array name before the bracket
      const std::string name = text.substr(start, open - start);
      if (types.find(name) == types.end()) return false;
      if (std::find(out.names.begin(), out.names.end(), name) ==
          out.names.end()) {
        out.names.push_back(name);
      }
      // LHS of an assignment marks the array written; a compound op (`+=`)
      // and every other position read it.
      bool is_plain_lhs = false;
      if (first_access && start == 0) {
        std::size_t q = open + index.size();
        while (q < text.size() && text[q] == ' ') ++q;
        const bool compound =
            q + 1 < text.size() && text[q + 1] == '=' &&
            std::string_view("+-*/%&|^").find(text[q]) != std::string_view::npos;
        const bool plain = q < text.size() && text[q] == '=' &&
                           (q + 1 >= text.size() || text[q + 1] != '=');
        if (compound || plain) out.written.insert(name);
        is_plain_lhs = plain;
      }
      if (!is_plain_lhs) out.read.insert(name);
      first_access = false;
      residual += text.substr(pos, start - pos);
      pos = open + index.size();
    }
    // The induction variables must not survive outside the rewritten
    // indexes (an address computation the lane buffers would not cover).
    if (replace_identifier(residual, outer_iv, "@") != residual) return false;
    if (replace_identifier(residual, strip.induction_var, "@") != residual) {
      return false;
    }
  }
  return !out.names.empty();
}

/// Rewrites each qualifying strip-mined lane loop under `loop` to compute
/// through fixed-size local lane buffers:
///
///   int8_t ln0_src[16];  int8_t ln0_dst[16];
///   memcpy(ln0_src, &src[i], sizeof(ln0_src));      /* block copy in  */
///   for (int k = 0; k < 16; ++k)
///     ln0_dst[k] = ln0_src[k] * ...;                /* alias-free     */
///   memcpy(&dst[i], ln0_dst, sizeof(ln0_dst));      /* block copy out */
///
/// Two effects on the host compiler's code: the lane loop runs over distinct
/// locals with a constant trip count (no runtime alias checks, so it
/// vectorizes even under conservative -O2 cost models), and the shared
/// buffers are only ever touched by full-width block copies (scalar byte
/// stores between the surrounding vector loads/stores defeat store-to-load
/// forwarding).  Access metadata stays on the lane-loop lines — the memory
/// footprint is unchanged, only the path the bytes take through it.
void localize_strips_under(Stmt& loop,
                           const std::map<std::string, std::string>& types,
                           int& next_id, PassStats& stats) {
  for (std::size_t j = 0; j < loop.body.size(); ++j) {
    Stmt& child = loop.body[j];
    if (child.kind != Stmt::Kind::kLoop) continue;
    if (!child.strip_mined) {
      localize_strips_under(child, types, next_id, stats);
      continue;
    }
    if (child.begin != 0 || child.step != 1 || child.end <= 0) continue;
    StripArrays arrays;
    if (!collect_strip_arrays(child, loop.induction_var, types, arrays)) {
      continue;
    }
    const std::string prefix = "ln" + std::to_string(next_id++) + "_";
    const std::string index =
        "[(" + loop.induction_var + " + " + child.induction_var + ")]";
    const std::string lanes = std::to_string(child.end);
    std::vector<Stmt> before;
    std::vector<Stmt> after;
    for (const std::string& name : arrays.names) {
      const std::string tmp = prefix + name;
      before.push_back(
          Stmt::text_line(types.at(name) + " " + tmp + "[" + lanes + "];"));
    }
    for (const std::string& name : arrays.names) {
      const std::string tmp = prefix + name;
      if (arrays.read.count(name) > 0) {
        before.push_back(Stmt::text_line("memcpy(" + tmp + ", &" + name + "[" +
                                         loop.induction_var + "], sizeof(" +
                                         tmp + "));"));
      }
      if (arrays.written.count(name) > 0) {
        after.push_back(Stmt::text_line("memcpy(&" + name + "[" +
                                        loop.induction_var + "], " + tmp +
                                        ", sizeof(" + tmp + "));"));
      }
    }
    for (Stmt& line : child.body) {
      for (const std::string& name : arrays.names) {
        const std::string from = name + index;
        const std::string to =
            prefix + name + "[" + child.induction_var + "]";
        std::string rewritten;
        std::size_t pos = 0;
        while (pos < line.text.size()) {
          const std::size_t hit = line.text.find(from, pos);
          if (hit == std::string::npos) {
            rewritten += line.text.substr(pos);
            break;
          }
          if (hit > 0 && lane_ident_char(line.text[hit - 1])) {
            // Longer identifier ending in `name` — not this array.
            rewritten += line.text.substr(pos, hit + name.size() - pos);
            pos = hit + name.size();
            continue;
          }
          rewritten += line.text.substr(pos, hit - pos) + to;
          pos = hit + from.size();
        }
        line.text = std::move(rewritten);
      }
    }
    loop.body.insert(loop.body.begin() + static_cast<std::ptrdiff_t>(j),
                     std::make_move_iterator(before.begin()),
                     std::make_move_iterator(before.end()));
    j += before.size();
    loop.body.insert(loop.body.begin() + static_cast<std::ptrdiff_t>(j + 1),
                     std::make_move_iterator(after.begin()),
                     std::make_move_iterator(after.end()));
    j += after.size();
    ++stats.strips_localized;
  }
}

void localize_strips(TranslationUnit& tu, PassStats& stats) {
  const std::map<std::string, std::string> types = lane_array_types(tu);
  int next_id = 0;
  for (Stmt& stmt : tu.step.body) {
    if (stmt.kind == Stmt::Kind::kLoop) {
      localize_strips_under(stmt, types, next_id, stats);
    }
  }
}

/// "cgir.pass" fault action: deliberately breaks the IR so the after-pass
/// verifier (when installed) must catch it — the broken-pass drill of
/// docs/ROBUSTNESS.md.  Two guaranteed-detectable mutations: the first step
/// loop over-runs its domain by one, and a statement referencing an
/// undeclared buffer appears.
void corrupt_unit(TranslationUnit& tu) {
  Stmt broken = Stmt::text_line("hcg_injected[0] = 1;");
  broken.accesses.push_back(BufferAccess{"hcg_injected", true, false});
  for (Stmt& stmt : tu.step.body) {
    if (stmt.kind == Stmt::Kind::kLoop) {
      stmt.end += 1;
      break;
    }
  }
  tu.step.body.push_back(std::move(broken));
}

}  // namespace

PassStats run_passes(TranslationUnit& tu, const PassOptions& options) {
  PassStats stats;
  auto checkpoint = [&](std::string_view pass) {
    if (faults::probe("cgir.pass", pass) != faults::Action::kNone) {
      corrupt_unit(tu);
    }
    if (options.after_pass) options.after_pass(pass, tu, stats);
  };
  if (options.fuse_loops) {
    while (try_fuse_once(tu.step.body, stats)) {
    }
    checkpoint("fuse_loops");
    if (options.fuse_cross_scale) {
      fuse_cross_scale(tu.step.body, stats);
      checkpoint("fuse_cross_scale");
    }
    for (Stmt& stmt : tu.step.body) {
      if (stmt.kind != Stmt::Kind::kLoop) continue;
      if (stmt.predicated) continue;  // masked loads/stores are not copies
      if (stmt.vector_loop || stmt.single_iteration) {
        forward_vector(stmt, stats);
      } else {
        forward_scalar(stmt);
      }
    }
    checkpoint("forward_copies");
    eliminate_dead_buffers(tu, stats);
    checkpoint("eliminate_dead_buffers");
  }
  if (options.tile_scalar_loops) {
    const int tile = options.tile_elems > 0 ? options.tile_elems : 16;
    tile_plain_loops(tu.step.body, tile, stats);
    checkpoint("tile_loops");
  }
  if (options.reuse_arena) {
    reuse_arena(tu, stats);
    checkpoint("reuse_arena");
  }
  if (options.coalesce_layout) {
    coalesce_layout(tu, stats);
    checkpoint("coalesce_layout");
  }
  if (options.localize_strips) {
    localize_strips(tu, stats);
    checkpoint("localize_strips");
  }
  return stats;
}

// ---------------------------------------------------------------------------
// Profiling instrumentation.
// ---------------------------------------------------------------------------

namespace {

/// Labels end up inside C string literals and JSON; rather than escaping,
/// restrict them to a charset that needs none in either context.
std::string prof_sanitize(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                (c >= '0' && c <= '9') || c == '_' || c == ':' || c == '-' ||
                c == '.' || c == ',' || c == ' ' || c == '(' || c == ')' ||
                c == '[' || c == '+' || c == '*' || c == '/';
    out.push_back(safe ? c : '_');
  }
  return out;
}

long long loop_trips(const Stmt& loop) {
  if (loop.single_iteration) return 1;
  if (loop.step <= 0 || loop.end <= loop.begin) return 0;
  return (static_cast<long long>(loop.end) - loop.begin + loop.step - 1) /
         loop.step;
}

std::string loop_label(const Stmt& loop) {
  if (loop.banner_actors > 0) {
    std::string label = "batch_region(" + std::to_string(loop.banner_actors) +
                        " actors";
    if (!loop.banner_isa.empty()) label += ", " + loop.banner_isa;
    return prof_sanitize(label + ")");
  }
  return "loop(" + std::to_string(loop.begin) + ".." +
         std::to_string(loop.end) + " step " + std::to_string(loop.step) + ")";
}

constexpr std::string_view kIntensiveTagPrefix = "intensive:";

}  // namespace

std::vector<ProfileSite> instrument_profiling(TranslationUnit& tu,
                                              const ProfileOptions& options) {
  std::vector<ProfileSite> sites;
  std::vector<Stmt> rebuilt;
  rebuilt.reserve(tu.step.body.size());
  int loop_count = 0;
  int call_count = 0;
  for (Stmt& stmt : tu.step.body) {
    const bool is_loop = stmt.kind == Stmt::Kind::kLoop;
    const bool is_call =
        stmt.kind == Stmt::Kind::kText &&
        stmt.prof_tag.compare(0, kIntensiveTagPrefix.size(),
                              kIntensiveTagPrefix) == 0;
    if (!is_loop && !is_call) {
      rebuilt.push_back(std::move(stmt));
      continue;
    }
    ProfileSite site;
    if (is_loop) {
      site.id = "L" + std::to_string(loop_count++);
      site.kind = (stmt.vector_loop || stmt.single_iteration ||
                   stmt.predicated)
                      ? "vector"
                      : "scalar";
      site.label = loop_label(stmt);
      site.iters_per_call = loop_trips(stmt);
    } else {
      site.id = "I" + std::to_string(call_count++);
      site.kind = "intensive";
      site.label =
          prof_sanitize(stmt.prof_tag.substr(kIntensiveTagPrefix.size()));
      site.iters_per_call = 1;
    }
    const std::string idx = std::to_string(sites.size());
    rebuilt.push_back(Stmt::text_line("HCG_PROF_ENTER(" + idx + ");"));
    rebuilt.push_back(std::move(stmt));
    rebuilt.push_back(Stmt::text_line(
        "HCG_PROF_LEAVE(" + idx + ", " +
        std::to_string(site.iters_per_call) + ");"));
    sites.push_back(std::move(site));
  }
  tu.step.body = std::move(rebuilt);

  // The counter arrays must have at least one element even for a site-less
  // unit (zero-length arrays are not standard C); the dump loop still runs
  // HCG_PROF_SITES times, so a pad entry is never reported.
  const std::size_t array_len = sites.empty() ? 1 : sites.size();
  std::string ids;
  std::string kinds;
  std::string labels;
  for (const ProfileSite& site : sites) {
    if (!ids.empty()) {
      ids += ", ";
      kinds += ", ";
      labels += ", ";
    }
    ids += "\"" + site.id + "\"";
    kinds += "\"" + site.kind + "\"";
    labels += "\"" + site.label + "\"";
  }
  if (sites.empty()) {
    ids = kinds = labels = "\"\"";
  }

  auto add = [&](std::string line) {
    tu.header_lines.push_back(std::move(line));
  };
  const std::string len = std::to_string(array_len);
  add("");
  add("#ifdef HCG_PROF");
  add("#include <stdint.h>");
  add("#include <stdio.h>");
  add("#include <time.h>");
  add("#define HCG_PROF_SITES " + std::to_string(sites.size()));
  add("static uint64_t hcg_prof_ns[" + len + "];");
  add("static uint64_t hcg_prof_calls[" + len + "];");
  add("static uint64_t hcg_prof_iters[" + len + "];");
  add("static const char* const hcg_prof_site_id[" + len + "] = {" + ids +
      "};");
  add("static const char* const hcg_prof_site_kind[" + len + "] = {" + kinds +
      "};");
  add("static const char* const hcg_prof_site_label[" + len + "] = {" +
      labels + "};");
  add("#if defined(HCG_PROF_RDTSC) && (defined(__x86_64__) || defined(__i386__))");
  add("#define HCG_PROF_CLOCK \"rdtsc\"");
  add("static inline uint64_t hcg_prof_now_ns(void) {");
  add("  uint32_t hcg_prof_lo, hcg_prof_hi;");
  add("  __asm__ __volatile__(\"rdtsc\" : \"=a\"(hcg_prof_lo), \"=d\"(hcg_prof_hi));");
  add("  return ((uint64_t)hcg_prof_hi << 32) | hcg_prof_lo;");
  add("}");
  add("#else");
  add("#define HCG_PROF_CLOCK \"monotonic_ns\"");
  add("static inline uint64_t hcg_prof_now_ns(void) {");
  add("  struct timespec hcg_prof_ts;");
  add("  clock_gettime(CLOCK_MONOTONIC, &hcg_prof_ts);");
  add("  return (uint64_t)hcg_prof_ts.tv_sec * 1000000000u +");
  add("         (uint64_t)hcg_prof_ts.tv_nsec;");
  add("}");
  add("#endif");
  add("#define HCG_PROF_ENTER(idx) const uint64_t hcg_prof_t##idx = hcg_prof_now_ns()");
  add("#define HCG_PROF_LEAVE(idx, n) do { \\");
  add("    hcg_prof_ns[idx] += hcg_prof_now_ns() - hcg_prof_t##idx; \\");
  add("    hcg_prof_calls[idx] += 1u; \\");
  add("    hcg_prof_iters[idx] += (uint64_t)(n); \\");
  add("  } while (0)");
  add("int hcg_prof_dump(const char* path) {");
  add("  FILE* hcg_prof_file = fopen(path, \"w\");");
  add("  if (!hcg_prof_file) return -1;");
  add(R"(  fprintf(hcg_prof_file, "{\n");)");
  add(R"(  fprintf(hcg_prof_file, "  \"schema\": \"hcg-profile-v1\",\n");)");
  add(R"(  fprintf(hcg_prof_file, "  \"model\": \")" +
      prof_sanitize(options.model_name) + R"(\",\n");)");
  add(R"(  fprintf(hcg_prof_file, "  \"clock\": \"" HCG_PROF_CLOCK "\",\n");)");
  add(R"(  fprintf(hcg_prof_file, "  \"sites\": [");)");
  add("  for (int hcg_prof_s = 0; hcg_prof_s < HCG_PROF_SITES; ++hcg_prof_s) {");
  add(R"(    fprintf(hcg_prof_file, "%s\n    {\"id\": \"%s\", \"kind\": \"%s\", \"label\": \"%s\",",)");
  add("            hcg_prof_s ? \",\" : \"\", hcg_prof_site_id[hcg_prof_s],");
  add("            hcg_prof_site_kind[hcg_prof_s], hcg_prof_site_label[hcg_prof_s]);");
  add(R"(    fprintf(hcg_prof_file, " \"ns\": %llu, \"calls\": %llu, \"iters\": %llu}",)");
  add("            (unsigned long long)hcg_prof_ns[hcg_prof_s],");
  add("            (unsigned long long)hcg_prof_calls[hcg_prof_s],");
  add("            (unsigned long long)hcg_prof_iters[hcg_prof_s]);");
  add("  }");
  add(R"(  fprintf(hcg_prof_file, "\n  ]\n}\n");)");
  add("  return fclose(hcg_prof_file) == 0 ? 0 : -1;");
  add("}");
  add("#else");
  add("#define HCG_PROF_ENTER(idx)");
  add("#define HCG_PROF_LEAVE(idx, n)");
  add("#endif");

  return sites;
}

}  // namespace hcg::cgir
