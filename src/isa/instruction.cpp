#include "isa/instruction.hpp"

#include <algorithm>
#include <cmath>

#include "graph/dataflow.hpp"
#include "support/error.hpp"

namespace hcg::isa {

namespace {
int node_depth(const Instruction& ins, int node_index) {
  int deepest = 0;
  for (const PatternArg& arg : ins.nodes[static_cast<size_t>(node_index)].args) {
    if (arg.kind == PatternArg::Kind::kChild) {
      deepest = std::max(deepest, node_depth(ins, arg.index));
    }
  }
  return deepest + 1;
}
}  // namespace

int Instruction::depth() const { return node_depth(*this, 0); }

int Instruction::cost() const {
  int total = 0;
  for (const PatternNode& node : nodes) total += op_cost(node.op);
  return total;
}

const VType* VectorIsa::find_vtype(DataType type) const {
  for (const VType& v : vtypes) {
    if (v.type == type) return &v;
  }
  return nullptr;
}

namespace {
const IoCode* find_io(const std::vector<IoCode>& codes, DataType type) {
  for (const IoCode& c : codes) {
    if (c.type == type) return &c;
  }
  return nullptr;
}
}  // namespace

const IoCode* VectorIsa::find_load(DataType type) const {
  return find_io(loads, type);
}
const IoCode* VectorIsa::find_store(DataType type) const {
  return find_io(stores, type);
}
const IoCode* VectorIsa::find_dup(DataType type) const {
  return find_io(dups, type);
}

const CvtCode* VectorIsa::find_cvt(DataType from, DataType to) const {
  for (const CvtCode& c : cvts) {
    if (c.from == from && c.to == to) return &c;
  }
  return nullptr;
}

const PredCode* VectorIsa::find_pred(DataType type) const {
  for (const PredCode& p : preds) {
    if (p.type == type) return &p;
  }
  return nullptr;
}

int VectorIsa::lanes(DataType type) const {
  const VType* v = find_vtype(type);
  return v ? v->lanes : 0;
}

bool VectorIsa::predicated(DataType type) const {
  if (!scalable) return false;
  const PredCode* p = find_pred(type);
  return p != nullptr && !p->c_name.empty() && !p->whilelt.empty() &&
         !p->vl_expr.empty();
}

VectorCapability VectorIsa::capability() const {
  VectorCapability cap;
  cap.width_bits = width_bits;
  cap.lanes_of = [this](DataType type) { return lanes(type); };
  cap.predicated_of = [this](DataType type) { return predicated(type); };
  return cap;
}

std::vector<const Instruction*> VectorIsa::candidates(BatchOp op,
                                                      DataType type) const {
  std::vector<const Instruction*> out;
  for (const Instruction& ins : instructions) {
    if (ins.root_op() == op && ins.type == type) out.push_back(&ins);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Instruction* a, const Instruction* b) {
                     if (a->cost() != b->cost()) return a->cost() > b->cost();
                     return a->node_count() > b->node_count();
                   });
  return out;
}

int VectorIsa::max_pattern_nodes() const {
  int m = 1;
  for (const Instruction& ins : instructions) m = std::max(m, ins.node_count());
  return m;
}

int VectorIsa::max_pattern_depth() const {
  int m = 1;
  for (const Instruction& ins : instructions) m = std::max(m, ins.depth());
  return m;
}

bool VectorIsa::supports(BatchOp op, DataType in, DataType out) const {
  if (op == BatchOp::kCast) {
    return find_cvt(in, out) != nullptr && find_vtype(in) != nullptr &&
           find_vtype(out) != nullptr;
  }
  if (find_vtype(out) == nullptr) return false;
  for (const Instruction& ins : instructions) {
    if (ins.type == out && ins.node_count() == 1 && ins.root_op() == op) {
      return true;
    }
  }
  return false;
}

void VectorIsa::validate() const {
  auto need_vtype = [&](DataType type, const std::string& who) {
    if (!find_vtype(type)) {
      throw ParseError("isa '" + name + "': " + who + " uses element type " +
                       std::string(short_name(type)) + " with no vtype");
    }
    if (!find_load(type) || !find_store(type)) {
      throw ParseError("isa '" + name + "': element type " +
                       std::string(short_name(type)) +
                       " lacks a load or store");
    }
  };
  // HCG110: every vtype must fill the declared register width exactly.  For
  // scalable ISAs `width` is the minimum (simulator) granule, so the same
  // arithmetic applies.
  for (const VType& v : vtypes) {
    if (v.lanes <= 0 || v.lanes * bit_width(v.type) != width_bits) {
      throw ParseError("[HCG110] isa '" + name + "': vtype " +
                       std::string(short_name(v.type)) + " declares " +
                       std::to_string(v.lanes) + " lanes x " +
                       std::to_string(bit_width(v.type)) + " bits != width " +
                       std::to_string(width_bits));
    }
  }
  // HCG111: duplicate table entries would make lookups order-dependent.
  auto dup = [&](const std::string& what) {
    throw ParseError("[HCG111] isa '" + name + "': duplicate " + what);
  };
  for (size_t i = 0; i < vtypes.size(); ++i) {
    for (size_t j = i + 1; j < vtypes.size(); ++j) {
      if (vtypes[i].type == vtypes[j].type) {
        dup("vtype for " + std::string(short_name(vtypes[i].type)));
      }
    }
  }
  auto check_io = [&](const std::vector<IoCode>& codes, const char* kind) {
    for (size_t i = 0; i < codes.size(); ++i) {
      for (size_t j = i + 1; j < codes.size(); ++j) {
        if (codes[i].type == codes[j].type) {
          dup(std::string(kind) + " for " +
              std::string(short_name(codes[i].type)));
        }
      }
    }
  };
  check_io(loads, "load");
  check_io(stores, "store");
  check_io(dups, "dup");
  for (size_t i = 0; i < cvts.size(); ++i) {
    for (size_t j = i + 1; j < cvts.size(); ++j) {
      if (cvts[i].from == cvts[j].from && cvts[i].to == cvts[j].to) {
        dup("cvt " + std::string(short_name(cvts[i].from)) + " -> " +
            std::string(short_name(cvts[i].to)));
      }
    }
  }
  for (size_t i = 0; i < preds.size(); ++i) {
    for (size_t j = i + 1; j < preds.size(); ++j) {
      if (preds[i].type == preds[j].type) {
        dup("ptype for " + std::string(short_name(preds[i].type)));
      }
    }
  }
  for (size_t i = 0; i < instructions.size(); ++i) {
    for (size_t j = i + 1; j < instructions.size(); ++j) {
      if (instructions[i].name == instructions[j].name &&
          instructions[i].type == instructions[j].type) {
        dup("instruction " + instructions[i].name + " for " +
            std::string(short_name(instructions[i].type)));
      }
    }
  }
  // Scalable tables: every vectorized element type needs the full predicate
  // kit, and the governed memory templates must actually take the predicate.
  if (scalable) {
    auto mentions_g = [](std::string_view code) {
      return substitute_tokens(code, {{"G", "\x01"}}).find('\x01') !=
             std::string::npos;
    };
    for (const VType& v : vtypes) {
      if (!predicated(v.type)) {
        throw ParseError("isa '" + name + "': scalable table lacks complete "
                         "ptype/whilelt/vl entries for element type " +
                         std::string(short_name(v.type)));
      }
      const IoCode* load = find_load(v.type);
      const IoCode* store = find_store(v.type);
      if ((load && !mentions_g(load->code)) ||
          (store && !mentions_g(store->code))) {
        throw ParseError("isa '" + name + "': scalable load/store for " +
                         std::string(short_name(v.type)) +
                         " must take the governing predicate G");
      }
    }
  } else if (!preds.empty()) {
    throw ParseError("isa '" + name +
                     "': ptype/whilelt/vl require the 'scalable' flag");
  }
  for (const Instruction& ins : instructions) {
    need_vtype(ins.type, "instruction " + ins.name);
    if (ins.nodes.empty()) {
      throw ParseError("isa '" + name + "': instruction " + ins.name +
                       " has an empty pattern");
    }
    const VType* v = find_vtype(ins.type);
    if (v->lanes != ins.lanes) {
      throw ParseError("isa '" + name + "': instruction " + ins.name +
                       " lane count disagrees with its vtype");
    }
    for (const PatternNode& node : ins.nodes) {
      const bool wants_scalar = has_scalar_operand(node.op);
      for (const PatternArg& arg : node.args) {
        if (arg.kind == PatternArg::Kind::kScalar && !wants_scalar) {
          throw ParseError("isa '" + name + "': instruction " + ins.name +
                           " uses a scalar slot on op " +
                           std::string(op_name(node.op)));
        }
        if (arg.kind == PatternArg::Kind::kChild &&
            (arg.index <= 0 || arg.index >= ins.node_count())) {
          throw ParseError("isa '" + name + "': instruction " + ins.name +
                           " has a bad child reference");
        }
      }
    }
  }
  for (const CvtCode& c : cvts) {
    need_vtype(c.from, "cvt");
    need_vtype(c.to, "cvt");
    if (find_vtype(c.from)->lanes != find_vtype(c.to)->lanes) {
      throw ParseError("isa '" + name +
                       "': cvt between types of different lane counts");
    }
  }
}

std::string scalar_literal(DataType type, double value) {
  if (type == DataType::kFloat32) {
    std::string s = std::to_string(value);
    return s + "f";
  }
  if (type == DataType::kFloat64) return std::to_string(value);
  return std::to_string(static_cast<long long>(std::llround(value)));
}

std::string substitute_tokens(
    std::string_view code,
    const std::vector<std::pair<std::string, std::string>>& replacements) {
  auto is_word = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_';
  };
  std::string out;
  size_t i = 0;
  while (i < code.size()) {
    if (!is_word(code[i])) {
      out += code[i++];
      continue;
    }
    size_t start = i;
    while (i < code.size() && is_word(code[i])) ++i;
    std::string_view word = code.substr(start, i - start);
    bool replaced = false;
    for (const auto& [token, value] : replacements) {
      if (word == token) {
        out += value;
        replaced = true;
        break;
      }
    }
    if (!replaced) out += word;
  }
  return out;
}

}  // namespace hcg::isa
