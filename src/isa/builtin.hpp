// Built-in instruction tables.
//
// The tables are authored once, as .isa text in data/isa/, and embedded into
// the library at configure time, so the file a user would edit to port HCG
// and the table the library ships can never diverge.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "isa/instruction.hpp"

namespace hcg::isa {

/// Names of the built-in tables: "neon", "neon_sim", "sse", "avx2".
/// "neon_sim" is the neon table re-targeted at the portable simulation
/// header (data/hcg_neon_sim.h) so NEON codegen runs on any host.
std::vector<std::string> builtin_names();

/// Returns the parsed built-in table (cached); throws hcg::Error on an
/// unknown name.
const VectorIsa& builtin(std::string_view name);

/// The raw .isa text of a built-in table (useful for tests and for writing
/// a starting point when porting to a new architecture).
std::string builtin_text(std::string_view name);

}  // namespace hcg::isa
