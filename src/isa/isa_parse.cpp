#include "isa/isa_parse.hpp"

#include <cctype>

#include "support/error.hpp"
#include "support/fileio.hpp"
#include "support/strings.hpp"

namespace hcg::isa {

namespace {

/// Recursive-descent parser for pattern expressions.
class PatternParser {
 public:
  PatternParser(std::string_view text, Instruction& out)
      : text_(text), out_(out) {}

  void parse() {
    const int root = parse_expr();
    require(root == 0, "pattern root must be node 0");
    skip_ws();
    if (pos_ != text_.size()) {
      throw ParseError("trailing text in pattern expression: '" +
                       std::string(text_.substr(pos_)) + "'");
    }
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  std::string parse_word() {
    skip_ws();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) {
      throw ParseError("expected a name in pattern expression at '" +
                       std::string(text_.substr(pos_)) + "'");
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  void expect(char c) {
    if (peek() != c) {
      throw ParseError(std::string("expected '") + c + "' in pattern at '" +
                       std::string(text_.substr(pos_)) + "'");
    }
    ++pos_;
  }

  /// Parses one op(...) node, appends it to out_.nodes, returns its index.
  int parse_expr() {
    const std::string op_word = parse_word();
    const BatchOp op = parse_batch_op(op_word);
    const int index = static_cast<int>(out_.nodes.size());
    out_.nodes.push_back(PatternNode{op, {}});
    expect('(');
    // Collect into a local first: parse_arg() may recurse into parse_expr()
    // and reallocate out_.nodes, invalidating references into it.
    std::vector<PatternArg> args;
    while (true) {
      args.push_back(parse_arg());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    expect(')');
    out_.nodes[static_cast<size_t>(index)].args = std::move(args);
    return index;
  }

  PatternArg parse_arg() {
    const char c = peek();
    if (c == '#') {
      ++pos_;
      return PatternArg{PatternArg::Kind::kFixedImm, 0, parse_number()};
    }
    const size_t save = pos_;
    const std::string word = parse_word();
    if (word == "C") return PatternArg{PatternArg::Kind::kScalar, 0, 0};
    if (word == "IMM") return PatternArg{PatternArg::Kind::kAnyImm, 0, 0};
    if (word.size() >= 2 && word[0] == 'I' &&
        std::isdigit(static_cast<unsigned char>(word[1]))) {
      const int slot = static_cast<int>(parse_int(word.substr(1)));
      out_.input_slots = std::max(out_.input_slots, slot);
      return PatternArg{PatternArg::Kind::kInput, slot, 0};
    }
    // Must be a nested op: rewind and parse recursively.
    pos_ = save;
    PatternArg arg;
    arg.kind = PatternArg::Kind::kChild;
    arg.index = parse_expr();
    return arg;
  }

  long long parse_number() {
    skip_ws();
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return parse_int(text_.substr(start, pos_ - start));
  }

  std::string_view text_;
  Instruction& out_;
  size_t pos_ = 0;
};

/// Offset just past the end of the n-th (0-based) whitespace-delimited token.
size_t token_end_offset(std::string_view line, int n) {
  size_t i = 0;
  for (int t = 0; t <= n; ++t) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
  }
  return i;
}

/// Extracts "vaddq_s32" from "O1 = vaddq_s32(I1, I2);" for paper-form lines.
std::string guess_name(std::string_view code) {
  for (size_t i = 0; i + 1 < code.size(); ++i) {
    if (code[i] == '(') {
      size_t end = i;
      size_t start = end;
      while (start > 0 &&
             (std::isalnum(static_cast<unsigned char>(code[start - 1])) ||
              code[start - 1] == '_')) {
        --start;
      }
      if (end > start) return std::string(code.substr(start, end - start));
    }
  }
  return "anonymous";
}

}  // namespace

VectorIsa parse_isa(std::string_view text) {
  VectorIsa isa;
  int line_number = 0;
  bool named = false;

  for (const std::string& raw_line : split(text, '\n')) {
    ++line_number;
    std::string_view line = trim(raw_line);
    if (line.empty() || line[0] == '#') continue;

    try {
      // ---- paper-form line ------------------------------------------------
      if (starts_with(line, "Graph:") || starts_with(line, "Graph :")) {
        const size_t semi = line.find(';');
        if (semi == std::string_view::npos) {
          throw ParseError("paper-form line needs '; Code:'");
        }
        std::string_view graph_part = trim(line.substr(line.find(':') + 1,
                                                       semi - line.find(':') - 1));
        std::string_view code_part = trim(line.substr(semi + 1));
        if (!starts_with(code_part, "Code")) {
          throw ParseError("paper-form line needs 'Code:' after ';'");
        }
        code_part = trim(code_part.substr(code_part.find(':') + 1));

        std::vector<std::string> fields = split(graph_part, ',');
        // <Op>, <type>, <lanes>, I..., O1
        if (fields.size() < 4) {
          throw ParseError("paper-form Graph needs op, type, lanes, operands");
        }
        Instruction ins;
        ins.type = parse_datatype(fields[1]);
        ins.lanes = static_cast<int>(parse_int(fields[2]));
        const BatchOp op = parse_batch_op(fields[0]);
        PatternNode root{op, {}};
        for (size_t i = 3; i + 1 < fields.size(); ++i) {
          const std::string& f = fields[i];
          if (f == "C") {
            root.args.push_back({PatternArg::Kind::kScalar, 0, 0});
          } else if (f == "IMM") {
            root.args.push_back({PatternArg::Kind::kAnyImm, 0, 0});
          } else if (!f.empty() && f[0] == '#') {
            root.args.push_back(
                {PatternArg::Kind::kFixedImm, 0, parse_int(f.substr(1))});
          } else if (!f.empty() && f[0] == 'I') {
            const int slot = static_cast<int>(parse_int(f.substr(1)));
            ins.input_slots = std::max(ins.input_slots, slot);
            root.args.push_back({PatternArg::Kind::kInput, slot, 0});
          } else {
            throw ParseError("bad paper-form operand '" + f + "'");
          }
        }
        if (fields.back() != "O1" && fields.back() != "O") {
          throw ParseError("paper-form Graph must end with the output O1");
        }
        ins.nodes.push_back(std::move(root));
        // Normalize O1 to O in the code template.
        ins.code = substitute_tokens(code_part, {{"O1", "O"}});
        ins.name = guess_name(code_part);
        isa.instructions.push_back(std::move(ins));
        continue;
      }

      std::vector<std::string> words = split_whitespace(line);
      const std::string& key = words[0];

      if (key == "isa") {
        isa.name = words.at(1);
        named = true;
      } else if (key == "width") {
        isa.width_bits = static_cast<int>(parse_int(words.at(1)));
      } else if (key == "header") {
        isa.header = words.at(1);
      } else if (key == "flags") {
        isa.compile_flags = std::string(trim(line.substr(5)));
      } else if (key == "simulated") {
        isa.simulated = true;
      } else if (key == "scalable") {
        isa.scalable = true;
      } else if (key == "ptype" || key == "whilelt" || key == "vl") {
        // Predicate machinery for scalable tables: the three directives fill
        // one PredCode entry per element type (instruction.hpp).
        const DataType type = parse_datatype(words.at(1));
        PredCode* pred = nullptr;
        for (PredCode& p : isa.preds) {
          if (p.type == type) pred = &p;
        }
        if (!pred) {
          isa.preds.push_back(PredCode{type, "", "", ""});
          pred = &isa.preds.back();
        }
        if (key == "ptype") {
          if (!pred->c_name.empty()) {
            throw ParseError("[HCG111] duplicate ptype for " +
                             std::string(short_name(type)));
          }
          pred->c_name = words.at(2);
        } else if (key == "whilelt") {
          if (!pred->whilelt.empty()) {
            throw ParseError("[HCG111] duplicate whilelt for " +
                             std::string(short_name(type)));
          }
          pred->whilelt =
              std::string(trim(line.substr(token_end_offset(line, 1))));
        } else {
          if (!pred->vl_expr.empty()) {
            throw ParseError("[HCG111] duplicate vl for " +
                             std::string(short_name(type)));
          }
          pred->vl_expr =
              std::string(trim(line.substr(token_end_offset(line, 1))));
        }
      } else if (key == "vtype") {
        VType v;
        v.type = parse_datatype(words.at(1));
        v.lanes = static_cast<int>(parse_int(words.at(2)));
        v.c_name = words.at(3);
        isa.vtypes.push_back(std::move(v));
      } else if (key == "load" || key == "store" || key == "dup") {
        IoCode io;
        io.type = parse_datatype(words.at(1));
        io.code = std::string(trim(line.substr(token_end_offset(line, 1))));
        if (key == "load") isa.loads.push_back(std::move(io));
        else if (key == "store") isa.stores.push_back(std::move(io));
        else isa.dups.push_back(std::move(io));
      } else if (key == "cvt") {
        CvtCode c;
        c.from = parse_datatype(words.at(1));
        c.to = parse_datatype(words.at(2));
        c.code = std::string(trim(line.substr(token_end_offset(line, 2))));
        isa.cvts.push_back(std::move(c));
      } else if (key == "ins") {
        Instruction ins;
        ins.name = words.at(1);
        ins.type = parse_datatype(words.at(2));
        const size_t sep = line.find("::");
        if (sep == std::string_view::npos) {
          throw ParseError("ins line needs ':: <code template>'");
        }
        // Pattern text sits between the type word and '::'.
        const size_t pattern_start = token_end_offset(line, 2);
        std::string_view pattern =
            trim(line.substr(pattern_start, sep - pattern_start));
        PatternParser(pattern, ins).parse();
        ins.code = std::string(trim(line.substr(sep + 2)));
        const VType* v = isa.find_vtype(ins.type);
        if (!v) {
          throw ParseError("ins " + ins.name +
                           " declared before a vtype for its element type");
        }
        ins.lanes = v->lanes;
        isa.instructions.push_back(std::move(ins));
      } else {
        throw ParseError("unknown directive '" + key + "'");
      }
    } catch (const ParseError& e) {
      throw ParseError(std::string(e.what()) + " [isa line " +
                       std::to_string(line_number) + "]");
    }
  }

  if (!named) throw ParseError("isa table missing an 'isa <name>' line");
  isa.validate();
  return isa;
}

VectorIsa load_isa_file(const std::filesystem::path& path) {
  return parse_isa(read_file(path));
}

}  // namespace hcg::isa
