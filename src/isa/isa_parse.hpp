// Parser for .isa instruction-table files.
//
// Line-oriented format ('#' starts a comment):
//
//   isa neon                      # table name
//   width 128                     # vector register width in bits
//   header arm_neon.h             # header generated code includes
//   flags -funsafe-math           # extra compiler flags (optional)
//   simulated                     # NEON-sim shim instead of real header
//   vtype i32 4 int32x4_t         # element type, lanes, vector C type
//   load  i32 O = vld1q_s32(P);   # P: element pointer, O: result
//   store i32 vst1q_s32(P, V);    # V: vector value to store
//   dup   i32 O = vdupq_n_s32(C); # C: scalar constant
//   cvt f32 i32 O = vcvtq_s32_f32(I1);
//   ins vaddq_s32 i32 Add(I1,I2) :: O = vaddq_s32(I1, I2);
//   ins vmlaq_s32 i32 Add(Mul(I1,I2),I3) :: O = vmlaq_s32(I3, I1, I2);
//   ins vhaddq_s32 i32 Shr(Add(I1,I2),#1) :: O = vhaddq_s32(I1, I2);
//
// The exact single-op form printed in the paper (§3.3) is accepted too:
//
//   Graph: Add, i32, 4, I1, I2, O1 ; Code: O1 = vaddq_s32(I1, I2);
//
// Pattern expressions: op(arg, ...) with args I1..I9 (vector inputs),
// C (scalar-constant slot), IMM (immediate slot), #k (fixed immediate),
// or a nested op.
#pragma once

#include <filesystem>
#include <string_view>

#include "isa/instruction.hpp"

namespace hcg::isa {

/// Parses a table; throws hcg::ParseError with a line number on bad input.
/// The returned table has been validate()d.
VectorIsa parse_isa(std::string_view text);

/// Parses the file at `path`.
VectorIsa load_isa_file(const std::filesystem::path& path);

}  // namespace hcg::isa
