// SIMD instruction descriptions (paper §3.3).
//
// Each instruction carries a small *pattern graph* (an expression tree of
// batch ops) plus a C code template.  Architecture support is pure data: a
// VectorIsa is parsed from a text table (built-in or external .isa file),
// and porting HCG to a new architecture means writing a new table.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "actors/batch_op.hpp"
#include "graph/regions.hpp"
#include "model/datatype.hpp"

namespace hcg::isa {

/// One operand position in a pattern expression.
struct PatternArg {
  enum class Kind : std::uint8_t {
    kChild,       // nested op (index into Instruction::nodes)
    kInput,       // input slot I1..I9 (index = slot number, 1-based)
    kScalar,      // scalar-constant slot C
    kFixedImm,    // literal immediate that must equal `imm` (e.g. #1)
    kAnyImm,      // immediate slot IMM (bound at match time)
  };
  Kind kind = Kind::kInput;
  int index = 0;       // child node index or input slot number
  long long imm = 0;   // kFixedImm payload
};

/// One op node of the pattern tree.
struct PatternNode {
  BatchOp op = BatchOp::kAdd;
  std::vector<PatternArg> args;
};

/// A SIMD instruction: pattern + code template.
///
/// Code templates use bare placeholder tokens substituted at word
/// boundaries: I1..I9 (vector operands), O (result), C (scalar constant),
/// IMM (immediate), and — in scalable tables — G (the loop-governing
/// predicate).  Exactly the convention of the paper's example
///   Graph: Add, i32, 4, I1, I2, O1 ; Code: O1 = vaddq_s32(I1, I2);
struct Instruction {
  std::string name;
  DataType type = DataType::kInt32;  // element type of operands and result
  int lanes = 4;
  std::vector<PatternNode> nodes;  // nodes[0] is the root
  int input_slots = 0;             // number of distinct I slots
  std::string code;

  int node_count() const { return static_cast<int>(nodes.size()); }
  int depth() const;
  /// Sum of op costs — the "computational cost" ordering key.
  int cost() const;
  /// The op computed by the root node.
  BatchOp root_op() const { return nodes.front().op; }
};

/// Per-element-type structural code: vector C type, load/store/dup.
struct VType {
  DataType type = DataType::kInt32;
  int lanes = 4;
  std::string c_name;  // e.g. "int32x4_t"
};

struct IoCode {
  DataType type = DataType::kInt32;
  std::string code;  // load: uses P, O; store: uses P, V; dup: uses C, O
};

/// A type conversion instruction (vcvt family).
struct CvtCode {
  DataType from = DataType::kFloat32;
  DataType to = DataType::kInt32;
  std::string code;  // uses I, O
};

/// Predicate machinery for one element type of a *scalable* ISA
/// (docs/ISA_FORMAT.md).  A scalable table vectorizes a region as a single
/// vector-length-agnostic predicated loop instead of a fixed-lane vector
/// loop plus a scalar remainder; every element type it covers needs all
/// three pieces, assembled from the `ptype`, `whilelt` and `vl` directives.
struct PredCode {
  DataType type = DataType::kInt32;
  std::string c_name;   // predicate C type, e.g. "svbool_t"
  /// Builds the loop-governing predicate.  Tokens: O (predicate result),
  /// I (induction variable), N (trip count) — e.g.
  ///   O = svwhilelt_b32(I, N);
  std::string whilelt;
  /// Runtime lane-count expression the induction variable steps by, e.g.
  /// "svcntw()".  Must be loop-invariant.
  std::string vl_expr;
};

/// A complete architecture description.
class VectorIsa : public OpSupport {
 public:
  std::string name;           // "neon", "sse", "avx2", ...
  int width_bits = 128;       // vector register width
  std::string header;         // C header the generated code includes
  std::string compile_flags;  // extra flags the toolchain passes (may be "")
  bool simulated = false;     // NEON-sim: include shim instead of arm_neon.h
  /// Scalable (SVE-style) table: lane count is a runtime quantity, regions
  /// lower to one predicated loop covering [0, n) with no scalar remainder,
  /// and load/store/ins templates take a governing predicate token G.  The
  /// declared `width` is the *minimum* (simulator) register width; `lanes`
  /// per vtype describe that granule, which sizing heuristics may use but
  /// codegen never bakes into the loop structure.
  bool scalable = false;
  std::vector<VType> vtypes;
  std::vector<IoCode> loads;
  std::vector<IoCode> stores;
  std::vector<IoCode> dups;
  std::vector<CvtCode> cvts;
  std::vector<PredCode> preds;  // scalable only: predicate per element type
  std::vector<Instruction> instructions;

  // ---- queries ------------------------------------------------------------
  const VType* find_vtype(DataType type) const;
  const IoCode* find_load(DataType type) const;
  const IoCode* find_store(DataType type) const;
  const IoCode* find_dup(DataType type) const;
  const CvtCode* find_cvt(DataType from, DataType to) const;
  const PredCode* find_pred(DataType type) const;

  /// Lane count for an element type; 0 if the type is unsupported.  For
  /// scalable ISAs this is the minimum (granule) lane count — callers that
  /// plan loop structure must go through predicated() instead of assuming
  /// the count is exact.
  int lanes(DataType type) const;

  /// Capability query: this table implements `type` as a single predicated
  /// vector-length-agnostic loop (scalable + complete predicate machinery).
  bool predicated(DataType type) const;

  /// Region planning's view of this table (graph/regions.hpp): the width
  /// plus per-type lane and predication queries.  The returned object
  /// borrows `this` and must not outlive it.
  VectorCapability capability() const;

  /// Instructions whose root computes `op` on `type`, largest pattern first.
  std::vector<const Instruction*> candidates(BatchOp op, DataType type) const;

  /// Upper bounds used by Algorithm 2's subgraph extension.
  int max_pattern_nodes() const;
  int max_pattern_depth() const;

  /// OpSupport: a single-node instruction (or cvt) exists for the op/type.
  bool supports(BatchOp op, DataType in, DataType out) const override;

  /// Structural completeness check; throws hcg::ParseError naming the gap
  /// (e.g. an instruction whose element type has no vtype/load/store).
  void validate() const;
};

/// Formats a scalar constant as a C literal of the given element type.
std::string scalar_literal(DataType type, double value);

/// Word-boundary placeholder substitution for code templates.
std::string substitute_tokens(
    std::string_view code,
    const std::vector<std::pair<std::string, std::string>>& replacements);

}  // namespace hcg::isa
