#include "isa/builtin.hpp"

#include <map>
#include <mutex>

#include "builtin_tables.hpp"
#include "isa/isa_parse.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace hcg::isa {

namespace {

/// The neon table re-headed for the simulation shim.
std::string neon_sim_text() {
  std::string text = tables::kNeonTable;
  text = replace_all(text, "isa neon", "isa neon_sim");
  text = replace_all(text, "header arm_neon.h",
                     "header hcg_neon_sim.h\nsimulated");
  return text;
}

}  // namespace

std::vector<std::string> builtin_names() {
  return {"neon", "neon_sim", "sse", "avx2", "sve"};
}

std::string builtin_text(std::string_view name) {
  if (name == "neon") return tables::kNeonTable;
  if (name == "neon_sim") return neon_sim_text();
  if (name == "sse") return tables::kSseTable;
  if (name == "avx2") return tables::kAvx2Table;
  if (name == "sve") return tables::kSveTable;
  throw Error("unknown built-in isa table '" + std::string(name) + "'");
}

const VectorIsa& builtin(std::string_view name) {
  static std::mutex mutex;
  static std::map<std::string, VectorIsa, std::less<>> cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(name);
  if (it != cache.end()) return it->second;
  VectorIsa isa = parse_isa(builtin_text(name));
  return cache.emplace(std::string(name), std::move(isa)).first->second;
}

}  // namespace hcg::isa
