#include "graph/dataflow.hpp"

#include <algorithm>
#include <set>

#include "support/error.hpp"

namespace hcg {

int op_cost(BatchOp op) {
  switch (op) {
    case BatchOp::kDiv:
    case BatchOp::kRecp:
    case BatchOp::kSqrt:
      return 4;
    case BatchOp::kMul:
    case BatchOp::kMulC:
      return 2;
    default:
      return 1;
  }
}

int Dataflow::add_external(DfgExternal external) {
  externals_.push_back(external);
  return static_cast<int>(externals_.size()) - 1;
}

int Dataflow::add_node(DfgNode node) {
  for (const ValueRef& operand : node.operands) {
    if (operand.kind == ValueRef::Kind::kNode) {
      require(operand.index >= 0 && operand.index < node_count(),
              "DfgNode operand references a later node (graph must be "
              "topologically ordered)");
    }
    if (operand.kind == ValueRef::Kind::kExternal) {
      require(operand.index >= 0 &&
                  operand.index < static_cast<int>(externals_.size()),
              "DfgNode operand references an unknown external");
    }
  }
  const int index = node_count();
  for (const ValueRef& operand : node.operands) {
    if (operand.kind != ValueRef::Kind::kNode) continue;
    std::vector<int>& uses = consumers_[static_cast<size_t>(operand.index)];
    if (uses.empty() || uses.back() != index) uses.push_back(index);
  }
  nodes_.push_back(std::move(node));
  consumers_.emplace_back();
  return index;
}

void Dataflow::mark_output(int node_index) {
  require(node_index >= 0 && node_index < node_count(),
          "mark_output: bad node index");
  if (!is_output(node_index)) outputs_.push_back(node_index);
}

bool Dataflow::is_output(int node_index) const {
  return std::find(outputs_.begin(), outputs_.end(), node_index) !=
         outputs_.end();
}

const std::vector<int>& Dataflow::consumers(int node_index) const {
  return consumers_.at(static_cast<size_t>(node_index));
}

int Dataflow::top_left_node(const std::vector<bool>& mapped) const {
  for (int i = 0; i < node_count(); ++i) {
    if (mapped[static_cast<size_t>(i)]) continue;
    bool ready = true;
    for (const ValueRef& operand : nodes_[static_cast<size_t>(i)].operands) {
      if (operand.kind == ValueRef::Kind::kNode &&
          !mapped[static_cast<size_t>(operand.index)]) {
        ready = false;
        break;
      }
    }
    if (ready) return i;
  }
  return -1;
}

int Dataflow::sink_of(const std::vector<int>& subgraph) const {
  const std::set<int> members(subgraph.begin(), subgraph.end());
  int sink = -1;
  for (int m : subgraph) {
    bool escapes = is_output(m);
    for (int c : consumers(m)) {
      if (!members.count(c)) escapes = true;
    }
    // A node consumed by nothing at all is also a sink of the subgraph.
    if (consumers(m).empty() && !escapes) escapes = true;
    if (escapes) {
      if (sink != -1) return -1;
      sink = m;
    }
  }
  return sink;
}

bool Dataflow::is_convex(const std::vector<int>& subgraph) const {
  const std::set<int> members(subgraph.begin(), subgraph.end());
  // For every member, walk forward through non-members; if we re-enter the
  // subgraph the set is non-convex.
  for (int start : subgraph) {
    std::vector<int> stack;
    std::set<int> visited;
    for (int c : consumers(start)) {
      if (!members.count(c)) stack.push_back(c);
    }
    while (!stack.empty()) {
      int n = stack.back();
      stack.pop_back();
      if (visited.count(n)) continue;
      visited.insert(n);
      if (members.count(n)) return false;
      for (int c : consumers(n)) {
        if (members.count(c)) return false;
        stack.push_back(c);
      }
    }
  }
  return true;
}

bool Dataflow::is_independent(const std::vector<int>& subgraph,
                              const std::vector<bool>& mapped) const {
  const std::set<int> members(subgraph.begin(), subgraph.end());
  for (int m : subgraph) {
    for (const ValueRef& operand : nodes_[static_cast<size_t>(m)].operands) {
      if (operand.kind != ValueRef::Kind::kNode) continue;
      if (members.count(operand.index)) continue;
      if (!mapped[static_cast<size_t>(operand.index)]) return false;
    }
  }
  return true;
}

bool Dataflow::interior_values_private(const std::vector<int>& subgraph) const {
  const std::set<int> members(subgraph.begin(), subgraph.end());
  const int sink = sink_of(subgraph);
  for (int m : subgraph) {
    if (m == sink) continue;
    if (is_output(m)) return false;
    for (int c : consumers(m)) {
      if (!members.count(c)) return false;
    }
  }
  return true;
}

int Dataflow::cost(const std::vector<int>& subgraph) const {
  int total = 0;
  for (int m : subgraph) total += op_cost(nodes_[static_cast<size_t>(m)].op);
  return total;
}

std::vector<std::vector<int>> Dataflow::extend_subgraphs(
    int seed, const std::vector<bool>& mapped, int max_nodes) const {
  require(seed >= 0 && seed < node_count(), "extend_subgraphs: bad seed");

  // Undirected adjacency over unmapped nodes.
  auto neighbours = [&](int n) {
    std::vector<int> out;
    for (const ValueRef& operand : nodes_[static_cast<size_t>(n)].operands) {
      if (operand.kind == ValueRef::Kind::kNode &&
          !mapped[static_cast<size_t>(operand.index)]) {
        out.push_back(operand.index);
      }
    }
    for (int c : consumers(n)) {
      if (!mapped[static_cast<size_t>(c)]) out.push_back(c);
    }
    return out;
  };

  std::set<std::vector<int>> seen;
  std::vector<std::vector<int>> result;
  std::vector<std::vector<int>> frontier = {{seed}};
  seen.insert({seed});
  result.push_back({seed});

  while (!frontier.empty()) {
    std::vector<std::vector<int>> next;
    for (const std::vector<int>& s : frontier) {
      if (static_cast<int>(s.size()) >= max_nodes) continue;
      for (int m : s) {
        for (int nb : neighbours(m)) {
          if (std::find(s.begin(), s.end(), nb) != s.end()) continue;
          std::vector<int> grown = s;
          grown.push_back(nb);
          std::sort(grown.begin(), grown.end());
          if (!seen.insert(grown).second) continue;
          next.push_back(grown);
          result.push_back(grown);
        }
      }
    }
    frontier = std::move(next);
  }

  // Keep every convex candidate — the paper discards unmatchable subgraphs
  // at instruction-matching time, not during extension.  (Independence and
  // interior-privacy are checked by the synthesis loop because they depend
  // on the evolving mapped set.)  When the subgraph has a unique sink it
  // goes last so callers can treat s.back() as the produced value; a
  // multi-sink subgraph keeps its topologically-last member there and will
  // fail the interior-privacy check downstream.
  std::vector<std::vector<int>> filtered;
  for (std::vector<int>& s : result) {
    if (!is_convex(s)) continue;
    int sink = sink_of(s);
    if (sink == -1) sink = *std::max_element(s.begin(), s.end());
    s.erase(std::remove(s.begin(), s.end(), sink), s.end());
    s.push_back(sink);
    filtered.push_back(std::move(s));
  }

  // Higher computational cost first; ties: more nodes first, then stable by
  // member indices for determinism.
  std::stable_sort(filtered.begin(), filtered.end(),
                   [&](const std::vector<int>& a, const std::vector<int>& b) {
                     const int ca = cost(a), cb = cost(b);
                     if (ca != cb) return ca > cb;
                     if (a.size() != b.size()) return a.size() > b.size();
                     return a < b;
                   });
  return filtered;
}

std::string Dataflow::to_string() const {
  std::string out = "dataflow(length=" + std::to_string(length_) +
                    ", bits=" + std::to_string(bit_width_) + ")\n";
  for (int i = 0; i < node_count(); ++i) {
    const DfgNode& n = nodes_[static_cast<size_t>(i)];
    out += "  n" + std::to_string(i) + " = " + std::string(op_name(n.op)) + "(";
    for (size_t j = 0; j < n.operands.size(); ++j) {
      if (j > 0) out += ", ";
      const ValueRef& v = n.operands[j];
      switch (v.kind) {
        case ValueRef::Kind::kNode: out += "n" + std::to_string(v.index); break;
        case ValueRef::Kind::kExternal: out += "x" + std::to_string(v.index); break;
        case ValueRef::Kind::kScalarConst: out += "c:" + std::to_string(v.scalar); break;
        case ValueRef::Kind::kImmediate: out += "#" + std::to_string(v.imm); break;
      }
    }
    out += ") : " + std::string(short_name(n.out_type));
    if (is_output(i)) out += "  -> store";
    out += "\n";
  }
  return out;
}

}  // namespace hcg
