#include "graph/regions.hpp"

#include <algorithm>
#include <functional>
#include <set>

#include "actors/catalog.hpp"
#include "model/schedule.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace hcg {

bool AllOpsSupport::supports(BatchOp op, DataType in, DataType out) const {
  if (op == BatchOp::kCast) {
    return !is_complex(in) && !is_complex(out);
  }
  return op_supports_type(op, out);
}

namespace {

/// A batch actor is a region candidate if its op is SIMD-implementable and
/// its input/output arrays share one element count and bit width.
bool is_region_candidate(const Model& model, ActorId id,
                         const OpSupport& support) {
  if (classify(model, id) != ActorKind::kBatch) return false;
  const Actor& actor = model.actor(id);
  const BatchOp op = batch_op_for_actor_type(actor.type());
  const PortSpec& out = actor.output(0);
  for (int port = 0; port < actor.input_count(); ++port) {
    const PortSpec& in = actor.input(port);
    if (bit_width(in.type) != bit_width(out.type)) return false;
    if (in.shape.elements() != out.shape.elements()) return false;
  }
  return support.supports(op, actor.input(0).type, out.type);
}

struct Signature {
  int elements;
  int bits;
  bool operator==(const Signature&) const = default;
};

Signature signature_of(const Actor& actor) {
  return Signature{actor.output(0).shape.elements(),
                   bit_width(actor.output(0).type)};
}

/// The op/type/actor skeleton of a dataflow node, before operands.
DfgNode make_batch_node(const Model& model, ActorId id) {
  const Actor& actor = model.actor(id);
  DfgNode node;
  node.op = batch_op_for_actor_type(actor.type());
  node.out_type = actor.output(0).type;
  node.actor = id;
  return node;
}

/// Appends the trailing non-wire operand some ops carry: MulC's gain,
/// AddC's bias, or a shift's immediate amount.
void append_parameter_operand(const Actor& actor, DfgNode& node) {
  if (node.op == BatchOp::kMulC) {
    node.operands.push_back(
        ValueRef::scalar_const(parse_double(actor.param("gain"))));
  } else if (node.op == BatchOp::kAddC) {
    node.operands.push_back(
        ValueRef::scalar_const(parse_double(actor.param("bias"))));
  } else if (has_immediate(node.op)) {
    node.operands.push_back(ValueRef::immediate(actor.int_param("amount")));
  }
}

}  // namespace

std::vector<BatchRegion> find_batch_regions(const Model& model,
                                            const OpSupport& support) {
  const std::vector<ActorId> order = schedule(model);

  std::vector<bool> candidate(static_cast<size_t>(model.actor_count()), false);
  for (const Actor& actor : model.actors()) {
    candidate[static_cast<size_t>(actor.id())] =
        is_region_candidate(model, actor.id(), support);
  }

  // Union-find over candidates connected by a wire, same signature.
  std::vector<int> parent(static_cast<size_t>(model.actor_count()));
  for (size_t i = 0; i < parent.size(); ++i) parent[i] = static_cast<int>(i);
  std::function<int(int)> find = [&](int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };
  for (const Connection& c : model.connections()) {
    if (!candidate[static_cast<size_t>(c.src)] ||
        !candidate[static_cast<size_t>(c.dst)]) {
      continue;
    }
    if (!(signature_of(model.actor(c.src)) == signature_of(model.actor(c.dst)))) {
      continue;
    }
    parent[static_cast<size_t>(find(c.src))] = find(c.dst);
  }

  // Group members per root, keeping firing order.
  std::map<int, std::vector<ActorId>> groups;
  for (ActorId id : order) {
    if (candidate[static_cast<size_t>(id)]) groups[find(id)].push_back(id);
  }

  // ---- convexification ----------------------------------------------------
  // A region must be emittable as one code block, so no dependency path may
  // leave the region and re-enter it.  Offending groups lose their last
  // member (which becomes its own group) until convex; remainders are
  // re-split into connected pieces.
  auto group_is_convex = [&](const std::vector<ActorId>& members) {
    const std::set<ActorId> member_set(members.begin(), members.end());
    for (ActorId start : members) {
      std::vector<ActorId> stack;
      std::set<ActorId> visited;
      for (const Connection& c : model.outgoing_all(start)) {
        if (!member_set.count(c.dst)) stack.push_back(c.dst);
      }
      while (!stack.empty()) {
        ActorId n = stack.back();
        stack.pop_back();
        if (!visited.insert(n).second) continue;
        if (member_set.count(n)) return false;
        if (is_delay_type(model.actor(n).type())) continue;
        for (const Connection& c : model.outgoing_all(n)) {
          if (member_set.count(c.dst)) return false;
          stack.push_back(c.dst);
        }
      }
    }
    return true;
  };

  auto connected_pieces = [&](const std::vector<ActorId>& members) {
    std::vector<std::vector<ActorId>> pieces;
    const std::set<ActorId> member_set(members.begin(), members.end());
    std::set<ActorId> assigned;
    for (ActorId seed : members) {
      if (assigned.count(seed)) continue;
      std::set<ActorId> piece;
      std::vector<ActorId> stack{seed};
      while (!stack.empty()) {
        ActorId n = stack.back();
        stack.pop_back();
        if (!piece.insert(n).second) continue;
        for (const Connection& c : model.connections()) {
          if (c.src == n && member_set.count(c.dst) && !piece.count(c.dst)) {
            stack.push_back(c.dst);
          }
          if (c.dst == n && member_set.count(c.src) && !piece.count(c.src)) {
            stack.push_back(c.src);
          }
        }
      }
      std::vector<ActorId> ordered_piece;
      for (ActorId id : members) {
        if (piece.count(id)) ordered_piece.push_back(id);
      }
      for (ActorId id : ordered_piece) assigned.insert(id);
      pieces.push_back(std::move(ordered_piece));
    }
    return pieces;
  };

  std::vector<std::vector<ActorId>> final_groups;
  std::vector<std::vector<ActorId>> work;
  for (auto& [root, members] : groups) {
    (void)root;
    work.push_back(members);
  }
  while (!work.empty()) {
    std::vector<ActorId> members = std::move(work.back());
    work.pop_back();
    if (members.size() <= 1 || group_is_convex(members)) {
      final_groups.push_back(std::move(members));
      continue;
    }
    std::vector<ActorId> last{members.back()};
    members.pop_back();
    final_groups.push_back(std::move(last));
    for (auto& piece : connected_pieces(members)) work.push_back(std::move(piece));
  }

  std::vector<BatchRegion> regions;
  // Deterministic region order: by first actor's firing position.
  std::vector<std::pair<int, std::vector<ActorId>>> ordered;
  for (auto& members : final_groups) {
    int first_pos = 0;
    for (size_t i = 0; i < order.size(); ++i) {
      if (order[i] == members.front()) first_pos = static_cast<int>(i);
    }
    ordered.emplace_back(first_pos, std::move(members));
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  for (auto& [pos, members] : ordered) {
    (void)pos;
    const Actor& first = model.actor(members.front());
    const Signature sig = signature_of(first);
    BatchRegion region{.actors = members,
                       .node_of = {},
                       .graph = Dataflow(sig.elements, sig.bits)};

    std::map<std::pair<ActorId, int>, int> external_of;
    auto external_index = [&](ActorId src, int port) {
      auto key = std::make_pair(src, port);
      auto it = external_of.find(key);
      if (it != external_of.end()) return it->second;
      DfgExternal ext{.src = src,
                      .src_port = port,
                      .type = model.actor(src).output(port).type};
      int index = region.graph.add_external(ext);
      external_of.emplace(key, index);
      return index;
    };

    const std::set<ActorId> member_set(members.begin(), members.end());
    for (ActorId id : members) {
      const Actor& actor = model.actor(id);
      DfgNode node = make_batch_node(model, id);

      for (int port = 0; port < actor.input_count(); ++port) {
        const Connection conn = *model.incoming(id, port);
        if (member_set.count(conn.src)) {
          node.operands.push_back(
              ValueRef::node(region.node_of.at(conn.src)));
        } else {
          node.operands.push_back(
              ValueRef::external(external_index(conn.src, conn.src_port)));
        }
      }
      append_parameter_operand(actor, node);

      region.node_of[id] = region.graph.add_node(std::move(node));
    }

    // Outputs: any member result consumed outside the region.
    for (ActorId id : members) {
      for (const Connection& c : model.outgoing(id, 0)) {
        if (!member_set.count(c.dst)) {
          region.graph.mark_output(region.node_of.at(id));
          break;
        }
      }
    }

    regions.push_back(std::move(region));
  }
  return regions;
}

BatchRegion singleton_batch_region(const Model& model, ActorId id) {
  const Actor& actor = model.actor(id);
  BatchRegion region{{id},
                     {},
                     Dataflow(actor.output(0).shape.elements(),
                              bit_width(actor.output(0).type))};

  std::map<std::pair<ActorId, int>, int> external_of;
  DfgNode node = make_batch_node(model, id);
  for (int port = 0; port < actor.input_count(); ++port) {
    const Connection conn = *model.incoming(id, port);
    const auto key = std::make_pair(conn.src, conn.src_port);
    auto it = external_of.find(key);
    if (it == external_of.end()) {
      DfgExternal ext{conn.src, conn.src_port,
                      model.actor(conn.src).output(conn.src_port).type};
      it = external_of.emplace(key, region.graph.add_external(ext)).first;
    }
    node.operands.push_back(ValueRef::external(it->second));
  }
  append_parameter_operand(actor, node);
  region.node_of[id] = region.graph.add_node(std::move(node));
  region.graph.mark_output(0);
  return region;
}

RegionVectorPlan plan_region_vectorization(const BatchRegion& region,
                                           const VectorCapability& capability,
                                           int min_nodes_for_simd) {
  RegionVectorPlan plan;
  const Dataflow& graph = region.graph;
  plan.lanes = capability.width_bits / graph.data_bit_width();
  if (plan.lanes <= 0) return plan;

  // A region is predicated when the table covers every node type with the
  // scalable predicate kit; the loop then handles any length >= 1 with no
  // remainder, so the fixed-width batch_count >= 1 early exit does not
  // apply.  batch_count/offset become granule-width estimates for sizing
  // and reporting only.
  bool predicated = true;
  for (const DfgNode& node : graph.nodes()) {
    if (!capability.predicated_of || !capability.predicated_of(node.out_type)) {
      predicated = false;
      break;
    }
  }

  plan.predicated = predicated;
  if (predicated) {
    plan.batch_count = (graph.length() + plan.lanes - 1) / plan.lanes;
    plan.offset = 0;
    if (graph.length() < 1 || graph.node_count() < min_nodes_for_simd) {
      return plan;
    }
  } else {
    plan.batch_count = graph.length() / plan.lanes;
    plan.offset = graph.length() % plan.lanes;
    if (plan.batch_count < 1 || graph.node_count() < min_nodes_for_simd) {
      return plan;
    }
  }
  for (const DfgNode& node : graph.nodes()) {
    if (capability.lanes_of(node.out_type) != plan.lanes) return plan;
  }
  plan.viable = true;
  return plan;
}

std::vector<EmissionItem> emission_order(
    const Model& model, const std::vector<BatchRegion>& regions) {
  // Contracted graph: each region is one item, every other actor its own.
  const int n = model.actor_count();
  std::vector<int> item_of(static_cast<size_t>(n), -1);
  std::vector<EmissionItem> items;
  for (size_t r = 0; r < regions.size(); ++r) {
    items.push_back(EmissionItem{kNoActor, static_cast<int>(r)});
    for (ActorId id : regions[r].actors) {
      item_of[static_cast<size_t>(id)] = static_cast<int>(items.size()) - 1;
    }
  }
  for (ActorId id = 0; id < n; ++id) {
    if (item_of[static_cast<size_t>(id)] != -1) continue;
    items.push_back(EmissionItem{id, -1});
    item_of[static_cast<size_t>(id)] = static_cast<int>(items.size()) - 1;
  }

  std::vector<int> pending(items.size(), 0);
  std::set<std::pair<int, int>> edges;
  for (const Connection& c : model.connections()) {
    if (is_delay_type(model.actor(c.src).type())) continue;
    const int a = item_of[static_cast<size_t>(c.src)];
    const int b = item_of[static_cast<size_t>(c.dst)];
    if (a == b) continue;
    if (edges.insert({a, b}).second) ++pending[static_cast<size_t>(b)];
  }

  std::vector<int> ready;
  for (size_t i = 0; i < items.size(); ++i) {
    if (pending[i] == 0) ready.push_back(static_cast<int>(i));
  }
  std::vector<EmissionItem> order;
  while (!ready.empty()) {
    auto it = std::min_element(ready.begin(), ready.end());
    const int item = *it;
    ready.erase(it);
    order.push_back(items[static_cast<size_t>(item)]);
    for (const auto& [a, b] : edges) {
      if (a == item && --pending[static_cast<size_t>(b)] == 0) {
        ready.push_back(b);
      }
    }
  }
  require(order.size() == items.size(),
          "emission_order: contracted graph is cyclic (non-convex region "
          "survived convexification)");
  return order;
}

}  // namespace hcg
