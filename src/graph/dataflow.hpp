// The directed dataflow graph of a batch-computing region (paper §3.2.2).
//
// Nodes are element-wise operations; operands are either results of other
// nodes, external arrays entering the region, scalar constants (Gain/Bias
// coefficients, broadcast into a vector register), or immediates (shift
// amounts, baked into the instruction encoding).
#pragma once

#include <string>
#include <vector>

#include "actors/batch_op.hpp"
#include "model/model.hpp"

namespace hcg {

/// One operand of a dataflow node.
struct ValueRef {
  enum class Kind : std::uint8_t {
    kNode,         // result of another node in the same graph
    kExternal,     // array produced outside the region (loaded via vld)
    kScalarConst,  // scalar constant, broadcast via vdup
    kImmediate,    // compile-time literal baked into the instruction
  };

  Kind kind = Kind::kExternal;
  int index = -1;     // node index (kNode) or external index (kExternal)
  double scalar = 0;  // kScalarConst payload
  long long imm = 0;  // kImmediate payload

  static ValueRef node(int index) {
    return ValueRef{Kind::kNode, index, 0, 0};
  }
  static ValueRef external(int index) {
    return ValueRef{Kind::kExternal, index, 0, 0};
  }
  static ValueRef scalar_const(double value) {
    return ValueRef{Kind::kScalarConst, -1, value, 0};
  }
  static ValueRef immediate(long long value) {
    return ValueRef{Kind::kImmediate, -1, 0, value};
  }

  bool operator==(const ValueRef&) const = default;
};

/// One element-wise operation.
struct DfgNode {
  BatchOp op = BatchOp::kAdd;
  std::vector<ValueRef> operands;
  DataType out_type = DataType::kFloat32;  // differs across Cast nodes
  ActorId actor = kNoActor;                // originating model actor
};

/// An array flowing into the region from outside.
struct DfgExternal {
  ActorId src = kNoActor;  // producing actor (Inport/Constant/non-batch/...)
  int src_port = 0;
  DataType type = DataType::kFloat32;
};

class Dataflow {
 public:
  Dataflow(int length, int data_bit_width)
      : length_(length), bit_width_(data_bit_width) {}

  /// Array length (elements) shared by every signal in the region.
  int length() const { return length_; }
  /// Element bit width shared by every signal in the region.
  int data_bit_width() const { return bit_width_; }

  int add_external(DfgExternal external);
  int add_node(DfgNode node);

  int node_count() const { return static_cast<int>(nodes_.size()); }
  const DfgNode& node(int index) const { return nodes_.at(static_cast<size_t>(index)); }
  const std::vector<DfgNode>& nodes() const { return nodes_; }
  const std::vector<DfgExternal>& externals() const { return externals_; }

  /// Marks a node's result as leaving the region (needs a vector store).
  void mark_output(int node_index);
  const std::vector<int>& outputs() const { return outputs_; }
  bool is_output(int node_index) const;

  /// Node indices that consume `node_index`'s result (deduplicated,
  /// ascending; maintained incrementally by add_node).
  const std::vector<int>& consumers(int node_index) const;

  /// The "topmost and leftmost" unmapped node (Algorithm 2 line 12): the
  /// lowest-index node whose node-operands are all in `mapped`.
  /// Returns -1 when every node is mapped.
  int top_left_node(const std::vector<bool>& mapped) const;

  /// extendGraphs (Algorithm 2 line 13): all *convex* connected subgraphs of
  /// unmapped nodes containing `seed`, with at most `max_nodes` nodes,
  /// sorted by descending computational cost.  Each subgraph is a list of
  /// node indices with its sink (the value an instruction would produce)
  /// last; candidates without a unique sink are still enumerated — they are
  /// discarded later by matching / interior-privacy, mirroring the paper.
  std::vector<std::vector<int>> extend_subgraphs(
      int seed, const std::vector<bool>& mapped, int max_nodes) const;

  /// The unique sink of `subgraph` (the only member whose result is used
  /// outside it or is a region output); -1 if not unique.
  int sink_of(const std::vector<int>& subgraph) const;

  /// Convexity (paper: "nodes do not indirectly depend on the results of its
  /// own nodes"): no path between two members passes through a non-member.
  bool is_convex(const std::vector<int>& subgraph) const;

  /// Independence (Algorithm 2 line 15): every node-operand entering the
  /// subgraph from outside has already been generated (is in `mapped`).
  bool is_independent(const std::vector<int>& subgraph,
                      const std::vector<bool>& mapped) const;

  /// Interior check: every member other than the sink is consumed only by
  /// members (fusing would otherwise lose a value other consumers need).
  bool interior_values_private(const std::vector<int>& subgraph) const;

  /// Computational cost of a subgraph (sum of per-op costs; higher-cost
  /// subgraphs are matched first, Algorithm 2's ordering rule).
  int cost(const std::vector<int>& subgraph) const;

  /// Human-readable dump for diagnostics and tests.
  std::string to_string() const;

 private:
  int length_;
  int bit_width_;
  std::vector<DfgNode> nodes_;
  std::vector<std::vector<int>> consumers_;  // use lists, parallel to nodes_
  std::vector<DfgExternal> externals_;
  std::vector<int> outputs_;
};

/// Per-op cost heuristic used for subgraph ordering.
int op_cost(BatchOp op);

}  // namespace hcg
