// Dataflow graph construction (first step of paper §3.2.2): collects the
// interconnected batch computing actors which share the same I/O scale and
// element bit-width into regions, and converts each region into a Dataflow.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "graph/dataflow.hpp"
#include "model/model.hpp"

namespace hcg {

/// Answers "could a single SIMD instruction implement this op on this type?"
/// The ISA layer implements this; actors whose op has no single-instruction
/// implementation stay outside every region and are translated
/// conventionally (which also guarantees Algorithm 2 always terminates).
class OpSupport {
 public:
  virtual ~OpSupport() = default;
  /// `in` is the operand element type, `out` the result element type (they
  /// differ only for Cast).
  virtual bool supports(BatchOp op, DataType in, DataType out) const = 0;
};

/// Accepts everything op_supports_type() allows — for tests.
class AllOpsSupport final : public OpSupport {
 public:
  bool supports(BatchOp op, DataType in, DataType out) const override;
};

/// One maximal group of connected batch actors with a common (length,
/// bit-width) signature, plus its dataflow graph.
struct BatchRegion {
  std::vector<ActorId> actors;      // in firing order
  std::map<ActorId, int> node_of;   // actor -> graph node index
  Dataflow graph;
};

/// Finds all batch regions of a resolved model, in deterministic order.
/// Regions are convex with respect to the model graph: contracting each
/// region to a super-node leaves the dependency graph acyclic, so a region
/// can be emitted as one block.  Components violating this are split.
std::vector<BatchRegion> find_batch_regions(const Model& model,
                                            const OpSupport& support);

/// Builds the one-actor region scattered mode uses: the same structure
/// find_batch_regions produces for a group of size one, except every input
/// is an external, so the generated loop loads and stores on every pass.
/// Duplicate (source, port) inputs share a single external (and thus a
/// single vector load).
BatchRegion singleton_batch_region(const Model& model, ActorId id);

/// Lane-width capability of an instruction table, as region planning sees
/// it: everything Algorithm 2's early exits need, without this layer
/// depending on the ISA layer (which sits above it).  `isa::VectorIsa`
/// fills one via its capability() accessor.
struct VectorCapability {
  /// Fixed register width, or — for scalable tables — the declared minimum
  /// granule width.  Lane counts derived from it are exact for fixed
  /// tables and a lower bound for scalable ones.
  int width_bits = 0;
  /// Granule lane count per element type; 0 when the type is unsupported.
  std::function<int(DataType)> lanes_of;
  /// True when the table vectorizes this type as a single predicated
  /// vector-length-agnostic loop (no static remainder split).  Fixed-width
  /// tables return false for every type.
  std::function<bool(DataType)> predicated_of;
};

/// Mirror of Algorithm 2's early exits (batch count, the §4.3 node-count
/// threshold, lane agreement across node types), shared by the batch
/// synthesizer, the emitter's buffer planner and the linter so all three
/// always agree on which regions end up vectorized — and *how*: fixed-width
/// tables split a region into batch_count vector iterations plus a scalar
/// remainder of `offset` elements, scalable tables cover the whole region
/// with one predicated loop (`predicated`, offset always 0).
struct RegionVectorPlan {
  bool viable = false;  // SIMD synthesis will succeed structurally
  bool predicated = false;  // single predicated loop, no remainder split
  int lanes = 0;        // elements per vector register (granule if scalable)
  int batch_count = 0;  // full vector iterations (granule trips if scalable)
  int offset = 0;       // scalar remainder length (always 0 if predicated)
};
RegionVectorPlan plan_region_vectorization(const BatchRegion& region,
                                           const VectorCapability& capability,
                                           int min_nodes_for_simd);

/// One entry of the contracted emission order: either a single actor
/// (region < 0) or a whole batch region (actor == kNoActor).
struct EmissionItem {
  ActorId actor = kNoActor;
  int region = -1;
};

/// Topological order of the contracted graph (regions as super-nodes,
/// UnitDelay outputs not counted as dependencies), suitable for emitting
/// each region as one contiguous code block.
std::vector<EmissionItem> emission_order(const Model& model,
                                         const std::vector<BatchRegion>& regions);

}  // namespace hcg
