// hcgc — the HCG command-line code generator.
//
//   hcgc generate <model.xml> [--tool hcg|simulink|dfsynth] [--isa NAME|FILE]
//                 [--out FILE] [--history FILE] [--threshold N] [--scattered]
//                 [--report FILE] [--trace FILE] [--jobs N] [-O0|-O1|-O2]
//                 [--dump-cgir] [--dump-cgir-after=PASS]
//   hcgc inspect  <model.xml> [--isa NAME|FILE]
//   hcgc lint     <model.xml> [--isa NAME|FILE] [--threshold N]
//                 [--Werror] [--no-remarks] [--sarif FILE] [--report FILE]
//   hcgc verify   <model.xml> [--tool ...] [--isa ...] [--seed N]
//                 [--cc-timeout SEC] [--cc-retries N]
//   hcgc bench    <model.xml> [--isa NAME|FILE] [--seed N]
//   hcgc profile  <model.xml> [--isa NAME|FILE] [--reps N]
//                 [--err-threshold PCT] [--report FILE] [--history FILE]
//                 [--cc-timeout SEC] [--cc-retries N]
//   hcgc isa      [NAME]
//
// generate: emit deployable C for a model (default: HCG against neon).
//           The subcommand may be omitted: `hcgc model.xml [flags]` and
//           `hcgc --flag ... model.xml` run generate.
// inspect : print actors, classification, batch regions and their graphs.
// lint    : static analysis (docs/ANALYSIS.md) — structural checks, type
//           resolution, and vectorization-blocker remarks explaining per
//           region why Algorithm 2 did or did not vectorize it.  Findings
//           print to stdout; --sarif exports SARIF 2.1.0 for code scanning.
//           Exit 0 when only warnings/remarks, 8 when errors were found
//           (--Werror promotes warnings to errors first).
// verify  : generate, compile with the host cc, run one step on random
//           input, and compare against the built-in simulator.
// bench   : compile all three tools' output and time steps side by side.
// profile : generate with --profile-gen instrumentation, compile + run a
//           standalone harness for N reps, and join each region's measured
//           runtime against Algorithm 1's selection-time cost
//           (docs/PROFILING.md).  When the harness cannot run the command
//           degrades to a profile-less report with an HCG502 warning
//           instead of failing.
// isa     : list the built-in instruction tables, or dump one as text.
//
// Observability (docs/OBSERVABILITY.md):
//   --report FILE   write a machine-readable JSON codegen report.
//   --trace FILE    write a Chrome trace-event JSON file of pipeline spans.
//   HCG_TRACE       like --trace; the value "summary" (or "1") prints a
//                   human-readable span tree to stderr instead.
//   HCG_LOG         log threshold: debug|info|warn|error|off.
//
// Parallelism (docs/PARALLELISM.md):
//   --jobs N        synthesis worker threads (1 = fully serial).  Defaults
//                   to HCG_JOBS, else the hardware concurrency.
//
// Optimization (docs/CODEGEN_IR.md):
//   -O0 | -O1 | -O2 cgir pass pipeline level.  -O1 (the hcg default) fuses
//                   batch-region loops, forwards loads into stores, and
//                   rebinds intermediate buffers into a shared arena; -O2
//                   additionally strip-mines scalar loops into adjacent
//                   vector loops (cross-scale fusion), tiles the remaining
//                   scalar loops, and re-orders buffer declarations for
//                   coalesced stride-1 access; -O0 (the baseline tools'
//                   default) prints the plain lowering.
//   --dump-cgir     print the "cgir-v1" serialization of the optimized IR
//                   instead of C source.
//   --tile-elems N  -O2 tile width (elements); default derives a static
//                   width from the region plan, and measured-cost data
//                   (hcgc profile, the kernel-sweep benches) is the intended
//                   source of an override.
//   --dump-cgir-after=PASS
//                   print the "cgir-v1" snapshot taken right after PASS ran
//                   (lower, fuse_loops, fuse_cross_scale, forward_copies,
//                   eliminate_dead_buffers, tile_loops, reuse_arena,
//                   coalesce_layout, localize_strips) instead of C source.
//                   Errors when the
//                   pass never ran at the chosen -O level.
//
// Profiling (docs/PROFILING.md):
//   --profile-gen   instrument the emitted unit with HCG_PROF counters
//                   (generate, hcg tool only; off keeps output byte-identical).
//   --reps N        step() repetitions the profile harness performs.
//   --err-threshold PCT  prediction error (percent) above which profile
//                   emits an HCG501 costmodel-mispredict remark.
//
// Robustness (docs/ROBUSTNESS.md):
//   --cc-timeout S  wall-clock limit per compiler invocation (verify/bench);
//                   a hung cc is killed, whole process group.
//   --cc-retries N  spawn retries when the compiler process cannot start.
//   HCG_FAULTS      deterministic fault injection spec (testing only).
//
// Static analysis (docs/ANALYSIS.md):
//   --verify-cgir   run the cgir verifier after lowering and after every
//                   -O1 pass (generate/verify/bench); equivalent to
//                   HCG_VERIFY=1.
//
// Exit codes: 0 ok, 1 verify mismatch/other error, 2 usage, 3 parse error,
// 4 invalid model, 5 synthesis failure, 6 codegen failure, 7 toolchain
// failure, 8 lint errors, 10 fuzz counterexample found, 70 internal error.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "actors/catalog.hpp"
#include "actors/resolve.hpp"
#include "analysis/diagnostics.hpp"
#include "analysis/linter.hpp"
#include "analysis/sarif.hpp"
#include "benchmodels/benchmodels.hpp"
#include "codegen/generator.hpp"
#include "fuzz/campaign.hpp"
#include "graph/regions.hpp"
#include "isa/builtin.hpp"
#include "isa/isa_parse.hpp"
#include "model/loader.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/faults.hpp"
#include "support/fileio.hpp"
#include "support/strings.hpp"
#include "support/logging.hpp"
#include "support/stopwatch.hpp"
#include "support/thread_pool.hpp"
#include "toolchain/compiled_model.hpp"
#include "toolchain/profile_runner.hpp"
#include "vm/interpreter.hpp"

namespace {

using namespace hcg;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  hcgc generate <model.xml> [--tool hcg|simulink|dfsynth]\n"
               "                [--isa NAME|FILE] [--out FILE]\n"
               "                [--history FILE] [--threshold N] [--scattered]\n"
               "                [--report FILE] [--trace FILE] [--jobs N]\n"
               "                [-O0|-O1|-O2] [--tile-elems N] [--dump-cgir]\n"
               "                [--dump-cgir-after=PASS]\n"
               "  hcgc inspect  <model.xml> [--isa NAME|FILE]\n"
               "  hcgc lint     <model.xml> [--isa NAME|FILE] [--threshold N]\n"
               "                [--Werror] [--no-remarks] [--sarif FILE]\n"
               "                [--report FILE]\n"
               "  hcgc verify   <model.xml> [--tool ...] [--isa ...] [--seed N]\n"
               "                [--cc-timeout SEC] [--cc-retries N]\n"
               "  hcgc bench    <model.xml> [--isa NAME|FILE] [--seed N]\n"
               "  hcgc profile  <model.xml> [--isa NAME|FILE] [--reps N]\n"
               "                [--err-threshold PCT] [--report FILE]\n"
               "                [--history FILE] [--cc-timeout SEC]\n"
               "                [--cc-retries N]\n"
               "  hcgc fuzz     [--seeds N] [--seed FIRST] [--isa A,B]\n"
               "                [-O0|-O1|-O2] [--corpus DIR] [--report FILE]\n"
               "                [--sweep-faults] [--max-actors N]\n"
               "                [--no-minimize] [--no-baselines]\n"
               "  hcgc faults\n"
               "  hcgc isa      [NAME]\n"
               "(the generate subcommand may be omitted)\n"
               "env: HCG_LOG=debug|info|warn|error|off   HCG_TRACE=FILE|summary\n"
               "     HCG_JOBS=N synthesis worker threads (--jobs overrides)\n"
               "     HCG_VERIFY=1 cgir verifier on (--verify-cgir equivalent)\n"
               "exit codes: 0 ok, 1 error/mismatch, 2 usage, 3 parse,\n"
               "            4 model, 5 synthesis, 6 codegen, 7 toolchain,\n"
               "            8 lint errors, 10 fuzz counterexample,\n"
               "            70 internal\n");
  return 2;
}

struct Options {
  std::string command;
  std::string model_path;
  std::string tool = "hcg";
  std::string isa_name = "neon";
  std::string out_path;
  std::string history_path;
  std::string report_path;
  std::string trace_path;        // file path, or "summary" for stderr
  bool trace_from_env = false;
  int threshold = 0;
  int jobs = 0;  // 0 = HCG_JOBS env, else hardware concurrency
  int opt_level = -1;  // -1 = the tool's default (hcg: 1, baselines: 0)
  int tile_elems = 0;  // -O2 tile width override; 0 = derive statically
  bool dump_cgir = false;
  std::string dump_cgir_after;  // pass name to snapshot; empty = off
  bool scattered = false;
  bool verify_cgir = false;
  bool werror = false;       // lint: promote warnings to errors
  bool no_remarks = false;   // lint: suppress HCG4xx remarks
  std::string sarif_path;    // lint: SARIF 2.1.0 output file
  std::uint64_t seed = 42;
  double cc_timeout = -1.0;  // < 0 = CompileOptions default
  int cc_retries = -1;       // < 0 = CompileOptions default
  bool profile_gen = false;     // generate: instrument with HCG_PROF counters
  int reps = 200;               // profile: harness step() repetitions
  double err_threshold = 50.0;  // profile: HCG501 remark above this error %
  bool isa_set = false;         // --isa given explicitly (fuzz default keys off this)
  int seeds = 200;              // fuzz: campaign seed count
  int max_actors = 20;          // fuzz: generator actor budget
  std::string corpus_dir;       // fuzz: reproducer output directory
  bool sweep_faults = false;    // fuzz: degraded-mode sweep per seed
  bool no_minimize = false;     // fuzz: skip counterexample shrinking
  bool no_baselines = false;    // fuzz: drop simulink/dfsynth partners
};

bool known_command(const std::string& name) {
  return name == "generate" || name == "inspect" || name == "lint" ||
         name == "verify" || name == "bench" || name == "profile" ||
         name == "isa" || name == "fuzz" || name == "faults";
}

bool parse_args(int argc, char** argv, Options& opt) {
  if (argc < 2) return false;
  opt.command = argv[1];
  int start = 2;
  if (!known_command(opt.command)) {
    // Allow omitting the subcommand: `hcgc --isa neon model.xml` and
    // `hcgc model.xml` default to generate.  A bare unknown word (neither a
    // flag nor an existing file) still falls through to usage.
    if (opt.command.rfind("-", 0) == 0 ||
        std::filesystem::exists(opt.command)) {
      opt.command = "generate";
      start = 1;
    } else {
      return true;  // main() rejects the unknown command with usage()
    }
  }
  int position = 0;
  for (int i = start; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) throw Error("missing value after " + arg);
      return argv[++i];
    };
    if (arg == "--tool") {
      opt.tool = value();
    } else if (arg == "--isa") {
      opt.isa_name = value();
      opt.isa_set = true;
    } else if (arg == "--out") {
      opt.out_path = value();
    } else if (arg == "--history") {
      opt.history_path = value();
    } else if (arg == "--threshold") {
      opt.threshold = std::atoi(value());
    } else if (arg == "--jobs") {
      opt.jobs = std::atoi(value());
      if (opt.jobs < 1) throw Error("--jobs needs a positive thread count");
    } else if (arg == "--seed") {
      opt.seed = static_cast<std::uint64_t>(std::atoll(value()));
    } else if (arg == "--cc-timeout") {
      opt.cc_timeout = std::atof(value());
    } else if (arg == "--cc-retries") {
      opt.cc_retries = std::atoi(value());
      if (opt.cc_retries < 0) throw Error("--cc-retries needs a count >= 0");
    } else if (arg == "--report") {
      opt.report_path = value();
    } else if (arg == "--trace") {
      opt.trace_path = value();
      opt.trace_from_env = false;
    } else if (arg == "--scattered") {
      opt.scattered = true;
    } else if (arg == "-O0") {
      opt.opt_level = 0;
    } else if (arg == "-O1") {
      opt.opt_level = 1;
    } else if (arg == "-O2") {
      opt.opt_level = 2;
    } else if (arg == "--tile-elems") {
      opt.tile_elems = std::atoi(value());
      if (opt.tile_elems < 2) throw Error("--tile-elems needs a width >= 2");
    } else if (arg == "--dump-cgir") {
      opt.dump_cgir = true;
    } else if (arg.rfind("--dump-cgir-after=", 0) == 0) {
      opt.dump_cgir_after = arg.substr(std::strlen("--dump-cgir-after="));
      static const char* const kPasses[] = {
          "lower",      "fuse_loops",  "fuse_cross_scale",
          "forward_copies", "eliminate_dead_buffers", "tile_loops",
          "reuse_arena", "coalesce_layout", "localize_strips"};
      bool known = false;
      for (const char* pass : kPasses) known |= opt.dump_cgir_after == pass;
      if (!known) {
        throw Error("unknown pass '" + opt.dump_cgir_after +
                    "' for --dump-cgir-after");
      }
    } else if (arg == "--profile-gen") {
      opt.profile_gen = true;
    } else if (arg == "--reps") {
      opt.reps = std::atoi(value());
      if (opt.reps < 1) throw Error("--reps needs a positive count");
    } else if (arg == "--err-threshold") {
      opt.err_threshold = std::atof(value());
      if (opt.err_threshold < 0) {
        throw Error("--err-threshold needs a percentage >= 0");
      }
    } else if (arg == "--seeds") {
      opt.seeds = std::atoi(value());
      if (opt.seeds < 1) throw Error("--seeds needs a positive count");
    } else if (arg == "--max-actors") {
      opt.max_actors = std::atoi(value());
      if (opt.max_actors < 1) throw Error("--max-actors needs a count >= 1");
    } else if (arg == "--corpus") {
      opt.corpus_dir = value();
    } else if (arg == "--sweep-faults") {
      opt.sweep_faults = true;
    } else if (arg == "--no-minimize") {
      opt.no_minimize = true;
    } else if (arg == "--no-baselines") {
      opt.no_baselines = true;
    } else if (arg == "--verify-cgir") {
      opt.verify_cgir = true;
    } else if (arg == "--Werror") {
      opt.werror = true;
    } else if (arg == "--no-remarks") {
      opt.no_remarks = true;
    } else if (arg == "--sarif") {
      opt.sarif_path = value();
    } else if (!arg.empty() && arg[0] == '-') {
      throw Error("unknown option " + arg);
    } else if (position++ == 0) {
      opt.model_path = arg;
    } else {
      throw Error("unexpected argument " + arg);
    }
  }
  return true;
}

/// Resolves --isa as a built-in name first, else as a .isa file path.
const isa::VectorIsa& resolve_isa(const std::string& name,
                                  isa::VectorIsa& file_storage) {
  for (const std::string& builtin_name : isa::builtin_names()) {
    if (builtin_name == name) return isa::builtin(name);
  }
  file_storage = isa::load_isa_file(name);
  return file_storage;
}

std::unique_ptr<codegen::Generator> make_tool(const Options& opt,
                                              const isa::VectorIsa& table,
                                              synth::SelectionHistory* history) {
  codegen::EmitTuning tuning;
  tuning.tile_elems = opt.tile_elems;
  tuning.dump_cgir_after = opt.dump_cgir_after;
  if (opt.tool == "hcg") {
    synth::BatchOptions batch;
    batch.min_nodes_for_simd = opt.threshold;
    return codegen::make_hcg_generator(table, history, batch,
                                       opt.opt_level < 0 ? 1 : opt.opt_level,
                                       opt.profile_gen, tuning);
  }
  if (opt.profile_gen) {
    throw Error("--profile-gen is only supported with --tool hcg");
  }
  const int level = opt.opt_level < 0 ? 0 : opt.opt_level;
  if (opt.tool == "simulink") {
    return codegen::make_simulink_generator(opt.scattered ? &table : nullptr,
                                            level, tuning);
  }
  if (opt.tool == "dfsynth") {
    return codegen::make_dfsynth_generator(level, tuning);
  }
  throw Error("unknown tool '" + opt.tool + "' (hcg|simulink|dfsynth)");
}

toolchain::CompileOptions compile_options(const Options& opt) {
  toolchain::CompileOptions cc;
  if (opt.cc_timeout >= 0) cc.timeout_seconds = opt.cc_timeout;
  if (opt.cc_retries >= 0) cc.spawn_retries = opt.cc_retries;
  return cc;
}

/// One stderr line per degraded Algorithm 1 decision, so a terminal user
/// sees lossy runs without opening the report JSON.
void warn_degraded(const codegen::GeneratedCode& code) {
  for (const auto& fallback : code.report.degraded) {
    std::fprintf(stderr, "degraded: %s lost %zu candidate(s)%s -> %s\n",
                 fallback.actor.c_str(), fallback.failures.size(),
                 fallback.reference_fallback ? ", using reference" : "",
                 fallback.impl.c_str());
  }
}

/// Fills the CLI-level report fields (load phase, history stats) and writes
/// the report JSON when requested.
void finish_report(const Options& opt, codegen::GeneratedCode& code,
                   double load_ms, const synth::SelectionHistory& history) {
  code.report.phases.insert(code.report.phases.begin(),
                            {"model.load", load_ms});
  code.report.history_hits = history.hits();
  code.report.history_misses = history.misses();
  code.report.history_entries = history.size();
  if (!opt.report_path.empty()) {
    write_file(opt.report_path, code.report.to_json());
    std::fprintf(stderr, "wrote report %s\n", opt.report_path.c_str());
  }
}

int cmd_generate(const Options& opt) {
  Stopwatch load_timer;
  Model model = resolved(load_model_file(opt.model_path));
  const double load_ms = load_timer.elapsed_seconds() * 1e3;
  isa::VectorIsa file_isa;
  const isa::VectorIsa& table = resolve_isa(opt.isa_name, file_isa);

  synth::SelectionHistory history;
  if (!opt.history_path.empty() &&
      std::filesystem::exists(opt.history_path)) {
    synth::SelectionHistory::LoadStats stats;
    history = synth::SelectionHistory::load(opt.history_path, &stats);
    if (stats.dropped > 0) {
      std::fprintf(stderr, "history: dropped %zu corrupt line(s) from %s\n",
                   stats.dropped, opt.history_path.c_str());
    }
  }

  auto tool = make_tool(opt, table, &history);
  codegen::GeneratedCode code = tool->generate(model);
  warn_degraded(code);

  if (!opt.history_path.empty()) history.save(opt.history_path);

  if (!opt.dump_cgir_after.empty() && code.cgir_dump_after.empty()) {
    throw Error("pass '" + opt.dump_cgir_after +
                "' did not run at the chosen -O level");
  }
  const std::string& payload = opt.dump_cgir ? code.cgir_dump
                               : !opt.dump_cgir_after.empty()
                                   ? code.cgir_dump_after
                                   : code.source;
  if (opt.out_path.empty()) {
    std::fputs(payload.c_str(), stdout);
  } else {
    write_file(opt.out_path, payload);
    std::fprintf(stderr, "wrote %s (%zu bytes)\n", opt.out_path.c_str(),
                 payload.size());
  }
  if (!code.simd_instructions.empty()) {
    std::fprintf(stderr, "SIMD instructions:");
    for (const auto& name : code.simd_instructions) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, "\n");
  }
  for (const auto& [actor, impl] : code.intensive_choices) {
    std::fprintf(stderr, "intensive %s -> %s\n", actor.c_str(), impl.c_str());
  }
  if (opt.tool == "hcg") {
    std::fprintf(stderr, "history: %llu hits, %llu misses (%zu entries)\n",
                 static_cast<unsigned long long>(history.hits()),
                 static_cast<unsigned long long>(history.misses()),
                 history.size());
  }
  if (!code.compile_flags.empty()) {
    std::fprintf(stderr, "compile with: %s\n", code.compile_flags.c_str());
  }
  finish_report(opt, code, load_ms, history);
  return 0;
}

int cmd_inspect(const Options& opt) {
  Model model = resolved(load_model_file(opt.model_path));
  isa::VectorIsa file_isa;
  const isa::VectorIsa& table = resolve_isa(opt.isa_name, file_isa);

  std::printf("model '%s': %d actors, %zu connections\n",
              model.name().c_str(), model.actor_count(),
              model.connections().size());
  for (const Actor& actor : model.actors()) {
    std::printf("  %-12s %-10s", actor.name().c_str(), actor.type().c_str());
    if (actor.output_count() > 0) {
      std::printf(" -> %-12s", actor.output(0).to_string().c_str());
    } else {
      std::printf("    %-12s", "");
    }
    std::printf(" [%s]\n",
                std::string(kind_name(classify(model, actor.id()))).c_str());
  }

  const auto regions = find_batch_regions(model, table);
  std::printf("\nbatch regions against isa '%s': %zu\n", table.name.c_str(),
              regions.size());
  for (size_t r = 0; r < regions.size(); ++r) {
    std::printf("region %zu (%zu actors):\n%s", r, regions[r].actors.size(),
                regions[r].graph.to_string().c_str());
  }
  return 0;
}

int cmd_lint(const Options& opt) {
  Model model = load_model_file(opt.model_path);
  isa::VectorIsa file_isa;
  const isa::VectorIsa& table = resolve_isa(opt.isa_name, file_isa);

  analysis::LintOptions lint;
  lint.isa = &table;
  lint.min_nodes_for_simd = opt.threshold;
  lint.remarks = !opt.no_remarks;
  analysis::DiagnosticEngine diags(opt.werror);
  const analysis::RangeAnalysis ranges =
      analysis::lint_model(model, lint, diags);

  std::fputs(diags.render(opt.model_path).c_str(), stdout);
  if (!opt.sarif_path.empty()) {
    write_file(opt.sarif_path,
               analysis::to_sarif(diags.diagnostics(),
                                  analysis::sarif_artifact_uri(
                                      opt.model_path)));
    std::fprintf(stderr, "wrote sarif %s\n", opt.sarif_path.c_str());
  }
  if (!opt.report_path.empty()) {
    obs::Report report;
    report.model = model.name();
    report.tool = "lint";
    report.isa = table.name;
    report.actor_count = model.actor_count();
    for (const analysis::Diagnostic& diag : diags.diagnostics()) {
      report.diagnostics.push_back(
          {diag.code, std::string(analysis::severity_name(diag.severity)),
           diag.location, diag.message});
    }
    if (ranges.actors_analyzed > 0) {
      report.range_ran = true;
      report.range_actors_analyzed = ranges.actors_analyzed;
      report.range_bounded_outputs = ranges.bounded_outputs;
      report.range_widened_delays = ranges.widened_delays;
    }
    write_file(opt.report_path, report.to_json());
    std::fprintf(stderr, "wrote report %s\n", opt.report_path.c_str());
  }
  // Contract (docs/ANALYSIS.md): warnings and remarks exit 0, errors — or
  // warnings under --Werror, which the engine already promoted — exit 8.
  return diags.has_errors() ? 8 : 0;
}

int cmd_verify(const Options& opt) {
  Stopwatch load_timer;
  Model model = resolved(load_model_file(opt.model_path));
  const double load_ms = load_timer.elapsed_seconds() * 1e3;
  isa::VectorIsa file_isa;
  const isa::VectorIsa& table = resolve_isa(opt.isa_name, file_isa);

  synth::SelectionHistory history;
  auto tool = make_tool(opt, table, &history);
  codegen::GeneratedCode code = tool->generate(model);
  warn_degraded(code);

  toolchain::CompiledModel compiled(code, compile_options(opt));
  code.report.compile_ms = compiled.compile_seconds() * 1e3;
  code.report.compile_command = compiled.compile_command();
  finish_report(opt, code, load_ms, history);
  compiled.init();

  std::vector<Tensor> inputs = benchmodels::workload(model, opt.seed);
  Interpreter oracle(model);
  oracle.init();
  std::vector<Tensor> expected = oracle.step(inputs);
  std::vector<Tensor> got = compiled.step_tensors(model, inputs);

  double worst = 0;
  for (size_t i = 0; i < got.size(); ++i) {
    worst = std::max(worst, got[i].max_abs_difference(expected[i]));
  }
  std::printf("%s [%s/%s]: max |generated - simulated| = %g over %zu "
              "output(s)\n",
              model.name().c_str(), opt.tool.c_str(), table.name.c_str(),
              worst, got.size());
  const bool ok = worst <= 1e-2;
  std::printf("%s\n", ok ? "VERIFY OK" : "VERIFY FAILED");
  return ok ? 0 : 1;
}

int cmd_bench(const Options& opt) {
  Model model = resolved(load_model_file(opt.model_path));
  isa::VectorIsa file_isa;
  const isa::VectorIsa& table = resolve_isa(opt.isa_name, file_isa);

  std::vector<Tensor> inputs = benchmodels::workload(model, opt.seed);
  std::vector<const void*> in_ptrs;
  for (const Tensor& t : inputs) in_ptrs.push_back(t.data());
  std::vector<Tensor> outputs;
  for (ActorId id : model.outports()) {
    outputs.push_back(make_tensor(model.actor(id).input(0)));
  }
  std::vector<void*> out_ptrs;
  for (Tensor& t : outputs) out_ptrs.push_back(t.data());

  struct Row {
    const char* label;
    std::unique_ptr<codegen::Generator> tool;
  };
  Row rows[3] = {
      {"simulink", codegen::make_simulink_generator()},
      {"dfsynth", codegen::make_dfsynth_generator()},
      {"hcg", nullptr},
  };
  synth::SelectionHistory history;
  synth::BatchOptions batch;
  batch.min_nodes_for_simd = opt.threshold;
  rows[2].tool = codegen::make_hcg_generator(table, &history, batch);

  double baseline = 0;
  for (Row& row : rows) {
    codegen::GeneratedCode code = row.tool->generate(model);
    toolchain::CompiledModel compiled(code, compile_options(opt));
    compiled.init();
    compiled.step(in_ptrs, out_ptrs);  // warm-up
    Stopwatch probe;
    compiled.step(in_ptrs, out_ptrs);
    const double once = std::max(probe.elapsed_seconds(), 1e-9);
    const int reps = static_cast<int>(std::max(3.0, 0.2 / once));
    Stopwatch timer;
    for (int i = 0; i < reps; ++i) compiled.step(in_ptrs, out_ptrs);
    const double per_step = timer.elapsed_seconds() / reps;
    if (row.label == rows[0].label) baseline = per_step;
    std::printf("%-10s %12.2f us/step  (%d reps)", row.label, per_step * 1e6,
                reps);
    if (baseline > 0 && row.label != rows[0].label) {
      std::printf("  %+.1f%% vs simulink",
                  (per_step / baseline - 1.0) * 100.0);
    }
    if (!code.simd_instructions.empty()) {
      std::printf("  [SIMD:");
      for (const auto& name : code.simd_instructions) {
        std::printf(" %s", name.c_str());
      }
      std::printf("]");
    }
    std::printf("\n");
  }
  return 0;
}

/// Joins the measured profile against Algorithm 1's selection-time costs:
/// an intensive site whose implementation was selected by measurement this
/// run gets the chosen candidate's pre-calculation time as its prediction.
/// Loops, history hits, and generic implementations have no prediction.
void join_predictions(const codegen::GeneratedCode& code,
                      obs::Report& report, double err_threshold,
                      analysis::DiagnosticEngine& diags) {
  static obs::Histogram& err_metric =
      obs::Registry::instance().histogram("synth.costmodel.abs_err_pct");
  for (obs::ReportProfileSite& site : report.runtime_profile) {
    if (site.calls > 0) {
      site.mean_ns_per_call =
          static_cast<double>(site.ns) / static_cast<double>(site.calls);
    }
    if (site.kind != "intensive") continue;
    const std::string actor = site.label.substr(0, site.label.find(':'));
    for (const obs::ReportIntensive& choice : code.report.intensive) {
      if (choice.actor != actor || !choice.selected || choice.from_history) {
        continue;
      }
      for (const obs::ReportCandidate& candidate : choice.candidates) {
        if (candidate.impl != choice.impl) continue;
        site.predicted_ns = candidate.ms * 1e6;
        if (site.predicted_ns > 0 && site.mean_ns_per_call > 0) {
          site.abs_err_pct =
              std::abs(site.mean_ns_per_call - site.predicted_ns) /
              site.predicted_ns * 100.0;
          err_metric.observe(site.abs_err_pct);
          if (site.abs_err_pct > err_threshold) {
            char detail[160];
            std::snprintf(detail, sizeof(detail),
                          "measured %.0f ns/call vs predicted %.0f ns "
                          "(%.1f%% error, threshold %.1f%%)",
                          site.mean_ns_per_call, site.predicted_ns,
                          site.abs_err_pct, err_threshold);
            diags.remark("HCG501", "actor '" + actor + "'", detail);
          }
        }
      }
    }
  }
}

int cmd_profile(Options opt) {
  if (opt.tool != "hcg") {
    throw Error("profile only supports --tool hcg");
  }
  opt.profile_gen = true;
  Stopwatch load_timer;
  Model model = resolved(load_model_file(opt.model_path));
  const double load_ms = load_timer.elapsed_seconds() * 1e3;
  isa::VectorIsa file_isa;
  const isa::VectorIsa& table = resolve_isa(opt.isa_name, file_isa);

  synth::SelectionHistory history;
  if (!opt.history_path.empty() &&
      std::filesystem::exists(opt.history_path)) {
    history = synth::SelectionHistory::load(opt.history_path, nullptr);
  }

  auto tool = make_tool(opt, table, &history);
  codegen::GeneratedCode code = tool->generate(model);
  warn_degraded(code);
  if (!opt.history_path.empty()) history.save(opt.history_path);

  toolchain::ProfileRunOptions run;
  run.reps = opt.reps;
  if (opt.cc_timeout >= 0) run.timeout_seconds = opt.cc_timeout;
  if (opt.cc_retries >= 0) run.spawn_retries = opt.cc_retries;
  const toolchain::ProfileResult prof = toolchain::run_profile(code, model, run);

  analysis::DiagnosticEngine diags;
  if (!prof.ok) {
    // Degraded: the report simply has no runtime_profile section.
    diags.warning("HCG502", "", prof.error);
  } else {
    code.report.profile_reps = prof.reps;
    code.report.profile_clock = prof.clock;
    for (const toolchain::ProfileSiteSample& sample : prof.sites) {
      obs::ReportProfileSite site;
      site.id = sample.id;
      site.kind = sample.kind;
      site.label = sample.label;
      site.ns = sample.ns;
      site.calls = sample.calls;
      site.iters = sample.iters;
      code.report.runtime_profile.push_back(std::move(site));
    }
    join_predictions(code, code.report, opt.err_threshold, diags);

    std::printf("%-4s %-10s %-34s %14s %12s %13s %8s\n", "site", "kind",
                "label", "ns/call", "iters", "predicted_ns", "err%");
    for (const obs::ReportProfileSite& site : code.report.runtime_profile) {
      std::printf("%-4s %-10s %-34s %14.1f %12llu", site.id.c_str(),
                  site.kind.c_str(), site.label.c_str(),
                  site.mean_ns_per_call,
                  static_cast<unsigned long long>(site.iters));
      if (site.predicted_ns >= 0) {
        std::printf(" %13.1f %7.1f%%", site.predicted_ns, site.abs_err_pct);
      }
      std::printf("\n");
    }
    std::printf("%d reps, clock %s\n", prof.reps, prof.clock.c_str());
  }
  for (const analysis::Diagnostic& diag : diags.diagnostics()) {
    code.report.diagnostics.push_back(
        {diag.code, std::string(analysis::severity_name(diag.severity)),
         diag.location, diag.message});
  }
  std::fputs(diags.render(opt.model_path).c_str(), stderr);
  finish_report(opt, code, load_ms, history);
  // Degraded profiling still exits 0: the report (minus runtime_profile)
  // is valid and the HCG502 warning carries the reason.
  return 0;
}

/// Per-dtype op-kind coverage of one table: how many of the batch op kinds
/// defined for the element type have a single-instruction implementation.
/// A dtype with few covered kinds is exactly where models fall back to
/// scalar code (the linter's HCG407 remarks name the missing op).
std::string isa_coverage_line(const isa::VectorIsa& table) {
  static constexpr BatchOp kOps[] = {
      BatchOp::kAdd,  BatchOp::kSub,  BatchOp::kMul,  BatchOp::kDiv,
      BatchOp::kMin,  BatchOp::kMax,  BatchOp::kAbd,  BatchOp::kAnd,
      BatchOp::kOr,   BatchOp::kXor,  BatchOp::kNot,  BatchOp::kAbs,
      BatchOp::kRecp, BatchOp::kSqrt, BatchOp::kShl,  BatchOp::kShr,
      BatchOp::kMulC, BatchOp::kAddC, BatchOp::kSel};
  std::string out;
  for (const isa::VType& v : table.vtypes) {
    int defined = 0;
    int covered = 0;
    for (BatchOp op : kOps) {
      if (!op_supports_type(op, v.type)) continue;
      ++defined;
      if (table.supports(op, v.type, v.type)) ++covered;
    }
    if (!out.empty()) out += "  ";
    out += std::string(short_name(v.type)) + " " + std::to_string(covered) +
           "/" + std::to_string(defined);
  }
  return out;
}

int cmd_isa(const Options& opt) {
  if (opt.model_path.empty()) {
    for (const std::string& name : isa::builtin_names()) {
      const isa::VectorIsa& table = isa::builtin(name);
      std::string traits;
      if (table.scalable) traits += "  (scalable)";
      if (table.simulated) traits += "  (simulated)";
      std::printf("%-10s %4d-bit  %3zu instructions  header <%s>%s\n",
                  name.c_str(), table.width_bits, table.instructions.size(),
                  table.header.c_str(), traits.c_str());
      std::printf("%-10s   op coverage: %s\n", "",
                  isa_coverage_line(table).c_str());
    }
    return 0;
  }
  std::fputs(isa::builtin_text(opt.model_path).c_str(), stdout);
  return 0;
}

/// Prints the fault-injection site catalog (same text as HCG_FAULTS=list).
int cmd_faults() {
  std::fputs(faults::render_site_catalog().c_str(), stdout);
  return 0;
}

int cmd_fuzz(const Options& opt) {
  // The campaign wants the cgir verifier as an extra oracle; an explicit
  // HCG_VERIFY=0 in the environment still turns it off.
  setenv("HCG_VERIFY", "1", /*overwrite=*/0);
  fuzz::CampaignConfig config;
  config.seed_start = opt.seed;
  config.seeds = opt.seeds;
  config.minimize = !opt.no_minimize;
  config.corpus_dir = opt.corpus_dir;
  config.report_path = opt.report_path;
  config.harness.sweep_faults = opt.sweep_faults;
  config.harness.baselines = !opt.no_baselines;
  config.harness.generator.max_actors = opt.max_actors;
  if (opt.opt_level >= 0) config.harness.opt_levels = {opt.opt_level};
  if (opt.isa_set) {
    config.harness.isas = split(opt.isa_name, ',');
    for (const std::string& name : config.harness.isas) {
      bool builtin = false;
      for (const std::string& b : isa::builtin_names()) builtin |= b == name;
      if (!builtin) {
        throw Error("fuzz needs built-in isa names, got '" + name + "'");
      }
    }
  }
  config.progress = [](const std::string& line) {
    std::fprintf(stderr, "fuzz: %s\n", line.c_str());
  };
  const fuzz::CampaignResult result = fuzz::run_campaign(config);
  std::fprintf(stderr, "fuzz: %d seed(s), %d variant run(s), %zu distinct finding(s)\n",
               result.seeds_run, result.variants_run, result.findings.size());
  for (const fuzz::CampaignFinding& f : result.findings) {
    std::fprintf(stderr, "fuzz: %s  x%d  (seed %llu)%s%s\n",
                 f.first.signature.c_str(), f.count,
                 static_cast<unsigned long long>(f.first.seed),
                 f.reproducer.empty() ? "" : "  -> ", f.reproducer.c_str());
  }
  if (opt.report_path.empty()) {
    std::fputs(result.report_json.c_str(), stdout);
    std::fputc('\n', stdout);
  }
  return result.ok() ? 0 : 10;
}

/// Applies HCG_TRACE when --trace was not given.  Returns true if tracing
/// (to a file or as a stderr summary) is active.
bool setup_tracing(Options& opt) {
  if (opt.trace_path.empty()) {
    if (const char* env = std::getenv("HCG_TRACE");
        env != nullptr && *env != '\0') {
      opt.trace_path = env;
      opt.trace_from_env = true;
    }
  }
  if (opt.trace_path.empty()) return false;
  obs::Tracer::instance().set_enabled(true);
  return true;
}

/// "summary" / "1" mean a human-readable tree on stderr; anything else is a
/// Chrome trace-event JSON output path.
void write_trace(const Options& opt) {
  obs::Tracer& tracer = obs::Tracer::instance();
  if (opt.trace_path == "summary" || opt.trace_path == "1") {
    std::fputs(tracer.summary().c_str(), stderr);
    return;
  }
  write_file(opt.trace_path, tracer.trace_json());
  std::fprintf(stderr, "wrote trace %s\n", opt.trace_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  apply_log_env();
  Options opt;
  try {
    if (!parse_args(argc, argv, opt)) return usage();
  } catch (const Error& e) {
    // Bad flags and missing values are usage errors, not pipeline failures.
    std::fprintf(stderr, "hcgc: %s\n", e.what());
    return usage();
  }
  try {
    if (opt.jobs > 0) ThreadPool::set_default_parallelism(opt.jobs);
    // The generator factories read HCG_VERIFY; the flag is its CLI spelling.
    if (opt.verify_cgir) setenv("HCG_VERIFY", "1", /*overwrite=*/1);
    const bool tracing = setup_tracing(opt);
    int rc = 2;
    if (opt.command == "isa") {
      rc = cmd_isa(opt);
    } else if (opt.command == "faults") {
      rc = cmd_faults();
    } else if (opt.command == "fuzz") {
      rc = cmd_fuzz(opt);
    } else if (opt.model_path.empty()) {
      return usage();
    } else if (opt.command == "generate") {
      rc = cmd_generate(opt);
    } else if (opt.command == "inspect") {
      rc = cmd_inspect(opt);
    } else if (opt.command == "lint") {
      rc = cmd_lint(opt);
    } else if (opt.command == "verify") {
      rc = cmd_verify(opt);
    } else if (opt.command == "bench") {
      rc = cmd_bench(opt);
    } else if (opt.command == "profile") {
      rc = cmd_profile(opt);
    } else {
      return usage();
    }
    if (tracing) write_trace(opt);
    return rc;
  } catch (const ParseError& e) {
    std::fprintf(stderr, "hcgc: parse error: %s\n", e.what());
    return 3;
  } catch (const ModelError& e) {
    std::fprintf(stderr, "hcgc: invalid model: %s\n", e.what());
    return 4;
  } catch (const SynthesisError& e) {
    std::fprintf(stderr, "hcgc: synthesis failed: %s\n", e.what());
    return 5;
  } catch (const CodegenError& e) {
    std::fprintf(stderr, "hcgc: codegen failed: %s\n", e.what());
    return 6;
  } catch (const ToolchainError& e) {
    std::fprintf(stderr, "hcgc: toolchain failed: %s\n", e.what());
    return 7;
  } catch (const InternalError& e) {
    std::fprintf(stderr, "hcgc: internal error: %s\n", e.what());
    return 70;
  } catch (const Error& e) {
    std::fprintf(stderr, "hcgc: %s\n", e.what());
    return 1;
  } catch (const std::bad_alloc&) {
    // Keep the message static: formatting could allocate again.
    std::fputs("hcgc: internal error: out of memory\n", stderr);
    return 70;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hcgc: internal error: %s\n", e.what());
    return 70;
  } catch (...) {
    std::fputs("hcgc: internal error: unknown exception\n", stderr);
    return 70;
  }
}
