#include "actors/exec.hpp"

#include <cmath>
#include <numbers>
#include <type_traits>

#include "actors/catalog.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace hcg {

// ---------------------------------------------------------------------------
// State & constants
// ---------------------------------------------------------------------------

void ExecState::init(const Model& model) {
  delay.clear();
  for (const Actor& actor : model.actors()) {
    if (actor.type() == "UnitDelay") {
      delay.emplace(actor.id(), make_tensor(actor.output(0)));
    }
  }
}

Tensor make_tensor(const PortSpec& spec) { return Tensor(spec.type, spec.shape); }

Tensor constant_tensor(const Actor& actor) {
  PortSpec spec;
  spec.type = parse_datatype(actor.param("dtype"));
  spec.shape = Shape::parse(actor.param("shape"));
  Tensor t(spec.type, spec.shape);

  const int components =
      is_complex(spec.type) ? t.elements() * 2 : t.elements();
  std::vector<std::string> pieces = split(actor.param("value"), ',');
  if (pieces.size() != 1 && static_cast<int>(pieces.size()) != components) {
    throw ModelError("actor '" + actor.name() + "': constant value has " +
                     std::to_string(pieces.size()) + " components, expected 1 or " +
                     std::to_string(components));
  }
  auto component = [&](int i) -> double {
    return parse_double(pieces.size() == 1 ? pieces[0]
                                           : pieces[static_cast<size_t>(i)]);
  };
  const DataType comp_type = component_type(spec.type);
  for (int i = 0; i < components; ++i) {
    if (comp_type == DataType::kFloat32 && is_complex(spec.type)) {
      t.as<float>()[i] = static_cast<float>(component(i));
    } else if (comp_type == DataType::kFloat64 && is_complex(spec.type)) {
      t.as<double>()[i] = component(i);
    } else {
      t.set_double(i, component(i));
    }
  }
  return t;
}

// ---------------------------------------------------------------------------
// Element-wise evaluation
// ---------------------------------------------------------------------------

namespace {

template <typename T>
T eval_scalar(BatchOp op, T a, T b, T d, int imm, double c) {
  if (op == BatchOp::kSel) return d > T(0) ? a : b;
  if constexpr (std::is_floating_point_v<T>) {
    switch (op) {
      case BatchOp::kAdd: return a + b;
      case BatchOp::kSub: return a - b;
      case BatchOp::kMul: return a * b;
      case BatchOp::kDiv: return a / b;
      case BatchOp::kMin: return a < b ? a : b;
      case BatchOp::kMax: return a > b ? a : b;
      case BatchOp::kAbd: return a > b ? a - b : b - a;
      case BatchOp::kAbs: return a < 0 ? -a : a;
      case BatchOp::kRecp: return T(1) / a;
      case BatchOp::kSqrt:
        if constexpr (std::is_same_v<T, float>) {
          return std::sqrt(a);
        } else {
          return std::sqrt(a);
        }
      case BatchOp::kMulC: return a * static_cast<T>(c);
      case BatchOp::kAddC: return a + static_cast<T>(c);
      default:
        throw InternalError("float op not supported in eval_scalar");
    }
  } else {
    // Integer arithmetic is defined to wrap (two's complement), matching
    // both SIMD hardware and generated code compiled with -fwrapv; route
    // through the unsigned type so the wrap is well-defined C++ too.
    using U = std::make_unsigned_t<T>;
    const U ua = static_cast<U>(a), ub = static_cast<U>(b);
    switch (op) {
      case BatchOp::kAdd: return static_cast<T>(ua + ub);
      case BatchOp::kSub: return static_cast<T>(ua - ub);
      case BatchOp::kMul: return static_cast<T>(ua * ub);
      case BatchOp::kMin: return a < b ? a : b;
      case BatchOp::kMax: return a > b ? a : b;
      case BatchOp::kAbd:
        return static_cast<T>(a > b ? ua - ub : ub - ua);
      case BatchOp::kAnd: return static_cast<T>(a & b);
      case BatchOp::kOr: return static_cast<T>(a | b);
      case BatchOp::kXor: return static_cast<T>(a ^ b);
      case BatchOp::kNot: return static_cast<T>(~a);
      case BatchOp::kAbs: return a < 0 ? static_cast<T>(U(0) - ua) : a;
      case BatchOp::kShl: return static_cast<T>(ua << imm);
      case BatchOp::kShr: return static_cast<T>(a >> imm);
      case BatchOp::kMulC:
        return static_cast<T>(ua * static_cast<U>(static_cast<T>(c)));
      case BatchOp::kAddC:
        return static_cast<T>(ua + static_cast<U>(static_cast<T>(c)));
      default:
        throw InternalError("integer op not supported in eval_scalar");
    }
  }
}

template <typename T>
void eval_typed(BatchOp op, const Tensor* a, const Tensor* b, const Tensor* d,
                Tensor* out, int imm, double c) {
  const T* pa = a->as<T>();
  const T* pb = b ? b->as<T>() : nullptr;
  const T* pd = d ? d->as<T>() : nullptr;
  T* po = out->as<T>();
  const int n = out->elements();
  for (int i = 0; i < n; ++i) {
    po[i] = eval_scalar<T>(op, pa[i], pb ? pb[i] : T(), pd ? pd[i] : T(), imm,
                           c);
  }
}

template <typename From, typename To>
void cast_typed(const Tensor* a, Tensor* out) {
  const From* pa = a->as<From>();
  To* po = out->as<To>();
  const int n = out->elements();
  for (int i = 0; i < n; ++i) po[i] = static_cast<To>(pa[i]);
}

template <typename From>
void cast_from(const Tensor* a, Tensor* out) {
  switch (out->type()) {
    case DataType::kInt8: cast_typed<From, std::int8_t>(a, out); return;
    case DataType::kInt16: cast_typed<From, std::int16_t>(a, out); return;
    case DataType::kInt32: cast_typed<From, std::int32_t>(a, out); return;
    case DataType::kInt64: cast_typed<From, std::int64_t>(a, out); return;
    case DataType::kUInt8: cast_typed<From, std::uint8_t>(a, out); return;
    case DataType::kUInt16: cast_typed<From, std::uint16_t>(a, out); return;
    case DataType::kUInt32: cast_typed<From, std::uint32_t>(a, out); return;
    case DataType::kUInt64: cast_typed<From, std::uint64_t>(a, out); return;
    case DataType::kFloat32: cast_typed<From, float>(a, out); return;
    case DataType::kFloat64: cast_typed<From, double>(a, out); return;
    default: throw InternalError("cast to complex type");
  }
}

}  // namespace

void eval_elementwise(BatchOp op, const Tensor* a, const Tensor* b,
                      Tensor* out, int imm, double scalar_operand,
                      const Tensor* c) {
  require(a != nullptr && out != nullptr, "eval_elementwise: null tensor");
  if (op == BatchOp::kCast) {
    switch (a->type()) {
      case DataType::kInt8: cast_from<std::int8_t>(a, out); return;
      case DataType::kInt16: cast_from<std::int16_t>(a, out); return;
      case DataType::kInt32: cast_from<std::int32_t>(a, out); return;
      case DataType::kInt64: cast_from<std::int64_t>(a, out); return;
      case DataType::kUInt8: cast_from<std::uint8_t>(a, out); return;
      case DataType::kUInt16: cast_from<std::uint16_t>(a, out); return;
      case DataType::kUInt32: cast_from<std::uint32_t>(a, out); return;
      case DataType::kUInt64: cast_from<std::uint64_t>(a, out); return;
      case DataType::kFloat32: cast_from<float>(a, out); return;
      case DataType::kFloat64: cast_from<double>(a, out); return;
      default: throw InternalError("cast from complex type");
    }
  }
  switch (a->type()) {
    case DataType::kInt8: eval_typed<std::int8_t>(op, a, b, c, out, imm, scalar_operand); return;
    case DataType::kInt16: eval_typed<std::int16_t>(op, a, b, c, out, imm, scalar_operand); return;
    case DataType::kInt32: eval_typed<std::int32_t>(op, a, b, c, out, imm, scalar_operand); return;
    case DataType::kInt64: eval_typed<std::int64_t>(op, a, b, c, out, imm, scalar_operand); return;
    case DataType::kUInt8: eval_typed<std::uint8_t>(op, a, b, c, out, imm, scalar_operand); return;
    case DataType::kUInt16: eval_typed<std::uint16_t>(op, a, b, c, out, imm, scalar_operand); return;
    case DataType::kUInt32: eval_typed<std::uint32_t>(op, a, b, c, out, imm, scalar_operand); return;
    case DataType::kUInt64: eval_typed<std::uint64_t>(op, a, b, c, out, imm, scalar_operand); return;
    case DataType::kFloat32: eval_typed<float>(op, a, b, c, out, imm, scalar_operand); return;
    case DataType::kFloat64: eval_typed<double>(op, a, b, c, out, imm, scalar_operand); return;
    default: throw InternalError("eval_elementwise on complex tensor");
  }
}

// ---------------------------------------------------------------------------
// Intensive reference implementations (textbook formulas, double precision)
// ---------------------------------------------------------------------------

namespace {

constexpr double kPi = std::numbers::pi;

/// Direct DFT: X[k] = sum_n x[n] * exp(-2*pi*i*k*n/N); inverse adds the
/// conjugate kernel and 1/N normalization.
void reference_dft(const float* in, float* out, int n, bool inverse) {
  const double sign = inverse ? 2.0 : -2.0;
  for (int k = 0; k < n; ++k) {
    double re = 0.0, im = 0.0;
    for (int t = 0; t < n; ++t) {
      const double angle = sign * kPi * k * t / n;
      const double c = std::cos(angle), s = std::sin(angle);
      const double xr = in[2 * t], xi = in[2 * t + 1];
      re += xr * c - xi * s;
      im += xr * s + xi * c;
    }
    if (inverse) {
      re /= n;
      im /= n;
    }
    out[2 * k] = static_cast<float>(re);
    out[2 * k + 1] = static_cast<float>(im);
  }
}

void reference_dft2d(const float* in, float* out, int rows, int cols,
                     bool inverse) {
  std::vector<float> tmp(static_cast<size_t>(rows) * cols * 2);
  // Rows.
  for (int r = 0; r < rows; ++r) {
    reference_dft(in + static_cast<size_t>(r) * cols * 2,
                  tmp.data() + static_cast<size_t>(r) * cols * 2, cols,
                  inverse);
  }
  // Columns.
  std::vector<float> col_in(static_cast<size_t>(rows) * 2);
  std::vector<float> col_out(static_cast<size_t>(rows) * 2);
  for (int c = 0; c < cols; ++c) {
    for (int r = 0; r < rows; ++r) {
      col_in[2 * r] = tmp[(static_cast<size_t>(r) * cols + c) * 2];
      col_in[2 * r + 1] = tmp[(static_cast<size_t>(r) * cols + c) * 2 + 1];
    }
    reference_dft(col_in.data(), col_out.data(), rows, inverse);
    for (int r = 0; r < rows; ++r) {
      out[(static_cast<size_t>(r) * cols + c) * 2] = col_out[2 * r];
      out[(static_cast<size_t>(r) * cols + c) * 2 + 1] = col_out[2 * r + 1];
    }
  }
}

/// Unnormalized DCT-II: X[k] = sum_n x[n] cos(pi/N * (n + 0.5) * k).
template <typename T>
void reference_dct(const T* in, T* out, int n) {
  for (int k = 0; k < n; ++k) {
    double acc = 0.0;
    for (int t = 0; t < n; ++t) {
      acc += in[t] * std::cos(kPi / n * (t + 0.5) * k);
    }
    out[k] = static_cast<T>(acc);
  }
}

/// Inverse of reference_dct (DCT-III scaled by 2/N).
template <typename T>
void reference_idct(const T* in, T* out, int n) {
  for (int t = 0; t < n; ++t) {
    double acc = in[0] / 2.0;
    for (int k = 1; k < n; ++k) {
      acc += in[k] * std::cos(kPi / n * k * (t + 0.5));
    }
    out[t] = static_cast<T>(acc * 2.0 / n);
  }
}

template <typename T>
void reference_conv(const T* a, int na, const T* b, int nb, T* out) {
  const int nout = na + nb - 1;
  for (int k = 0; k < nout; ++k) {
    double acc = 0.0;
    for (int i = 0; i < na; ++i) {
      const int j = k - i;
      if (j >= 0 && j < nb) acc += static_cast<double>(a[i]) * b[j];
    }
    out[k] = static_cast<T>(acc);
  }
}

template <typename T>
void reference_conv2d(const T* a, int ar, int ac, const T* b, int br, int bc,
                      T* out) {
  const int orows = ar + br - 1, ocols = ac + bc - 1;
  for (int r = 0; r < orows; ++r) {
    for (int c = 0; c < ocols; ++c) {
      double acc = 0.0;
      for (int i = 0; i < ar; ++i) {
        const int j = r - i;
        if (j < 0 || j >= br) continue;
        for (int p = 0; p < ac; ++p) {
          const int q = c - p;
          if (q < 0 || q >= bc) continue;
          acc += static_cast<double>(a[i * ac + p]) * b[j * bc + q];
        }
      }
      out[r * ocols + c] = static_cast<T>(acc);
    }
  }
}

template <typename T>
void reference_matmul(const T* a, const T* b, T* out, int n) {
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      double acc = 0.0;
      for (int k = 0; k < n; ++k) {
        acc += static_cast<double>(a[r * n + k]) * b[k * n + c];
      }
      out[r * n + c] = static_cast<T>(acc);
    }
  }
}

template <typename T>
void reference_matinv(const T* a, T* out, int n) {
  // Gauss-Jordan with partial pivoting on an augmented [A | I] system.
  std::vector<double> m(static_cast<size_t>(n) * 2 * n, 0.0);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) m[r * 2 * n + c] = a[r * n + c];
    m[r * 2 * n + n + r] = 1.0;
  }
  for (int col = 0; col < n; ++col) {
    int pivot = col;
    for (int r = col + 1; r < n; ++r) {
      if (std::fabs(m[r * 2 * n + col]) > std::fabs(m[pivot * 2 * n + col])) {
        pivot = r;
      }
    }
    if (std::fabs(m[pivot * 2 * n + col]) < 1e-300) {
      throw ModelError("MatInv: singular matrix in reference execution");
    }
    if (pivot != col) {
      for (int c = 0; c < 2 * n; ++c) std::swap(m[pivot * 2 * n + c], m[col * 2 * n + c]);
    }
    const double inv = 1.0 / m[col * 2 * n + col];
    for (int c = 0; c < 2 * n; ++c) m[col * 2 * n + c] *= inv;
    for (int r = 0; r < n; ++r) {
      if (r == col) continue;
      const double f = m[r * 2 * n + col];
      if (f == 0.0) continue;
      for (int c = 0; c < 2 * n; ++c) m[r * 2 * n + c] -= f * m[col * 2 * n + c];
    }
  }
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      out[r * n + c] = static_cast<T>(m[r * 2 * n + n + c]);
    }
  }
}

template <typename T>
T reference_matdet(const T* a, int n) {
  std::vector<double> m(static_cast<size_t>(n) * n);
  for (int i = 0; i < n * n; ++i) m[static_cast<size_t>(i)] = a[i];
  double det = 1.0;
  for (int col = 0; col < n; ++col) {
    int pivot = col;
    for (int r = col + 1; r < n; ++r) {
      if (std::fabs(m[r * n + col]) > std::fabs(m[pivot * n + col])) pivot = r;
    }
    if (std::fabs(m[pivot * n + col]) == 0.0) return T(0);
    if (pivot != col) {
      det = -det;
      for (int c = 0; c < n; ++c) std::swap(m[pivot * n + c], m[col * n + c]);
    }
    det *= m[col * n + col];
    for (int r = col + 1; r < n; ++r) {
      const double f = m[r * n + col] / m[col * n + col];
      for (int c = col; c < n; ++c) m[r * n + c] -= f * m[col * n + c];
    }
  }
  return static_cast<T>(det);
}

template <typename F32, typename F64>
void dispatch_float(DataType type, F32&& f32, F64&& f64) {
  if (type == DataType::kFloat32) {
    f32();
  } else if (type == DataType::kFloat64) {
    f64();
  } else {
    throw InternalError("intensive actor on non-float type");
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// exec_actor
// ---------------------------------------------------------------------------

void update_delay_state(const Model& model, ActorId id, const Tensor& input,
                        ExecState& state) {
  require(model.actor(id).type() == "UnitDelay",
          "update_delay_state: not a UnitDelay");
  Tensor& reg = state.delay.at(id);
  require(reg.byte_size() == input.byte_size(),
          "update_delay_state: input size mismatch");
  std::memcpy(reg.data(), input.data(), input.byte_size());
}

void exec_actor(const Model& model, ActorId id,
                const std::vector<const Tensor*>& inputs,
                const std::vector<Tensor*>& outputs, ExecState& state) {
  const Actor& actor = model.actor(id);
  require(actor.is_resolved(), "exec_actor: model must be resolved");
  const std::string& type = actor.type();

  auto in0 = [&]() { return inputs.at(0); };
  auto out0 = [&]() { return outputs.at(0); };
  auto copy_through = [&]() {
    std::memcpy(out0()->data(), in0()->data(), in0()->byte_size());
  };

  if (type == "Inport") {
    copy_through();
    return;
  }
  if (type == "Outport") {
    copy_through();
    return;
  }
  if (type == "Constant") {
    Tensor value = constant_tensor(actor);
    std::memcpy(out0()->data(), value.data(), value.byte_size());
    return;
  }
  if (type == "UnitDelay") {
    // Output phase only: the delay emits its stored state.  The state update
    // (state <- this step's input) belongs at the *end* of the step so that
    // same-step feedback loops see consistent values; executors call
    // update_delay_state() once every producer has fired.
    Tensor& reg = state.delay.at(id);
    std::memcpy(out0()->data(), reg.data(), reg.byte_size());
    return;
  }

  const ActorTypeInfo& info = actor_type_info(type);
  if (info.elementwise) {
    const BatchOp op = batch_op_for_actor_type(type);
    const Tensor* b = arity(op) >= 2 ? inputs.at(1) : nullptr;
    const Tensor* third = arity(op) >= 3 ? inputs.at(2) : nullptr;
    const int imm = static_cast<int>(actor.int_param_or("amount", 0));
    double c = 0.0;
    if (op == BatchOp::kMulC) c = parse_double(actor.param("gain"));
    if (op == BatchOp::kAddC) c = parse_double(actor.param("bias"));
    eval_elementwise(op, in0(), b, out0(), imm, c, third);
    return;
  }

  // ---- intensive actors ----------------------------------------------------
  if (type == "FFT" || type == "IFFT") {
    reference_dft(in0()->as<float>(), out0()->as<float>(),
                  in0()->elements(), type == "IFFT");
    return;
  }
  if (type == "FFT2D" || type == "IFFT2D") {
    reference_dft2d(in0()->as<float>(), out0()->as<float>(),
                    in0()->shape().dims[0], in0()->shape().dims[1],
                    type == "IFFT2D");
    return;
  }
  if (type == "DCT" || type == "IDCT") {
    const int n = in0()->elements();
    dispatch_float(
        in0()->type(),
        [&] {
          if (type == "DCT") reference_dct(in0()->as<float>(), out0()->as<float>(), n);
          else reference_idct(in0()->as<float>(), out0()->as<float>(), n);
        },
        [&] {
          if (type == "DCT") reference_dct(in0()->as<double>(), out0()->as<double>(), n);
          else reference_idct(in0()->as<double>(), out0()->as<double>(), n);
        });
    return;
  }
  if (type == "DCT2D") {
    const int rows = in0()->shape().dims[0];
    const int cols = in0()->shape().dims[1];
    auto rowcol = [&](auto* in, auto* out) {
      using T = std::remove_const_t<std::remove_pointer_t<decltype(out)>>;
      std::vector<T> col_in(static_cast<size_t>(rows));
      std::vector<T> col_out(static_cast<size_t>(rows));
      for (int r = 0; r < rows; ++r) {
        reference_dct(in + static_cast<size_t>(r) * cols,
                      out + static_cast<size_t>(r) * cols, cols);
      }
      for (int c = 0; c < cols; ++c) {
        for (int r = 0; r < rows; ++r) {
          col_in[static_cast<size_t>(r)] = out[static_cast<size_t>(r) * cols + c];
        }
        reference_dct(col_in.data(), col_out.data(), rows);
        for (int r = 0; r < rows; ++r) {
          out[static_cast<size_t>(r) * cols + c] = col_out[static_cast<size_t>(r)];
        }
      }
    };
    dispatch_float(
        in0()->type(),
        [&] { rowcol(in0()->as<float>(), out0()->as<float>()); },
        [&] { rowcol(in0()->as<double>(), out0()->as<double>()); });
    return;
  }
  if (type == "Conv") {
    const int na = inputs.at(0)->elements();
    const int nb = inputs.at(1)->elements();
    dispatch_float(
        in0()->type(),
        [&] {
          reference_conv(inputs[0]->as<float>(), na, inputs[1]->as<float>(),
                         nb, out0()->as<float>());
        },
        [&] {
          reference_conv(inputs[0]->as<double>(), na, inputs[1]->as<double>(),
                         nb, out0()->as<double>());
        });
    return;
  }
  if (type == "Conv2D") {
    const auto& sa = inputs.at(0)->shape().dims;
    const auto& sb = inputs.at(1)->shape().dims;
    dispatch_float(
        in0()->type(),
        [&] {
          reference_conv2d(inputs[0]->as<float>(), sa[0], sa[1],
                           inputs[1]->as<float>(), sb[0], sb[1],
                           out0()->as<float>());
        },
        [&] {
          reference_conv2d(inputs[0]->as<double>(), sa[0], sa[1],
                           inputs[1]->as<double>(), sb[0], sb[1],
                           out0()->as<double>());
        });
    return;
  }
  if (type == "MatMul") {
    const int n = in0()->shape().dims[0];
    dispatch_float(
        in0()->type(),
        [&] {
          reference_matmul(inputs[0]->as<float>(), inputs[1]->as<float>(),
                           out0()->as<float>(), n);
        },
        [&] {
          reference_matmul(inputs[0]->as<double>(), inputs[1]->as<double>(),
                           out0()->as<double>(), n);
        });
    return;
  }
  if (type == "MatInv") {
    const int n = in0()->shape().dims[0];
    dispatch_float(
        in0()->type(),
        [&] { reference_matinv(in0()->as<float>(), out0()->as<float>(), n); },
        [&] { reference_matinv(in0()->as<double>(), out0()->as<double>(), n); });
    return;
  }
  if (type == "MatDet") {
    const int n = in0()->shape().dims[0];
    dispatch_float(
        in0()->type(),
        [&] { out0()->as<float>()[0] = reference_matdet(in0()->as<float>(), n); },
        [&] { out0()->as<double>()[0] = reference_matdet(in0()->as<double>(), n); });
    return;
  }

  throw InternalError("exec_actor: no semantics for actor type '" + type + "'");
}

}  // namespace hcg
