// The element-wise operations of batch computing actors (paper Table 1(b))
// plus the scalar-operand variants (Gain, Bias) and type conversion (Cast).
//
// These ops are shared by three consumers:
//   * the actor reference semantics (oracle execution),
//   * the batch dataflow graph of Algorithm 2,
//   * the SIMD instruction pattern graphs of the .isa tables.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "model/datatype.hpp"

namespace hcg {

enum class BatchOp : std::uint8_t {
  // binary, two array operands
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMin,
  kMax,
  kAbd,  // absolute difference |a-b|
  kAnd,
  kOr,
  kXor,
  // unary, one array operand
  kNot,
  kAbs,
  kRecp,  // reciprocal 1/x (float only)
  kSqrt,  // square root (float only)
  // unary with an immediate operand
  kShl,
  kShr,
  // unary with a scalar constant operand
  kMulC,  // Gain: x * c
  kAddC,  // Bias: x + c
  // type conversion
  kCast,
  // ternary element-wise select (Simulink Switch): ctrl > 0 ? a : b
  kSel,
};

/// Number of array operands the op consumes (1, 2 or 3).
int arity(BatchOp op);

/// True if the op carries an immediate parameter (shift amount).
bool has_immediate(BatchOp op);

/// True if the op carries a scalar constant operand (Gain / Bias).
bool has_scalar_operand(BatchOp op);

/// Name used in .isa pattern graphs and diagnostics ("Add", "Shr", "MulC").
std::string_view op_name(BatchOp op);

/// Inverse of op_name(); throws hcg::ParseError on unknown names.
BatchOp parse_batch_op(std::string_view name);

/// Maps a batch actor type string ("Add", "Gain", "Cast", ...) to its op.
/// Throws hcg::ModelError for non-batch actor types.
BatchOp batch_op_for_actor_type(std::string_view actor_type);

/// True if the op is defined for the element type (e.g. kShl needs an
/// integer, kSqrt needs a float, kAbs needs a signed type).
bool op_supports_type(BatchOp op, DataType type);

/// Whether a+b etc. is commutative — pattern matching uses this to try
/// operand swaps.
bool is_commutative(BatchOp op);

/// The C expression for one scalar application, with `a` and `b` the operand
/// expressions (b is the shift amount / scalar constant where applicable)
/// and `c` the third operand of ternary ops (the Switch control signal).
/// Used by the conventional (non-SIMD) code generators.
std::string scalar_c_expr(BatchOp op, DataType type, const std::string& a,
                          const std::string& b, const std::string& c = "");

}  // namespace hcg
