// Model resolution: port type & shape inference plus structural validation.
//
// Walks the model in schedule order, deriving every actor's input/output
// PortSpecs from its sources and its parameters, and rejecting structurally
// invalid models (unknown types, unconnected inputs, type/shape mismatches,
// ops applied to unsupported element types).
#pragma once

#include <functional>
#include <string>

#include "model/model.hpp"

namespace hcg {

/// Resolves all ports in place.  Throws hcg::ModelError with the offending
/// actor's name on any violation.  Idempotent.
void resolve_model(Model& model);

/// Convenience: resolves a copy and returns it.
Model resolved(Model model);

/// Called once per actor whose resolution failed; `message` is the
/// ModelError text (which embeds the actor name and type).
using ResolveFailureFn =
    std::function<void(const Actor& actor, const std::string& message)>;

/// Tolerant variant for the linter: resolves every actor it can, invoking
/// `on_failure` once per directly-failing actor and skipping the actors
/// downstream of a failure silently (they are not independently broken).
/// Actors left unresolved keep is_resolved() == false.  Returns true when
/// every actor resolved — equivalent to resolve_model() not throwing.
/// Throws hcg::ModelError only when no firing order exists at all
/// (a delay-free cycle).
bool resolve_model_tolerant(Model& model, const ResolveFailureFn& on_failure);

}  // namespace hcg
