// Model resolution: port type & shape inference plus structural validation.
//
// Walks the model in schedule order, deriving every actor's input/output
// PortSpecs from its sources and its parameters, and rejecting structurally
// invalid models (unknown types, unconnected inputs, type/shape mismatches,
// ops applied to unsupported element types).
#pragma once

#include "model/model.hpp"

namespace hcg {

/// Resolves all ports in place.  Throws hcg::ModelError with the offending
/// actor's name on any violation.  Idempotent.
void resolve_model(Model& model);

/// Convenience: resolves a copy and returns it.
Model resolved(Model model);

}  // namespace hcg
