#include "actors/catalog.hpp"

#include "support/error.hpp"

namespace hcg {

std::string_view kind_name(ActorKind kind) {
  switch (kind) {
    case ActorKind::kSource: return "source";
    case ActorKind::kSink: return "sink";
    case ActorKind::kBasic: return "basic";
    case ActorKind::kBatch: return "batch";
    case ActorKind::kIntensive: return "intensive";
  }
  throw InternalError("kind_name: bad ActorKind");
}

const std::vector<ActorTypeInfo>& actor_catalog() {
  static const std::vector<ActorTypeInfo> kCatalog = {
      // ---- structural ----------------------------------------------------
      {"Inport", 0, 1, false, false, false, "External model input"},
      {"Outport", 1, 0, false, false, false, "External model output"},
      {"Constant", 0, 1, false, false, false, "Constant source"},
      {"UnitDelay", 1, 1, false, false, true, "One-step delay (z^-1)"},
      // ---- element-wise (Table 1(b)) --------------------------------------
      {"Add", 2, 1, true, false, false, "Element-wise addition"},
      {"Sub", 2, 1, true, false, false, "Element-wise subtraction"},
      {"Mul", 2, 1, true, false, false, "Element-wise multiplication"},
      {"Div", 2, 1, true, false, false, "Element-wise division (float)"},
      {"Min", 2, 1, true, false, false, "Element-wise minimum"},
      {"Max", 2, 1, true, false, false, "Element-wise maximum"},
      {"Abd", 2, 1, true, false, false, "Element-wise absolute difference"},
      {"BitAnd", 2, 1, true, false, false, "Bit-wise AND (integer)"},
      {"BitOr", 2, 1, true, false, false, "Bit-wise OR (integer)"},
      {"BitXor", 2, 1, true, false, false, "Bit-wise XOR (integer)"},
      {"BitNot", 1, 1, true, false, false, "Bit-wise NOT (integer)"},
      {"Abs", 1, 1, true, false, false, "Element-wise absolute value"},
      {"Recp", 1, 1, true, false, false, "Element-wise reciprocal (float)"},
      {"Sqrt", 1, 1, true, false, false, "Element-wise square root (float)"},
      {"Shl", 1, 1, true, false, false, "Left shift by immediate 'amount'"},
      {"Shr", 1, 1, true, false, false, "Right shift by immediate 'amount'"},
      {"Gain", 1, 1, true, false, false, "Multiply by scalar constant 'gain'"},
      {"Bias", 1, 1, true, false, false, "Add scalar constant 'bias'"},
      {"Cast", 1, 1, true, false, false, "Type conversion to 'to'"},
      {"Switch", 3, 1, true, false, false,
       "Element-wise select: ctrl > 0 ? first : second (ports: a, b, ctrl)"},
      // ---- intensive (Table 1(a)) -----------------------------------------
      {"FFT", 1, 1, false, true, false, "1-D fast Fourier transform (c64)"},
      {"IFFT", 1, 1, false, true, false, "1-D inverse FFT (c64)"},
      {"FFT2D", 1, 1, false, true, false, "2-D FFT (row-column, c64)"},
      {"IFFT2D", 1, 1, false, true, false, "2-D inverse FFT (c64)"},
      {"DCT", 1, 1, false, true, false, "1-D discrete cosine transform II"},
      {"IDCT", 1, 1, false, true, false, "1-D inverse DCT (DCT-III)"},
      {"DCT2D", 1, 1, false, true, false, "2-D DCT-II (row-column)"},
      {"Conv", 2, 1, false, true, false, "1-D full convolution"},
      {"Conv2D", 2, 1, false, true, false, "2-D full convolution"},
      {"MatMul", 2, 1, false, true, false, "Matrix multiplication"},
      {"MatInv", 1, 1, false, true, false, "Matrix inversion"},
      {"MatDet", 1, 1, false, true, false, "Matrix determinant"},
  };
  return kCatalog;
}

const ActorTypeInfo& actor_type_info(std::string_view type) {
  for (const ActorTypeInfo& info : actor_catalog()) {
    if (info.type == type) return info;
  }
  throw ModelError("unknown actor type '" + std::string(type) + "'");
}

bool is_known_actor_type(std::string_view type) {
  for (const ActorTypeInfo& info : actor_catalog()) {
    if (info.type == type) return true;
  }
  return false;
}

ActorKind classify(const Model& model, ActorId id) {
  const Actor& actor = model.actor(id);
  const ActorTypeInfo& info = actor_type_info(actor.type());
  if (actor.type() == "Inport" || actor.type() == "Constant") {
    return ActorKind::kSource;
  }
  if (actor.type() == "Outport") return ActorKind::kSink;
  if (info.intensive) return ActorKind::kIntensive;
  if (info.elementwise) {
    // Batch computing actors must actually take an array as input
    // (paper §3.1); scalar instances are translated conventionally.
    require(actor.is_resolved(), "classify() needs a resolved model");
    for (const PortSpec& in : actor.inputs()) {
      if (in.shape.elements() > 1) return ActorKind::kBatch;
    }
    return ActorKind::kBasic;
  }
  return ActorKind::kBasic;
}

}  // namespace hcg
