#include "actors/batch_op.hpp"

#include "support/error.hpp"

namespace hcg {

int arity(BatchOp op) {
  if (op == BatchOp::kSel) return 3;
  switch (op) {
    case BatchOp::kAdd:
    case BatchOp::kSub:
    case BatchOp::kMul:
    case BatchOp::kDiv:
    case BatchOp::kMin:
    case BatchOp::kMax:
    case BatchOp::kAbd:
    case BatchOp::kAnd:
    case BatchOp::kOr:
    case BatchOp::kXor:
      return 2;
    default:
      return 1;
  }
}

bool has_immediate(BatchOp op) {
  return op == BatchOp::kShl || op == BatchOp::kShr;
}

bool has_scalar_operand(BatchOp op) {
  return op == BatchOp::kMulC || op == BatchOp::kAddC;
}

std::string_view op_name(BatchOp op) {
  switch (op) {
    case BatchOp::kAdd: return "Add";
    case BatchOp::kSub: return "Sub";
    case BatchOp::kMul: return "Mul";
    case BatchOp::kDiv: return "Div";
    case BatchOp::kMin: return "Min";
    case BatchOp::kMax: return "Max";
    case BatchOp::kAbd: return "Abd";
    case BatchOp::kAnd: return "And";
    case BatchOp::kOr: return "Or";
    case BatchOp::kXor: return "Xor";
    case BatchOp::kNot: return "Not";
    case BatchOp::kAbs: return "Abs";
    case BatchOp::kRecp: return "Recp";
    case BatchOp::kSqrt: return "Sqrt";
    case BatchOp::kShl: return "Shl";
    case BatchOp::kShr: return "Shr";
    case BatchOp::kMulC: return "MulC";
    case BatchOp::kAddC: return "AddC";
    case BatchOp::kCast: return "Cast";
    case BatchOp::kSel: return "Sel";
  }
  throw InternalError("op_name: bad BatchOp");
}

BatchOp parse_batch_op(std::string_view name) {
  static constexpr BatchOp kAll[] = {
      BatchOp::kAdd,  BatchOp::kSub,  BatchOp::kMul,  BatchOp::kDiv,
      BatchOp::kMin,  BatchOp::kMax,  BatchOp::kAbd,  BatchOp::kAnd,
      BatchOp::kOr,   BatchOp::kXor,  BatchOp::kNot,  BatchOp::kAbs,
      BatchOp::kRecp, BatchOp::kSqrt, BatchOp::kShl,  BatchOp::kShr,
      BatchOp::kMulC, BatchOp::kAddC, BatchOp::kCast, BatchOp::kSel};
  for (BatchOp op : kAll) {
    if (op_name(op) == name) return op;
  }
  throw ParseError("unknown batch op '" + std::string(name) + "'");
}

BatchOp batch_op_for_actor_type(std::string_view actor_type) {
  if (actor_type == "BitAnd") return BatchOp::kAnd;
  if (actor_type == "BitOr") return BatchOp::kOr;
  if (actor_type == "BitXor") return BatchOp::kXor;
  if (actor_type == "BitNot") return BatchOp::kNot;
  if (actor_type == "Gain") return BatchOp::kMulC;
  if (actor_type == "Bias") return BatchOp::kAddC;
  if (actor_type == "Switch") return BatchOp::kSel;
  try {
    return parse_batch_op(actor_type);
  } catch (const ParseError&) {
    throw ModelError("actor type '" + std::string(actor_type) +
                     "' is not a batch computing actor type");
  }
}

bool op_supports_type(BatchOp op, DataType type) {
  if (is_complex(type)) return false;
  switch (op) {
    case BatchOp::kAdd:
    case BatchOp::kSub:
    case BatchOp::kMul:
    case BatchOp::kMin:
    case BatchOp::kMax:
    case BatchOp::kMulC:
    case BatchOp::kAddC:
    case BatchOp::kCast:
    case BatchOp::kSel:
      return true;
    case BatchOp::kDiv:
    case BatchOp::kRecp:
    case BatchOp::kSqrt:
      return is_float(type);
    case BatchOp::kAbd:
      // max(a,b) - min(a,b) is well defined for unsigned types too.
      return !is_complex(type);
    case BatchOp::kAnd:
    case BatchOp::kOr:
    case BatchOp::kXor:
    case BatchOp::kNot:
    case BatchOp::kShl:
    case BatchOp::kShr:
      return is_integer(type);
    case BatchOp::kAbs:
      return is_float(type) || is_signed_int(type);
  }
  return false;
}

bool is_commutative(BatchOp op) {
  switch (op) {
    case BatchOp::kAdd:
    case BatchOp::kMul:
    case BatchOp::kMin:
    case BatchOp::kMax:
    case BatchOp::kAbd:
    case BatchOp::kAnd:
    case BatchOp::kOr:
    case BatchOp::kXor:
      return true;
    default:
      return false;
  }
}

std::string scalar_c_expr(BatchOp op, DataType type, const std::string& a,
                          const std::string& b, const std::string& c) {
  const std::string ct(c_name(type));
  if (op == BatchOp::kSel) {
    return "(" + c + " > 0 ? " + a + " : " + b + ")";
  }
  switch (op) {
    case BatchOp::kAdd: return a + " + " + b;
    case BatchOp::kSub: return a + " - " + b;
    case BatchOp::kMul: return a + " * " + b;
    case BatchOp::kDiv: return a + " / " + b;
    case BatchOp::kMin: return "(" + a + " < " + b + " ? " + a + " : " + b + ")";
    case BatchOp::kMax: return "(" + a + " > " + b + " ? " + a + " : " + b + ")";
    case BatchOp::kAbd:
      return "(" + a + " > " + b + " ? " + a + " - " + b + " : " + b + " - " +
             a + ")";
    case BatchOp::kAnd: return a + " & " + b;
    case BatchOp::kOr: return a + " | " + b;
    case BatchOp::kXor: return a + " ^ " + b;
    case BatchOp::kNot: return "~" + a;
    case BatchOp::kAbs:
      if (type == DataType::kFloat32) return "fabsf(" + a + ")";
      if (type == DataType::kFloat64) return "fabs(" + a + ")";
      return "(" + a + " < 0 ? -" + a + " : " + a + ")";
    case BatchOp::kRecp:
      return (type == DataType::kFloat32 ? "1.0f / " : "1.0 / ") + a;
    case BatchOp::kSqrt:
      return (type == DataType::kFloat32 ? "sqrtf(" : "sqrt(") + a + ")";
    case BatchOp::kShl: return a + " << " + b;
    case BatchOp::kShr: return a + " >> " + b;
    case BatchOp::kMulC: return a + " * (" + ct + ")" + b;
    case BatchOp::kAddC: return a + " + (" + ct + ")" + b;
    case BatchOp::kCast: return "(" + ct + ")" + a;
    case BatchOp::kSel: break;  // handled above
  }
  throw InternalError("scalar_c_expr: bad BatchOp");
}

}  // namespace hcg
