// Reference semantics for every actor in the catalog.
//
// This is the ground-truth oracle: intensive actors are computed by direct
// textbook formulas (naive DFT, cosine-sum DCT, shift-multiply-accumulate
// convolution, Gauss-Jordan inversion) in double precision, deliberately
// sharing no code with the optimized kernel library; element-wise actors are
// computed in the signal's native element type so integer results are
// bit-exact against generated C code.
#pragma once

#include <map>
#include <vector>

#include "actors/batch_op.hpp"
#include "model/model.hpp"
#include "model/tensor.hpp"

namespace hcg {

/// Per-model-instance mutable state (UnitDelay registers).
struct ExecState {
  std::map<ActorId, Tensor> delay;

  /// Allocates and zeroes the delay registers of `model`.
  void init(const Model& model);
};

/// Materializes a Constant actor's `value` parameter as a tensor.
/// Accepts a single literal (replicated) or a comma-separated list whose
/// length matches the element count (2x for complex: re,im pairs).
Tensor constant_tensor(const Actor& actor);

/// Allocates a tensor matching a resolved port.
Tensor make_tensor(const PortSpec& spec);

/// Fires one actor: reads `inputs` (one tensor per input port, in port
/// order), writes `outputs`.  Inport/Outport actors are identity copies.
/// UnitDelay only *emits* its stored state here; executors must call
/// update_delay_state() at end of step.  The model must be resolved.
void exec_actor(const Model& model, ActorId id,
                const std::vector<const Tensor*>& inputs,
                const std::vector<Tensor*>& outputs, ExecState& state);

/// End-of-step phase of a UnitDelay: stores this step's input value.
void update_delay_state(const Model& model, ActorId id, const Tensor& input,
                        ExecState& state);

/// Element-wise evaluation helper shared with the interpreter: applies `op`
/// lane-by-lane in the native element type.  `b` may be null for unary ops;
/// `imm` is the shift amount; `scalar_operand` is the Gain/Bias constant;
/// `c` is the third operand of ternary ops (the Switch control signal).
/// For kCast, `out`'s type is the conversion target.
void eval_elementwise(BatchOp op, const Tensor* a, const Tensor* b,
                      Tensor* out, int imm, double scalar_operand,
                      const Tensor* c = nullptr);

}  // namespace hcg
