// The actor catalog: every block type the generator understands, with its
// structural signature and its dispatch category (paper §3.1).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "model/model.hpp"

namespace hcg {

enum class ActorKind : std::uint8_t {
  kSource,     // Inport, Constant
  kSink,       // Outport
  kBasic,      // conventional fire code (UnitDelay, scalar arithmetic, ...)
  kBatch,      // element-wise over arrays -> Algorithm 2
  kIntensive,  // FFT/DCT/Conv/Mat* -> Algorithm 1
};

std::string_view kind_name(ActorKind kind);

/// Static description of an actor type.
struct ActorTypeInfo {
  std::string type;          // block type string, e.g. "Add"
  int input_count = 0;       // fixed arity
  int output_count = 1;
  bool elementwise = false;  // candidate for batch dispatch when on arrays
  bool intensive = false;    // candidate for Algorithm 1
  bool stateful = false;     // needs per-instance state (UnitDelay)
  std::string description;   // one-line doc shown by tools
};

/// The full catalog (Table 1 of the paper plus structural actors).
const std::vector<ActorTypeInfo>& actor_catalog();

/// Looks up a type; throws hcg::ModelError for unknown actor types.
const ActorTypeInfo& actor_type_info(std::string_view type);

bool is_known_actor_type(std::string_view type);

/// Actor Dispatch (paper §3.1): classifies a *resolved* actor instance.
/// An element-wise type only counts as a batch computing actor when it
/// actually operates on arrays; an FFT on any input is intensive; ports,
/// constants and everything else fall through to kSource/kSink/kBasic.
ActorKind classify(const Model& model, ActorId id);

}  // namespace hcg
