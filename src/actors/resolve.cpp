#include "actors/resolve.hpp"

#include "actors/batch_op.hpp"
#include "actors/catalog.hpp"
#include "model/schedule.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace hcg {

namespace {

[[noreturn]] void fail(const Actor& actor, const std::string& message) {
  throw ModelError("actor '" + actor.name() + "' (" + actor.type() + "): " +
                   message);
}

PortSpec spec_from_params(const Actor& actor) {
  if (!actor.has_param("dtype") || !actor.has_param("shape")) {
    fail(actor, "requires 'dtype' and 'shape' parameters");
  }
  PortSpec spec;
  spec.type = parse_datatype(actor.param("dtype"));
  spec.shape = Shape::parse(actor.param("shape"));
  return spec;
}

void check_square_matrix(const Actor& actor, const PortSpec& in) {
  if (in.shape.rank() != 2 || in.shape.dims[0] != in.shape.dims[1]) {
    fail(actor, "requires a square matrix input, got " + in.to_string());
  }
  if (!is_float(in.type)) {
    fail(actor, "matrix actors require a float element type");
  }
}

/// Derives the output specs for `actor` given its resolved input specs.
std::vector<PortSpec> infer_outputs(const Actor& actor,
                                    const std::vector<PortSpec>& in) {
  const std::string& type = actor.type();

  if (type == "Inport" || type == "Constant") return {spec_from_params(actor)};
  if (type == "Outport") return {};

  if (type == "UnitDelay") {
    // A delay may sit on a feedback loop, so its output type cannot be
    // inferred from its input at schedule time; it must be declared.
    return {spec_from_params(actor)};
  }

  if (type == "Cast") {
    if (!actor.has_param("to")) fail(actor, "requires a 'to' parameter");
    PortSpec out;
    out.type = parse_datatype(actor.param("to"));
    out.shape = in[0].shape;
    if (is_complex(in[0].type) || is_complex(out.type)) {
      fail(actor, "cannot cast complex signals");
    }
    return {out};
  }

  const ActorTypeInfo& info = actor_type_info(type);

  if (info.elementwise) {
    const BatchOp op = batch_op_for_actor_type(type);
    for (int port = 1; port < arity(op); ++port) {
      if (!(in[static_cast<size_t>(port)] == in[0])) {
        fail(actor, "operand mismatch: " + in[0].to_string() + " vs " +
                        in[static_cast<size_t>(port)].to_string());
      }
    }
    if (!op_supports_type(op, in[0].type)) {
      fail(actor, "op not defined for element type " +
                      std::string(short_name(in[0].type)));
    }
    if (has_immediate(op)) {
      long long amount = actor.int_param_or("amount", -1);
      if (amount < 0 || amount >= bit_width(in[0].type)) {
        fail(actor, "shift 'amount' must be in [0, " +
                        std::to_string(bit_width(in[0].type) - 1) + "]");
      }
    }
    if (op == BatchOp::kMulC && !actor.has_param("gain")) {
      fail(actor, "requires a 'gain' parameter");
    }
    if (op == BatchOp::kAddC && !actor.has_param("bias")) {
      fail(actor, "requires a 'bias' parameter");
    }
    return {in[0]};
  }

  if (type == "FFT" || type == "IFFT") {
    if (in[0].type != DataType::kComplex64 || in[0].shape.rank() != 1) {
      fail(actor, "requires a c64 vector input, got " + in[0].to_string());
    }
    return {in[0]};
  }
  if (type == "FFT2D" || type == "IFFT2D") {
    if (in[0].type != DataType::kComplex64 || in[0].shape.rank() != 2) {
      fail(actor, "requires a c64 matrix input, got " + in[0].to_string());
    }
    return {in[0]};
  }
  if (type == "DCT" || type == "IDCT") {
    if (!is_float(in[0].type) || in[0].shape.rank() != 1) {
      fail(actor, "requires a float vector input, got " + in[0].to_string());
    }
    return {in[0]};
  }
  if (type == "DCT2D") {
    if (!is_float(in[0].type) || in[0].shape.rank() != 2) {
      fail(actor, "requires a float matrix input, got " + in[0].to_string());
    }
    return {in[0]};
  }
  if (type == "Conv") {
    if (!is_float(in[0].type) || in[0].shape.rank() != 1 ||
        in[1].shape.rank() != 1 || in[0].type != in[1].type) {
      fail(actor, "requires two float vectors of the same element type");
    }
    PortSpec out = in[0];
    out.shape = Shape{in[0].shape.dims[0] + in[1].shape.dims[0] - 1};
    return {out};
  }
  if (type == "Conv2D") {
    if (!is_float(in[0].type) || in[0].shape.rank() != 2 ||
        in[1].shape.rank() != 2 || in[0].type != in[1].type) {
      fail(actor, "requires two float matrices of the same element type");
    }
    PortSpec out = in[0];
    out.shape = Shape{in[0].shape.dims[0] + in[1].shape.dims[0] - 1,
                      in[0].shape.dims[1] + in[1].shape.dims[1] - 1};
    return {out};
  }
  if (type == "MatMul") {
    check_square_matrix(actor, in[0]);
    if (!(in[0] == in[1])) {
      fail(actor, "operand mismatch: " + in[0].to_string() + " vs " +
                      in[1].to_string());
    }
    return {in[0]};
  }
  if (type == "MatInv") {
    check_square_matrix(actor, in[0]);
    return {in[0]};
  }
  if (type == "MatDet") {
    check_square_matrix(actor, in[0]);
    PortSpec out;
    out.type = in[0].type;
    out.shape = Shape{};
    return {out};
  }

  fail(actor, "no inference rule (unknown actor type?)");
}

/// Shared resolution loop.  With `on_failure == nullptr` (strict mode) the
/// first ModelError propagates; with a callback (tolerant mode, the linter)
/// each directly-failing actor is reported once and actors downstream of a
/// failure are skipped silently.  Returns true when every actor resolved.
bool resolve_actors(Model& model, const ResolveFailureFn* on_failure) {
  const std::vector<ActorId> order = schedule(model);
  bool all_ok = true;

  // Catches ModelError (bad structure/types) and ParseError (malformed
  // dtype/shape parameter values); InternalError is a bug and always
  // propagates, as does everything in strict mode.
  auto tolerate = [&](const Actor& actor, const Error& error) {
    if (on_failure == nullptr ||
        dynamic_cast<const InternalError*>(&error) != nullptr) {
      throw;  // rethrows the in-flight exception; only called from a catch
    }
    all_ok = false;
    (*on_failure)(actor, error.what());
  };

  // Delays self-declare their spec, so resolve them first: a consumer on a
  // feedback loop may legally fire before the delay in the schedule.
  for (Actor& actor : model.actors()) {
    if (actor.type() != "UnitDelay") continue;
    try {
      actor.set_ports({spec_from_params(actor)}, {spec_from_params(actor)});
    } catch (const Error& error) {
      tolerate(actor, error);
    }
  }

  for (ActorId id : order) {
    Actor& actor = model.actor(id);
    if (actor.type() == "UnitDelay") continue;
    try {
      const ActorTypeInfo& info = actor_type_info(actor.type());

      std::vector<PortSpec> in_specs;
      in_specs.reserve(static_cast<size_t>(info.input_count));
      bool skip_downstream = false;
      for (int port = 0; port < info.input_count; ++port) {
        auto conn = model.incoming(id, port);
        if (!conn) {
          fail(actor, "input port " + std::to_string(port) + " is unconnected");
        }
        const Actor& src = model.actor(conn->src);
        if (!src.is_resolved()) {
          // Strict mode: only possible for feedback through a delay, which
          // declares itself.  Tolerant mode: the schedule puts every non-delay
          // source first, so an unresolved source means it already failed —
          // this actor is collateral, not independently broken.
          if (on_failure != nullptr) {
            skip_downstream = true;
            break;
          }
          fail(actor, "source '" + src.name() + "' is unresolved (feedback "
                      "loops must pass through a UnitDelay)");
        }
        if (conn->src_port >= src.output_count()) {
          fail(actor, "source '" + src.name() + "' has no output port " +
                          std::to_string(conn->src_port));
        }
        in_specs.push_back(src.output(conn->src_port));
      }
      if (skip_downstream) {
        all_ok = false;
        continue;
      }

      std::vector<PortSpec> out_specs = infer_outputs(actor, in_specs);
      actor.set_ports(std::move(in_specs), std::move(out_specs));
    } catch (const Error& error) {
      tolerate(actor, error);
    }
  }

  // Post-pass: a UnitDelay declares its spec; verify the wire feeding it
  // agrees (skipped when the feed is itself a casualty of an earlier
  // failure).
  for (Actor& actor : model.actors()) {
    if (actor.type() != "UnitDelay" || !actor.is_resolved()) continue;
    auto conn = model.incoming(actor.id(), 0);
    require(conn.has_value(), "resolved UnitDelay lost its input");
    const Actor& src = model.actor(conn->src);
    if (!src.is_resolved() || conn->src_port >= src.output_count()) {
      all_ok = false;
      continue;
    }
    const PortSpec& fed = src.output(conn->src_port);
    if (!(fed == actor.output(0))) {
      const std::string message =
          "actor '" + actor.name() + "' (UnitDelay): declared " +
          actor.output(0).to_string() + " but is fed " + fed.to_string();
      if (on_failure == nullptr) throw ModelError(message);
      all_ok = false;
      (*on_failure)(actor, message);
    }
  }
  return all_ok;
}

}  // namespace

void resolve_model(Model& model) {
  HCG_TRACE_SCOPE("resolve");
  static obs::Counter& resolved_metric =
      obs::Registry::instance().counter("resolve.actors");
  resolved_metric.add(static_cast<std::uint64_t>(model.actor_count()));

  resolve_actors(model, nullptr);

  // Every connection must reference live ports, even on dead branches the
  // resolution loop never pulled from.
  for (const Connection& c : model.connections()) {
    const Actor& src = model.actor(c.src);
    const Actor& dst = model.actor(c.dst);
    if (c.src_port >= src.output_count()) {
      throw ModelError("connection from '" + src.name() +
                       "' references missing output port " +
                       std::to_string(c.src_port));
    }
    if (c.dst_port >= actor_type_info(dst.type()).input_count) {
      throw ModelError("connection to '" + dst.name() +
                       "' references missing input port " +
                       std::to_string(c.dst_port));
    }
  }
}

Model resolved(Model model) {
  resolve_model(model);
  return model;
}

bool resolve_model_tolerant(Model& model, const ResolveFailureFn& on_failure) {
  require(static_cast<bool>(on_failure),
          "resolve_model_tolerant needs a failure callback");
  return resolve_actors(model, &on_failure);
}

}  // namespace hcg
