// Machine-readable codegen report: a structured record of *why* one
// generation run produced the code it did — per-phase timings, Algorithm 1's
// per-actor implementation choices with the measured candidate times behind
// them, and Algorithm 2's per-region SIMD matching results.
//
// emit_model() fills the codegen-side fields into GeneratedCode::report;
// drivers (hcgc, the toolchain harness, benches) layer their own phases and
// the toolchain/history sections on top, then serialize with to_json().
// The schema is documented in docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hcg::obs {

struct ReportPhase {
  std::string name;
  double ms = 0.0;
};

struct ReportCandidate {
  std::string impl;
  double ms = 0.0;  // best-of-N measured run time
};

/// One Algorithm 1 decision.
struct ReportIntensive {
  std::string actor;
  std::string actor_type;
  std::string dtype;
  std::string impl;          // chosen implementation id
  bool from_history = false;  // true: history hit, no pre-calculation ran
  bool selected = false;      // false: generic impl, Algorithm 1 skipped
  std::vector<ReportCandidate> candidates;  // measured times (selection runs)
};

/// One Algorithm 2 batch region.
struct ReportRegion {
  std::vector<std::string> actors;
  int nodes = 0;
  bool used_simd = false;
  int batch_size = 0;        // vector lanes (granule if predicated)
  int batch_count = 0;       // full vector iterations (granule trips if pred.)
  int scalar_remainder = 0;  // elements handled by the scalar epilogue/prologue
  bool predicated = false;   // one VLA predicated loop, no remainder split
  std::vector<std::string> instructions;  // SIMD instructions, emission order
};

/// One candidate dropped by degraded-mode pre-calculation.
struct ReportFailedCandidate {
  std::string impl;
  std::string reason;  // "compile" | "crash" | "timeout" | "exception"
};

/// One lossy Algorithm 1 decision: candidates failed, the run carried on.
/// `reference_fallback` marks the worst case — nothing was measured and the
/// general implementation was taken on faith.
struct ReportFallback {
  std::string actor;
  std::string stage;  // currently always "precalc"
  std::string impl;   // the implementation the run proceeded with
  bool reference_fallback = false;
  std::vector<ReportFailedCandidate> failures;
};

/// One diagnostic from the static-analysis layer (lint findings attached by
/// hcgc, or verifier findings surfaced in degraded runs), mirrored here so
/// the report is a complete machine-readable record of the run.
struct ReportDiagnostic {
  std::string code;      // stable "HCGnnn" code (docs/ANALYSIS.md)
  std::string severity;  // "note" | "remark" | "warning" | "error"
  std::string location;
  std::string message;
};

/// One profiled site of the generated step function (`hcgc profile`): a
/// region loop or an intensive kernel call, with the measured totals from
/// the hcg-profile-v1 dump and — when Algorithm 1 measured this site during
/// pre-calculation — the predicted cost it selected on and the resulting
/// prediction error.
struct ReportProfileSite {
  std::string id;      // "L0", "I0", ... (instrumentation order)
  std::string kind;    // "vector" | "scalar" | "intensive"
  std::string label;   // "batch_region(5 actors, neon)" or "actor:impl"
  std::uint64_t ns = 0;     // total time over all reps
  std::uint64_t calls = 0;  // step() invocations observed
  std::uint64_t iters = 0;  // loop trips (== calls for intensive sites)
  double mean_ns_per_call = 0.0;
  /// Algorithm 1's measured candidate time for the chosen implementation,
  /// scaled to one call; < 0 when no prediction exists for this site
  /// (region loops, history hits, generic implementations).
  double predicted_ns = -1.0;
  /// |measured - predicted| / predicted * 100; < 0 when no prediction.
  double abs_err_pct = -1.0;
};

struct Report {
  std::string model;
  std::string tool;
  std::string isa;
  int actor_count = 0;

  std::vector<ReportPhase> phases;
  std::vector<ReportIntensive> intensive;
  std::vector<ReportRegion> regions;

  /// Degraded-mode record (docs/ROBUSTNESS.md): every actor whose
  /// pre-calculation lost candidates.  Empty on a clean run; non-empty means
  /// the output is valid but some selections were lossy.
  std::vector<ReportFallback> degraded;

  // Codegen totals.
  std::size_t emit_bytes = 0;
  std::size_t static_buffer_bytes = 0;
  int fused_regions = 0;

  // cgir optimization pipeline (PR 3): the -O level the run used and what
  // the passes did.  All zero at -O0.
  int opt_level = 0;
  int loops_predicated = 0;            // codegen.loops.predicated
  int loops_fused = 0;                 // codegen.fusion.loops_fused
  int copies_elided = 0;               // codegen.fusion.copies_elided
  std::size_t arena_bytes_saved = 0;   // codegen.arena.bytes_saved

  // -O2 passes (PR 7).  All zero below -O2.
  int cross_scale_fused = 0;   // codegen.fusion.cross_scale_fused
  int loops_tiled = 0;         // codegen.tile.loops_tiled
  int buffers_relocated = 0;   // codegen.layout.buffers_relocated
  int stride1_accesses = 0;    // codegen.layout.stride1_accesses
  int strips_localized = 0;    // codegen.layout.strips_localized

  /// cgir verifier checkpoints that ran clean, in order ("lower" plus one
  /// entry per -O1 pass).  Empty when verification was off for the run.
  std::vector<std::string> verified_passes;

  /// Static-analysis findings attached to this run (hcgc lint).
  std::vector<ReportDiagnostic> diagnostics;

  // Interval value-range analysis summary (src/analysis/range.hpp; filled
  // by `hcgc lint` and by the codegen narrowing pass).  range_ran false
  // means the analysis never ran and the serialized report has no
  // "range_analysis" section.
  bool range_ran = false;
  int range_actors_analyzed = 0;   // actors the propagation visited
  int range_bounded_outputs = 0;   // signals proven narrower than their type
  int range_widened_delays = 0;    // UnitDelay states widened to top
  int regions_narrowed = 0;        // batch regions re-planned narrower (HCG411)
  int narrowing_blocked = 0;       // blocked only by unprovable range (HCG412)

  // Selection-history statistics (filled by the driver when a history is in
  // play; hits+misses == 0 means no history was consulted).
  std::uint64_t history_hits = 0;
  std::uint64_t history_misses = 0;
  std::size_t history_entries = 0;

  // Toolchain (filled when the generated code was actually compiled).
  double compile_ms = -1.0;  // < 0: not compiled
  std::string compile_command;

  // Runtime profile (`hcgc profile`; docs/PROFILING.md).  Empty unless the
  // generated code was instrumented, executed, and its hcg-profile-v1 dump
  // ingested; profile_reps == 0 means no profile ran (the serialized report
  // then has no "runtime_profile" section at all — the degraded shape).
  std::vector<ReportProfileSite> runtime_profile;
  int profile_reps = 0;
  std::string profile_clock;  // "monotonic_ns" | "rdtsc"

  /// Fraction of region nodes that ended up in SIMD code, 0..1.
  double simd_coverage() const;

  /// Serializes the report; when `include_metrics` is set the process-wide
  /// obs::Registry snapshot is embedded under "metrics".
  std::string to_json(bool include_metrics = true) const;
};

}  // namespace hcg::obs
