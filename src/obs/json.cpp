#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "support/error.hpp"

namespace hcg::obs {

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows its key, no separator
  }
  if (!counts_.empty() && counts_.back()++ > 0) out_ += ',';
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  counts_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  counts_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  counts_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  counts_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  comma();
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  comma();
  out_ += '"';
  out_ += json_escape(text);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* text) {
  return value(std::string_view(text));
}

JsonWriter& JsonWriter::value(double number) {
  if (!std::isfinite(number)) return null();
  comma();
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", number);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  comma();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  comma();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  comma();
  out_ += flag ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma();
  out_ += "null";
  return *this;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError("json: " + message + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
      case 'f': return parse_keyword_bool();
      case 'n': {
        literal("null");
        return JsonValue{};
      }
      default: return parse_number();
    }
  }

  void literal(std::string_view word) {
    skip_ws();
    if (text_.substr(pos_, word.size()) != word) {
      fail("bad literal, expected '" + std::string(word) + "'");
    }
    pos_ += word.size();
  }

  JsonValue parse_keyword_bool() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (text_[pos_] == 't') {
      literal("true");
      v.boolean = true;
    } else {
      literal("false");
      v.boolean = false;
    }
    return v;
  }

  JsonValue parse_number() {
    skip_ws();
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("bad number '" + token + "'");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = number;
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // The exporters only emit \u00xx; decode the BMP code point as
          // UTF-8 so round-trips are lossless.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    if (consume(']')) return v;
    while (true) {
      v.array.push_back(parse_value());
      if (consume(']')) return v;
      expect(',');
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    if (consume('}')) return v;
    while (true) {
      skip_ws();
      std::string name = parse_string();
      expect(':');
      v.object.emplace_back(std::move(name), parse_value());
      if (consume('}')) return v;
      expect(',');
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view name) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [key, value] : object) {
    if (key == name) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view name) const {
  const JsonValue* v = find(name);
  if (v == nullptr) {
    throw ParseError("json: missing object member '" + std::string(name) + "'");
  }
  return *v;
}

JsonValue json_parse(std::string_view text) {
  return Parser(text).parse_document();
}

bool json_valid(std::string_view text) {
  try {
    json_parse(text);
    return true;
  } catch (const ParseError&) {
    return false;
  }
}

}  // namespace hcg::obs
