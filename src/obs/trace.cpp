#include "obs/trace.hpp"

#include <chrono>
#include <cstdio>

#include "obs/json.hpp"

namespace hcg::obs {

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::atomic<int> g_next_tid{0};

int this_thread_ordinal() {
  thread_local const int tid = g_next_tid.fetch_add(1);
  return tid;
}

/// Per-thread stack of open span indices (indices into Tracer::events_).
std::vector<int>& span_stack() {
  thread_local std::vector<int> stack;
  return stack;
}

std::string format_ms(std::int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f ms", static_cast<double>(ns) / 1e6);
  return buf;
}

}  // namespace

Tracer::Tracer() : epoch_ns_(now_ns()) {}

Tracer& Tracer::instance() {
  // Leaked like Registry::instance(): spans may close from static
  // destructors / atexit handlers after a plain local static would be gone.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::set_enabled(bool on) {
  enabled_.store(on, std::memory_order_relaxed);
}

int Tracer::begin(const char* name) {
  if (!enabled()) return -1;
  const std::int64_t start = now_ns() - epoch_ns_;
  std::vector<int>& stack = span_stack();
  std::lock_guard<std::mutex> lock(mutex_);
  TraceEvent event;
  event.name = name;
  event.start_ns = start;
  event.depth = static_cast<int>(stack.size());
  event.parent = stack.empty() ? -1 : stack.back();
  event.tid = this_thread_ordinal();
  const int index = static_cast<int>(events_.size());
  events_.push_back(std::move(event));
  stack.push_back(index);
  return index;
}

void Tracer::end(int index) {
  if (index < 0) return;
  const std::int64_t stop = now_ns() - epoch_ns_;
  std::vector<int>& stack = span_stack();
  if (!stack.empty() && stack.back() == index) stack.pop_back();
  std::lock_guard<std::mutex> lock(mutex_);
  if (index < static_cast<int>(events_.size())) {
    events_[static_cast<size_t>(index)].dur_ns =
        stop - events_[static_cast<size_t>(index)].start_ns;
  }
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::string Tracer::trace_json() const {
  const std::vector<TraceEvent> snapshot = events();
  JsonWriter w;
  w.begin_array();
  for (const TraceEvent& e : snapshot) {
    w.begin_object();
    w.key("name").value(e.name);
    w.key("ph").value("X");
    w.key("ts").value(static_cast<double>(e.start_ns) / 1e3);
    w.key("dur").value(static_cast<double>(e.dur_ns < 0 ? 0 : e.dur_ns) / 1e3);
    w.key("pid").value(std::int64_t{1});
    w.key("tid").value(static_cast<std::int64_t>(e.tid));
    w.end_object();
  }
  w.end_array();
  return w.take();
}

std::string Tracer::summary() const {
  const std::vector<TraceEvent> snapshot = events();
  std::string out;
  for (const TraceEvent& e : snapshot) {
    std::string line(static_cast<size_t>(e.depth) * 2, ' ');
    line += e.name;
    if (line.size() < 40) line.resize(40, ' ');
    line += "  ";
    line += e.dur_ns < 0 ? "(open)" : format_ms(e.dur_ns);
    out += line + "\n";
  }
  return out;
}

}  // namespace hcg::obs
