#include "obs/report.hpp"

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace hcg::obs {

double Report::simd_coverage() const {
  int total = 0;
  int covered = 0;
  for (const ReportRegion& region : regions) {
    total += region.nodes;
    if (region.used_simd) covered += region.nodes;
  }
  return total == 0 ? 0.0 : static_cast<double>(covered) / total;
}

std::string Report::to_json(bool include_metrics) const {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("hcg-report-v1");
  w.key("model").value(model);
  w.key("tool").value(tool);
  w.key("isa").value(isa);
  w.key("actor_count").value(actor_count);

  w.key("phases").begin_array();
  for (const ReportPhase& phase : phases) {
    w.begin_object();
    w.key("name").value(phase.name);
    w.key("ms").value(phase.ms);
    w.end_object();
  }
  w.end_array();

  w.key("intensive").begin_array();
  for (const ReportIntensive& choice : intensive) {
    w.begin_object();
    w.key("actor").value(choice.actor);
    w.key("type").value(choice.actor_type);
    w.key("dtype").value(choice.dtype);
    w.key("impl").value(choice.impl);
    w.key("from_history").value(choice.from_history);
    w.key("selected").value(choice.selected);
    w.key("candidates").begin_array();
    for (const ReportCandidate& candidate : choice.candidates) {
      w.begin_object();
      w.key("impl").value(candidate.impl);
      w.key("ms").value(candidate.ms);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.key("regions").begin_array();
  for (const ReportRegion& region : regions) {
    w.begin_object();
    w.key("actors").begin_array();
    for (const std::string& actor : region.actors) w.value(actor);
    w.end_array();
    w.key("nodes").value(region.nodes);
    w.key("used_simd").value(region.used_simd);
    w.key("batch_size").value(region.batch_size);
    w.key("batch_count").value(region.batch_count);
    w.key("scalar_remainder").value(region.scalar_remainder);
    w.key("predicated").value(region.predicated);
    w.key("instructions").begin_array();
    for (const std::string& ins : region.instructions) w.value(ins);
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.key("codegen").begin_object();
  w.key("emit_bytes").value(emit_bytes);
  w.key("static_buffer_bytes").value(static_buffer_bytes);
  w.key("fused_regions").value(fused_regions);
  w.key("simd_coverage").value(simd_coverage());
  w.key("opt_level").value(opt_level);
  w.key("loops").begin_object();
  w.key("predicated").value(loops_predicated);
  w.end_object();
  w.key("fusion").begin_object();
  w.key("loops_fused").value(loops_fused);
  w.key("copies_elided").value(copies_elided);
  w.key("cross_scale_fused").value(cross_scale_fused);
  w.end_object();
  w.key("arena").begin_object();
  w.key("bytes_saved").value(arena_bytes_saved);
  w.end_object();
  w.key("tile").begin_object();
  w.key("loops_tiled").value(loops_tiled);
  w.end_object();
  w.key("layout").begin_object();
  w.key("buffers_relocated").value(buffers_relocated);
  w.key("stride1_accesses").value(stride1_accesses);
  w.key("strips_localized").value(strips_localized);
  w.end_object();
  w.key("verified_passes").begin_array();
  for (const std::string& pass : verified_passes) w.value(pass);
  w.end_array();
  w.end_object();

  if (!diagnostics.empty()) {
    w.key("diagnostics").begin_array();
    for (const ReportDiagnostic& diag : diagnostics) {
      w.begin_object();
      w.key("code").value(diag.code);
      w.key("severity").value(diag.severity);
      w.key("location").value(diag.location);
      w.key("message").value(diag.message);
      w.end_object();
    }
    w.end_array();
  }

  if (range_ran) {
    w.key("range_analysis").begin_object();
    w.key("actors_analyzed").value(range_actors_analyzed);
    w.key("bounded_outputs").value(range_bounded_outputs);
    w.key("widened_delays").value(range_widened_delays);
    w.key("regions_narrowed").value(regions_narrowed);
    w.key("narrowing_blocked").value(narrowing_blocked);
    w.end_object();
  }

  w.key("degraded").begin_array();
  for (const ReportFallback& fallback : degraded) {
    w.begin_object();
    w.key("actor").value(fallback.actor);
    w.key("stage").value(fallback.stage);
    w.key("impl").value(fallback.impl);
    w.key("reference_fallback").value(fallback.reference_fallback);
    w.key("failures").begin_array();
    for (const ReportFailedCandidate& failure : fallback.failures) {
      w.begin_object();
      w.key("impl").value(failure.impl);
      w.key("reason").value(failure.reason);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.key("history").begin_object();
  w.key("hits").value(history_hits);
  w.key("misses").value(history_misses);
  w.key("entries").value(history_entries);
  w.end_object();

  if (compile_ms >= 0) {
    w.key("toolchain").begin_object();
    w.key("compile_ms").value(compile_ms);
    w.key("command").value(compile_command);
    w.end_object();
  }

  if (profile_reps > 0) {
    w.key("runtime_profile").begin_object();
    w.key("reps").value(profile_reps);
    w.key("clock").value(profile_clock);
    w.key("sites").begin_array();
    for (const ReportProfileSite& site : runtime_profile) {
      w.begin_object();
      w.key("id").value(site.id);
      w.key("kind").value(site.kind);
      w.key("label").value(site.label);
      w.key("ns").value(site.ns);
      w.key("calls").value(site.calls);
      w.key("iters").value(site.iters);
      w.key("mean_ns_per_call").value(site.mean_ns_per_call);
      if (site.predicted_ns >= 0) {
        w.key("predicted_ns").value(site.predicted_ns);
        w.key("abs_err_pct").value(site.abs_err_pct);
      }
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }

  if (include_metrics) {
    // Splice the registry's own JSON object in as a sub-document.
    w.key("metrics");
    std::string json = w.take();
    json += Registry::instance().to_json();
    json += '}';
    return json;
  }
  w.end_object();
  return w.take();
}

}  // namespace hcg::obs
