#include "obs/metrics.hpp"

#include <cmath>

#include "obs/json.hpp"

namespace hcg::obs {

namespace {

#ifndef HCG_DISABLE_TRACING
/// Lock-free fold of an atomic double with an arbitrary combiner.
template <typename Fold>
void atomic_fold(std::atomic<double>& target, double v, Fold fold) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, fold(cur, v),
                                       std::memory_order_relaxed)) {
  }
}

int bucket_index(double v) {
  if (!(v > 0)) return 0;
  const int e = std::ilogb(v);
  if (e < 0) return 0;
  if (e >= Histogram::kBuckets) return Histogram::kBuckets - 1;
  return e;
}
#endif  // HCG_DISABLE_TRACING

}  // namespace

void Histogram::observe(double v) {
#ifndef HCG_DISABLE_TRACING
  if (!std::isfinite(v)) return;
  const bool first = count_.fetch_add(1, std::memory_order_relaxed) == 0;
  buckets_[static_cast<size_t>(bucket_index(v))].fetch_add(
      1, std::memory_order_relaxed);
  atomic_fold(sum_, v, [](double a, double b) { return a + b; });
  if (first) {
    // Seed min/max with the first sample; racing observers fold over it.
    atomic_fold(min_, v, [](double, double b) { return b; });
    atomic_fold(max_, v, [](double, double b) { return b; });
  } else {
    atomic_fold(min_, v, [](double a, double b) { return b < a ? b : a; });
    atomic_fold(max_, v, [](double a, double b) { return b > a ? b : a; });
  }
#else
  (void)v;
#endif
}

double Histogram::min() const { return min_.load(std::memory_order_relaxed); }
double Histogram::max() const { return max_.load(std::memory_order_relaxed); }

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  const std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(n - 1));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += bucket(i);
    if (seen > rank) return std::ldexp(1.5, i);  // bucket midpoint
  }
  return max();
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

Registry& Registry::instance() {
  // Intentionally leaked: metric references are handed out for the process
  // lifetime and atexit handlers (HCG_METRICS_OUT) read the registry after
  // static destruction would have run.
  static Registry* registry = new Registry();
  return *registry;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::string Registry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) {
    w.key(name).value(c->value());
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) {
    w.key(name).value(g->value());
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name).begin_object();
    w.key("count").value(h->count());
    w.key("sum").value(h->sum());
    w.key("min").value(h->min());
    w.key("max").value(h->max());
    w.key("mean").value(h->mean());
    w.key("p50").value(h->p50());
    w.key("p95").value(h->p95());
    w.key("p99").value(h->p99());
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.take();
}

}  // namespace hcg::obs
