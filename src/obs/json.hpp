// Minimal JSON support for the observability subsystem: a streaming writer
// used by the trace/metrics/report exporters, and a small recursive-descent
// parser used by tests (and anyone else) to check well-formedness and read
// values back.  Deliberately tiny — no external dependency, no DOM mutation.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace hcg::obs {

/// Escapes `text` for inclusion inside a JSON string literal (no quotes).
std::string json_escape(std::string_view text);

/// Streaming JSON writer.  Keys and values must alternate correctly inside
/// objects; the writer inserts commas automatically.  Non-finite doubles are
/// serialized as null (JSON has no NaN/Inf).
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Starts a key inside an object; follow with exactly one value call.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text);
  JsonWriter& value(double number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(std::uint64_t number);
  /// Any other integer type routes to the 64-bit overload of its signedness
  /// (a fixed overload set would collide where e.g. size_t == uint64_t).
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  JsonWriter& value(T number) {
    if constexpr (std::is_signed_v<T>) {
      return value(static_cast<std::int64_t>(number));
    } else {
      return value(static_cast<std::uint64_t>(number));
    }
  }
  JsonWriter& value(bool flag);
  JsonWriter& null();

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void comma();
  std::string out_;
  /// One entry per open container: count of values written at that level.
  std::vector<int> counts_;
  bool pending_key_ = false;
};

/// A parsed JSON value.  Numbers are stored as double (sufficient for the
/// timings/counters this subsystem produces); objects keep insertion order
/// via a vector alongside the lookup map.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }

  /// Object member lookup; returns nullptr when absent or not an object.
  const JsonValue* find(std::string_view name) const;
  /// Like find() but throws hcg::ParseError when absent.
  const JsonValue& at(std::string_view name) const;
};

/// Parses a complete JSON document; throws hcg::ParseError on any syntax
/// error or trailing garbage.
JsonValue json_parse(std::string_view text);

/// True when `text` is a syntactically valid JSON document.
bool json_valid(std::string_view text);

}  // namespace hcg::obs
