// Process-wide metrics registry: counters, gauges and log2-bucketed
// histograms with lock-free updates.
//
// Call sites cache a reference once and update it with plain atomic adds:
//
//   static obs::Counter& hits =
//       obs::Registry::instance().counter("synth.history.hits");
//   hits.add();
//
// Metric names are stable identifiers (documented in docs/OBSERVABILITY.md);
// the registry deduplicates by name, so independent call sites may look up
// the same metric.  Configuring CMake with -DHCG_DISABLE_TRACING=ON compiles
// every update to a no-op (reads then report zeros) while keeping the API.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace hcg::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) {
#ifndef HCG_DISABLE_TRACING
    value_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) {
#ifndef HCG_DISABLE_TRACING
    value_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Histogram over positive values with power-of-two buckets: bucket i counts
/// observations in [2^i, 2^(i+1)).  Also tracks count/sum/min/max exactly.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void observe(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;
  double max() const;
  double mean() const;
  std::uint64_t bucket(int i) const {
    return buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
  /// Approximate quantile (0..1) from the bucket boundaries.
  double quantile(double q) const;
  /// The latency-reporting percentiles (the same values the registry's JSON
  /// export carries for every histogram).
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }
  void reset();

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

class Registry {
 public:
  static Registry& instance();

  /// Returns the named metric, creating it on first use.  The returned
  /// reference stays valid for the process lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Zeroes every registered metric (names stay registered).
  void reset();

  /// JSON object {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string to_json() const;

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace hcg::obs
