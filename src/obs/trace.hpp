// RAII span tracer for the code-generation pipeline.
//
// Usage:
//   void resolve_model(Model& m) {
//     HCG_TRACE_SCOPE("resolve");
//     ...
//   }
//
// Spans nest (per thread) into a trace tree with monotonic-clock timings.
// The tracer is disabled by default — begin() is a single relaxed atomic
// load on the hot path — and is switched on by `hcgc --trace`, the
// HCG_TRACE environment variable, or Tracer::set_enabled(true).
//
// Two exporters:
//   * trace_json(): Chrome trace-event format (array of complete "X" events
//     with name/ph/ts/dur/pid/tid), loadable in chrome://tracing / Perfetto.
//   * summary(): an indented human-readable tree with durations.
//
// Configuring CMake with -DHCG_DISABLE_TRACING=ON compiles the macro (and
// the metric update macros in obs/metrics.hpp) to nothing.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace hcg::obs {

struct TraceEvent {
  std::string name;
  std::int64_t start_ns = 0;  // relative to the tracer epoch
  std::int64_t dur_ns = -1;   // -1 while the span is still open
  int depth = 0;              // nesting depth within its thread
  int parent = -1;            // index of the enclosing span, -1 for roots
  int tid = 0;                // small per-thread ordinal
};

class Tracer {
 public:
  static Tracer& instance();

  void set_enabled(bool on);
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Starts a span; returns its event index, or -1 when tracing is off.
  int begin(const char* name);
  /// Finishes the span returned by begin(); ignores -1.
  void end(int index);

  /// Drops all recorded events.  Only call between pipeline runs (open
  /// spans' indices would dangle).
  void clear();

  /// Snapshot of the recorded events in start order.
  std::vector<TraceEvent> events() const;

  /// Chrome trace-event JSON (timestamps/durations in microseconds).
  std::string trace_json() const;

  /// Indented tree with per-span durations, for terminal output.
  std::string summary() const;

 private:
  Tracer();

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::int64_t epoch_ns_ = 0;
};

/// RAII helper behind HCG_TRACE_SCOPE.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name)
      : index_(Tracer::instance().begin(name)) {}
  ~ScopedSpan() { Tracer::instance().end(index_); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  int index_;
};

}  // namespace hcg::obs

#define HCG_OBS_CONCAT_IMPL(a, b) a##b
#define HCG_OBS_CONCAT(a, b) HCG_OBS_CONCAT_IMPL(a, b)

#ifdef HCG_DISABLE_TRACING
#define HCG_TRACE_SCOPE(name) static_cast<void>(0)
#else
#define HCG_TRACE_SCOPE(name) \
  ::hcg::obs::ScopedSpan HCG_OBS_CONCAT(hcg_trace_span_, __LINE__)(name)
#endif
