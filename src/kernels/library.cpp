#include "kernels/library.hpp"

#include "kernels/embedded.hpp"
#include "kernels/kernels.h"
#include "support/error.hpp"

namespace hcg::kernels {

namespace {

bool is_pow2(int n) { return n > 0 && (n & (n - 1)) == 0; }

bool is_pow4(int n) {
  if (!is_pow2(n)) return false;
  // A power of two is a power of four iff its single set bit is at an even
  // position: 0x55555555 masks those positions.
  return (static_cast<unsigned>(n) & 0x55555555u) != 0;
}

}  // namespace

bool size_rule_accepts(SizeRule rule, const std::vector<Shape>& in_shapes) {
  switch (rule) {
    case SizeRule::kAny:
      return true;
    case SizeRule::kPow2:
      for (int d : in_shapes.at(0).dims) {
        if (!is_pow2(d)) return false;
      }
      return !in_shapes.at(0).dims.empty();
    case SizeRule::kPow4:
      for (int d : in_shapes.at(0).dims) {
        if (!is_pow4(d)) return false;
      }
      return !in_shapes.at(0).dims.empty();
    case SizeRule::kMatSmall:
      return in_shapes.at(0).rank() == 2 && in_shapes.at(0).dims[0] <= 4;
    case SizeRule::kMatBlocked:
      return in_shapes.at(0).rank() == 2 && in_shapes.at(0).dims[0] >= 16;
  }
  return false;
}

bool KernelImpl::can_handle(DataType type,
                            const std::vector<Shape>& in_shapes) const {
  return type == dtype && size_rule_accepts(size_rule, in_shapes);
}

namespace {

/// Builds the registry.  Each entry appears once per element type it is
/// compiled for.
std::vector<KernelImpl> build_registry() {
  std::vector<KernelImpl> impls;

  auto add = [&](std::string id, std::string actor_type, DataType dtype,
                 KernelSig sig, SizeRule rule, std::string c_function,
                 std::string source_key, bool general, const void* fn) {
    impls.push_back(KernelImpl{std::move(id), std::move(actor_type), dtype,
                               sig, rule, std::move(c_function),
                               std::move(source_key), general, fn});
  };

  const DataType c64 = DataType::kComplex64;

  // ---- FFT / IFFT ---------------------------------------------------------
  for (const char* type : {"FFT", "IFFT"}) {
    // The *general* FFT is the any-size mixed-radix routine (the Mix-FFT
    // analog): that is the quality of generic function a production
    // generator links, and the baseline HCG is compared against.
    add("fft_dft", type, c64, KernelSig::kFft1D, SizeRule::kAny, "hcg_fft_dft",
        "hcg_fft.c", false, reinterpret_cast<const void*>(&hcg_fft_dft));
    add("fft_radix2", type, c64, KernelSig::kFft1D, SizeRule::kPow2,
        "hcg_fft_radix2", "hcg_fft.c", false,
        reinterpret_cast<const void*>(&hcg_fft_radix2));
    add("fft_radix2_tab", type, c64, KernelSig::kFft1D, SizeRule::kPow2,
        "hcg_fft_radix2_tab", "hcg_fft.c", false,
        reinterpret_cast<const void*>(&hcg_fft_radix2_tab));
    add("fft_radix4", type, c64, KernelSig::kFft1D, SizeRule::kPow4,
        "hcg_fft_radix4", "hcg_fft.c", false,
        reinterpret_cast<const void*>(&hcg_fft_radix4));
    add("fft_mixed", type, c64, KernelSig::kFft1D, SizeRule::kAny,
        "hcg_fft_mixed", "hcg_fft.c", true,
        reinterpret_cast<const void*>(&hcg_fft_mixed));
    add("fft_bluestein", type, c64, KernelSig::kFft1D, SizeRule::kAny,
        "hcg_fft_bluestein", "hcg_fft.c", false,
        reinterpret_cast<const void*>(&hcg_fft_bluestein));
  }
  for (const char* type : {"FFT2D", "IFFT2D"}) {
    add("fft2d_dft", type, c64, KernelSig::kFft2D, SizeRule::kAny,
        "hcg_fft2d_dft", "hcg_fft.c", true,
        reinterpret_cast<const void*>(&hcg_fft2d_dft));
    add("fft2d_radix2", type, c64, KernelSig::kFft2D, SizeRule::kPow2,
        "hcg_fft2d_radix2", "hcg_fft.c", false,
        reinterpret_cast<const void*>(&hcg_fft2d_radix2));
  }

  // ---- DCT family / Conv / Mat*, per float element type --------------------
  struct TypeInfo {
    DataType dtype;
    const char* suf;
  };
  const TypeInfo kFloatTypes[] = {{DataType::kFloat32, "f32"},
                                  {DataType::kFloat64, "f64"}};

  for (const TypeInfo& t : kFloatTypes) {
    const std::string suf = t.suf;
    auto fn = [&](auto* f32_fn, auto* f64_fn) -> const void* {
      return t.dtype == DataType::kFloat32
                 ? reinterpret_cast<const void*>(f32_fn)
                 : reinterpret_cast<const void*>(f64_fn);
    };

    add("dct_naive", "DCT", t.dtype, KernelSig::kXform1D, SizeRule::kAny,
        "hcg_dct_naive_" + suf, "hcg_dct.c", true,
        fn(&hcg_dct_naive_f32, &hcg_dct_naive_f64));
    add("dct_lee", "DCT", t.dtype, KernelSig::kXform1D, SizeRule::kPow2,
        "hcg_dct_lee_" + suf, "hcg_dct.c", false,
        fn(&hcg_dct_lee_f32, &hcg_dct_lee_f64));
    add("dct_fft", "DCT", t.dtype, KernelSig::kXform1D, SizeRule::kPow2,
        "hcg_dct_fft_" + suf, "hcg_dct.c", false,
        fn(&hcg_dct_fft_f32, &hcg_dct_fft_f64));

    add("idct_naive", "IDCT", t.dtype, KernelSig::kXform1D, SizeRule::kAny,
        "hcg_idct_naive_" + suf, "hcg_dct.c", true,
        fn(&hcg_idct_naive_f32, &hcg_idct_naive_f64));
    add("idct_lee", "IDCT", t.dtype, KernelSig::kXform1D, SizeRule::kPow2,
        "hcg_idct_lee_" + suf, "hcg_dct.c", false,
        fn(&hcg_idct_lee_f32, &hcg_idct_lee_f64));

    add("dct2d_naive", "DCT2D", t.dtype, KernelSig::kXform2D, SizeRule::kAny,
        "hcg_dct2d_naive_" + suf, "hcg_dct.c", true,
        fn(&hcg_dct2d_naive_f32, &hcg_dct2d_naive_f64));
    add("dct2d_lee", "DCT2D", t.dtype, KernelSig::kXform2D, SizeRule::kPow2,
        "hcg_dct2d_lee_" + suf, "hcg_dct.c", false,
        fn(&hcg_dct2d_lee_f32, &hcg_dct2d_lee_f64));

    add("conv_direct", "Conv", t.dtype, KernelSig::kConv1D, SizeRule::kAny,
        "hcg_conv_direct_" + suf, "hcg_conv.c", true,
        fn(&hcg_conv_direct_f32, &hcg_conv_direct_f64));
    add("conv_blocked", "Conv", t.dtype, KernelSig::kConv1D, SizeRule::kAny,
        "hcg_conv_blocked_" + suf, "hcg_conv.c", false,
        fn(&hcg_conv_blocked_f32, &hcg_conv_blocked_f64));
    add("conv_saxpy", "Conv", t.dtype, KernelSig::kConv1D, SizeRule::kAny,
        "hcg_conv_saxpy_" + suf, "hcg_conv.c", false,
        fn(&hcg_conv_saxpy_f32, &hcg_conv_saxpy_f64));
    add("conv_fft", "Conv", t.dtype, KernelSig::kConv1D, SizeRule::kAny,
        "hcg_conv_fft_" + suf, "hcg_conv.c", false,
        fn(&hcg_conv_fft_f32, &hcg_conv_fft_f64));

    add("conv2d_direct", "Conv2D", t.dtype, KernelSig::kConv2D, SizeRule::kAny,
        "hcg_conv2d_direct_" + suf, "hcg_conv.c", true,
        fn(&hcg_conv2d_direct_f32, &hcg_conv2d_direct_f64));

    add("matmul_generic", "MatMul", t.dtype, KernelSig::kMatMul,
        SizeRule::kAny, "hcg_matmul_generic_" + suf, "hcg_mat.c", true,
        fn(&hcg_matmul_generic_f32, &hcg_matmul_generic_f64));
    add("matmul_unrolled", "MatMul", t.dtype, KernelSig::kMatMul,
        SizeRule::kMatSmall, "hcg_matmul_unrolled_" + suf, "hcg_mat.c", false,
        fn(&hcg_matmul_unrolled_f32, &hcg_matmul_unrolled_f64));
    // Two cache-blocked tile widths as separate candidates: Algorithm 1's
    // pre-calculation measures both, so the tile the generated code runs
    // with is chosen from target measurements, not a hard-coded guess.
    add("matmul_blocked8", "MatMul", t.dtype, KernelSig::kMatMul,
        SizeRule::kMatBlocked, "hcg_matmul_blocked8_" + suf, "hcg_mat.c", false,
        fn(&hcg_matmul_blocked8_f32, &hcg_matmul_blocked8_f64));
    add("matmul_blocked32", "MatMul", t.dtype, KernelSig::kMatMul,
        SizeRule::kMatBlocked, "hcg_matmul_blocked32_" + suf, "hcg_mat.c",
        false,
        fn(&hcg_matmul_blocked32_f32, &hcg_matmul_blocked32_f64));

    add("matinv_gauss", "MatInv", t.dtype, KernelSig::kMatInv, SizeRule::kAny,
        "hcg_matinv_gauss_" + suf, "hcg_mat.c", true,
        fn(&hcg_matinv_gauss_f32, &hcg_matinv_gauss_f64));
    add("matinv_adjugate", "MatInv", t.dtype, KernelSig::kMatInv,
        SizeRule::kMatSmall, "hcg_matinv_adjugate_" + suf, "hcg_mat.c", false,
        fn(&hcg_matinv_adjugate_f32, &hcg_matinv_adjugate_f64));

    add("matdet_gauss", "MatDet", t.dtype, KernelSig::kMatDet, SizeRule::kAny,
        "hcg_matdet_gauss_" + suf, "hcg_mat.c", true,
        fn(&hcg_matdet_gauss_f32, &hcg_matdet_gauss_f64));
    add("matdet_direct", "MatDet", t.dtype, KernelSig::kMatDet,
        SizeRule::kMatSmall, "hcg_matdet_direct_" + suf, "hcg_mat.c", false,
        fn(&hcg_matdet_direct_f32, &hcg_matdet_direct_f64));
  }

  return impls;
}

}  // namespace

CodeLibrary::CodeLibrary() : impls_(build_registry()) {}

const CodeLibrary& CodeLibrary::instance() {
  static const CodeLibrary library;
  return library;
}

std::vector<const KernelImpl*> CodeLibrary::implementations(
    std::string_view actor_type, DataType dtype) const {
  std::vector<const KernelImpl*> out;
  for (const KernelImpl& impl : impls_) {
    if (impl.actor_type == actor_type && impl.dtype == dtype) {
      out.push_back(&impl);
    }
  }
  return out;
}

const KernelImpl& CodeLibrary::general_implementation(
    std::string_view actor_type, DataType dtype) const {
  for (const KernelImpl& impl : impls_) {
    if (impl.actor_type == actor_type && impl.dtype == dtype && impl.general) {
      return impl;
    }
  }
  throw SynthesisError("no general implementation for actor type '" +
                       std::string(actor_type) + "' with element type " +
                       std::string(short_name(dtype)));
}

const KernelImpl* CodeLibrary::find(std::string_view id, DataType dtype) const {
  for (const KernelImpl& impl : impls_) {
    if (impl.id == id && impl.dtype == dtype) return &impl;
  }
  return nullptr;
}

std::string_view CodeLibrary::source(std::string_view source_key) const {
  if (source_key == "hcg_fft.c") return embedded::kFftSource;
  if (source_key == "hcg_dct.c") return embedded::kDctSource;
  if (source_key == "hcg_conv.c") return embedded::kConvSource;
  if (source_key == "hcg_mat.c") return embedded::kMatSource;
  throw InternalError("unknown kernel source key '" + std::string(source_key) +
                      "'");
}

void run_kernel(const KernelImpl& impl,
                const std::vector<const Tensor*>& inputs, Tensor* output) {
  require(!inputs.empty() && output != nullptr, "run_kernel: bad arguments");
  const Tensor& in0 = *inputs[0];
  const bool inverse =
      impl.actor_type == "IFFT" || impl.actor_type == "IFFT2D";

  switch (impl.sig) {
    case KernelSig::kFft1D: {
      auto fn = reinterpret_cast<void (*)(const float*, float*, int, int)>(
          const_cast<void*>(impl.host_fn));
      fn(in0.as<float>(), output->as<float>(), in0.elements(), inverse);
      return;
    }
    case KernelSig::kFft2D: {
      auto fn =
          reinterpret_cast<void (*)(const float*, float*, int, int, int)>(
              const_cast<void*>(impl.host_fn));
      fn(in0.as<float>(), output->as<float>(), in0.shape().dims[0],
         in0.shape().dims[1], inverse);
      return;
    }
    case KernelSig::kXform1D: {
      if (impl.dtype == DataType::kFloat32) {
        auto fn = reinterpret_cast<void (*)(const float*, float*, int)>(
            const_cast<void*>(impl.host_fn));
        fn(in0.as<float>(), output->as<float>(), in0.elements());
      } else {
        auto fn = reinterpret_cast<void (*)(const double*, double*, int)>(
            const_cast<void*>(impl.host_fn));
        fn(in0.as<double>(), output->as<double>(), in0.elements());
      }
      return;
    }
    case KernelSig::kXform2D: {
      const int rows = in0.shape().dims[0], cols = in0.shape().dims[1];
      if (impl.dtype == DataType::kFloat32) {
        auto fn = reinterpret_cast<void (*)(const float*, float*, int, int)>(
            const_cast<void*>(impl.host_fn));
        fn(in0.as<float>(), output->as<float>(), rows, cols);
      } else {
        auto fn = reinterpret_cast<void (*)(const double*, double*, int, int)>(
            const_cast<void*>(impl.host_fn));
        fn(in0.as<double>(), output->as<double>(), rows, cols);
      }
      return;
    }
    case KernelSig::kConv1D: {
      const Tensor& in1 = *inputs.at(1);
      if (impl.dtype == DataType::kFloat32) {
        auto fn = reinterpret_cast<void (*)(const float*, int, const float*,
                                            int, float*)>(
            const_cast<void*>(impl.host_fn));
        fn(in0.as<float>(), in0.elements(), in1.as<float>(), in1.elements(),
           output->as<float>());
      } else {
        auto fn = reinterpret_cast<void (*)(const double*, int, const double*,
                                            int, double*)>(
            const_cast<void*>(impl.host_fn));
        fn(in0.as<double>(), in0.elements(), in1.as<double>(), in1.elements(),
           output->as<double>());
      }
      return;
    }
    case KernelSig::kConv2D: {
      const Tensor& in1 = *inputs.at(1);
      const auto& sa = in0.shape().dims;
      const auto& sb = in1.shape().dims;
      if (impl.dtype == DataType::kFloat32) {
        auto fn = reinterpret_cast<void (*)(const float*, int, int,
                                            const float*, int, int, float*)>(
            const_cast<void*>(impl.host_fn));
        fn(in0.as<float>(), sa[0], sa[1], in1.as<float>(), sb[0], sb[1],
           output->as<float>());
      } else {
        auto fn = reinterpret_cast<void (*)(const double*, int, int,
                                            const double*, int, int, double*)>(
            const_cast<void*>(impl.host_fn));
        fn(in0.as<double>(), sa[0], sa[1], in1.as<double>(), sb[0], sb[1],
           output->as<double>());
      }
      return;
    }
    case KernelSig::kMatMul: {
      const Tensor& in1 = *inputs.at(1);
      const int n = in0.shape().dims[0];
      if (impl.dtype == DataType::kFloat32) {
        auto fn = reinterpret_cast<void (*)(const float*, const float*, float*,
                                            int)>(
            const_cast<void*>(impl.host_fn));
        fn(in0.as<float>(), in1.as<float>(), output->as<float>(), n);
      } else {
        auto fn = reinterpret_cast<void (*)(const double*, const double*,
                                            double*, int)>(
            const_cast<void*>(impl.host_fn));
        fn(in0.as<double>(), in1.as<double>(), output->as<double>(), n);
      }
      return;
    }
    case KernelSig::kMatInv:
    case KernelSig::kMatDet: {
      const int n = in0.shape().dims[0];
      if (impl.dtype == DataType::kFloat32) {
        auto fn = reinterpret_cast<void (*)(const float*, float*, int)>(
            const_cast<void*>(impl.host_fn));
        fn(in0.as<float>(), output->as<float>(), n);
      } else {
        auto fn = reinterpret_cast<void (*)(const double*, double*, int)>(
            const_cast<void*>(impl.host_fn));
        fn(in0.as<double>(), output->as<double>(), n);
      }
      return;
    }
  }
  throw InternalError("run_kernel: bad KernelSig");
}

}  // namespace hcg::kernels
