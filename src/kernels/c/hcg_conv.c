/* hcg_conv.c — 1-D / 2-D full convolution implementation library for HCG.
 *
 * 1-D signature: kernel(const T* a, int na, const T* b, int nb, T* out)
 * producing the full convolution of length na + nb - 1.
 *
 * Implementations:
 *   conv_direct  : textbook shift-multiply-accumulate (general fallback)
 *   conv_blocked : direct form with 4-way unrolled inner accumulation
 *   conv_fft     : pointwise product of zero-padded radix-2 FFTs; wins for
 *                  long kernels, loses for short ones — the Figure-1-style
 *                  crossover Algorithm 1's pre-calculation discovers.
 *
 * Self-contained; private helpers carry the hcg_conv_priv_ prefix.
 */
#include <math.h>
#include <stdlib.h>
#include <string.h>

#ifndef HCG_CONV_C_INCLUDED
#define HCG_CONV_C_INCLUDED

static void hcg_conv_priv_fft(double* a, int n, int inverse) {
  for (int i = 1, j = 0; i < n; ++i) {
    int bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j |= bit;
    if (i < j) {
      double tr = a[2 * i], ti = a[2 * i + 1];
      a[2 * i] = a[2 * j];
      a[2 * i + 1] = a[2 * j + 1];
      a[2 * j] = tr;
      a[2 * j + 1] = ti;
    }
  }
  for (int len = 2; len <= n; len <<= 1) {
    const double ang = (inverse ? 2.0 : -2.0) * M_PI / (double)len;
    const double wr = cos(ang), wi = sin(ang);
    for (int i = 0; i < n; i += len) {
      double cr = 1.0, ci = 0.0;
      for (int j = 0; j < len / 2; ++j) {
        double* u = a + 2 * (i + j);
        double* v = a + 2 * (i + j + len / 2);
        const double vr = v[0] * cr - v[1] * ci;
        const double vi = v[0] * ci + v[1] * cr;
        const double ur = u[0], ui = u[1];
        u[0] = ur + vr;
        u[1] = ui + vi;
        v[0] = ur - vr;
        v[1] = ui - vi;
        const double ncr = cr * wr - ci * wi;
        ci = cr * wi + ci * wr;
        cr = ncr;
      }
    }
  }
}

#define HCG_CONV_DEFINE(T, SUF)                                               \
  void hcg_conv_direct_##SUF(const T* a, int na, const T* b, int nb,          \
                             T* out) {                                        \
    const int nout = na + nb - 1;                                             \
    for (int k = 0; k < nout; ++k) {                                          \
      double acc = 0.0;                                                       \
      const int lo = k - nb + 1 > 0 ? k - nb + 1 : 0;                         \
      const int hi = k < na - 1 ? k : na - 1;                                 \
      for (int i = lo; i <= hi; ++i) {                                        \
        acc += (double)a[i] * (double)b[k - i];                               \
      }                                                                       \
      out[k] = (T)acc;                                                        \
    }                                                                         \
  }                                                                           \
                                                                              \
  void hcg_conv_blocked_##SUF(const T* a, int na, const T* b, int nb,         \
                              T* out) {                                       \
    const int nout = na + nb - 1;                                             \
    for (int k = 0; k < nout; ++k) {                                          \
      const int lo = k - nb + 1 > 0 ? k - nb + 1 : 0;                         \
      const int hi = k < na - 1 ? k : na - 1;                                 \
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;                          \
      int i = lo;                                                             \
      for (; i + 3 <= hi; i += 4) {                                           \
        s0 += (double)a[i] * (double)b[k - i];                                \
        s1 += (double)a[i + 1] * (double)b[k - i - 1];                        \
        s2 += (double)a[i + 2] * (double)b[k - i - 2];                        \
        s3 += (double)a[i + 3] * (double)b[k - i - 3];                        \
      }                                                                       \
      for (; i <= hi; ++i) s0 += (double)a[i] * (double)b[k - i];             \
      out[k] = (T)(s0 + s1 + s2 + s3);                                        \
    }                                                                         \
  }                                                                           \
                                                                              \
  /* Outer-product (saxpy) form: for each tap j, out[j..j+na) += b[j]*a[..]. \
   * Both streams in the hot loop are contiguous and the multiplier is       \
   * scalar, so compilers vectorize it fully — the shape a SIMD-aware        \
   * library ships for mid-sized kernels. */                                 \
  void hcg_conv_saxpy_##SUF(const T* a, int na, const T* b, int nb, T* out) { \
    const int nout = na + nb - 1;                                            \
    for (int k = 0; k < nout; ++k) out[k] = (T)0;                            \
    for (int j = 0; j < nb; ++j) {                                           \
      const T w = b[j];                                                      \
      T* dst = out + j;                                                      \
      for (int i = 0; i < na; ++i) dst[i] += w * a[i];                       \
    }                                                                        \
  }                                                                          \
                                                                              \
  void hcg_conv_fft_##SUF(const T* a, int na, const T* b, int nb, T* out) {   \
    const int nout = na + nb - 1;                                             \
    int m = 1;                                                                \
    while (m < nout) m <<= 1;                                                 \
    double* fa = (double*)calloc((size_t)m * 2, sizeof(double));              \
    double* fb = (double*)calloc((size_t)m * 2, sizeof(double));              \
    for (int i = 0; i < na; ++i) fa[2 * i] = a[i];                            \
    for (int i = 0; i < nb; ++i) fb[2 * i] = b[i];                            \
    hcg_conv_priv_fft(fa, m, 0);                                              \
    hcg_conv_priv_fft(fb, m, 0);                                              \
    for (int i = 0; i < m; ++i) {                                             \
      const double ar = fa[2 * i], ai = fa[2 * i + 1];                        \
      const double br = fb[2 * i], bi = fb[2 * i + 1];                        \
      fa[2 * i] = ar * br - ai * bi;                                          \
      fa[2 * i + 1] = ar * bi + ai * br;                                      \
    }                                                                         \
    hcg_conv_priv_fft(fa, m, 1);                                              \
    for (int k = 0; k < nout; ++k) out[k] = (T)(fa[2 * k] / m);               \
    free(fa);                                                                 \
    free(fb);                                                                 \
  }                                                                           \
                                                                              \
  /* 2-D full convolution, direct form. */                                    \
  void hcg_conv2d_direct_##SUF(const T* a, int ar, int ac, const T* b,        \
                               int br, int bc, T* out) {                      \
    const int orows = ar + br - 1, ocols = ac + bc - 1;                       \
    for (int r = 0; r < orows; ++r) {                                         \
      for (int c = 0; c < ocols; ++c) {                                       \
        double acc = 0.0;                                                     \
        const int ilo = r - br + 1 > 0 ? r - br + 1 : 0;                      \
        const int ihi = r < ar - 1 ? r : ar - 1;                              \
        const int plo = c - bc + 1 > 0 ? c - bc + 1 : 0;                      \
        const int phi = c < ac - 1 ? c : ac - 1;                              \
        for (int i = ilo; i <= ihi; ++i) {                                    \
          for (int p = plo; p <= phi; ++p) {                                  \
            acc += (double)a[i * ac + p] * (double)b[(r - i) * bc + (c - p)]; \
          }                                                                   \
        }                                                                     \
        out[r * ocols + c] = (T)acc;                                          \
      }                                                                       \
    }                                                                         \
  }

HCG_CONV_DEFINE(float, f32)
HCG_CONV_DEFINE(double, f64)

#undef HCG_CONV_DEFINE

#endif /* HCG_CONV_C_INCLUDED */
