/* hcg_fft.c — the FFT implementation library for HCG's intensive-actor
 * synthesis (paper Figure 1: one actor, many implementations whose relative
 * speed depends on the input scale).
 *
 * All kernels share the signature
 *     void kernel(const float* in, float* out, int n, int inverse);
 * operating on interleaved complex data (re, im pairs).  Inverse transforms
 * include the 1/n normalization.  Each file in this library is fully
 * self-contained (only libc) because generated code embeds it verbatim;
 * private helpers are prefixed hcg_fft_priv_ to avoid collisions when
 * several kernel files are embedded into one translation unit.
 */
#include <math.h>
#include <stdlib.h>
#include <string.h>

#ifndef HCG_FFT_C_INCLUDED
#define HCG_FFT_C_INCLUDED

/* ------------------------------------------------------------------ */
/* Naive O(n^2) DFT — the "generic function" a conventional generator  */
/* emits; also the general fallback implementation (any n).            */
/* ------------------------------------------------------------------ */
void hcg_fft_dft(const float* in, float* out, int n, int inverse) {
  /* One table of the n roots of unity keeps libm out of the O(n^2) loop —
   * this is the quality of "generic function" a production generator emits. */
  double* tw = (double*)malloc((size_t)n * 2 * sizeof(double));
  const double sign = inverse ? 2.0 : -2.0;
  for (int j = 0; j < n; ++j) {
    const double angle = sign * M_PI * (double)j / (double)n;
    tw[2 * j] = cos(angle);
    tw[2 * j + 1] = sin(angle);
  }
  for (int k = 0; k < n; ++k) {
    double re = 0.0, im = 0.0;
    long long idx = 0;
    for (int t = 0; t < n; ++t) {
      const double c = tw[2 * idx], s = tw[2 * idx + 1];
      const double xr = in[2 * t], xi = in[2 * t + 1];
      re += xr * c - xi * s;
      im += xr * s + xi * c;
      idx += k;
      if (idx >= n) idx -= n;
    }
    if (inverse) {
      re /= n;
      im /= n;
    }
    out[2 * k] = (float)re;
    out[2 * k + 1] = (float)im;
  }
  free(tw);
}

/* ------------------------------------------------------------------ */
/* Iterative radix-2 (n = 2^k), bit-reversal + butterfly stages.       */
/* ------------------------------------------------------------------ */
static void hcg_fft_priv_radix2_core(float* a, int n, int inverse) {
  /* Bit-reversal permutation. */
  for (int i = 1, j = 0; i < n; ++i) {
    int bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j |= bit;
    if (i < j) {
      float tr = a[2 * i], ti = a[2 * i + 1];
      a[2 * i] = a[2 * j];
      a[2 * i + 1] = a[2 * j + 1];
      a[2 * j] = tr;
      a[2 * j + 1] = ti;
    }
  }
  for (int len = 2; len <= n; len <<= 1) {
    const double ang = (inverse ? 2.0 : -2.0) * M_PI / (double)len;
    const double wr = cos(ang), wi = sin(ang);
    for (int i = 0; i < n; i += len) {
      double cr = 1.0, ci = 0.0;
      for (int j = 0; j < len / 2; ++j) {
        float* u = a + 2 * (i + j);
        float* v = a + 2 * (i + j + len / 2);
        const double vr = v[0] * cr - v[1] * ci;
        const double vi = v[0] * ci + v[1] * cr;
        const double ur = u[0], ui = u[1];
        u[0] = (float)(ur + vr);
        u[1] = (float)(ui + vi);
        v[0] = (float)(ur - vr);
        v[1] = (float)(ui - vi);
        const double ncr = cr * wr - ci * wi;
        ci = cr * wi + ci * wr;
        cr = ncr;
      }
    }
  }
}

void hcg_fft_radix2(const float* in, float* out, int n, int inverse) {
  memcpy(out, in, (size_t)n * 2 * sizeof(float));
  hcg_fft_priv_radix2_core(out, n, inverse);
  if (inverse) {
    const float s = 1.0f / (float)n;
    for (int i = 0; i < 2 * n; ++i) out[i] *= s;
  }
}

/* ------------------------------------------------------------------ */
/* Radix-2 with a precomputed twiddle table (n = 2^k): one table of    */
/* n/2 roots serves every stage via stride indexing, trading O(n)      */
/* memory for exact single-rotation twiddles and no recurrence drift.  */
/* ------------------------------------------------------------------ */
void hcg_fft_radix2_tab(const float* in, float* out, int n, int inverse) {
  memcpy(out, in, (size_t)n * 2 * sizeof(float));
  /* Bit-reversal permutation. */
  for (int i = 1, j = 0; i < n; ++i) {
    int bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j |= bit;
    if (i < j) {
      float tr = out[2 * i], ti = out[2 * i + 1];
      out[2 * i] = out[2 * j];
      out[2 * i + 1] = out[2 * j + 1];
      out[2 * j] = tr;
      out[2 * j + 1] = ti;
    }
  }
  const int half = n / 2;
  float* tw = (float*)malloc((size_t)(half > 0 ? half : 1) * 2 * sizeof(float));
  const double ang0 = (inverse ? 2.0 : -2.0) * M_PI / (double)n;
  for (int j = 0; j < half; ++j) {
    tw[2 * j] = (float)cos(ang0 * j);
    tw[2 * j + 1] = (float)sin(ang0 * j);
  }
  for (int len = 2; len <= n; len <<= 1) {
    const int stride = n / len;  /* w_len^j == w_n^(j*stride) */
    for (int i = 0; i < n; i += len) {
      for (int j = 0; j < len / 2; ++j) {
        const float wr = tw[2 * (j * stride)];
        const float wi = tw[2 * (j * stride) + 1];
        float* u = out + 2 * (i + j);
        float* v = out + 2 * (i + j + len / 2);
        const float vr = v[0] * wr - v[1] * wi;
        const float vi = v[0] * wi + v[1] * wr;
        const float ur = u[0], ui = u[1];
        u[0] = ur + vr;
        u[1] = ui + vi;
        v[0] = ur - vr;
        v[1] = ui - vi;
      }
    }
  }
  free(tw);
  if (inverse) {
    const float s = 1.0f / (float)n;
    for (int i = 0; i < 2 * n; ++i) out[i] *= s;
  }
}

/* ------------------------------------------------------------------ */
/* Iterative radix-4 DIF (n = 4^k) with base-4 digit reversal.         */
/* ------------------------------------------------------------------ */
static void hcg_fft_priv_digit4_reverse(float* a, int n) {
  for (int i = 0; i < n; ++i) {
    int rev = 0;
    for (int t = i, m = n; m > 1; m >>= 2) {
      rev = (rev << 2) | (t & 3);
      t >>= 2;
    }
    if (i < rev) {
      float tr = a[2 * i], ti = a[2 * i + 1];
      a[2 * i] = a[2 * rev];
      a[2 * i + 1] = a[2 * rev + 1];
      a[2 * rev] = tr;
      a[2 * rev + 1] = ti;
    }
  }
}

void hcg_fft_radix4(const float* in, float* out, int n, int inverse) {
  memcpy(out, in, (size_t)n * 2 * sizeof(float));
  /* i-multiplier sign: forward uses -i, inverse uses +i. */
  const double isign = inverse ? 1.0 : -1.0;
  for (int len = n; len >= 4; len >>= 2) {
    const int q = len / 4;
    const double ang = (inverse ? 2.0 : -2.0) * M_PI / (double)len;
    for (int base = 0; base < n; base += len) {
      for (int k = 0; k < q; ++k) {
        float* p0 = out + 2 * (base + k);
        float* p1 = out + 2 * (base + k + q);
        float* p2 = out + 2 * (base + k + 2 * q);
        float* p3 = out + 2 * (base + k + 3 * q);
        const double ar = p0[0], ai = p0[1];
        const double br = p1[0], bi = p1[1];
        const double cr = p2[0], ci = p2[1];
        const double dr = p3[0], di = p3[1];
        /* t0 = a + c, t1 = a - c, t2 = b + d, t3 = (b - d) * (+-i) */
        const double t0r = ar + cr, t0i = ai + ci;
        const double t1r = ar - cr, t1i = ai - ci;
        const double t2r = br + dr, t2i = bi + di;
        /* (b-d) * isign*i : (x + iy) * i = -y + ix */
        const double sbr = br - dr, sbi = bi - di;
        const double t3r = -isign * sbi, t3i = isign * sbr;
        /* y0 = t0 + t2                     -> slot k   (twiddle^0)   */
        /* y1 = (t1 + t3) * w^k             -> slot k+q               */
        /* y2 = (t0 - t2) * w^2k            -> slot k+2q              */
        /* y3 = (t1 - t3) * w^3k            -> slot k+3q              */
        const double y0r = t0r + t2r, y0i = t0i + t2i;
        const double y1r = t1r + t3r, y1i = t1i + t3i;
        const double y2r = t0r - t2r, y2i = t0i - t2i;
        const double y3r = t1r - t3r, y3i = t1i - t3i;
        const double w1r = cos(ang * k), w1i = sin(ang * k);
        const double w2r = cos(ang * 2 * k), w2i = sin(ang * 2 * k);
        const double w3r = cos(ang * 3 * k), w3i = sin(ang * 3 * k);
        p0[0] = (float)y0r;
        p0[1] = (float)y0i;
        p1[0] = (float)(y1r * w1r - y1i * w1i);
        p1[1] = (float)(y1r * w1i + y1i * w1r);
        p2[0] = (float)(y2r * w2r - y2i * w2i);
        p2[1] = (float)(y2r * w2i + y2i * w2r);
        p3[0] = (float)(y3r * w3r - y3i * w3i);
        p3[1] = (float)(y3r * w3i + y3i * w3r);
      }
    }
  }
  hcg_fft_priv_digit4_reverse(out, n);
  if (inverse) {
    const float s = 1.0f / (float)n;
    for (int i = 0; i < 2 * n; ++i) out[i] *= s;
  }
}

/* ------------------------------------------------------------------ */
/* Recursive mixed-radix Cooley-Tukey (Mix-FFT style).  Splits on the  */
/* smallest prime factor; prime sizes fall back to a direct DFT, so it */
/* handles any n.                                                      */
/* ------------------------------------------------------------------ */
static int hcg_fft_priv_smallest_factor(int n) {
  if (n % 2 == 0) return 2;
  for (int r = 3; r * r <= n; r += 2) {
    if (n % r == 0) return r;
  }
  return n;
}

/* out <- DFT of in (stride s complex elements), recursive. */
static void hcg_fft_priv_mixed_rec(const float* in, float* out, int n, int s,
                                   int inverse) {
  if (n == 1) {
    out[0] = in[0];
    out[1] = in[1];
    return;
  }
  const int r = hcg_fft_priv_smallest_factor(n);
  const int m = n / r;
  /* Roots-of-unity table for this level (also used by the prime fallback). */
  double* tw = (double*)malloc((size_t)n * 2 * sizeof(double));
  const double sign = inverse ? 2.0 : -2.0;
  for (int j = 0; j < n; ++j) {
    const double angle = sign * M_PI * (double)j / (double)n;
    tw[2 * j] = cos(angle);
    tw[2 * j + 1] = sin(angle);
  }
  if (r == n) {
    /* Prime size: direct DFT over the strided input. */
    for (int k = 0; k < n; ++k) {
      double re = 0.0, im = 0.0;
      long long idx = 0;
      for (int t = 0; t < n; ++t) {
        const double c = tw[2 * idx], si = tw[2 * idx + 1];
        const double xr = in[2 * t * s], xi = in[2 * t * s + 1];
        re += xr * c - xi * si;
        im += xr * si + xi * c;
        idx += k;
        if (idx >= n) idx -= n;
      }
      out[2 * k] = (float)re;
      out[2 * k + 1] = (float)im;
    }
    free(tw);
    return;
  }
  /* r sub-DFTs of size m over decimated inputs. */
  for (int i = 0; i < r; ++i) {
    hcg_fft_priv_mixed_rec(in + 2 * i * s, out + 2 * i * m, m, s * r, inverse);
  }
  /* Combine with twiddles: X[k2 + j*m] = sum_i sub_i[k2] * w^(i*(k2+j*m)). */
  float* tmp = (float*)malloc((size_t)n * 2 * sizeof(float));
  for (int k2 = 0; k2 < m; ++k2) {
    for (int j = 0; j < r; ++j) {
      const int k = k2 + j * m;
      double re = 0.0, im = 0.0;
      long long idx = 0;
      for (int i = 0; i < r; ++i) {
        const double c = tw[2 * idx], si = tw[2 * idx + 1];
        const double xr = out[2 * (i * m + k2)], xi = out[2 * (i * m + k2) + 1];
        re += xr * c - xi * si;
        im += xr * si + xi * c;
        idx += k;
        while (idx >= n) idx -= n;
      }
      tmp[2 * k] = (float)re;
      tmp[2 * k + 1] = (float)im;
    }
  }
  memcpy(out, tmp, (size_t)n * 2 * sizeof(float));
  free(tmp);
  free(tw);
}

void hcg_fft_mixed(const float* in, float* out, int n, int inverse) {
  hcg_fft_priv_mixed_rec(in, out, n, 1, inverse);
  if (inverse) {
    const float s = 1.0f / (float)n;
    for (int i = 0; i < 2 * n; ++i) out[i] *= s;
  }
}

/* ------------------------------------------------------------------ */
/* Bluestein chirp-z transform: any n via a power-of-two convolution.  */
/* ------------------------------------------------------------------ */
void hcg_fft_bluestein(const float* in, float* out, int n, int inverse) {
  int m = 1;
  while (m < 2 * n - 1) m <<= 1;

  float* a = (float*)calloc((size_t)m * 2, sizeof(float));
  float* b = (float*)calloc((size_t)m * 2, sizeof(float));
  const double sign = inverse ? 1.0 : -1.0;

  /* chirp[k] = exp(sign * i*pi*k^2/n); k^2 taken mod 2n keeps angles exact */
  for (int k = 0; k < n; ++k) {
    const long long k2 = ((long long)k * k) % (2LL * n);
    const double angle = sign * M_PI * (double)k2 / (double)n;
    const double cr = cos(angle), ci = sin(angle);
    /* a[k] = x[k] * chirp[k] */
    a[2 * k] = (float)(in[2 * k] * cr - in[2 * k + 1] * ci);
    a[2 * k + 1] = (float)(in[2 * k] * ci + in[2 * k + 1] * cr);
    /* b[k] = conj(chirp[k]); b is symmetric: b[m-k] = b[k] */
    b[2 * k] = (float)cr;
    b[2 * k + 1] = (float)-ci;
    if (k != 0) {
      b[2 * (m - k)] = (float)cr;
      b[2 * (m - k) + 1] = (float)-ci;
    }
  }

  hcg_fft_priv_radix2_core(a, m, 0);
  hcg_fft_priv_radix2_core(b, m, 0);
  for (int k = 0; k < m; ++k) {
    const double ar = a[2 * k], ai = a[2 * k + 1];
    const double br = b[2 * k], bi = b[2 * k + 1];
    a[2 * k] = (float)(ar * br - ai * bi);
    a[2 * k + 1] = (float)(ar * bi + ai * br);
  }
  hcg_fft_priv_radix2_core(a, m, 1);
  const double inv_m = 1.0 / (double)m;

  for (int k = 0; k < n; ++k) {
    const long long k2 = ((long long)k * k) % (2LL * n);
    const double angle = sign * M_PI * (double)k2 / (double)n;
    const double cr = cos(angle), ci = sin(angle);
    const double vr = a[2 * k] * inv_m, vi = a[2 * k + 1] * inv_m;
    double rr = vr * cr - vi * ci;
    double ri = vr * ci + vi * cr;
    if (inverse) {
      rr /= n;
      ri /= n;
    }
    out[2 * k] = (float)rr;
    out[2 * k + 1] = (float)ri;
  }
  free(a);
  free(b);
}

/* ------------------------------------------------------------------ */
/* 2-D transforms (row-column).                                        */
/* ------------------------------------------------------------------ */
void hcg_fft2d_dft(const float* in, float* out, int rows, int cols,
                   int inverse) {
  float* col_in = (float*)calloc((size_t)rows * 2, sizeof(float));
  float* col_out = (float*)calloc((size_t)rows * 2, sizeof(float));
  for (int r = 0; r < rows; ++r) {
    hcg_fft_dft(in + (size_t)r * cols * 2, out + (size_t)r * cols * 2, cols,
                inverse);
  }
  for (int c = 0; c < cols; ++c) {
    for (int r = 0; r < rows; ++r) {
      col_in[2 * r] = out[((size_t)r * cols + c) * 2];
      col_in[2 * r + 1] = out[((size_t)r * cols + c) * 2 + 1];
    }
    hcg_fft_dft(col_in, col_out, rows, inverse);
    for (int r = 0; r < rows; ++r) {
      out[((size_t)r * cols + c) * 2] = col_out[2 * r];
      out[((size_t)r * cols + c) * 2 + 1] = col_out[2 * r + 1];
    }
  }
  free(col_in);
  free(col_out);
}

void hcg_fft2d_radix2(const float* in, float* out, int rows, int cols,
                      int inverse) {
  float* col_buf = (float*)malloc((size_t)rows * 2 * sizeof(float));
  for (int r = 0; r < rows; ++r) {
    hcg_fft_radix2(in + (size_t)r * cols * 2, out + (size_t)r * cols * 2, cols,
                   inverse);
  }
  for (int c = 0; c < cols; ++c) {
    for (int r = 0; r < rows; ++r) {
      col_buf[2 * r] = out[((size_t)r * cols + c) * 2];
      col_buf[2 * r + 1] = out[((size_t)r * cols + c) * 2 + 1];
    }
    hcg_fft_priv_radix2_core(col_buf, rows, inverse);
    const float s = inverse ? 1.0f / (float)rows : 1.0f;
    for (int r = 0; r < rows; ++r) {
      out[((size_t)r * cols + c) * 2] = col_buf[2 * r] * s;
      out[((size_t)r * cols + c) * 2 + 1] = col_buf[2 * r + 1] * s;
    }
  }
  free(col_buf);
}

#endif /* HCG_FFT_C_INCLUDED */
