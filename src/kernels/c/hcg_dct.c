/* hcg_dct.c — DCT implementation library for HCG.
 *
 * Transform convention (matching the HCG interpreter oracle):
 *   DCT-II:  X[k] = sum_n x[n] cos(pi/N * (n+0.5) * k)          (unnormalized)
 *   IDCT:    x[n] = (X[0]/2 + sum_{k>0} X[k] cos(pi/N*k*(n+0.5))) * 2/N
 * so IDCT(DCT(x)) == x.
 *
 * Implementations per transform:
 *   *_naive : O(n^2) cosine sum, any n (the generic fallback)
 *   *_lee   : Lee's recursive split, O(n log n), n = 2^k
 *   dct_fft : Makhoul reorder + complex radix-2 FFT, O(n log n), n = 2^k
 *
 * Instantiated for float (_f32) and double (_f64) via the macro block at
 * the bottom.  Self-contained; private helpers carry the hcg_dct_priv_
 * prefix.
 */
#include <math.h>
#include <stdlib.h>
#include <string.h>

#ifndef HCG_DCT_C_INCLUDED
#define HCG_DCT_C_INCLUDED

#define HCG_DCT_DEFINE(T, SUF)                                                \
  /* cos(pi/n*(t+0.5)*k) == ctab[(2t+1)*k mod 4n] with ctab over pi/(2n);   \
   * the table keeps libm out of the O(n^2) loop, the realistic quality of  \
   * a generator's generic fallback. */                                     \
  static double* hcg_dct_priv_costab_##SUF(int n) {                          \
    double* ctab = (double*)malloc((size_t)n * 4 * sizeof(double));          \
    for (int j = 0; j < 4 * n; ++j) {                                        \
      ctab[j] = cos(M_PI * (double)j / (2.0 * n));                           \
    }                                                                        \
    return ctab;                                                             \
  }                                                                          \
                                                                              \
  void hcg_dct_naive_##SUF(const T* in, T* out, int n) {                      \
    double* ctab = hcg_dct_priv_costab_##SUF(n);                              \
    for (int k = 0; k < n; ++k) {                                             \
      double acc = 0.0;                                                       \
      /* (2t+1)*k mod 4n: starts at k, steps by 2k */                         \
      long long idx = k;                                                      \
      const long long step = 2LL * k;                                         \
      for (int t = 0; t < n; ++t) {                                           \
        acc += (double)in[t] * ctab[idx];                                     \
        idx += step;                                                          \
        if (idx >= 4LL * n) idx -= 4LL * n;                                   \
      }                                                                       \
      out[k] = (T)acc;                                                        \
    }                                                                         \
    free(ctab);                                                               \
  }                                                                           \
                                                                              \
  void hcg_idct_naive_##SUF(const T* in, T* out, int n) {                     \
    double* ctab = hcg_dct_priv_costab_##SUF(n);                              \
    for (int t = 0; t < n; ++t) {                                             \
      double acc = (double)in[0] / 2.0;                                       \
      long long idx = 2LL * t + 1;                                            \
      const long long step = 2LL * t + 1;                                     \
      for (int k = 1; k < n; ++k) {                                           \
        acc += (double)in[k] * ctab[idx];                                     \
        idx += step;                                                          \
        while (idx >= 4LL * n) idx -= 4LL * n;                                \
      }                                                                       \
      out[t] = (T)(acc * 2.0 / n);                                            \
    }                                                                         \
    free(ctab);                                                               \
  }                                                                           \
                                                                              \
  /* Lee's DCT-II recursion: data transformed in place, scratch size n. */    \
  static void hcg_dct_priv_lee2_##SUF(T* data, T* scratch, int n) {           \
    if (n == 1) return;                                                       \
    const int h = n / 2;                                                      \
    for (int i = 0; i < h; ++i) {                                             \
      const double a = data[i], b = data[n - 1 - i];                          \
      scratch[i] = (T)(a + b);                                                \
      scratch[h + i] =                                                        \
          (T)((a - b) / (2.0 * cos(M_PI * (i + 0.5) / (double)n)));           \
    }                                                                         \
    hcg_dct_priv_lee2_##SUF(scratch, data, h);                                \
    hcg_dct_priv_lee2_##SUF(scratch + h, data, h);                            \
    for (int i = 0; i < h - 1; ++i) {                                         \
      data[2 * i] = scratch[i];                                               \
      data[2 * i + 1] = (T)(scratch[h + i] + scratch[h + i + 1]);             \
    }                                                                         \
    data[n - 2] = scratch[h - 1];                                             \
    data[n - 1] = scratch[n - 1];                                             \
  }                                                                           \
                                                                              \
  void hcg_dct_lee_##SUF(const T* in, T* out, int n) {                        \
    T* scratch = (T*)malloc((size_t)n * sizeof(T));                           \
    memcpy(out, in, (size_t)n * sizeof(T));                                   \
    hcg_dct_priv_lee2_##SUF(out, scratch, n);                                 \
    free(scratch);                                                            \
  }                                                                           \
                                                                              \
  /* Lee's DCT-III recursion (inverse), X[0] already halved by caller. */     \
  static void hcg_dct_priv_lee3_##SUF(T* data, T* scratch, int n) {           \
    if (n == 1) return;                                                       \
    const int h = n / 2;                                                      \
    scratch[0] = data[0];                                                     \
    scratch[h] = data[1];                                                     \
    for (int i = 2, idx = 1; i < n; i += 2, ++idx) {                          \
      scratch[idx] = data[i];                                                 \
      scratch[h + idx] = (T)(data[i - 1] + data[i + 1]);                      \
    }                                                                         \
    hcg_dct_priv_lee3_##SUF(scratch, data, h);                                \
    hcg_dct_priv_lee3_##SUF(scratch + h, data, h);                            \
    for (int i = 0; i < h; ++i) {                                             \
      const double x = scratch[i];                                            \
      const double y =                                                        \
          scratch[h + i] / (2.0 * cos(M_PI * (i + 0.5) / (double)n));         \
      data[i] = (T)(x + y);                                                   \
      data[n - 1 - i] = (T)(x - y);                                           \
    }                                                                         \
  }                                                                           \
                                                                              \
  void hcg_idct_lee_##SUF(const T* in, T* out, int n) {                       \
    T* scratch = (T*)malloc((size_t)n * sizeof(T));                           \
    memcpy(out, in, (size_t)n * sizeof(T));                                   \
    out[0] = (T)(out[0] / 2.0);                                               \
    hcg_dct_priv_lee3_##SUF(out, scratch, n);                                 \
    const double s = 2.0 / (double)n;                                         \
    for (int i = 0; i < n; ++i) out[i] = (T)(out[i] * s);                     \
    free(scratch);                                                            \
  }                                                                           \
                                                                              \
  /* Complex radix-2 FFT core used by the Makhoul DCT (double math). */       \
  static void hcg_dct_priv_fft_##SUF(double* a, int n) {                      \
    for (int i = 1, j = 0; i < n; ++i) {                                      \
      int bit = n >> 1;                                                       \
      for (; j & bit; bit >>= 1) j ^= bit;                                    \
      j |= bit;                                                               \
      if (i < j) {                                                            \
        double tr = a[2 * i], ti = a[2 * i + 1];                              \
        a[2 * i] = a[2 * j];                                                  \
        a[2 * i + 1] = a[2 * j + 1];                                          \
        a[2 * j] = tr;                                                        \
        a[2 * j + 1] = ti;                                                    \
      }                                                                       \
    }                                                                         \
    for (int len = 2; len <= n; len <<= 1) {                                  \
      const double ang = -2.0 * M_PI / (double)len;                           \
      const double wr = cos(ang), wi = sin(ang);                              \
      for (int i = 0; i < n; i += len) {                                      \
        double cr = 1.0, ci = 0.0;                                            \
        for (int j = 0; j < len / 2; ++j) {                                   \
          double* u = a + 2 * (i + j);                                        \
          double* v = a + 2 * (i + j + len / 2);                              \
          const double vr = v[0] * cr - v[1] * ci;                            \
          const double vi = v[0] * ci + v[1] * cr;                            \
          const double ur = u[0], ui = u[1];                                  \
          u[0] = ur + vr;                                                     \
          u[1] = ui + vi;                                                     \
          v[0] = ur - vr;                                                     \
          v[1] = ui - vi;                                                     \
          const double ncr = cr * wr - ci * wi;                               \
          ci = cr * wi + ci * wr;                                             \
          cr = ncr;                                                           \
        }                                                                     \
      }                                                                       \
    }                                                                         \
  }                                                                           \
                                                                              \
  /* Makhoul: X[k] = Re(exp(-i*pi*k/(2N)) * FFT(reordered x)[k]). */          \
  void hcg_dct_fft_##SUF(const T* in, T* out, int n) {                        \
    if (n == 1) { /* DCT-II of a single sample is the identity */             \
      out[0] = in[0];                                                         \
      return;                                                                 \
    }                                                                         \
    double* v = (double*)calloc((size_t)n * 2, sizeof(double));               \
    for (int i = 0; i < n / 2; ++i) {                                         \
      v[2 * i] = in[2 * i];                                                   \
      v[2 * (n - 1 - i)] = in[2 * i + 1];                                     \
    }                                                                         \
    hcg_dct_priv_fft_##SUF(v, n);                                             \
    for (int k = 0; k < n; ++k) {                                             \
      const double theta = M_PI * k / (2.0 * n);                              \
      out[k] = (T)(v[2 * k] * cos(theta) + v[2 * k + 1] * sin(theta));        \
    }                                                                         \
    free(v);                                                                  \
  }                                                                           \
                                                                              \
  /* 2-D DCT, row-column. */                                                  \
  void hcg_dct2d_naive_##SUF(const T* in, T* out, int rows, int cols) {       \
    T* col_in = (T*)calloc((size_t)rows, sizeof(T));                          \
    T* col_out = (T*)calloc((size_t)rows, sizeof(T));                        \
    for (int r = 0; r < rows; ++r) {                                          \
      hcg_dct_naive_##SUF(in + (size_t)r * cols, out + (size_t)r * cols,      \
                          cols);                                              \
    }                                                                         \
    for (int c = 0; c < cols; ++c) {                                          \
      for (int r = 0; r < rows; ++r) col_in[r] = out[(size_t)r * cols + c];   \
      hcg_dct_naive_##SUF(col_in, col_out, rows);                             \
      for (int r = 0; r < rows; ++r) out[(size_t)r * cols + c] = col_out[r];  \
    }                                                                         \
    free(col_in);                                                             \
    free(col_out);                                                            \
  }                                                                           \
                                                                              \
  void hcg_dct2d_lee_##SUF(const T* in, T* out, int rows, int cols) {         \
    T* col_in = (T*)calloc((size_t)rows, sizeof(T));                          \
    T* col_out = (T*)calloc((size_t)rows, sizeof(T));                        \
    for (int r = 0; r < rows; ++r) {                                          \
      hcg_dct_lee_##SUF(in + (size_t)r * cols, out + (size_t)r * cols, cols); \
    }                                                                         \
    for (int c = 0; c < cols; ++c) {                                          \
      for (int r = 0; r < rows; ++r) col_in[r] = out[(size_t)r * cols + c];   \
      hcg_dct_lee_##SUF(col_in, col_out, rows);                               \
      for (int r = 0; r < rows; ++r) out[(size_t)r * cols + c] = col_out[r];  \
    }                                                                         \
    free(col_in);                                                             \
    free(col_out);                                                            \
  }

HCG_DCT_DEFINE(float, f32)
HCG_DCT_DEFINE(double, f64)

#undef HCG_DCT_DEFINE

#endif /* HCG_DCT_C_INCLUDED */
