/* hcg_mat.c — small-matrix implementation library for HCG (paper Table 1(a):
 * 2x2 / 3x3 / 4x4 multiplication, inversion, determinant).
 *
 * Signatures (n x n row-major):
 *   matmul: kernel(const T* a, const T* b, T* out, int n)
 *   matinv: kernel(const T* a, T* out, int n)
 *   matdet: kernel(const T* a, T* out, int n)   — out is a 1-element buffer
 *
 * Implementations: *_generic works for any n (the fallback the conventional
 * generators use); *_unrolled / *_adjugate / *_direct are the specialized
 * n<=4 forms Algorithm 1 selects.
 */
#include <math.h>
#include <stdlib.h>
#include <string.h>

#ifndef HCG_MAT_C_INCLUDED
#define HCG_MAT_C_INCLUDED

#define HCG_MAT_DEFINE(T, SUF)                                                \
  void hcg_matmul_generic_##SUF(const T* a, const T* b, T* out, int n) {      \
    for (int r = 0; r < n; ++r) {                                             \
      for (int c = 0; c < n; ++c) {                                           \
        double acc = 0.0;                                                     \
        for (int k = 0; k < n; ++k) {                                         \
          acc += (double)a[r * n + k] * (double)b[k * n + c];                 \
        }                                                                     \
        out[r * n + c] = (T)acc;                                              \
      }                                                                       \
    }                                                                         \
  }                                                                           \
                                                                              \
  void hcg_matmul_unrolled_##SUF(const T* a, const T* b, T* out, int n) {     \
    if (n == 2) {                                                             \
      out[0] = (T)(a[0] * b[0] + a[1] * b[2]);                                \
      out[1] = (T)(a[0] * b[1] + a[1] * b[3]);                                \
      out[2] = (T)(a[2] * b[0] + a[3] * b[2]);                                \
      out[3] = (T)(a[2] * b[1] + a[3] * b[3]);                                \
    } else if (n == 3) {                                                      \
      for (int r = 0; r < 3; ++r) {                                           \
        const T a0 = a[3 * r], a1 = a[3 * r + 1], a2 = a[3 * r + 2];          \
        out[3 * r + 0] = (T)(a0 * b[0] + a1 * b[3] + a2 * b[6]);              \
        out[3 * r + 1] = (T)(a0 * b[1] + a1 * b[4] + a2 * b[7]);              \
        out[3 * r + 2] = (T)(a0 * b[2] + a1 * b[5] + a2 * b[8]);              \
      }                                                                       \
    } else { /* n == 4 */                                                     \
      for (int r = 0; r < 4; ++r) {                                           \
        const T a0 = a[4 * r], a1 = a[4 * r + 1];                             \
        const T a2 = a[4 * r + 2], a3 = a[4 * r + 3];                         \
        for (int c = 0; c < 4; ++c) {                                         \
          out[4 * r + c] = (T)(a0 * b[c] + a1 * b[4 + c] + a2 * b[8 + c] +    \
                               a3 * b[12 + c]);                               \
        }                                                                     \
      }                                                                       \
    }                                                                         \
  }                                                                           \
                                                                              \
  void hcg_matdet_gauss_##SUF(const T* a, T* out, int n) {                    \
    double* m = (double*)malloc((size_t)n * n * sizeof(double));              \
    for (int i = 0; i < n * n; ++i) m[i] = a[i];                              \
    double det = 1.0;                                                         \
    for (int col = 0; col < n; ++col) {                                       \
      int pivot = col;                                                        \
      for (int r = col + 1; r < n; ++r) {                                     \
        if (fabs(m[r * n + col]) > fabs(m[pivot * n + col])) pivot = r;       \
      }                                                                       \
      if (m[pivot * n + col] == 0.0) {                                        \
        det = 0.0;                                                            \
        break;                                                                \
      }                                                                       \
      if (pivot != col) {                                                     \
        det = -det;                                                           \
        for (int c = 0; c < n; ++c) {                                         \
          double t = m[pivot * n + c];                                        \
          m[pivot * n + c] = m[col * n + c];                                  \
          m[col * n + c] = t;                                                 \
        }                                                                     \
      }                                                                       \
      det *= m[col * n + col];                                                \
      for (int r = col + 1; r < n; ++r) {                                     \
        const double f = m[r * n + col] / m[col * n + col];                   \
        for (int c = col; c < n; ++c) m[r * n + c] -= f * m[col * n + c];     \
      }                                                                       \
    }                                                                         \
    free(m);                                                                  \
    out[0] = (T)det;                                                          \
  }                                                                           \
                                                                              \
  static double hcg_mat_priv_det3_##SUF(const T* a) {                         \
    return (double)a[0] * ((double)a[4] * a[8] - (double)a[5] * a[7]) -       \
           (double)a[1] * ((double)a[3] * a[8] - (double)a[5] * a[6]) +       \
           (double)a[2] * ((double)a[3] * a[7] - (double)a[4] * a[6]);        \
  }                                                                           \
                                                                              \
  void hcg_matdet_direct_##SUF(const T* a, T* out, int n) {                   \
    if (n == 2) {                                                             \
      out[0] = (T)((double)a[0] * a[3] - (double)a[1] * a[2]);                \
    } else if (n == 3) {                                                      \
      out[0] = (T)hcg_mat_priv_det3_##SUF(a);                                 \
    } else { /* n == 4: cofactor expansion along the first row */             \
      double det = 0.0;                                                       \
      for (int c = 0; c < 4; ++c) {                                           \
        T minor[9];                                                           \
        int idx = 0;                                                          \
        for (int r = 1; r < 4; ++r) {                                         \
          for (int cc = 0; cc < 4; ++cc) {                                    \
            if (cc == c) continue;                                            \
            minor[idx++] = a[r * 4 + cc];                                     \
          }                                                                   \
        }                                                                     \
        const double cof = hcg_mat_priv_det3_##SUF(minor);                    \
        det += (c % 2 == 0 ? 1.0 : -1.0) * (double)a[c] * cof;                \
      }                                                                       \
      out[0] = (T)det;                                                        \
    }                                                                         \
  }                                                                           \
                                                                              \
  void hcg_matinv_gauss_##SUF(const T* a, T* out, int n) {                    \
    double* m = (double*)malloc((size_t)n * 2 * n * sizeof(double));          \
    for (int r = 0; r < n; ++r) {                                             \
      for (int c = 0; c < n; ++c) m[r * 2 * n + c] = a[r * n + c];            \
      for (int c = 0; c < n; ++c) m[r * 2 * n + n + c] = (r == c) ? 1.0 : 0.0;\
    }                                                                         \
    for (int col = 0; col < n; ++col) {                                       \
      int pivot = col;                                                        \
      for (int r = col + 1; r < n; ++r) {                                     \
        if (fabs(m[r * 2 * n + col]) > fabs(m[pivot * 2 * n + col]))          \
          pivot = r;                                                          \
      }                                                                       \
      if (pivot != col) {                                                     \
        for (int c = 0; c < 2 * n; ++c) {                                     \
          double t = m[pivot * 2 * n + c];                                    \
          m[pivot * 2 * n + c] = m[col * 2 * n + c];                          \
          m[col * 2 * n + c] = t;                                             \
        }                                                                     \
      }                                                                       \
      const double inv = 1.0 / m[col * 2 * n + col];                          \
      for (int c = 0; c < 2 * n; ++c) m[col * 2 * n + c] *= inv;              \
      for (int r = 0; r < n; ++r) {                                           \
        if (r == col) continue;                                               \
        const double f = m[r * 2 * n + col];                                  \
        if (f == 0.0) continue;                                               \
        for (int c = 0; c < 2 * n; ++c) {                                     \
          m[r * 2 * n + c] -= f * m[col * 2 * n + c];                         \
        }                                                                     \
      }                                                                       \
    }                                                                         \
    for (int r = 0; r < n; ++r) {                                             \
      for (int c = 0; c < n; ++c) out[r * n + c] = (T)m[r * 2 * n + n + c];   \
    }                                                                         \
    free(m);                                                                  \
  }                                                                           \
                                                                              \
  /* Analytic adjugate inverse for n <= 4. */                                 \
  void hcg_matinv_adjugate_##SUF(const T* a, T* out, int n) {                 \
    if (n == 2) {                                                             \
      const double det = (double)a[0] * a[3] - (double)a[1] * a[2];           \
      const double inv = 1.0 / det;                                           \
      out[0] = (T)(a[3] * inv);                                               \
      out[1] = (T)(-a[1] * inv);                                              \
      out[2] = (T)(-a[2] * inv);                                              \
      out[3] = (T)(a[0] * inv);                                               \
    } else if (n == 3) {                                                      \
      const double det = hcg_mat_priv_det3_##SUF(a);                          \
      const double inv = 1.0 / det;                                           \
      out[0] = (T)(((double)a[4] * a[8] - (double)a[5] * a[7]) * inv);        \
      out[1] = (T)(((double)a[2] * a[7] - (double)a[1] * a[8]) * inv);        \
      out[2] = (T)(((double)a[1] * a[5] - (double)a[2] * a[4]) * inv);        \
      out[3] = (T)(((double)a[5] * a[6] - (double)a[3] * a[8]) * inv);        \
      out[4] = (T)(((double)a[0] * a[8] - (double)a[2] * a[6]) * inv);        \
      out[5] = (T)(((double)a[2] * a[3] - (double)a[0] * a[5]) * inv);        \
      out[6] = (T)(((double)a[3] * a[7] - (double)a[4] * a[6]) * inv);        \
      out[7] = (T)(((double)a[1] * a[6] - (double)a[0] * a[7]) * inv);        \
      out[8] = (T)(((double)a[0] * a[4] - (double)a[1] * a[3]) * inv);        \
    } else { /* n == 4: blockwise via cofactors of 3x3 minors */              \
      double cof[16];                                                         \
      for (int r = 0; r < 4; ++r) {                                           \
        for (int c = 0; c < 4; ++c) {                                         \
          T minor[9];                                                         \
          int idx = 0;                                                        \
          for (int rr = 0; rr < 4; ++rr) {                                    \
            if (rr == r) continue;                                            \
            for (int cc = 0; cc < 4; ++cc) {                                  \
              if (cc == c) continue;                                          \
              minor[idx++] = a[rr * 4 + cc];                                  \
            }                                                                 \
          }                                                                   \
          const double sign = ((r + c) % 2 == 0) ? 1.0 : -1.0;                \
          cof[r * 4 + c] = sign * hcg_mat_priv_det3_##SUF(minor);             \
        }                                                                     \
      }                                                                       \
      const double det = (double)a[0] * cof[0] + (double)a[1] * cof[1] +      \
                         (double)a[2] * cof[2] + (double)a[3] * cof[3];       \
      const double inv = 1.0 / det;                                           \
      for (int r = 0; r < 4; ++r) {                                           \
        for (int c = 0; c < 4; ++c) {                                         \
          out[r * 4 + c] = (T)(cof[c * 4 + r] * inv); /* adjugate = cof^T */  \
        }                                                                     \
      }                                                                       \
    }                                                                         \
  }

HCG_MAT_DEFINE(float, f32)
HCG_MAT_DEFINE(double, f64)

#undef HCG_MAT_DEFINE

/* Cache-blocked multiply in i-k-j order over B-wide tiles of the k and r
 * dimensions: the inner c loop walks both b and out stride-1, so the C
 * compiler auto-vectorizes it, and the k-block keeps the b rows it revisits
 * resident in cache.  Two tile widths are registered as separate Algorithm 1
 * candidates so the selected width is a *measured* choice on the target —
 * the same measured-cost data that seeds the -O2 loop-tiling pass. */
#define HCG_MAT_BLOCKED_DEFINE(T, NAME, B)                                   \
  void NAME(const T* a, const T* b, T* out, int n) {                          \
    for (int i = 0; i < n * n; ++i) out[i] = (T)0;                            \
    for (int rr = 0; rr < n; rr += B) {                                       \
      const int rmax = rr + B < n ? rr + B : n;                               \
      for (int kk = 0; kk < n; kk += B) {                                     \
        const int kmax = kk + B < n ? kk + B : n;                             \
        for (int r = rr; r < rmax; ++r) {                                     \
          T* orow = &out[r * n];                                              \
          for (int k = kk; k < kmax; ++k) {                                   \
            const T av = a[r * n + k];                                        \
            const T* brow = &b[k * n];                                        \
            for (int c = 0; c < n; ++c) orow[c] += av * brow[c];              \
          }                                                                   \
        }                                                                     \
      }                                                                       \
    }                                                                         \
  }

HCG_MAT_BLOCKED_DEFINE(float, hcg_matmul_blocked8_f32, 8)
HCG_MAT_BLOCKED_DEFINE(float, hcg_matmul_blocked32_f32, 32)
HCG_MAT_BLOCKED_DEFINE(double, hcg_matmul_blocked8_f64, 8)
HCG_MAT_BLOCKED_DEFINE(double, hcg_matmul_blocked32_f64, 32)

#undef HCG_MAT_BLOCKED_DEFINE

#endif /* HCG_MAT_C_INCLUDED */
