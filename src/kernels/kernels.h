/* kernels.h — host-side prototypes for the intensive-actor kernel library.
 *
 * The definitions live in src/kernels/c/ (one file per family), which are compiled into the
 * hcg_kernels library (for Algorithm 1's pre-calculation timing and for
 * tests) and embedded as text into generated C code (for deployment).
 */
#pragma once

#ifdef __cplusplus
extern "C" {
#endif

/* FFT family: interleaved complex float, inverse includes 1/n. */
void hcg_fft_dft(const float* in, float* out, int n, int inverse);
void hcg_fft_radix2(const float* in, float* out, int n, int inverse);
void hcg_fft_radix2_tab(const float* in, float* out, int n, int inverse);
void hcg_fft_radix4(const float* in, float* out, int n, int inverse);
void hcg_fft_mixed(const float* in, float* out, int n, int inverse);
void hcg_fft_bluestein(const float* in, float* out, int n, int inverse);
void hcg_fft2d_dft(const float* in, float* out, int rows, int cols,
                   int inverse);
void hcg_fft2d_radix2(const float* in, float* out, int rows, int cols,
                      int inverse);

#define HCG_KERNELS_DECL(T, SUF)                                             \
  void hcg_dct_naive_##SUF(const T* in, T* out, int n);                      \
  void hcg_idct_naive_##SUF(const T* in, T* out, int n);                     \
  void hcg_dct_lee_##SUF(const T* in, T* out, int n);                        \
  void hcg_idct_lee_##SUF(const T* in, T* out, int n);                       \
  void hcg_dct_fft_##SUF(const T* in, T* out, int n);                        \
  void hcg_dct2d_naive_##SUF(const T* in, T* out, int rows, int cols);       \
  void hcg_dct2d_lee_##SUF(const T* in, T* out, int rows, int cols);         \
  void hcg_conv_direct_##SUF(const T* a, int na, const T* b, int nb, T* out);\
  void hcg_conv_blocked_##SUF(const T* a, int na, const T* b, int nb,        \
                              T* out);                                       \
  void hcg_conv_saxpy_##SUF(const T* a, int na, const T* b, int nb, T* out); \
  void hcg_conv_fft_##SUF(const T* a, int na, const T* b, int nb, T* out);   \
  void hcg_conv2d_direct_##SUF(const T* a, int ar, int ac, const T* b,       \
                               int br, int bc, T* out);                      \
  void hcg_matmul_generic_##SUF(const T* a, const T* b, T* out, int n);      \
  void hcg_matmul_unrolled_##SUF(const T* a, const T* b, T* out, int n);     \
  void hcg_matmul_blocked8_##SUF(const T* a, const T* b, T* out, int n);     \
  void hcg_matmul_blocked32_##SUF(const T* a, const T* b, T* out, int n);    \
  void hcg_matinv_gauss_##SUF(const T* a, T* out, int n);                    \
  void hcg_matinv_adjugate_##SUF(const T* a, T* out, int n);                 \
  void hcg_matdet_gauss_##SUF(const T* a, T* out, int n);                    \
  void hcg_matdet_direct_##SUF(const T* a, T* out, int n);

HCG_KERNELS_DECL(float, f32)
HCG_KERNELS_DECL(double, f64)

#undef HCG_KERNELS_DECL

#ifdef __cplusplus
}
#endif
