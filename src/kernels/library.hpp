// The code library of Algorithm 1: a one-to-many map from intensive actor
// type to candidate implementations, each carrying size/type constraints
// (canHandleDataType / canHandleDataSize in the paper), a host-callable
// function for pre-calculation timing, and the C source to embed into
// generated code.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "model/model.hpp"
#include "model/tensor.hpp"

namespace hcg::kernels {

/// The C calling convention family of a kernel.
enum class KernelSig : std::uint8_t {
  kFft1D,    // (const float*, float*, int n, int inverse)
  kFft2D,    // (const float*, float*, int rows, int cols, int inverse)
  kXform1D,  // (const T*, T*, int n)
  kXform2D,  // (const T*, T*, int rows, int cols)
  kConv1D,   // (const T*, int na, const T*, int nb, T*)
  kConv2D,   // (const T*, int ar, int ac, const T*, int br, int bc, T*)
  kMatMul,   // (const T*, const T*, T*, int n)
  kMatInv,   // (const T*, T*, int n)
  kMatDet,   // (const T*, T*, int n)
};

/// canHandleDataSize constraint.
enum class SizeRule : std::uint8_t {
  kAny,       // any input size
  kPow2,      // every dimension a power of two
  kPow4,      // every dimension a power of four
  kMatSmall,  // square matrix with n <= 4
  kMatBlocked,  // square matrix with n >= 16 (cache blocking pays past a tile)
};

bool size_rule_accepts(SizeRule rule, const std::vector<Shape>& in_shapes);

struct KernelImpl {
  std::string id;           // "fft_radix4"
  std::string actor_type;   // "FFT"
  DataType dtype;           // element type of input 0 (c64 for FFT family)
  KernelSig sig = KernelSig::kXform1D;
  SizeRule size_rule = SizeRule::kAny;
  std::string c_function;   // symbol emitted into generated code
  std::string source_key;   // embedded source file providing it
  bool general = false;     // the fallback conventional generators also use
  const void* host_fn = nullptr;

  /// canHandleDataType && canHandleDataSize.
  bool can_handle(DataType type, const std::vector<Shape>& in_shapes) const;
};

class CodeLibrary {
 public:
  /// The built-in library (loadCodeLibrary in Algorithm 1).
  static const CodeLibrary& instance();

  /// All implementations registered for an actor type, most specialized
  /// first is NOT guaranteed — callers filter via can_handle().
  std::vector<const KernelImpl*> implementations(std::string_view actor_type,
                                                 DataType dtype) const;

  /// The general implementation (Algorithm 1 line 8); throws
  /// hcg::SynthesisError if the type has none.
  const KernelImpl& general_implementation(std::string_view actor_type,
                                           DataType dtype) const;

  /// Lookup by id + dtype; nullptr if absent.
  const KernelImpl* find(std::string_view id, DataType dtype) const;

  /// The embedded C source text for a source key ("hcg_fft.c", ...).
  std::string_view source(std::string_view source_key) const;

  const std::vector<KernelImpl>& all() const { return impls_; }

 private:
  CodeLibrary();
  std::vector<KernelImpl> impls_;
};

/// Runs a kernel on tensors in-process (pre-calculation and tests).
/// `inputs` are the actor's input tensors in port order; `output` must be
/// pre-allocated with the actor's output spec.
void run_kernel(const KernelImpl& impl,
                const std::vector<const Tensor*>& inputs, Tensor* output);

}  // namespace hcg::kernels
