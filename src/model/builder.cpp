#include "model/builder.hpp"

namespace hcg {

PortRef ModelBuilder::inport(std::string_view name, DataType type,
                             Shape shape) {
  ActorId id = model_.add_actor(name, "Inport");
  Actor& a = model_.actor(id);
  a.set_param("dtype", short_name(type));
  a.set_param("shape", shape.to_string());
  return PortRef{id, 0};
}

PortRef ModelBuilder::constant(std::string_view name, DataType type,
                               Shape shape, std::string_view value) {
  ActorId id = model_.add_actor(name, "Constant");
  Actor& a = model_.actor(id);
  a.set_param("dtype", short_name(type));
  a.set_param("shape", shape.to_string());
  a.set_param("value", value);
  return PortRef{id, 0};
}

PortRef ModelBuilder::actor(
    std::string_view name, std::string_view type,
    std::initializer_list<PortRef> inputs,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        params) {
  return actor(name, type, std::vector<PortRef>(inputs), params);
}

PortRef ModelBuilder::actor(
    std::string_view name, std::string_view type,
    const std::vector<PortRef>& inputs,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        params) {
  ActorId id = model_.add_actor(name, type);
  Actor& a = model_.actor(id);
  for (const auto& [key, value] : params) a.set_param(key, value);
  int port = 0;
  for (const PortRef& in : inputs) {
    model_.connect(in.actor, in.port, id, port++);
  }
  return PortRef{id, 0};
}

void ModelBuilder::outport(std::string_view name, PortRef src) {
  ActorId id = model_.add_actor(name, "Outport");
  model_.connect(src.actor, src.port, id, 0);
}

}  // namespace hcg
