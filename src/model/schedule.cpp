#include "model/schedule.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "support/error.hpp"

namespace hcg {

bool is_delay_type(const std::string& type) { return type == "UnitDelay"; }

std::vector<ActorId> schedule(const Model& model) {
  HCG_TRACE_SCOPE("model.schedule");
  const int n = model.actor_count();
  std::vector<int> pending(static_cast<size_t>(n), 0);

  // Count dependency edges into each actor.  Multiple wires between the same
  // actor pair each count; what matters is that the count reaches zero only
  // when every producer has fired.  Edges touching a delay are not
  // dependencies: a delay's output is its stored state (available
  // immediately) and its input is consumed by the end-of-step state update.
  for (const Connection& c : model.connections()) {
    if (is_delay_type(model.actor(c.src).type())) continue;
    if (is_delay_type(model.actor(c.dst).type())) continue;
    ++pending[static_cast<size_t>(c.dst)];
  }

  // Kahn's algorithm with an id-ordered ready set for determinism.
  std::vector<ActorId> ready;
  for (ActorId id = 0; id < n; ++id) {
    if (pending[static_cast<size_t>(id)] == 0) ready.push_back(id);
  }

  std::vector<ActorId> order;
  order.reserve(static_cast<size_t>(n));
  while (!ready.empty()) {
    // Smallest id first.
    auto it = std::min_element(ready.begin(), ready.end());
    ActorId id = *it;
    ready.erase(it);
    order.push_back(id);
    if (is_delay_type(model.actor(id).type())) continue;
    for (const Connection& c : model.outgoing_all(id)) {
      if (is_delay_type(model.actor(c.dst).type())) continue;
      if (--pending[static_cast<size_t>(c.dst)] == 0) ready.push_back(c.dst);
    }
  }

  if (static_cast<int>(order.size()) != n) {
    std::string cycle_members;
    for (ActorId id = 0; id < n; ++id) {
      if (pending[static_cast<size_t>(id)] > 0) {
        if (!cycle_members.empty()) cycle_members += ", ";
        cycle_members += model.actor(id).name();
      }
    }
    throw ModelError("model contains a cycle not broken by a delay: " +
                     cycle_members);
  }
  return order;
}

}  // namespace hcg
