// Hierarchical model support: subsystems are flattened into their parent at
// construction time (Simulink models are deeply hierarchical; HCG's
// pipeline operates on the flat actor graph, so the hierarchy is a pure
// front-end convenience here, exactly as in the paper's model parser).
//
// Flattening copies the inner model's computational actors into the parent
// under a `prefix__` namespace and rewires the boundary:
//   * the inner model's k-th Inport disappears; whatever feeds the
//     subsystem's input k in the parent connects to that Inport's consumers,
//   * the inner model's j-th Outport disappears; its source drives whatever
//     consumes the subsystem's output j,
//   * a direct Inport->Outport passthrough resolves transitively.
#pragma once

#include <string_view>
#include <vector>

#include "model/builder.hpp"
#include "model/model.hpp"

namespace hcg {

/// The boundary map produced by appending a flattened subsystem.
struct FlattenedSubsystem {
  /// For subsystem input port k: the (actor, input port) pairs inside the
  /// parent that the feeding signal must connect to.
  std::vector<std::vector<std::pair<ActorId, int>>> input_targets;

  struct Output {
    ActorId src = kNoActor;  // parent-space source actor (kNoActor if
    int src_port = 0;        // the output is a passthrough)
    int passthrough_input = -1;  // >= 0: forwards subsystem input k
  };
  /// For subsystem output port j: where the value comes from.
  std::vector<Output> outputs;
};

/// Copies `inner`'s non-port actors into `parent` with names prefixed
/// `prefix__`, recreates the interior connections, and returns the boundary
/// map.  Inner actor names must stay valid identifiers after prefixing.
/// The inner model does not need to be resolved.
FlattenedSubsystem append_flattened(Model& parent, std::string_view prefix,
                                    const Model& inner);

/// Builder convenience: instantiates `inner` as a subsystem named `name`,
/// wires `inputs` (one per inner Inport, in declaration order) and returns
/// one PortRef per inner Outport.
std::vector<PortRef> instantiate_subsystem(ModelBuilder& builder,
                                           std::string_view name,
                                           const Model& inner,
                                           const std::vector<PortRef>& inputs);

}  // namespace hcg
