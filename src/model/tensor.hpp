// Shape + Tensor: the typed buffers that flow between actors in the
// interpreter oracle and the toolchain harness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "model/datatype.hpp"
#include "support/error.hpp"

namespace hcg {

/// Signal dimensions.  {} is a scalar, {n} a vector, {r, c} a matrix.
struct Shape {
  std::vector<int> dims;

  Shape() = default;
  Shape(std::initializer_list<int> d) : dims(d) {}
  explicit Shape(std::vector<int> d) : dims(std::move(d)) {}

  /// Total element count (1 for scalars).
  int elements() const {
    int n = 1;
    for (int d : dims) n *= d;
    return n;
  }

  bool is_scalar() const { return dims.empty(); }
  int rank() const { return static_cast<int>(dims.size()); }

  bool operator==(const Shape& other) const = default;

  /// "scalar", "1024", "4x4".
  std::string to_string() const;

  /// Parses "scalar" / "" / "1024" / "4x4"; throws hcg::ParseError.
  static Shape parse(std::string_view text);
};

/// A typed, shaped, owning buffer.  Complex tensors store interleaved
/// (re, im) component pairs, so a c64 tensor of n elements owns 2n floats.
class Tensor {
 public:
  Tensor() : type_(DataType::kFloat32) {}
  Tensor(DataType type, Shape shape);

  DataType type() const { return type_; }
  const Shape& shape() const { return shape_; }
  /// Logical element count (complex elements count once).
  int elements() const { return shape_.elements(); }
  /// Size of the raw buffer in bytes.
  std::size_t byte_size() const { return data_.size(); }

  void* data() { return data_.data(); }
  const void* data() const { return data_.data(); }

  template <typename T>
  T* as() {
    return reinterpret_cast<T*>(data_.data());
  }
  template <typename T>
  const T* as() const {
    return reinterpret_cast<const T*>(data_.data());
  }

  /// Element access routed through the runtime type (slow; oracle only).
  double get_double(int index) const;
  void set_double(int index, double value);
  std::int64_t get_int(int index) const;
  void set_int(int index, std::int64_t value);

  void zero() { std::memset(data_.data(), 0, data_.size()); }

  /// Byte-wise equality (same type, shape and contents).
  bool bytes_equal(const Tensor& other) const;

  /// Max |a-b| over all scalar components, treating ints exactly.
  double max_abs_difference(const Tensor& other) const;

 private:
  DataType type_;
  Shape shape_;
  std::vector<std::uint8_t> data_;
};

}  // namespace hcg
