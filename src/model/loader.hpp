// XML model file loader / writer.
//
// Format (the structural equivalent of the actor/port/connection data HCG
// extracts from Simulink's zipped-XML .slx files):
//
//   <model name="fir">
//     <actor name="x"    type="Inport"   dtype="i32" shape="1024"/>
//     <actor name="taps" type="Constant" dtype="i32" shape="1024" value="7"/>
//     <actor name="m"    type="Mul"/>
//     <actor name="y"    type="Outport"/>
//     <connect from="x"      to="m:0"/>
//     <connect from="taps"   to="m:1"/>
//     <connect from="m"      to="y"/>
//   </model>
//
// Every <actor> attribute other than name/type becomes an actor parameter;
// <param name="..." value="..."/> children are accepted as well.  Connection
// endpoints are "actor" (port 0) or "actor:N".
//
// Hierarchy: an actor of type "Subsystem" carries a nested <model> element
// and is flattened at load time (see model/subsystem.hpp) — its inner
// actors join the parent under "name__" prefixes, and connections to the
// subsystem's ports are rerouted across the boundary:
//
//   <actor name="filt" type="Subsystem">
//     <model name="filt_impl">
//       <actor name="in0" type="Inport" dtype="f32" shape="64"/>
//       <actor name="neg" type="Gain" gain="-1"/>
//       <actor name="out0" type="Outport"/>
//       <connect from="in0" to="neg"/>
//       <connect from="neg" to="out0"/>
//     </model>
//   </actor>
//   <connect from="x" to="filt:0"/>
//   <connect from="filt:0" to="y"/>
#pragma once

#include <filesystem>
#include <string_view>

#include "model/model.hpp"

namespace hcg {

/// Parses a model from XML text; throws hcg::ParseError / hcg::ModelError.
Model load_model(std::string_view xml_text);

/// Parses the model file at `path`.
Model load_model_file(const std::filesystem::path& path);

/// Serializes a model back to the XML format accepted by load_model().
std::string model_to_xml(const Model& model);

}  // namespace hcg
