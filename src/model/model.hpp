// The Simulink-like model intermediate representation.
//
// A model is a directed graph of actors.  Each actor has a type (the string
// Simulink calls the "block type": "Add", "FFT", "Inport", ...), a unique
// name, a parameter map, and — once the model has been resolved against the
// actor registry — typed/shaped input and output ports.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "model/datatype.hpp"
#include "model/tensor.hpp"

namespace hcg {

using ActorId = int;
inline constexpr ActorId kNoActor = -1;

/// A resolved port: element type + dimensions.
struct PortSpec {
  DataType type = DataType::kFloat32;
  Shape shape;

  bool operator==(const PortSpec&) const = default;
  std::string to_string() const {
    return std::string(short_name(type)) + "[" + shape.to_string() + "]";
  }
};

class Actor {
 public:
  Actor(ActorId id, std::string name, std::string type)
      : id_(id), name_(std::move(name)), type_(std::move(type)) {}

  ActorId id() const { return id_; }
  const std::string& name() const { return name_; }
  const std::string& type() const { return type_; }

  // ---- parameters --------------------------------------------------------
  bool has_param(std::string_view key) const;
  /// Throws hcg::ModelError if the parameter is absent.
  const std::string& param(std::string_view key) const;
  std::string param_or(std::string_view key, std::string_view fallback) const;
  long long int_param(std::string_view key) const;
  long long int_param_or(std::string_view key, long long fallback) const;
  double double_param_or(std::string_view key, double fallback) const;
  void set_param(std::string_view key, std::string_view value);
  const std::map<std::string, std::string>& params() const { return params_; }

  // ---- resolved ports (populated by hcg::actors::resolve_model) ----------
  bool is_resolved() const { return resolved_; }
  void set_ports(std::vector<PortSpec> inputs, std::vector<PortSpec> outputs) {
    inputs_ = std::move(inputs);
    outputs_ = std::move(outputs);
    resolved_ = true;
  }
  int input_count() const { return static_cast<int>(inputs_.size()); }
  int output_count() const { return static_cast<int>(outputs_.size()); }
  const PortSpec& input(int port) const;
  const PortSpec& output(int port) const;
  const std::vector<PortSpec>& inputs() const { return inputs_; }
  const std::vector<PortSpec>& outputs() const { return outputs_; }

 private:
  ActorId id_;
  std::string name_;
  std::string type_;
  std::map<std::string, std::string> params_;
  std::vector<PortSpec> inputs_;
  std::vector<PortSpec> outputs_;
  bool resolved_ = false;
};

/// A directed wire from (src actor, src output port) to
/// (dst actor, dst input port).
struct Connection {
  ActorId src = kNoActor;
  int src_port = 0;
  ActorId dst = kNoActor;
  int dst_port = 0;

  bool operator==(const Connection&) const = default;
};

class Model {
 public:
  explicit Model(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Adds an actor; names must be unique C identifiers.
  /// Returns the new actor's id.
  ActorId add_actor(std::string_view name, std::string_view type);

  /// Connects src's output port to dst's input port.  Each input port
  /// accepts exactly one incoming connection (checked here); outputs fan out.
  void connect(ActorId src, int src_port, ActorId dst, int dst_port);

  /// Re-points the existing connection feeding (dst, dst_port) at a new
  /// source.  Used by graph-rewriting passes (lane narrowing) to splice an
  /// actor into a wire; throws hcg::ModelError when the port has no
  /// incoming connection.
  void rewire_input(ActorId dst, int dst_port, ActorId new_src,
                    int new_src_port);

  int actor_count() const { return static_cast<int>(actors_.size()); }
  Actor& actor(ActorId id);
  const Actor& actor(ActorId id) const;
  const std::vector<Actor>& actors() const { return actors_; }
  std::vector<Actor>& actors() { return actors_; }

  /// Finds an actor by name; returns kNoActor if absent.
  ActorId find_actor(std::string_view name) const;
  /// Finds an actor by name; throws hcg::ModelError if absent.
  const Actor& actor_by_name(std::string_view name) const;

  const std::vector<Connection>& connections() const { return connections_; }

  /// The single connection feeding (dst, dst_port), if any.
  std::optional<Connection> incoming(ActorId dst, int dst_port) const;
  /// All connections leaving (src, src_port).
  std::vector<Connection> outgoing(ActorId src, int src_port) const;
  /// All connections leaving any output port of `src`.
  std::vector<Connection> outgoing_all(ActorId src) const;

  /// Inport actors in declaration order — the external inputs of the model.
  std::vector<ActorId> inports() const;
  /// Outport actors in declaration order — the external outputs.
  std::vector<ActorId> outports() const;

  /// Actors of a given type, in declaration order.
  std::vector<ActorId> actors_of_type(std::string_view type) const;

 private:
  std::string name_;
  std::vector<Actor> actors_;
  std::vector<Connection> connections_;
};

}  // namespace hcg
