#include "model/subsystem.hpp"

#include <map>

#include "support/error.hpp"

namespace hcg {

FlattenedSubsystem append_flattened(Model& parent, std::string_view prefix,
                                    const Model& inner) {
  const std::vector<ActorId> in_ports = inner.inports();
  const std::vector<ActorId> out_ports = inner.outports();

  // Copy computational actors under the prefix.
  std::map<ActorId, ActorId> clone_of;
  for (const Actor& actor : inner.actors()) {
    if (actor.type() == "Inport" || actor.type() == "Outport") continue;
    const std::string name = std::string(prefix) + "__" + actor.name();
    const ActorId id = parent.add_actor(name, actor.type());
    for (const auto& [key, value] : actor.params()) {
      parent.actor(id).set_param(key, value);
    }
    clone_of[actor.id()] = id;
  }

  auto inport_index = [&](ActorId id) {
    for (size_t k = 0; k < in_ports.size(); ++k) {
      if (in_ports[k] == id) return static_cast<int>(k);
    }
    return -1;
  };

  FlattenedSubsystem boundary;
  boundary.input_targets.resize(in_ports.size());

  // Interior connections; wires leaving an Inport become boundary targets.
  for (const Connection& c : inner.connections()) {
    const Actor& src = inner.actor(c.src);
    const Actor& dst = inner.actor(c.dst);
    if (dst.type() == "Outport") continue;  // handled below
    if (src.type() == "Inport") {
      boundary.input_targets[static_cast<size_t>(inport_index(c.src))]
          .emplace_back(clone_of.at(c.dst), c.dst_port);
    } else {
      parent.connect(clone_of.at(c.src), c.src_port, clone_of.at(c.dst),
                     c.dst_port);
    }
  }

  // Output boundary: each inner Outport's feeding wire.
  for (ActorId out : out_ports) {
    auto conn = inner.incoming(out, 0);
    if (!conn) {
      throw ModelError("subsystem '" + std::string(prefix) +
                       "': inner Outport '" + inner.actor(out).name() +
                       "' is unconnected");
    }
    FlattenedSubsystem::Output entry;
    const Actor& src = inner.actor(conn->src);
    if (src.type() == "Inport") {
      entry.passthrough_input = inport_index(conn->src);
    } else {
      entry.src = clone_of.at(conn->src);
      entry.src_port = conn->src_port;
    }
    boundary.outputs.push_back(entry);
  }
  return boundary;
}

std::vector<PortRef> instantiate_subsystem(ModelBuilder& builder,
                                           std::string_view name,
                                           const Model& inner,
                                           const std::vector<PortRef>& inputs) {
  Model& parent = builder.model();
  FlattenedSubsystem boundary = append_flattened(parent, name, inner);
  if (inputs.size() != boundary.input_targets.size()) {
    throw ModelError("subsystem '" + std::string(name) + "' expects " +
                     std::to_string(boundary.input_targets.size()) +
                     " inputs, got " + std::to_string(inputs.size()));
  }
  for (size_t k = 0; k < inputs.size(); ++k) {
    for (const auto& [actor, port] : boundary.input_targets[k]) {
      parent.connect(inputs[k].actor, inputs[k].port, actor, port);
    }
  }
  std::vector<PortRef> outputs;
  for (const FlattenedSubsystem::Output& out : boundary.outputs) {
    if (out.passthrough_input >= 0) {
      outputs.push_back(inputs.at(static_cast<size_t>(out.passthrough_input)));
    } else {
      outputs.push_back(PortRef{out.src, out.src_port});
    }
  }
  return outputs;
}

}  // namespace hcg
