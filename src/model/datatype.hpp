// Scalar element types carried by model signals.
//
// kComplex64 is a pair of float32 (re, im) stored interleaved; it is the
// element type of FFT-family signals.  Batch (element-wise) actors never
// operate on complex data, matching the paper's Table 1.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace hcg {

enum class DataType : std::uint8_t {
  kInt8,
  kInt16,
  kInt32,
  kInt64,
  kUInt8,
  kUInt16,
  kUInt32,
  kUInt64,
  kFloat32,
  kFloat64,
  kComplex64,   // 2 x float32, interleaved
  kComplex128,  // 2 x float64, interleaved
};

/// Size of one element in bits (kComplex64 = 64).
int bit_width(DataType type);

/// Size of one element in bytes.
int byte_width(DataType type);

bool is_float(DataType type);
bool is_signed_int(DataType type);
bool is_unsigned_int(DataType type);
bool is_integer(DataType type);
bool is_complex(DataType type);

/// Short mnemonic used in model files and .isa tables: "i32", "f32", "c64"...
std::string_view short_name(DataType type);

/// The C type emitted into generated code: "int32_t", "float", ...
/// Complex types map to their scalar component ("float"); generated code
/// treats complex buffers as interleaved scalar arrays.
std::string_view c_name(DataType type);

/// Inverse of short_name(); throws hcg::ParseError on unknown names.
DataType parse_datatype(std::string_view name);

/// The scalar component of a complex type (c64 -> f32); identity otherwise.
DataType component_type(DataType type);

}  // namespace hcg
