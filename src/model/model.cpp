#include "model/model.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"

namespace hcg {

// ---------------------------------------------------------------------------
// Actor
// ---------------------------------------------------------------------------

bool Actor::has_param(std::string_view key) const {
  return params_.find(std::string(key)) != params_.end();
}

const std::string& Actor::param(std::string_view key) const {
  auto it = params_.find(std::string(key));
  if (it == params_.end()) {
    throw ModelError("actor '" + name_ + "' (" + type_ +
                     ") missing parameter '" + std::string(key) + "'");
  }
  return it->second;
}

std::string Actor::param_or(std::string_view key,
                            std::string_view fallback) const {
  auto it = params_.find(std::string(key));
  return it == params_.end() ? std::string(fallback) : it->second;
}

long long Actor::int_param(std::string_view key) const {
  return parse_int(param(key));
}

long long Actor::int_param_or(std::string_view key, long long fallback) const {
  if (!has_param(key)) return fallback;
  return parse_int(param(key));
}

double Actor::double_param_or(std::string_view key, double fallback) const {
  if (!has_param(key)) return fallback;
  return parse_double(param(key));
}

void Actor::set_param(std::string_view key, std::string_view value) {
  params_[std::string(key)] = std::string(value);
}

const PortSpec& Actor::input(int port) const {
  if (port < 0 || port >= input_count()) {
    throw ModelError("actor '" + name_ + "' has no input port " +
                     std::to_string(port));
  }
  return inputs_[static_cast<size_t>(port)];
}

const PortSpec& Actor::output(int port) const {
  if (port < 0 || port >= output_count()) {
    throw ModelError("actor '" + name_ + "' has no output port " +
                     std::to_string(port));
  }
  return outputs_[static_cast<size_t>(port)];
}

// ---------------------------------------------------------------------------
// Model
// ---------------------------------------------------------------------------

ActorId Model::add_actor(std::string_view name, std::string_view type) {
  if (!is_identifier(name)) {
    throw ModelError("actor name '" + std::string(name) +
                     "' is not a valid C identifier");
  }
  if (find_actor(name) != kNoActor) {
    throw ModelError("duplicate actor name '" + std::string(name) + "'");
  }
  ActorId id = static_cast<ActorId>(actors_.size());
  actors_.emplace_back(id, std::string(name), std::string(type));
  return id;
}

void Model::connect(ActorId src, int src_port, ActorId dst, int dst_port) {
  if (src < 0 || src >= actor_count() || dst < 0 || dst >= actor_count()) {
    throw ModelError("connect: actor id out of range");
  }
  if (src_port < 0 || dst_port < 0) {
    throw ModelError("connect: negative port index");
  }
  for (const Connection& c : connections_) {
    if (c.dst == dst && c.dst_port == dst_port) {
      throw ModelError("input port " + std::to_string(dst_port) +
                       " of actor '" + actor(dst).name() +
                       "' already has an incoming connection");
    }
  }
  connections_.push_back(Connection{src, src_port, dst, dst_port});
}

void Model::rewire_input(ActorId dst, int dst_port, ActorId new_src,
                         int new_src_port) {
  if (new_src < 0 || new_src >= actor_count()) {
    throw ModelError("rewire_input: actor id out of range");
  }
  for (Connection& c : connections_) {
    if (c.dst == dst && c.dst_port == dst_port) {
      c.src = new_src;
      c.src_port = new_src_port;
      return;
    }
  }
  throw ModelError("rewire_input: input port " + std::to_string(dst_port) +
                   " of actor '" + actor(dst).name() +
                   "' has no incoming connection");
}

Actor& Model::actor(ActorId id) {
  if (id < 0 || id >= actor_count()) {
    throw ModelError("actor id out of range: " + std::to_string(id));
  }
  return actors_[static_cast<size_t>(id)];
}

const Actor& Model::actor(ActorId id) const {
  if (id < 0 || id >= actor_count()) {
    throw ModelError("actor id out of range: " + std::to_string(id));
  }
  return actors_[static_cast<size_t>(id)];
}

ActorId Model::find_actor(std::string_view name) const {
  for (const Actor& a : actors_) {
    if (a.name() == name) return a.id();
  }
  return kNoActor;
}

const Actor& Model::actor_by_name(std::string_view name) const {
  ActorId id = find_actor(name);
  if (id == kNoActor) {
    throw ModelError("no actor named '" + std::string(name) + "'");
  }
  return actor(id);
}

std::optional<Connection> Model::incoming(ActorId dst, int dst_port) const {
  for (const Connection& c : connections_) {
    if (c.dst == dst && c.dst_port == dst_port) return c;
  }
  return std::nullopt;
}

std::vector<Connection> Model::outgoing(ActorId src, int src_port) const {
  std::vector<Connection> out;
  for (const Connection& c : connections_) {
    if (c.src == src && c.src_port == src_port) out.push_back(c);
  }
  return out;
}

std::vector<Connection> Model::outgoing_all(ActorId src) const {
  std::vector<Connection> out;
  for (const Connection& c : connections_) {
    if (c.src == src) out.push_back(c);
  }
  return out;
}

std::vector<ActorId> Model::inports() const { return actors_of_type("Inport"); }

std::vector<ActorId> Model::outports() const {
  return actors_of_type("Outport");
}

std::vector<ActorId> Model::actors_of_type(std::string_view type) const {
  std::vector<ActorId> out;
  for (const Actor& a : actors_) {
    if (a.type() == type) out.push_back(a.id());
  }
  return out;
}

}  // namespace hcg
