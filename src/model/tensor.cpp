#include "model/tensor.hpp"

#include <cmath>

#include "support/strings.hpp"

namespace hcg {

std::string Shape::to_string() const {
  if (dims.empty()) return "scalar";
  std::string out;
  for (size_t i = 0; i < dims.size(); ++i) {
    if (i > 0) out += "x";
    out += std::to_string(dims[i]);
  }
  return out;
}

Shape Shape::parse(std::string_view text) {
  text = trim(text);
  if (text.empty() || text == "scalar") return Shape{};
  Shape shape;
  for (const std::string& piece : split(text, 'x')) {
    long long d = parse_int(piece);
    if (d <= 0) throw ParseError("shape dimension must be positive: '" +
                                 std::string(text) + "'");
    shape.dims.push_back(static_cast<int>(d));
  }
  return shape;
}

Tensor::Tensor(DataType type, Shape shape)
    : type_(type), shape_(std::move(shape)) {
  data_.assign(static_cast<std::size_t>(shape_.elements()) *
                   static_cast<std::size_t>(byte_width(type_)),
               0);
}

namespace {
template <typename T>
double load_as_double(const void* p, int i) {
  T v;
  std::memcpy(&v, static_cast<const T*>(p) + i, sizeof(T));
  return static_cast<double>(v);
}
template <typename T>
void store_from_double(void* p, int i, double value) {
  T v = static_cast<T>(value);
  std::memcpy(static_cast<T*>(p) + i, &v, sizeof(T));
}
}  // namespace

double Tensor::get_double(int index) const {
  require(index >= 0 && index < elements(), "Tensor::get_double out of range");
  switch (type_) {
    case DataType::kInt8: return load_as_double<std::int8_t>(data(), index);
    case DataType::kInt16: return load_as_double<std::int16_t>(data(), index);
    case DataType::kInt32: return load_as_double<std::int32_t>(data(), index);
    case DataType::kInt64: return load_as_double<std::int64_t>(data(), index);
    case DataType::kUInt8: return load_as_double<std::uint8_t>(data(), index);
    case DataType::kUInt16: return load_as_double<std::uint16_t>(data(), index);
    case DataType::kUInt32: return load_as_double<std::uint32_t>(data(), index);
    case DataType::kUInt64: return load_as_double<std::uint64_t>(data(), index);
    case DataType::kFloat32: return load_as_double<float>(data(), index);
    case DataType::kFloat64: return load_as_double<double>(data(), index);
    default:
      throw InternalError("get_double on complex tensor; use as<float>()");
  }
}

void Tensor::set_double(int index, double value) {
  require(index >= 0 && index < elements(), "Tensor::set_double out of range");
  switch (type_) {
    case DataType::kInt8: store_from_double<std::int8_t>(data(), index, value); return;
    case DataType::kInt16: store_from_double<std::int16_t>(data(), index, value); return;
    case DataType::kInt32: store_from_double<std::int32_t>(data(), index, value); return;
    case DataType::kInt64: store_from_double<std::int64_t>(data(), index, value); return;
    case DataType::kUInt8: store_from_double<std::uint8_t>(data(), index, value); return;
    case DataType::kUInt16: store_from_double<std::uint16_t>(data(), index, value); return;
    case DataType::kUInt32: store_from_double<std::uint32_t>(data(), index, value); return;
    case DataType::kUInt64: store_from_double<std::uint64_t>(data(), index, value); return;
    case DataType::kFloat32: store_from_double<float>(data(), index, value); return;
    case DataType::kFloat64: store_from_double<double>(data(), index, value); return;
    default:
      throw InternalError("set_double on complex tensor; use as<float>()");
  }
}

std::int64_t Tensor::get_int(int index) const {
  require(is_integer(type_), "get_int on non-integer tensor");
  return static_cast<std::int64_t>(get_double(index));
}

void Tensor::set_int(int index, std::int64_t value) {
  require(is_integer(type_), "set_int on non-integer tensor");
  set_double(index, static_cast<double>(value));
}

bool Tensor::bytes_equal(const Tensor& other) const {
  return type_ == other.type_ && shape_ == other.shape_ &&
         data_ == other.data_;
}

double Tensor::max_abs_difference(const Tensor& other) const {
  require(type_ == other.type_ && shape_ == other.shape_,
          "max_abs_difference: tensor type/shape mismatch");
  const int components = is_complex(type_) ? elements() * 2 : elements();
  const DataType comp = component_type(type_);
  double max_diff = 0.0;
  for (int i = 0; i < components; ++i) {
    double a, b;
    if (comp == DataType::kFloat32) {
      a = as<float>()[i];
      b = other.as<float>()[i];
    } else if (comp == DataType::kFloat64) {
      a = as<double>()[i];
      b = other.as<double>()[i];
    } else {
      a = get_double(i);
      b = other.get_double(i);
    }
    max_diff = std::max(max_diff, std::fabs(a - b));
  }
  return max_diff;
}

}  // namespace hcg
