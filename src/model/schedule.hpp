// Schedule analysis: step ② of the code-generation pipeline.
//
// Produces the deterministic topological firing order of the model's actors.
// Outgoing edges of delay actors (UnitDelay) are not dependency edges — a
// delay's output for the current step is its stored state, so feedback loops
// through a delay are legal; any other cycle is a ModelError.
#pragma once

#include <string>
#include <vector>

#include "model/model.hpp"

namespace hcg {

/// Actor types whose outputs do not depend on their same-step inputs.
bool is_delay_type(const std::string& type);

/// Returns all actors in a valid firing order.  Ties are broken by actor id,
/// so the schedule is deterministic.  Throws hcg::ModelError on an
/// un-breakable cycle, naming the actors involved.
std::vector<ActorId> schedule(const Model& model);

}  // namespace hcg
