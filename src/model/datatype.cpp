#include "model/datatype.hpp"

#include "support/error.hpp"

namespace hcg {

int bit_width(DataType type) {
  switch (type) {
    case DataType::kInt8:
    case DataType::kUInt8: return 8;
    case DataType::kInt16:
    case DataType::kUInt16: return 16;
    case DataType::kInt32:
    case DataType::kUInt32:
    case DataType::kFloat32: return 32;
    case DataType::kInt64:
    case DataType::kUInt64:
    case DataType::kFloat64:
    case DataType::kComplex64: return 64;
    case DataType::kComplex128: return 128;
  }
  throw InternalError("bit_width: bad DataType");
}

int byte_width(DataType type) { return bit_width(type) / 8; }

bool is_float(DataType type) {
  return type == DataType::kFloat32 || type == DataType::kFloat64;
}

bool is_signed_int(DataType type) {
  switch (type) {
    case DataType::kInt8:
    case DataType::kInt16:
    case DataType::kInt32:
    case DataType::kInt64: return true;
    default: return false;
  }
}

bool is_unsigned_int(DataType type) {
  switch (type) {
    case DataType::kUInt8:
    case DataType::kUInt16:
    case DataType::kUInt32:
    case DataType::kUInt64: return true;
    default: return false;
  }
}

bool is_integer(DataType type) {
  return is_signed_int(type) || is_unsigned_int(type);
}

bool is_complex(DataType type) {
  return type == DataType::kComplex64 || type == DataType::kComplex128;
}

std::string_view short_name(DataType type) {
  switch (type) {
    case DataType::kInt8: return "i8";
    case DataType::kInt16: return "i16";
    case DataType::kInt32: return "i32";
    case DataType::kInt64: return "i64";
    case DataType::kUInt8: return "u8";
    case DataType::kUInt16: return "u16";
    case DataType::kUInt32: return "u32";
    case DataType::kUInt64: return "u64";
    case DataType::kFloat32: return "f32";
    case DataType::kFloat64: return "f64";
    case DataType::kComplex64: return "c64";
    case DataType::kComplex128: return "c128";
  }
  throw InternalError("short_name: bad DataType");
}

std::string_view c_name(DataType type) {
  switch (type) {
    case DataType::kInt8: return "int8_t";
    case DataType::kInt16: return "int16_t";
    case DataType::kInt32: return "int32_t";
    case DataType::kInt64: return "int64_t";
    case DataType::kUInt8: return "uint8_t";
    case DataType::kUInt16: return "uint16_t";
    case DataType::kUInt32: return "uint32_t";
    case DataType::kUInt64: return "uint64_t";
    case DataType::kFloat32: return "float";
    case DataType::kFloat64: return "double";
    case DataType::kComplex64: return "float";
    case DataType::kComplex128: return "double";
  }
  throw InternalError("c_name: bad DataType");
}

DataType parse_datatype(std::string_view name) {
  if (name == "i8") return DataType::kInt8;
  if (name == "i16") return DataType::kInt16;
  if (name == "i32") return DataType::kInt32;
  if (name == "i64") return DataType::kInt64;
  if (name == "u8") return DataType::kUInt8;
  if (name == "u16") return DataType::kUInt16;
  if (name == "u32") return DataType::kUInt32;
  if (name == "u64") return DataType::kUInt64;
  if (name == "f32") return DataType::kFloat32;
  if (name == "f64") return DataType::kFloat64;
  if (name == "c64") return DataType::kComplex64;
  if (name == "c128") return DataType::kComplex128;
  throw ParseError("unknown data type '" + std::string(name) + "'");
}

DataType component_type(DataType type) {
  if (type == DataType::kComplex64) return DataType::kFloat32;
  if (type == DataType::kComplex128) return DataType::kFloat64;
  return type;
}

}  // namespace hcg
