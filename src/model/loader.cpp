#include "model/loader.hpp"

#include <map>

#include "model/subsystem.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/fileio.hpp"
#include "support/strings.hpp"
#include "xml/xml.hpp"

namespace hcg {

namespace {

/// Splits "actor" / "actor:N" into (name, port).
std::pair<std::string, int> split_endpoint(std::string_view text) {
  std::string_view name = text;
  int port = 0;
  const size_t colon = text.find(':');
  if (colon != std::string_view::npos) {
    name = text.substr(0, colon);
    port = static_cast<int>(parse_int(text.substr(colon + 1)));
  }
  return {std::string(trim(name)), port};
}

Model model_from_element(const xml::Element& root);

/// Loader state for one <model> element, including flattened subsystems.
class ModelAssembler {
 public:
  explicit ModelAssembler(const xml::Element& root)
      : model_(root.attribute("name")) {
    for (const xml::Element* e : root.find_children("actor")) {
      const std::string name = e->attribute("name");
      const std::string type = e->attribute("type");
      if (type == "Subsystem") {
        const xml::Element* inner_element = e->find_child("model");
        if (inner_element == nullptr) {
          throw ModelError("subsystem '" + name +
                           "' needs a nested <model> element");
        }
        const Model inner = model_from_element(*inner_element);
        subsystems_.emplace(name, append_flattened(model_, name, inner));
        continue;
      }
      const ActorId id = model_.add_actor(name, type);
      Actor& actor = model_.actor(id);
      for (const auto& [key, value] : e->attributes()) {
        if (key == "name" || key == "type") continue;
        actor.set_param(key, value);
      }
      for (const xml::Element* p : e->find_children("param")) {
        actor.set_param(p->attribute("name"), p->attribute("value"));
      }
    }

    // Gather raw wires first: passthrough resolution may need the wire that
    // feeds a subsystem input before the wire leaving its output is seen.
    for (const xml::Element* e : root.find_children("connect")) {
      RawConnection raw{split_endpoint(e->attribute("from")),
                        split_endpoint(e->attribute("to"))};
      if (subsystems_.count(raw.to.first)) {
        feeding_[raw.to] = raw.from;
      }
      raw_.push_back(std::move(raw));
    }

    for (const RawConnection& raw : raw_) {
      const auto [src, src_port] = resolve_source(raw.from, 0);
      for (const auto& [dst, dst_port] : resolve_targets(raw.to)) {
        model_.connect(src, src_port, dst, dst_port);
      }
    }
  }

  Model take() { return std::move(model_); }

 private:
  using Endpoint = std::pair<std::string, int>;

  struct RawConnection {
    Endpoint from;
    Endpoint to;
  };

  /// The real (actor, port) producing the value at `from`, following
  /// subsystem output passthroughs.
  std::pair<ActorId, int> resolve_source(const Endpoint& from, int depth) {
    if (depth > 64) {
      throw ModelError("subsystem passthrough chain too deep at '" +
                       from.first + "'");
    }
    auto sub = subsystems_.find(from.first);
    if (sub == subsystems_.end()) {
      const ActorId id = model_.find_actor(from.first);
      if (id == kNoActor) {
        throw ModelError("connection references unknown actor '" +
                         from.first + "'");
      }
      return {id, from.second};
    }
    const auto& outputs = sub->second.outputs;
    if (from.second < 0 || from.second >= static_cast<int>(outputs.size())) {
      throw ModelError("subsystem '" + from.first + "' has no output port " +
                       std::to_string(from.second));
    }
    const FlattenedSubsystem::Output& out =
        outputs[static_cast<size_t>(from.second)];
    if (out.passthrough_input < 0) return {out.src, out.src_port};
    // Pure passthrough: chase the wire feeding that subsystem input.
    auto fed = feeding_.find(Endpoint{from.first, out.passthrough_input});
    if (fed == feeding_.end()) {
      throw ModelError("subsystem '" + from.first + "' input " +
                       std::to_string(out.passthrough_input) +
                       " is unconnected but its output passes it through");
    }
    return resolve_source(fed->second, depth + 1);
  }

  /// The (actor, input port) pairs the wire into `to` must reach.
  std::vector<std::pair<ActorId, int>> resolve_targets(const Endpoint& to) {
    auto sub = subsystems_.find(to.first);
    if (sub == subsystems_.end()) {
      const ActorId id = model_.find_actor(to.first);
      if (id == kNoActor) {
        throw ModelError("connection references unknown actor '" + to.first +
                         "'");
      }
      return {{id, to.second}};
    }
    const auto& inputs = sub->second.input_targets;
    if (to.second < 0 || to.second >= static_cast<int>(inputs.size())) {
      throw ModelError("subsystem '" + to.first + "' has no input port " +
                       std::to_string(to.second));
    }
    // Pure-passthrough inputs legitimately have zero interior targets; the
    // consumer side resolves through resolve_source.
    return inputs[static_cast<size_t>(to.second)];
  }

  Model model_;
  std::map<std::string, FlattenedSubsystem> subsystems_;
  std::map<Endpoint, Endpoint> feeding_;
  std::vector<RawConnection> raw_;
};

Model model_from_element(const xml::Element& root) {
  if (root.name() != "model") {
    throw ParseError("model element must be <model>, got <" + root.name() +
                     ">");
  }
  return ModelAssembler(root).take();
}

}  // namespace

Model load_model(std::string_view xml_text) {
  HCG_TRACE_SCOPE("model.load");
  static obs::Counter& loads_metric =
      obs::Registry::instance().counter("model.loads");
  static obs::Counter& actors_metric =
      obs::Registry::instance().counter("model.actors_loaded");
  xml::Document doc = xml::parse(xml_text);
  Model model = model_from_element(doc.root());
  loads_metric.add();
  actors_metric.add(static_cast<std::uint64_t>(model.actor_count()));
  return model;
}

Model load_model_file(const std::filesystem::path& path) {
  HCG_TRACE_SCOPE("model.load_file");
  return load_model(read_file(path));
}

std::string model_to_xml(const Model& model) {
  xml::Element root("model");
  root.set_attribute("name", model.name());
  for (const Actor& a : model.actors()) {
    xml::Element& e = root.add_child("actor");
    e.set_attribute("name", a.name());
    e.set_attribute("type", a.type());
    for (const auto& [key, value] : a.params()) {
      e.set_attribute(key, value);
    }
  }
  for (const Connection& c : model.connections()) {
    xml::Element& e = root.add_child("connect");
    e.set_attribute("from", model.actor(c.src).name() + ":" +
                                std::to_string(c.src_port));
    e.set_attribute("to", model.actor(c.dst).name() + ":" +
                              std::to_string(c.dst_port));
  }
  return "<?xml version=\"1.0\"?>\n" + root.to_string();
}

}  // namespace hcg
