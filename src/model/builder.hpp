// Fluent programmatic construction of models.
//
// ModelBuilder is the API most tests, examples and benchmark models use;
// the XML loader (loader.hpp) produces the same Model structure from files.
#pragma once

#include <initializer_list>
#include <string_view>
#include <vector>

#include "model/model.hpp"

namespace hcg {

/// A (actor, output port) handle used to wire actors together.
struct PortRef {
  ActorId actor = kNoActor;
  int port = 0;
};

class ModelBuilder {
 public:
  explicit ModelBuilder(std::string_view name) : model_(std::string(name)) {}

  /// Adds an external input of the given element type and shape.
  PortRef inport(std::string_view name, DataType type, Shape shape);

  /// Adds a constant source.  `value` is either a single literal replicated
  /// across the shape ("7", "0.5") or a comma-separated list ("1,2,3,4").
  PortRef constant(std::string_view name, DataType type, Shape shape,
                   std::string_view value);

  /// Adds an actor of arbitrary type wired to `inputs` (in port order).
  PortRef actor(std::string_view name, std::string_view type,
                std::initializer_list<PortRef> inputs,
                std::initializer_list<std::pair<std::string_view,
                                                std::string_view>> params = {});
  PortRef actor(std::string_view name, std::string_view type,
                const std::vector<PortRef>& inputs,
                std::initializer_list<std::pair<std::string_view,
                                                std::string_view>> params = {});

  /// Adds an external output fed by `src`.
  void outport(std::string_view name, PortRef src);

  /// Output port `port` of the same actor (for multi-output actors).
  static PortRef output_of(PortRef ref, int port) {
    return PortRef{ref.actor, port};
  }

  Model& model() { return model_; }

  /// Finishes construction and returns the model by value.
  Model take() { return std::move(model_); }

 private:
  Model model_;
};

}  // namespace hcg
