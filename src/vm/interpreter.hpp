// Direct model interpreter.
//
// Executes a resolved model step-by-step using the actor reference semantics
// (actors/exec.hpp).  This is the ground truth every code generator's output
// is validated against, and the stand-in for Simulink's own simulation
// engine.
#pragma once

#include <vector>

#include "actors/exec.hpp"
#include "model/model.hpp"
#include "model/tensor.hpp"

namespace hcg {

class Interpreter {
 public:
  /// The model must outlive the interpreter and must be resolved.
  explicit Interpreter(const Model& model);

  /// Resets delay state to zero (the implicit state after model load).
  void init();

  /// Runs one synchronous step.  `inputs` carries one tensor per Inport in
  /// declaration order (types/shapes must match); the result has one tensor
  /// per Outport in declaration order.
  std::vector<Tensor> step(const std::vector<Tensor>& inputs);

  /// The value most recently produced on (actor, port) — for debugging and
  /// white-box tests.  Valid after a step() call.
  const Tensor& value(ActorId actor, int port) const;

 private:
  const Model& model_;
  std::vector<ActorId> order_;
  // One output buffer per (actor, output port).
  std::vector<std::vector<Tensor>> values_;
  ExecState state_;
};

}  // namespace hcg
