#include "vm/interpreter.hpp"

#include "model/schedule.hpp"
#include "support/error.hpp"

namespace hcg {

Interpreter::Interpreter(const Model& model)
    : model_(model), order_(schedule(model)) {
  values_.resize(static_cast<size_t>(model.actor_count()));
  for (const Actor& actor : model.actors()) {
    require(actor.is_resolved(), "Interpreter: model must be resolved");
    auto& slots = values_[static_cast<size_t>(actor.id())];
    for (const PortSpec& out : actor.outputs()) slots.push_back(make_tensor(out));
  }
  state_.init(model_);
}

void Interpreter::init() { state_.init(model_); }

std::vector<Tensor> Interpreter::step(const std::vector<Tensor>& inputs) {
  const std::vector<ActorId> ins = model_.inports();
  if (inputs.size() != ins.size()) {
    throw ModelError("Interpreter::step: expected " +
                     std::to_string(ins.size()) + " inputs, got " +
                     std::to_string(inputs.size()));
  }
  for (size_t i = 0; i < ins.size(); ++i) {
    const Actor& port = model_.actor(ins[i]);
    if (inputs[i].type() != port.output(0).type ||
        !(inputs[i].shape() == port.output(0).shape)) {
      throw ModelError("Interpreter::step: input " + std::to_string(i) +
                       " does not match Inport '" + port.name() + "' (" +
                       port.output(0).to_string() + ")");
    }
  }

  std::vector<Tensor> results;

  // Phase 0: every delay emits its stored state before anything fires, so
  // consumers scheduled ahead of the delay see the previous-step value.
  for (const Actor& actor : model_.actors()) {
    if (actor.type() != "UnitDelay") continue;
    const Tensor& reg = state_.delay.at(actor.id());
    std::memcpy(values_[static_cast<size_t>(actor.id())][0].data(), reg.data(),
                reg.byte_size());
  }

  size_t next_in = 0;
  for (ActorId id : order_) {
    const Actor& actor = model_.actor(id);
    if (actor.type() == "UnitDelay") continue;  // handled in phase 0 / end

    if (actor.type() == "Inport") {
      // Find this inport's index in declaration order.
      size_t index = 0;
      for (size_t i = 0; i < ins.size(); ++i) {
        if (ins[i] == id) index = i;
      }
      (void)next_in;
      std::memcpy(values_[static_cast<size_t>(id)][0].data(),
                  inputs[index].data(), inputs[index].byte_size());
      continue;
    }

    std::vector<const Tensor*> in_ptrs;
    for (int port = 0; port < actor.input_count(); ++port) {
      auto conn = model_.incoming(id, port);
      require(conn.has_value(), "Interpreter: unconnected input survived resolve");
      in_ptrs.push_back(
          &values_[static_cast<size_t>(conn->src)][static_cast<size_t>(conn->src_port)]);
    }

    if (actor.type() == "Outport") {
      results.push_back(*in_ptrs[0]);
      continue;
    }

    std::vector<Tensor*> out_ptrs;
    for (int port = 0; port < actor.output_count(); ++port) {
      out_ptrs.push_back(&values_[static_cast<size_t>(id)][static_cast<size_t>(port)]);
    }
    exec_actor(model_, id, in_ptrs, out_ptrs, state_);
  }

  // End-of-step phase: latch every delay's input into its state register so
  // same-step feedback loops observed consistent (previous-step) values.
  for (const Actor& actor : model_.actors()) {
    if (actor.type() != "UnitDelay") continue;
    auto conn = model_.incoming(actor.id(), 0);
    require(conn.has_value(), "Interpreter: delay lost its input");
    update_delay_state(
        model_, actor.id(),
        values_[static_cast<size_t>(conn->src)][static_cast<size_t>(conn->src_port)],
        state_);
  }
  return results;
}

const Tensor& Interpreter::value(ActorId actor, int port) const {
  return values_.at(static_cast<size_t>(actor)).at(static_cast<size_t>(port));
}

}  // namespace hcg
