#include "analysis/linter.hpp"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "actors/batch_op.hpp"
#include "actors/catalog.hpp"
#include "actors/resolve.hpp"
#include "graph/regions.hpp"
#include "model/schedule.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace hcg::analysis {
namespace {

std::string actor_loc(const Actor& actor) {
  return "actor '" + actor.name() + "' (" + actor.type() + ")";
}

std::string join_names(const Model& model, const std::vector<ActorId>& ids) {
  std::string out;
  for (ActorId id : ids) {
    if (!out.empty()) out += ", ";
    out += model.actor(id).name();
  }
  return out;
}

// ---- HCG105: delay-free cycles ---------------------------------------------

/// Kahn's algorithm over non-delay edges, mirroring schedule() but reporting
/// the leftover (cyclic) actors instead of throwing.
std::vector<ActorId> delay_free_cycle_members(const Model& model) {
  const int n = model.actor_count();
  std::vector<int> pending(static_cast<size_t>(n), 0);
  for (const Connection& c : model.connections()) {
    if (is_delay_type(model.actor(c.src).type())) continue;
    ++pending[static_cast<size_t>(c.dst)];
  }
  std::vector<ActorId> ready;
  for (ActorId id = 0; id < n; ++id) {
    if (pending[static_cast<size_t>(id)] == 0) ready.push_back(id);
  }
  int fired = 0;
  while (!ready.empty()) {
    const ActorId id = ready.back();
    ready.pop_back();
    ++fired;
    for (const Connection& c : model.outgoing_all(id)) {
      if (is_delay_type(model.actor(c.src).type())) continue;
      if (--pending[static_cast<size_t>(c.dst)] == 0) ready.push_back(c.dst);
    }
  }
  std::vector<ActorId> stuck;
  if (fired == n) return stuck;
  for (ActorId id = 0; id < n; ++id) {
    if (pending[static_cast<size_t>(id)] > 0) stuck.push_back(id);
  }
  return stuck;
}

// ---- HCG104: dead actors ----------------------------------------------------

/// Actors from which no path (through any connection, delays included)
/// reaches an Outport.  With no Outport at all the set would be everything,
/// so the caller skips this check and HCG106 reports the real problem.
std::vector<ActorId> unobserved_actors(const Model& model) {
  std::vector<bool> live(static_cast<size_t>(model.actor_count()), false);
  std::vector<ActorId> stack = model.outports();
  for (ActorId id : stack) live[static_cast<size_t>(id)] = true;
  while (!stack.empty()) {
    const ActorId id = stack.back();
    stack.pop_back();
    for (const Connection& c : model.connections()) {
      if (c.dst != id || live[static_cast<size_t>(c.src)]) continue;
      live[static_cast<size_t>(c.src)] = true;
      stack.push_back(c.src);
    }
  }
  std::vector<ActorId> dead;
  for (const Actor& actor : model.actors()) {
    if (!live[static_cast<size_t>(actor.id())]) dead.push_back(actor.id());
  }
  return dead;
}

// ---- HCG2xx helpers ---------------------------------------------------------

/// Strips resolve_model's "actor 'name' (Type): " prefix when present, so
/// the diagnostic location (which already carries it) is not duplicated.
std::string strip_actor_prefix(const Actor& actor, const std::string& message) {
  const std::string prefix = actor_loc(actor) + ": ";
  if (message.rfind(prefix, 0) == 0) return message.substr(prefix.size());
  return message;
}

/// "i32[1024] vs f32[1024]" -> HCG202 (same shape, different type);
/// "i32[512] vs i32[1024]" -> HCG201; anything unparseable -> HCG203.
std::string classify_operand_mismatch(const std::string& operands) {
  const std::size_t vs = operands.find(" vs ");
  if (vs == std::string::npos) return "HCG203";
  const std::string lhs = operands.substr(0, vs);
  const std::string rhs = operands.substr(vs + 4);
  const std::size_t lb = lhs.find('[');
  const std::size_t rb = rhs.find('[');
  if (lb == std::string::npos || rb == std::string::npos) return "HCG203";
  if (lhs.substr(lb) != rhs.substr(rb)) return "HCG201";
  if (lhs.substr(0, lb) != rhs.substr(0, rb)) return "HCG202";
  return "HCG203";
}

// ---- HCG4xx helpers ---------------------------------------------------------

/// Re-derives is_region_candidate()'s verdict for a batch actor the region
/// builder left out, as a (code, message) explanation.
std::pair<std::string, std::string> explain_excluded_batch_actor(
    const Model& model, const Actor& actor, const isa::VectorIsa& isa) {
  const PortSpec& out = actor.output(0);
  for (int port = 0; port < actor.input_count(); ++port) {
    const PortSpec& in = actor.input(port);
    if (bit_width(in.type) != bit_width(out.type)) {
      return {"HCG404",
              "element width changes " + std::string(short_name(in.type)) +
                  " -> " + std::string(short_name(out.type)) +
                  " inside the batch chain; regions need one bit-width, so "
                  "this actor is translated conventionally"};
    }
    if (in.shape.elements() != out.shape.elements()) {
      return {"HCG405",
              "array length changes " + std::to_string(in.shape.elements()) +
                  " -> " + std::to_string(out.shape.elements()) +
                  " inside the batch chain; regions need one I/O scale, so "
                  "this actor is translated conventionally"};
    }
  }
  const BatchOp op = batch_op_for_actor_type(actor.type());
  if (!isa.supports(op, actor.input(0).type, out.type)) {
    return {"HCG407",
            "ISA '" + isa.name + "' has no single-instruction " +
                std::string(op_name(op)) + " on " +
                std::string(short_name(out.type)) +
                "; the actor is translated conventionally"};
  }
  (void)model;
  return {"HCG407",
          "actor was excluded from every batch region; no single-instruction "
          "implementation applies"};
}

}  // namespace

void lint_structure(const Model& model, DiagnosticEngine& diags) {
  // HCG101 + HCG102: per-actor catalog and input wiring.
  for (const Actor& actor : model.actors()) {
    if (!is_known_actor_type(actor.type())) {
      diags.error("HCG101", actor_loc(actor),
                  "unknown actor type '" + actor.type() +
                      "'; not in the actor catalog (see `hcgc isa --actors`)");
      continue;
    }
    const ActorTypeInfo& info = actor_type_info(actor.type());
    for (int port = 0; port < info.input_count; ++port) {
      if (!model.incoming(actor.id(), port)) {
        diags.error("HCG102", actor_loc(actor),
                    "input port " + std::to_string(port) +
                        " has no incoming connection");
      }
    }
  }

  // HCG103: every connection must land on ports the endpoint types declare.
  for (const Connection& c : model.connections()) {
    const Actor& src = model.actor(c.src);
    const Actor& dst = model.actor(c.dst);
    const std::string loc =
        "connection '" + src.name() + "' -> '" + dst.name() + "'";
    if (is_known_actor_type(src.type()) &&
        c.src_port >= actor_type_info(src.type()).output_count) {
      diags.error("HCG103", loc,
                  "references output port " + std::to_string(c.src_port) +
                      " but type " + src.type() + " has " +
                      std::to_string(actor_type_info(src.type()).output_count) +
                      " output(s)");
    }
    if (is_known_actor_type(dst.type()) &&
        c.dst_port >= actor_type_info(dst.type()).input_count) {
      diags.error("HCG103", loc,
                  "references input port " + std::to_string(c.dst_port) +
                      " but type " + dst.type() + " has " +
                      std::to_string(actor_type_info(dst.type()).input_count) +
                      " input(s)");
    }
  }

  // HCG105: cycles no UnitDelay breaks.
  const std::vector<ActorId> stuck = delay_free_cycle_members(model);
  if (!stuck.empty()) {
    diags.error("HCG105", "",
                "delay-free dependency cycle through {" +
                    join_names(model, stuck) +
                    "}; feedback loops must pass through a UnitDelay");
  }

  // HCG106 / HCG104: observability of outputs.
  if (model.outports().empty()) {
    diags.warning("HCG106", "",
                  "model has no Outport; the generated step() computes "
                  "nothing observable");
  } else {
    for (ActorId id : unobserved_actors(model)) {
      diags.warning("HCG104", actor_loc(model.actor(id)),
                    "no path from this actor reaches an Outport; its code "
                    "is dead weight in step()");
    }
  }
}

bool lint_resolve(Model& model, DiagnosticEngine& diags) {
  const auto on_failure = [&](const Actor& actor, const std::string& message) {
    // Skip failures lint_structure already reported under an HCG1xx code.
    if (!is_known_actor_type(actor.type())) return;
    if (message.find("is unconnected") != std::string::npos) return;
    if (message.find("has no output port") != std::string::npos) return;

    const std::string detail = strip_actor_prefix(actor, message);
    const std::size_t tag = detail.find("operand mismatch: ");
    if (tag != std::string::npos) {
      const std::string code = classify_operand_mismatch(
          detail.substr(tag + std::string("operand mismatch: ").size()));
      diags.error(code, actor_loc(actor), detail);
      return;
    }
    diags.error("HCG203", actor_loc(actor), detail);
  };
  try {
    return resolve_model_tolerant(model, on_failure);
  } catch (const ModelError&) {
    // No firing order exists (delay-free cycle); HCG105 covers it.
    return false;
  }
}

RangeAnalysis lint_ranges(const Model& model, DiagnosticEngine& diags) {
  return analyze_ranges(model, &diags);
}

void lint_vectorization(const Model& model, const isa::VectorIsa& isa,
                        int min_nodes_for_simd, DiagnosticEngine& diags) {
  const std::vector<BatchRegion> regions = find_batch_regions(model, isa);
  const auto lanes_of = [&isa](DataType type) { return isa.lanes(type); };

  std::set<ActorId> in_region;
  for (const BatchRegion& region : regions) {
    in_region.insert(region.actors.begin(), region.actors.end());
  }

  // Per-region plan outcome (mirrors Algorithm 2's early exits exactly).
  for (const BatchRegion& region : regions) {
    const Dataflow& graph = region.graph;
    const std::string loc = "region {" + join_names(model, region.actors) + "}";
    const RegionVectorPlan plan = plan_region_vectorization(
        region, isa.capability(), min_nodes_for_simd);
    if (plan.viable) {
      if (plan.predicated) {
        // Scalable ISA: one predicated loop covers everything — there is no
        // remainder to warn about, so no blocker phrasing here.
        diags.note("HCG400", loc,
                   "vectorized with " + isa.name +
                       ": one predicated vector-length-agnostic loop over " +
                       std::to_string(graph.length()) +
                       " element(s), no scalar remainder");
      } else {
        diags.note("HCG400", loc,
                   "vectorized with " + isa.name + ": " +
                       std::to_string(plan.lanes) + " lanes, " +
                       std::to_string(plan.batch_count) +
                       " vector iteration(s)" +
                       (plan.offset > 0
                            ? ", scalar remainder of " +
                                  std::to_string(plan.offset) + " element(s)"
                            : ""));
      }
      continue;
    }
    // Predicated plans never fail on length (any n >= 1 is coverable), so
    // the too-short remark below — remainder-based phrasing — only applies
    // to fixed-width tables.
    if (!plan.predicated && (plan.lanes <= 0 || plan.batch_count < 1)) {
      diags.remark(
          "HCG401", loc,
          "array length " + std::to_string(graph.length()) +
              " is shorter than one " + std::to_string(isa.width_bits) +
              "-bit vector (" + std::to_string(std::max(plan.lanes, 0)) +
              " lanes of " + std::to_string(graph.data_bit_width()) +
              "-bit elements); the region stays scalar");
      continue;
    }
    if (graph.node_count() < min_nodes_for_simd) {
      diags.remark("HCG402", loc,
                   "region has " + std::to_string(graph.node_count()) +
                       " node(s), below the --threshold floor of " +
                       std::to_string(min_nodes_for_simd) +
                       "; SIMD setup would not pay off");
      continue;
    }
    for (const DfgNode& node : graph.nodes()) {
      if (lanes_of(node.out_type) != plan.lanes) {
        diags.remark("HCG403", loc,
                     "ISA '" + isa.name + "' offers " +
                         std::to_string(lanes_of(node.out_type)) +
                         " lane(s) for " +
                         std::string(short_name(node.out_type)) + " at '" +
                         model.actor(node.actor).name() + "' but the region "
                         "needs a uniform " +
                         std::to_string(plan.lanes) + "; the region stays "
                         "scalar");
        break;
      }
    }
  }

  // Batch actors the region builder had to leave out entirely.
  for (const Actor& actor : model.actors()) {
    if (in_region.count(actor.id())) continue;
    if (classify(model, actor.id()) != ActorKind::kBatch) continue;
    const auto [code, message] =
        explain_excluded_batch_actor(model, actor, isa);
    diags.remark(code, actor_loc(actor), message);
  }

  // HCG406: a non-batch actor wedged between two region members splits what
  // would otherwise be one chain.
  for (const Actor& actor : model.actors()) {
    if (in_region.count(actor.id())) continue;
    const ActorKind kind = classify(model, actor.id());
    if (kind == ActorKind::kSource || kind == ActorKind::kSink ||
        kind == ActorKind::kBatch) {
      continue;
    }
    ActorId upstream = kNoActor;
    ActorId downstream = kNoActor;
    for (const Connection& c : model.connections()) {
      if (c.dst == actor.id() && in_region.count(c.src)) upstream = c.src;
      if (c.src == actor.id() && in_region.count(c.dst)) downstream = c.dst;
    }
    if (upstream != kNoActor && downstream != kNoActor) {
      diags.remark("HCG406", actor_loc(actor),
                   "non-batch actor splits the batch chain between '" +
                       model.actor(upstream).name() + "' and '" +
                       model.actor(downstream).name() +
                       "'; the regions on each side vectorize separately");
    }
  }
}

RangeAnalysis lint_model(Model& model, const LintOptions& options,
                         DiagnosticEngine& diags) {
  HCG_TRACE_SCOPE("analysis.lint");
  lint_structure(model, diags);
  const bool resolved = lint_resolve(model, diags);
  RangeAnalysis ranges;
  if (resolved) {
    ranges = lint_ranges(model, diags);
  }
  if (resolved && options.isa != nullptr && options.remarks) {
    lint_vectorization(model, *options.isa, options.min_nodes_for_simd, diags);
  }
  return ranges;
}

}  // namespace hcg::analysis
