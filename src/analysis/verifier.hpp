// CGIR verifier: structural and semantic invariants of a TranslationUnit.
//
// The -O1 pass pipeline rewrites the codegen IR in place; each pass relies
// on invariants the previous one must preserve.  The verifier checks them
// independently after every pass (codegen/emit.cpp installs it through
// cgir::PassOptions::after_pass), so a pass that breaks the IR is caught at
// the pass that broke it, with an HCG3xx diagnostic naming it — instead of
// surfacing later as a miscompiled model or a C compile error.
//
// Invariants checked (one stable code each, see docs/ANALYSIS.md):
//   HCG301  every elementwise BufferAccess stays inside its buffer's extent
//           given the enclosing loop's trip count
//   HCG302  no two statements in one loop body define the same local (with
//           one sanctioned exception: the pending-handoff load loop fusion
//           creates and copy forwarding is guaranteed to erase)
//   HCG303  vector loops step through their domain exactly (no partial
//           iteration) and every offset vector loop has a scalar remainder
//           loop covering [0, offset) before it
//   HCG304  a store's value variable is defined earlier in the same body
//   HCG305  every accessed buffer is declared or is a step-scope local
//   HCG306  const buffers are never written
//   HCG307  buffer declarations are unique
//   HCG308  arena slot members' live ranges are pairwise disjoint
#pragma once

#include <string_view>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "cgir/cgir.hpp"
#include "cgir/passes.hpp"

namespace hcg::analysis {

/// Verifies the whole unit; returns every violation found (empty = valid).
std::vector<Diagnostic> verify_unit(const cgir::TranslationUnit& tu);

/// Verifies the arena-reuse pass's slot assignment: within each slot, member
/// live ranges must be pairwise disjoint (HCG308).
std::vector<Diagnostic> verify_arena_bindings(
    const std::vector<cgir::ArenaBinding>& bindings);

/// Convenience for the pass pipeline: runs both checks and throws
/// hcg::CodegenError naming `stage` (the pass that just ran) on the first
/// violation.  Returns the number of checks that ran clean (0 on throw).
std::size_t require_valid_unit(const cgir::TranslationUnit& tu,
                               const cgir::PassStats& stats,
                               std::string_view stage);

}  // namespace hcg::analysis
