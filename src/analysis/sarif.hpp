// SARIF 2.1.0 export of analysis diagnostics.
//
// One run, one driver ("hcgc"), the full stable rule table from
// diagnostic_rules() under tool.driver.rules, and one result per Diagnostic
// with ruleId/ruleIndex, the SARIF level, the message, and a location
// combining the physical artifact (the model file) with the logical
// location (the actor / region / cgir node the finding is about).  A
// diagnostic referencing a second actor (Diagnostic::related — e.g. the
// producer of an overflowing operand) additionally gets a relatedLocations
// entry.  Artifact URIs are normalized repo-relative (leading "./" and the
// current directory prefix stripped) so code-scanning upload resolves them.
//
// The output is plain JSON (obs::JsonWriter), valid against the SARIF
// 2.1.0 schema, and consumed by CI code-scanning upload as-is.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "analysis/diagnostics.hpp"

namespace hcg::analysis {

/// SARIF result level for a severity: "note" (notes and remarks),
/// "warning", or "error".
std::string_view sarif_level(Severity severity);

/// Normalizes a model path into a repo-relative SARIF artifact URI:
/// strips a leading "./", makes an absolute path under the current working
/// directory relative to it, and uses forward slashes.  Paths outside the
/// working directory pass through unchanged.
std::string sarif_artifact_uri(std::string_view model_path);

/// Serializes `diags` as a complete SARIF 2.1.0 document.  `artifact_uri`
/// is the analyzed model file (empty = no physical location attached);
/// callers normally pass it through sarif_artifact_uri() first.
std::string to_sarif(const std::vector<Diagnostic>& diags,
                     std::string_view artifact_uri);

}  // namespace hcg::analysis
