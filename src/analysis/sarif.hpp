// SARIF 2.1.0 export of analysis diagnostics.
//
// One run, one driver ("hcgc"), the full stable rule table from
// diagnostic_rules() under tool.driver.rules, and one result per Diagnostic
// with ruleId/ruleIndex, the SARIF level, the message, and a location
// combining the physical artifact (the model file) with the logical
// location (the actor / region / cgir node the finding is about).
//
// The output is plain JSON (obs::JsonWriter), valid against the SARIF
// 2.1.0 schema, and consumed by CI code-scanning upload as-is.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "analysis/diagnostics.hpp"

namespace hcg::analysis {

/// SARIF result level for a severity: "note" (notes and remarks),
/// "warning", or "error".
std::string_view sarif_level(Severity severity);

/// Serializes `diags` as a complete SARIF 2.1.0 document.  `artifact_uri`
/// is the analyzed model file (empty = no physical location attached).
std::string to_sarif(const std::vector<Diagnostic>& diags,
                     std::string_view artifact_uri);

}  // namespace hcg::analysis
