// Model/graph linter: structural checks, tolerant type resolution, and
// vectorization-blocker remarks ("why didn't Algorithm 2 vectorize this?").
//
// Unlike resolve_model(), which throws at the first invalid actor, the
// linter keeps going and reports every finding it can reach, so `hcgc lint`
// shows all problems in one run:
//
//   HCG1xx  structure  (lint_structure: catalog, ports, cycles, dead actors)
//   HCG2xx  types      (lint_resolve: per-actor resolution failures)
//   HCG4xx  remarks    (lint_vectorization: per-region SIMD outcome, and a
//                       per-actor explanation for every batch actor the
//                       region builder had to leave out)
//   HCG6xx  numeric safety (lint_ranges: interval value-range analysis —
//                       overflow, division by zero, lossy casts, dead
//                       Switch branches, constant-foldable subgraphs)
#pragma once

#include "analysis/diagnostics.hpp"
#include "analysis/range.hpp"
#include "isa/instruction.hpp"
#include "model/model.hpp"

namespace hcg::analysis {

struct LintOptions {
  /// ISA for the vectorization remarks; nullptr skips HCG4xx entirely.
  const isa::VectorIsa* isa = nullptr;
  /// Algorithm 2's node-count floor (the --threshold flag, paper §4.3).
  int min_nodes_for_simd = 0;
  /// Master switch for HCG4xx remarks (lint --no-remarks clears it).
  bool remarks = true;
};

/// HCG1xx structural checks.  Works on an unresolved model; never throws on
/// model defects (they become diagnostics).
void lint_structure(const Model& model, DiagnosticEngine& diags);

/// HCG2xx: resolves the model tolerantly, reporting each actor whose port
/// types could not be inferred.  Failures already covered by lint_structure
/// (unknown type, unconnected input, bad port, cycle) are not re-reported.
/// Returns true when every actor resolved (the model is usable downstream).
bool lint_resolve(Model& model, DiagnosticEngine& diags);

/// HCG6xx: interval value-range analysis over a *resolved* model
/// (src/analysis/range.hpp).  Emits the numeric-safety findings into
/// `diags` and returns the per-signal intervals plus summary statistics
/// (surfaced as the hcg-report-v1 `range_analysis` section).
RangeAnalysis lint_ranges(const Model& model, DiagnosticEngine& diags);

/// HCG4xx: explains Algorithm 2's region matching over a *resolved* model —
/// one note per viable region, one remark per region that fails the plan
/// (too short, below threshold, lane disagreement) and per batch actor that
/// never made it into a region (mixed widths, scale change, no SIMD op),
/// plus a remark per non-batch actor splitting two batch neighbours.
void lint_vectorization(const Model& model, const isa::VectorIsa& isa,
                        int min_nodes_for_simd, DiagnosticEngine& diags);

/// Runs the full sequence: structure, then tolerant resolution, then (once
/// resolution succeeded) the value-range analysis, then (when options.isa
/// is set and remarks are on) vectorization remarks.  `model` is resolved
/// in place on success.  Returns the range analysis (empty when the model
/// did not resolve) so callers can report its summary.
RangeAnalysis lint_model(Model& model, const LintOptions& options,
                         DiagnosticEngine& diags);

}  // namespace hcg::analysis
