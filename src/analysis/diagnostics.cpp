#include "analysis/diagnostics.hpp"

#include "support/error.hpp"

namespace hcg::analysis {

std::string_view severity_name(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kRemark:
      return "remark";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "error";
}

const std::vector<DiagnosticRule>& diagnostic_rules() {
  static const std::vector<DiagnosticRule> rules = {
      // ---- HCG1xx: model structure -------------------------------------
      {"HCG101", "unknown-actor-type",
       "actor type is not in the actor catalog", Severity::kError},
      {"HCG102", "unconnected-input",
       "actor input port has no incoming connection", Severity::kError},
      {"HCG103", "invalid-port",
       "connection references a port the actor type does not have",
       Severity::kError},
      {"HCG104", "dead-actor",
       "actor output feeds nothing and is never observed", Severity::kWarning},
      {"HCG105", "delay-free-cycle",
       "dependency cycle with no UnitDelay on it", Severity::kError},
      {"HCG106", "no-outport",
       "model has no Outport; generated step() computes nothing observable",
       Severity::kWarning},
      {"HCG110", "isa-width-mismatch",
       "a vtype's lanes x element size disagrees with the table's declared "
       "register width",
       Severity::kError},
      {"HCG111", "isa-duplicate-entry",
       "an .isa table declares the same vtype/load/store/op entry twice",
       Severity::kError},

      // ---- HCG2xx: graph / type resolution -----------------------------
      {"HCG201", "width-mismatch",
       "operand shapes (element counts) disagree at an actor",
       Severity::kError},
      {"HCG202", "dtype-mismatch",
       "operand element types disagree at an actor", Severity::kError},
      {"HCG203", "invalid-actor",
       "actor rejected by port/type resolution", Severity::kError},

      // ---- HCG3xx: cgir verifier ----------------------------------------
      {"HCG301", "buffer-out-of-bounds",
       "elementwise access exceeds the buffer's declared extent",
       Severity::kError},
      {"HCG302", "duplicate-local",
       "two statements in one scope define the same local", Severity::kError},
      {"HCG303", "loop-coverage",
       "vector/remainder loop pair does not cover the region width exactly",
       Severity::kError},
      {"HCG304", "undefined-local",
       "statement stores a local no earlier statement defined",
       Severity::kError},
      {"HCG305", "unknown-buffer",
       "access references a buffer that is neither declared nor a step local",
       Severity::kError},
      {"HCG306", "const-write",
       "statement writes a buffer declared const", Severity::kError},
      {"HCG307", "duplicate-buffer",
       "two buffer declarations share one name", Severity::kError},
      {"HCG308", "arena-overlap",
       "arena rebinding put two live ranges in one slot that overlap in time",
       Severity::kError},
      {"HCG309", "strip-coverage",
       "strip-mined lane loop does not cover exactly one stride of its "
       "outer loop",
       Severity::kError},
      {"HCG310", "predicated-coverage",
       "predicated loop does not cover exactly [0, n) by itself, or sits "
       "next to a scalar remainder it makes redundant",
       Severity::kError},

      // ---- HCG4xx: vectorization remarks --------------------------------
      {"HCG400", "region-vectorized",
       "batch region will be implemented with SIMD instructions",
       Severity::kNote},
      {"HCG401", "region-too-short",
       "array length is below one vector register, Algorithm 2 declines",
       Severity::kRemark},
      {"HCG402", "region-below-threshold",
       "region node count is below the --threshold floor", Severity::kRemark},
      {"HCG403", "lane-mismatch",
       "ISA offers no uniform lane count for the region's element types",
       Severity::kRemark},
      {"HCG404", "mixed-width-chain",
       "element bit-width changes inside a batch chain, splitting the region",
       Severity::kRemark},
      {"HCG405", "scale-mismatch",
       "array lengths change inside a batch chain, splitting the region",
       Severity::kRemark},
      {"HCG406", "non-batch-split",
       "a non-batch actor interrupts a batch chain", Severity::kRemark},
      {"HCG407", "no-simd-op",
       "the ISA has no single-instruction implementation for this op/type",
       Severity::kRemark},
      {"HCG408", "fused-across-scale",
       "-O2 strip-mined a scalar loop into an adjacent vector loop's shape "
       "and fused the pair",
       Severity::kRemark},
      {"HCG409", "loop-tiled",
       "-O2 chunked a scalar loop into constant-trip tiles plus a tail",
       Severity::kRemark},
      {"HCG410", "layout-changed",
       "-O2 re-ordered buffer declarations for coalesced stride-1 access",
       Severity::kRemark},
      {"HCG411", "region-narrowed",
       "proven value ranges let a batch region run at a narrower element "
       "type with more SIMD lanes",
       Severity::kRemark},
      {"HCG412", "narrowing-blocked",
       "a batch region would narrow but the value range could not be proven "
       "to fit the narrower type",
       Severity::kRemark},

      // ---- HCG5xx: runtime profiling (docs/PROFILING.md) ----------------
      {"HCG501", "costmodel-mispredict",
       "measured runtime of a profiled site deviates from Algorithm 1's "
       "selection-time cost beyond the error threshold",
       Severity::kRemark},
      {"HCG502", "profile-degraded",
       "runtime profiling could not run; the report has no runtime_profile "
       "section",
       Severity::kWarning},

      // ---- HCG6xx: value-range analysis (src/analysis/range.hpp) --------
      {"HCG601", "possible-signed-overflow",
       "a signed integer result range provably exceeds its element type; "
       "values wrap at runtime",
       Severity::kWarning},
      {"HCG602", "possible-division-by-zero",
       "a divisor's value range contains zero", Severity::kWarning},
      {"HCG603", "lossy-narrowing-cast",
       "a cast input's value range does not fit the target type",
       Severity::kWarning},
      {"HCG604", "dead-switch-branch",
       "a Switch control range proves one data input is never selected",
       Severity::kRemark},
      {"HCG605", "constant-foldable",
       "an actor's output is provably a single constant; the subgraph "
       "feeding it can be folded at generation time",
       Severity::kRemark},
  };
  return rules;
}

const DiagnosticRule* find_rule(std::string_view code) {
  for (const DiagnosticRule& rule : diagnostic_rules()) {
    if (rule.code == code) return &rule;
  }
  return nullptr;
}

void DiagnosticEngine::add(Diagnostic diag) {
  if (werror_ && diag.severity == Severity::kWarning) {
    diag.severity = Severity::kError;
  }
  diags_.push_back(std::move(diag));
}

namespace {

Diagnostic make(std::string_view code, Severity severity, std::string location,
                std::string message) {
  require(find_rule(code) != nullptr,
          "diagnostic code '" + std::string(code) + "' is not registered");
  Diagnostic diag;
  diag.code = std::string(code);
  diag.severity = severity;
  diag.location = std::move(location);
  diag.message = std::move(message);
  return diag;
}

}  // namespace

void DiagnosticEngine::note(std::string_view code, std::string location,
                            std::string message) {
  add(make(code, Severity::kNote, std::move(location), std::move(message)));
}

void DiagnosticEngine::remark(std::string_view code, std::string location,
                              std::string message) {
  add(make(code, Severity::kRemark, std::move(location), std::move(message)));
}

void DiagnosticEngine::warning(std::string_view code, std::string location,
                               std::string message) {
  add(make(code, Severity::kWarning, std::move(location), std::move(message)));
}

void DiagnosticEngine::error(std::string_view code, std::string location,
                             std::string message) {
  add(make(code, Severity::kError, std::move(location), std::move(message)));
}

int DiagnosticEngine::count(Severity severity) const {
  int n = 0;
  for (const Diagnostic& diag : diags_) {
    if (diag.severity == severity) ++n;
  }
  return n;
}

std::string DiagnosticEngine::render(std::string_view subject) const {
  std::string out;
  for (const Diagnostic& diag : diags_) {
    out += subject;
    if (!diag.location.empty()) {
      out += ": ";
      out += diag.location;
    }
    out += ": ";
    out += severity_name(diag.severity);
    out += " ";
    out += diag.code;
    out += ": ";
    out += diag.message;
    out += "\n";
  }
  if (!diags_.empty()) {
    out += std::string(subject) + ": " + summary() + "\n";
  }
  return out;
}

std::string DiagnosticEngine::summary() const {
  const struct {
    Severity severity;
    const char* singular;
    const char* plural;
  } kinds[] = {
      {Severity::kError, "error", "errors"},
      {Severity::kWarning, "warning", "warnings"},
      {Severity::kRemark, "remark", "remarks"},
      {Severity::kNote, "note", "notes"},
  };
  std::string out;
  for (const auto& kind : kinds) {
    const int n = count(kind.severity);
    if (n == 0) continue;
    if (!out.empty()) out += ", ";
    out += std::to_string(n) + " " + (n == 1 ? kind.singular : kind.plural);
  }
  return out.empty() ? "no findings" : out;
}

}  // namespace hcg::analysis
