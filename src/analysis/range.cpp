#include "analysis/range.hpp"

#include <algorithm>
#include <cfloat>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <vector>

#include "actors/batch_op.hpp"
#include "actors/catalog.hpp"
#include "actors/exec.hpp"
#include "model/schedule.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace hcg::analysis {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Above this magnitude a double no longer represents every integer, so
/// integer interval endpoints must be rounded outward by one ulp.
constexpr double kExactIntLimit = 9007199254740992.0;  // 2^53

double round_down(double v) {
  if (std::isfinite(v) && std::fabs(v) >= kExactIntLimit) {
    return std::nextafter(v, -kInf);
  }
  return v;
}

double round_up(double v) {
  if (std::isfinite(v) && std::fabs(v) >= kExactIntLimit) {
    return std::nextafter(v, kInf);
  }
  return v;
}

std::string actor_loc(const Actor& actor) {
  return "actor '" + actor.name() + "' (" + actor.type() + ")";
}

/// Formats a bound: integers without a fraction, everything else with
/// enough digits to be unambiguous.
std::string bound_string(double v) {
  if (std::isfinite(v) && v == std::floor(v) &&
      std::fabs(v) < kExactIntLimit) {
    return std::to_string(static_cast<long long>(v));
  }
  std::ostringstream out;
  out.precision(9);
  out << v;
  return out.str();
}

// ---- float outward rounding -----------------------------------------------

/// The oracle computes in f32/f64 while the analysis computes in double, so
/// every float bound gets a relative-epsilon band (scaled by `terms`, the
/// number of accumulated operations, for intensive reductions), an absolute
/// floor for results near zero, a flush-to-zero guard, and ±inf saturation
/// where an f32 op would overflow to infinity at runtime.
Interval inflate_float(Interval r, DataType type, double terms = 1.0) {
  const bool f32 = component_type(type) == DataType::kFloat32;
  const double rel = (f32 ? 1e-5 : 1e-12) * std::max(1.0, terms);
  const double abs = f32 ? 1e-35 : 1e-300;
  if (std::isfinite(r.lo)) r.lo -= std::fabs(r.lo) * rel + abs;
  if (std::isfinite(r.hi)) r.hi += std::fabs(r.hi) * rel + abs;
  if (f32) {
    if (r.lo < -FLT_MAX) r.lo = -kInf;
    if (r.hi > FLT_MAX) r.hi = kInf;
    // A denormal-only bound may flush to zero on some backends.
    if (r.lo > 0.0 && r.lo < FLT_MIN) r.lo = 0.0;
    if (r.hi < 0.0 && r.hi > -FLT_MIN) r.hi = 0.0;
  }
  if (r.lo > r.hi) std::swap(r.lo, r.hi);
  return r;
}

// ---- interval arithmetic on the real line ---------------------------------

Interval iv_add(const Interval& a, const Interval& b) {
  return {round_down(a.lo + b.lo), round_up(a.hi + b.hi)};
}

Interval iv_sub(const Interval& a, const Interval& b) {
  return {round_down(a.lo - b.hi), round_up(a.hi - b.lo)};
}

/// inf * 0 is NaN in IEEE but 0 on the real line extended for interval
/// arithmetic; treat it as 0 so top intervals multiply sanely.
double mul_term(double x, double y) {
  if ((x == 0.0 && std::isinf(y)) || (y == 0.0 && std::isinf(x))) return 0.0;
  return x * y;
}

Interval iv_mul(const Interval& a, const Interval& b) {
  const double p[4] = {mul_term(a.lo, b.lo), mul_term(a.lo, b.hi),
                       mul_term(a.hi, b.lo), mul_term(a.hi, b.hi)};
  return {round_down(std::min({p[0], p[1], p[2], p[3]})),
          round_up(std::max({p[0], p[1], p[2], p[3]}))};
}

/// Quotient bounds for a divisor interval that excludes zero.
Interval iv_div_nonzero(const Interval& a, const Interval& b) {
  const double q[4] = {a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi};
  return {std::min({q[0], q[1], q[2], q[3]}),
          std::max({q[0], q[1], q[2], q[3]})};
}

Interval iv_abs(const Interval& a) {
  if (a.lo >= 0.0) return a;
  if (a.hi <= 0.0) return {-a.hi, -a.lo};
  return {0.0, std::max(-a.lo, a.hi)};
}

Interval iv_min(const Interval& a, const Interval& b) {
  return {std::min(a.lo, b.lo), std::min(a.hi, b.hi)};
}

Interval iv_max(const Interval& a, const Interval& b) {
  return {std::max(a.lo, b.lo), std::max(a.hi, b.hi)};
}

/// Smallest 2^k - 1 >= x (for the nonnegative bitwise-or/xor bound); top
/// signal when x is out of uint64 range.
double next_pow2_minus1(double x) {
  if (!(x >= 0.0)) return 0.0;
  if (x >= 9.2e18) return kInf;  // caller's type bound will cap it
  std::uint64_t v = static_cast<std::uint64_t>(x);
  std::uint64_t m = 1;
  while (m - 1 < v && m != 0) m <<= 1;
  return m == 0 ? kInf : static_cast<double>(m - 1);
}

// ---- evaluation context ----------------------------------------------------

struct Ctx {
  const Model& model;
  RangeAnalysis& result;
  DiagnosticEngine* diags = nullptr;  // non-null only on the reporting pass

  const Interval& in(const Actor& actor, int port) const {
    const Connection conn = *model.incoming(actor.id(), port);
    return result.intervals.at({conn.src, conn.src_port});
  }

  /// Location of the actor producing `actor`'s input `port`, for the
  /// relatedLocations half of a two-actor diagnostic.
  std::string producer_loc(const Actor& actor, int port) const {
    const Connection conn = *model.incoming(actor.id(), port);
    return actor_loc(model.actor(conn.src));
  }

  bool inputs_bounded(const Actor& actor) const {
    for (int port = 0; port < actor.input_count(); ++port) {
      if (!interval_bounded(in(actor, port), actor.input(port).type)) {
        return false;
      }
    }
    return actor.input_count() > 0;
  }
};

void emit(Ctx& ctx, std::string_view code, Severity severity,
          const Actor& actor, std::string message, std::string related) {
  if (ctx.diags == nullptr) return;
  Diagnostic diag;
  diag.code = std::string(code);
  diag.severity = severity;
  diag.location = actor_loc(actor);
  diag.message = std::move(message);
  diag.related = std::move(related);
  ctx.diags->add(std::move(diag));
}

/// Clamps an integer real-valued result to its type: inside the type range
/// it is exact; outside, the runtime wraps (two's-complement, matching both
/// the VM oracle and generated code under -fwrapv), so the result widens to
/// top — and, for signed types with genuinely bounded operands, that is the
/// HCG601 possible-signed-overflow warning.
Interval int_result(Ctx& ctx, const Actor& actor, Interval real) {
  const DataType type = actor.output(0).type;
  const Interval top = type_interval(type);
  if (real.inside(top)) return real;
  if (is_signed_int(type) && ctx.inputs_bounded(actor)) {
    emit(ctx, "HCG601", Severity::kWarning, actor,
         "result range " + real.to_string() + " exceeds " +
             std::string(short_name(type)) + " " + top.to_string() +
             "; values wrap at runtime",
         ctx.producer_loc(actor, 0));
  }
  return top;
}

/// The effective scalar constant of a Gain/Bias actor: the runtime casts
/// the double parameter to the signal's element type before operating
/// (eval_scalar's kMulC/kAddC), so the analysis mirrors that cast.  Returns
/// false when the cast itself is out of range (the transfer then gives up
/// and returns top).
bool effective_constant(const Actor& actor, std::string_view param,
                        DataType type, double* out) {
  const double raw = parse_double(actor.param(param));
  if (is_float(type)) {
    *out = component_type(type) == DataType::kFloat32
               ? static_cast<double>(static_cast<float>(raw))
               : raw;
    return true;
  }
  const double truncated = std::trunc(raw);
  if (!interval_fits({truncated, truncated}, type)) return false;
  *out = truncated;
  return true;
}

Interval eval_elementwise(Ctx& ctx, const Actor& actor) {
  const BatchOp op = batch_op_for_actor_type(actor.type());
  const DataType type = actor.output(0).type;
  const Interval top = type_interval(type);
  const bool floating = is_float(type);
  auto finish = [&](Interval real) {
    return floating ? inflate_float(real, type) : int_result(ctx, actor, real);
  };

  // kSel reads ctrl from port 2 and never mixes lanes: the result is one of
  // the two data operands, so the transfer is the join — unless the control
  // interval proves one branch dead (HCG604).
  if (op == BatchOp::kSel) {
    const Interval& a = ctx.in(actor, 0);
    const Interval& b = ctx.in(actor, 1);
    const Interval& ctrl = ctx.in(actor, 2);
    if (ctrl.lo > 0.0) {
      emit(ctx, "HCG604", Severity::kRemark, actor,
           "control range " + ctrl.to_string() +
               " is always positive; the second input (port 1) is never "
               "selected",
           ctx.producer_loc(actor, 2));
      return a;
    }
    if (ctrl.hi <= 0.0) {
      emit(ctx, "HCG604", Severity::kRemark, actor,
           "control range " + ctrl.to_string() +
               " is never positive; the first input (port 0) is never "
               "selected",
           ctx.producer_loc(actor, 2));
      return b;
    }
    return join(a, b);
  }

  if (op == BatchOp::kCast) {
    const Interval& a = ctx.in(actor, 0);
    const DataType from = actor.input(0).type;
    if (interval_fits(a, type)) {
      // Float -> int truncates toward zero; widen to whole integers so the
      // truncated endpoints stay covered.
      if (is_float(from) && is_integer(type)) {
        return {std::floor(a.lo), std::ceil(a.hi)};
      }
      if (floating) return inflate_float(a, type);
      return a;
    }
    if (interval_bounded(a, from)) {
      emit(ctx, "HCG603", Severity::kWarning, actor,
           "input range " + a.to_string() + " does not fit " +
               std::string(short_name(type)) + " " + top.to_string() +
               "; the cast loses values",
           ctx.producer_loc(actor, 0));
    }
    return top;
  }

  const Interval& a = ctx.in(actor, 0);
  switch (op) {
    case BatchOp::kAdd:
      return finish(iv_add(a, ctx.in(actor, 1)));
    case BatchOp::kSub:
      return finish(iv_sub(a, ctx.in(actor, 1)));
    case BatchOp::kMul:
      return finish(iv_mul(a, ctx.in(actor, 1)));
    case BatchOp::kDiv:
    case BatchOp::kRecp: {
      const int divisor_port = op == BatchOp::kDiv ? 1 : 0;
      const Interval numer =
          op == BatchOp::kDiv ? a : Interval{1.0, 1.0};
      const Interval& denom = ctx.in(actor, divisor_port);
      if (denom.contains(0.0)) {
        if (interval_bounded(denom, actor.input(divisor_port).type)) {
          emit(ctx, "HCG602", Severity::kWarning, actor,
               "divisor range " + denom.to_string() +
                   " contains zero; the division can produce ±inf or NaN",
               ctx.producer_loc(actor, divisor_port));
        }
        return {-kInf, kInf};
      }
      return inflate_float(iv_div_nonzero(numer, denom), type);
    }
    case BatchOp::kMin:
      return finish(iv_min(a, ctx.in(actor, 1)));
    case BatchOp::kMax:
      return finish(iv_max(a, ctx.in(actor, 1)));
    case BatchOp::kAbd:
      // |a - b|; the runtime computes the difference in the (wrapping)
      // element type, so the result is only exact when the real-valued
      // absolute difference fits — int_result widens to top otherwise.
      return finish(iv_abs(iv_sub(a, ctx.in(actor, 1))));
    case BatchOp::kAbs:
      // abs(INT_MIN) wraps back to INT_MIN; iv_abs's upper bound exceeds
      // the type range in exactly that case, so int_result covers it.
      return finish(iv_abs(a));
    case BatchOp::kSqrt: {
      // sqrt of a negative is NaN (no interval represents it; the fuzz
      // cross-check skips NaN), so the bound covers the nonnegative part.
      Interval real{std::sqrt(std::max(0.0, a.lo)),
                    std::sqrt(std::max(0.0, a.hi))};
      return inflate_float(real, type);
    }
    case BatchOp::kAnd: {
      const Interval& b = ctx.in(actor, 1);
      if (a.lo < 0.0 || b.lo < 0.0) return top;
      return {0.0, std::min(a.hi, b.hi)};
    }
    case BatchOp::kOr: {
      const Interval& b = ctx.in(actor, 1);
      if (a.lo < 0.0 || b.lo < 0.0) return top;
      Interval real{std::max(a.lo, b.lo),
                    next_pow2_minus1(std::max(a.hi, b.hi))};
      return real.inside(top) ? real : top;
    }
    case BatchOp::kXor: {
      const Interval& b = ctx.in(actor, 1);
      if (a.lo < 0.0 || b.lo < 0.0) return top;
      Interval real{0.0, next_pow2_minus1(std::max(a.hi, b.hi))};
      return real.inside(top) ? real : top;
    }
    case BatchOp::kNot: {
      // ~x is exactly -x-1 (signed) / max-x (unsigned): monotone and
      // range-preserving, so the transfer is exact.
      if (is_signed_int(type)) return {-a.hi - 1.0, -a.lo - 1.0};
      const Interval t = type_interval(type);
      return {round_down(t.hi - a.hi), round_up(t.hi - a.lo)};
    }
    case BatchOp::kShl: {
      const double factor =
          std::pow(2.0, static_cast<double>(actor.int_param("amount")));
      return finish(iv_mul(a, {factor, factor}));
    }
    case BatchOp::kShr: {
      // Arithmetic shift: floor division by 2^amount, exact and in-range.
      const double factor =
          std::pow(2.0, static_cast<double>(actor.int_param("amount")));
      return {round_down(std::floor(a.lo / factor)),
              round_up(std::floor(a.hi / factor))};
    }
    case BatchOp::kMulC: {
      double c = 0.0;
      if (!effective_constant(actor, "gain", type, &c)) return top;
      return finish(iv_mul(a, {c, c}));
    }
    case BatchOp::kAddC: {
      double c = 0.0;
      if (!effective_constant(actor, "bias", type, &c)) return top;
      return finish(iv_add(a, {c, c}));
    }
    default:
      return top;
  }
}

/// Conservative norm bounds for the intensive kernels: each output element
/// is a sum of at most `terms` products of inputs with unit-magnitude (or
/// input-magnitude) factors, so ±(terms * M) bounds it.  Complex signals
/// are bounded per scalar component, where one DFT component mixes both
/// components of every input element — hence the factor 2.  MatInv and
/// MatDet have no useful closed-form bound and stay top.
Interval eval_intensive(Ctx& ctx, const Actor& actor) {
  const std::string& type = actor.type();
  const DataType out_type = actor.output(0).type;
  const Interval top = type_interval(out_type);

  auto magnitude = [&](int port) {
    const Interval& iv = ctx.in(actor, port);
    return std::max(std::fabs(iv.lo), std::fabs(iv.hi));
  };

  const double n0 = static_cast<double>(actor.input(0).shape.elements());
  double bound = kInf;
  double terms = n0;
  if (type == "FFT" || type == "IFFT" || type == "FFT2D" ||
      type == "IFFT2D" || type == "DCT" || type == "IDCT" ||
      type == "DCT2D" || type == "IDCT2D") {
    bound = 2.0 * n0 * magnitude(0);
  } else if (type == "Conv" || type == "Conv2D") {
    const double n1 = static_cast<double>(actor.input(1).shape.elements());
    terms = std::min(n0, n1);
    bound = terms * magnitude(0) * magnitude(1);
  } else if (type == "MatMul") {
    const Shape& shape = actor.input(0).shape;
    terms = static_cast<double>(shape.dims.empty() ? 1 : shape.dims[0]);
    bound = terms * magnitude(0) * magnitude(1);
  } else {
    return top;  // MatInv, MatDet, anything new: no bound claimed
  }
  if (!std::isfinite(bound)) return top;
  return inflate_float({-bound, bound}, out_type, terms);
}

Interval eval_constant(const Actor& actor) {
  const DataType type = actor.output(0).type;
  Tensor value = constant_tensor(actor);
  const int components =
      is_complex(type) ? value.elements() * 2 : value.elements();
  Interval iv{kInf, -kInf};
  for (int i = 0; i < components; ++i) {
    double v = 0.0;
    if (is_complex(type)) {
      v = component_type(type) == DataType::kFloat32
              ? static_cast<double>(value.as<float>()[i])
              : value.as<double>()[i];
    } else {
      v = value.get_double(i);
    }
    iv.lo = std::min(iv.lo, v);
    iv.hi = std::max(iv.hi, v);
  }
  if (iv.lo > iv.hi) return type_interval(type);
  return iv;
}

Interval eval_inport(const Actor& actor) {
  const DataType type = actor.output(0).type;
  const Interval top = type_interval(type);
  if (!actor.has_param("range_min") && !actor.has_param("range_max")) {
    return top;
  }
  Interval iv{actor.double_param_or("range_min", top.lo),
              actor.double_param_or("range_max", top.hi)};
  iv.lo = std::max(iv.lo, top.lo);
  iv.hi = std::min(iv.hi, top.hi);
  if (iv.lo > iv.hi) return top;  // nonsense declaration: ignore it
  return iv;
}

/// One propagation pass in firing order.  Delay outputs are pre-seeded from
/// `delay_state` before the pass, so consumers that fire before the delay
/// actor see the current-step state.
void propagate(Ctx& ctx, const std::vector<ActorId>& order,
               const std::map<ActorId, Interval>& delay_state) {
  for (const auto& [id, state] : delay_state) {
    ctx.result.intervals[{id, 0}] = state;
  }
  for (ActorId id : order) {
    const Actor& actor = ctx.model.actor(id);
    const std::string& type = actor.type();
    if (type == "Outport") continue;  // sink: no output signal
    if (type == "UnitDelay") continue;  // pre-seeded above
    Interval iv;
    if (type == "Inport") {
      iv = eval_inport(actor);
    } else if (type == "Constant") {
      iv = eval_constant(actor);
    } else if (actor_type_info(type).intensive) {
      iv = eval_intensive(ctx, actor);
    } else if (actor_type_info(type).elementwise) {
      iv = eval_elementwise(ctx, actor);
      // A computing actor with a provably constant output marks a
      // constant-foldable subgraph (floats rarely qualify: their bounds
      // carry the outward-rounding band).
      if (iv.singleton() && ctx.diags != nullptr) {
        emit(ctx, "HCG605", Severity::kRemark, actor,
             "output is provably the constant " + bound_string(iv.lo) +
                 "; the subgraph feeding it can be folded at generation "
                 "time",
             "");
      }
    } else {
      iv = type_interval(actor.output(0).type);
    }
    for (int port = 0; port < actor.output_count(); ++port) {
      ctx.result.intervals[{id, port}] = iv;
    }
  }
}

}  // namespace

std::string Interval::to_string() const {
  return "[" + bound_string(lo) + ", " + bound_string(hi) + "]";
}

Interval join(const Interval& a, const Interval& b) {
  return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

Interval type_interval(DataType type) {
  switch (type) {
    case DataType::kInt8: return {-128.0, 127.0};
    case DataType::kInt16: return {-32768.0, 32767.0};
    case DataType::kInt32: return {-2147483648.0, 2147483647.0};
    case DataType::kInt64:
      // 2^63-1 is not a double; the nearest double above is 2^63 (outward).
      return {-9223372036854775808.0, 9223372036854775808.0};
    case DataType::kUInt8: return {0.0, 255.0};
    case DataType::kUInt16: return {0.0, 65535.0};
    case DataType::kUInt32: return {0.0, 4294967295.0};
    case DataType::kUInt64: return {0.0, 18446744073709551616.0};  // 2^64
    case DataType::kFloat32:
    case DataType::kFloat64:
    case DataType::kComplex64:
    case DataType::kComplex128:
      return {-kInf, kInf};
  }
  return {-kInf, kInf};
}

bool interval_fits(const Interval& iv, DataType type) {
  if (!std::isfinite(iv.lo) || !std::isfinite(iv.hi)) {
    return is_float(type) || is_complex(type);
  }
  if (is_float(type) || is_complex(type)) return true;
  // Inward-rounded 64-bit bounds: type_interval rounds outward (sound for
  // containment of runtime values) which must not leak into "fits".
  double lo = type_interval(type).lo;
  double hi = type_interval(type).hi;
  if (type == DataType::kInt64) hi = 9223372036854774784.0;   // < 2^63-1
  if (type == DataType::kUInt64) hi = 18446744073709549568.0;  // < 2^64-1
  return iv.lo >= lo && iv.hi <= hi;
}

bool interval_bounded(const Interval& iv, DataType type) {
  // Both endpoints must be finite: a half-infinite interval (Abs or Sqrt of
  // an undeclared float input gives [0, inf]) is not actionable knowledge,
  // and warning on it would flag every such chain in a range-free model.
  if (!std::isfinite(iv.lo) || !std::isfinite(iv.hi)) return false;
  const Interval top = type_interval(type);
  return iv.lo > top.lo || iv.hi < top.hi;
}

const Interval* RangeAnalysis::find(ActorId actor, int port) const {
  const auto it = intervals.find({actor, port});
  return it == intervals.end() ? nullptr : &it->second;
}

RangeAnalysis analyze_ranges(const Model& resolved, DiagnosticEngine* diags) {
  HCG_TRACE_SCOPE("analysis.range");
  for (const Actor& actor : resolved.actors()) {
    require(actor.is_resolved(),
            "analyze_ranges: model must be resolved first");
  }
  const std::vector<ActorId> order = schedule(resolved);

  RangeAnalysis result;
  Ctx ctx{resolved, result, nullptr};

  // Delay fixpoint with widening: state starts at the initial value [0, 0]
  // and absorbs the fed interval after every pass.  Joins only grow, so the
  // iteration is monotone; after kWidenAfter unstable rounds a still-growing
  // state is widened straight to top, which stabilizes the next round.
  constexpr int kWidenAfter = 3;
  constexpr int kMaxRounds = 8;
  std::map<ActorId, Interval> delay_state;
  for (ActorId id : resolved.actors_of_type("UnitDelay")) {
    delay_state.emplace(id, Interval{0.0, 0.0});
  }
  for (int round = 0; round < kMaxRounds && !delay_state.empty(); ++round) {
    propagate(ctx, order, delay_state);
    bool changed = false;
    for (auto& [id, state] : delay_state) {
      const Actor& actor = resolved.actor(id);
      const Interval fed = ctx.in(actor, 0);
      Interval next = join(state, fed);
      const Interval top = type_interval(actor.output(0).type);
      if (!(next == state) && round >= kWidenAfter - 1) {
        next = top;
        ++result.widened_delays;
      }
      if (!(next == state)) {
        state = next;
        changed = true;
      }
    }
    if (!changed) break;
  }

  // Reporting pass: one final propagation with diagnostics enabled, over
  // the stabilized delay states (so HCG6xx findings are emitted exactly
  // once and against the fixpoint intervals).
  ctx.diags = diags;
  propagate(ctx, order, delay_state);

  result.actors_analyzed = resolved.actor_count();
  for (const Actor& actor : resolved.actors()) {
    for (int port = 0; port < actor.output_count(); ++port) {
      const Interval* iv = result.find(actor.id(), port);
      if (iv != nullptr &&
          interval_bounded(*iv, actor.output(port).type)) {
        ++result.bounded_outputs;
      }
    }
  }
  return result;
}

}  // namespace hcg::analysis
