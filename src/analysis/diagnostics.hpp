// The shared diagnostic engine of the static-analysis layer.
//
// Every finding the model/graph linter or the CGIR verifier produces is a
// Diagnostic with a stable code, a severity, a human message, and a source
// location (an actor path for model findings, a cgir node description for
// verifier findings).  Codes are grouped by subsystem:
//
//   HCG1xx  model structure   (lint: ports, dead actors, cycles)
//   HCG2xx  graph / types     (lint: resolution, width & dtype mismatches)
//   HCG3xx  cgir verifier     (invariant violations inside the codegen IR)
//   HCG4xx  optimization remarks (why Algorithm 2 did / did not vectorize)
//   HCG5xx  runtime profiling   (cost-model feedback from `hcgc profile`)
//   HCG6xx  value-range analysis (numeric safety: overflow, div-by-zero,
//           lossy casts, dead branches — src/analysis/range.hpp)
//
// The code table is the contract: docs/ANALYSIS.md documents every code, the
// SARIF exporter publishes them as rules, and tests pin one triggering input
// per code.  Codes are never reused for a different meaning.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hcg::analysis {

enum class Severity : std::uint8_t { kNote, kRemark, kWarning, kError };

/// "note" | "remark" | "warning" | "error".
std::string_view severity_name(Severity severity);

/// One finding.
struct Diagnostic {
  std::string code;      // "HCG102"
  Severity severity = Severity::kWarning;
  std::string message;
  /// Where: "actor 'm'" for model findings, "step: loop [0,1024)" for cgir
  /// findings, empty for whole-model findings.
  std::string location;
  /// Optional second location the finding references (the producer of an
  /// overflowing operand, the control feeding a dead Switch branch, ...).
  /// Exported as SARIF relatedLocations.
  std::string related;
};

/// One entry of the stable code table.
struct DiagnosticRule {
  std::string_view code;     // "HCG102"
  std::string_view name;     // kebab-case slug: "unconnected-input"
  std::string_view summary;  // one-line description for docs and SARIF
  Severity default_severity = Severity::kWarning;
};

/// The full code table, ascending by code.
const std::vector<DiagnosticRule>& diagnostic_rules();

/// Looks up a code; nullptr when unknown.
const DiagnosticRule* find_rule(std::string_view code);

/// Collects diagnostics.  With `werror` set, warnings are promoted to errors
/// at add() time (notes and remarks are informational and never promoted).
class DiagnosticEngine {
 public:
  explicit DiagnosticEngine(bool werror = false) : werror_(werror) {}

  void add(Diagnostic diag);

  /// Convenience constructors; `code` must be in diagnostic_rules() (checked
  /// with hcg::require — an unknown code is a bug, not an input error).
  void note(std::string_view code, std::string location, std::string message);
  void remark(std::string_view code, std::string location, std::string message);
  void warning(std::string_view code, std::string location, std::string message);
  void error(std::string_view code, std::string location, std::string message);

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  int count(Severity severity) const;
  bool has_errors() const { return count(Severity::kError) > 0; }
  bool werror() const { return werror_; }

  /// Pretty terminal rendering: one "<subject>: <severity> <code>: <message>"
  /// line per finding plus a trailing summary line (omitted when clean).
  /// `subject` prefixes each line, typically the model file path.
  std::string render(std::string_view subject) const;

  /// "2 errors, 1 warning, 3 remarks" ("no findings" when empty).
  std::string summary() const;

 private:
  bool werror_;
  std::vector<Diagnostic> diags_;
};

}  // namespace hcg::analysis
