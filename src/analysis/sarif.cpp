#include "analysis/sarif.hpp"

#include <cstdint>
#include <filesystem>
#include <system_error>

#include "obs/json.hpp"

namespace hcg::analysis {

std::string sarif_artifact_uri(std::string_view model_path) {
  std::string path(model_path);
  while (path.rfind("./", 0) == 0) path = path.substr(2);
  std::error_code ec;
  const std::filesystem::path abs =
      std::filesystem::absolute(std::filesystem::path(path), ec);
  if (!ec) {
    const std::filesystem::path cwd = std::filesystem::current_path(ec);
    if (!ec) {
      const std::filesystem::path rel = abs.lexically_relative(cwd);
      // Only adopt the relative form when the file actually sits under the
      // working directory — "../../elsewhere" is worse than the original.
      if (!rel.empty() && rel.begin()->string() != "..") {
        path = rel.generic_string();
      }
    }
  }
  return path;
}

std::string_view sarif_level(Severity severity) {
  switch (severity) {
    case Severity::kNote:
    case Severity::kRemark:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "error";
}

std::string to_sarif(const std::vector<Diagnostic>& diags,
                     std::string_view artifact_uri) {
  const std::vector<DiagnosticRule>& rules = diagnostic_rules();
  auto rule_index = [&rules](std::string_view code) -> std::int64_t {
    for (std::size_t i = 0; i < rules.size(); ++i) {
      if (rules[i].code == code) return static_cast<std::int64_t>(i);
    }
    return -1;
  };

  obs::JsonWriter w;
  w.begin_object();
  w.key("$schema").value(
      "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/"
      "sarif-schema-2.1.0.json");
  w.key("version").value("2.1.0");
  w.key("runs").begin_array();
  w.begin_object();

  // ---- tool.driver + the stable rule table -------------------------------
  w.key("tool").begin_object();
  w.key("driver").begin_object();
  w.key("name").value("hcgc");
  w.key("informationUri").value("docs/ANALYSIS.md");
  w.key("rules").begin_array();
  for (const DiagnosticRule& rule : rules) {
    w.begin_object();
    w.key("id").value(rule.code);
    w.key("name").value(rule.name);
    w.key("shortDescription").begin_object();
    w.key("text").value(rule.summary);
    w.end_object();
    w.key("defaultConfiguration").begin_object();
    w.key("level").value(sarif_level(rule.default_severity));
    w.end_object();
    w.end_object();
  }
  w.end_array();  // rules
  w.end_object();  // driver
  w.end_object();  // tool

  // ---- results ------------------------------------------------------------
  w.key("results").begin_array();
  for (const Diagnostic& diag : diags) {
    w.begin_object();
    w.key("ruleId").value(diag.code);
    const std::int64_t index = rule_index(diag.code);
    if (index >= 0) w.key("ruleIndex").value(index);
    w.key("level").value(sarif_level(diag.severity));
    w.key("message").begin_object();
    w.key("text").value(diag.message);
    w.end_object();
    if (!artifact_uri.empty() || !diag.location.empty()) {
      w.key("locations").begin_array();
      w.begin_object();
      if (!artifact_uri.empty()) {
        w.key("physicalLocation").begin_object();
        w.key("artifactLocation").begin_object();
        w.key("uri").value(artifact_uri);
        w.end_object();
        w.end_object();
      }
      if (!diag.location.empty()) {
        w.key("logicalLocations").begin_array();
        w.begin_object();
        w.key("fullyQualifiedName").value(diag.location);
        w.end_object();
        w.end_array();
      }
      w.end_object();
      w.end_array();  // locations
    }
    if (!diag.related.empty()) {
      w.key("relatedLocations").begin_array();
      w.begin_object();
      if (!artifact_uri.empty()) {
        w.key("physicalLocation").begin_object();
        w.key("artifactLocation").begin_object();
        w.key("uri").value(artifact_uri);
        w.end_object();
        w.end_object();
      }
      w.key("logicalLocations").begin_array();
      w.begin_object();
      w.key("fullyQualifiedName").value(diag.related);
      w.end_object();
      w.end_array();
      w.end_object();
      w.end_array();  // relatedLocations
    }
    w.end_object();
  }
  w.end_array();  // results

  w.end_object();  // run
  w.end_array();   // runs
  w.end_object();
  return w.take();
}

}  // namespace hcg::analysis
