// Interval value-range analysis over the resolved actor graph.
//
// An abstract interpretation with the classic interval domain: every
// (actor, output port) signal is mapped to a conservative per-element
// [min, max] over its runtime values.  The lattice is intervals over the
// extended reals ordered by inclusion; "top" for a signal is the full range
// of its element type (±inf for floats).  UnitDelay feedback is handled as
// a fixpoint over synchronous steps with widening: state starts at the
// initial value [0, 0], grows by joining the fed interval each round, and
// is widened to top after a few unstable rounds so the iteration always
// terminates.  docs/ANALYSIS.md documents the domain and every per-actor
// transfer function.
//
// Soundness contract (checked continuously by the differential fuzzing
// harness, docs/FUZZING.md): every value the VM interpreter oracle observes
// on a signal lies inside the predicted interval.  To that end all float
// bounds are rounded outward with a relative-epsilon band (the oracle
// computes in f32/f64, the analysis in double), integer bounds beyond 2^53
// are rounded outward by one ulp, and f32 bounds that exceed FLT_MAX
// saturate to ±inf (an overflowing float op produces ±inf at runtime).
//
// Consumers:
//   * `hcgc lint` — the HCG6xx numeric-safety diagnostics (possible signed
//     overflow, possible division by zero, lossy narrowing cast, dead
//     Switch branch, constant-foldable subgraph);
//   * the codegen lane-narrowing pass (src/codegen/emit.cpp) — a batch
//     region whose proven ranges fit a narrower element type is re-planned
//     at the narrow width, doubling (or quadrupling) SIMD lanes;
//   * the fuzz harness — the soundness cross-check above.
#pragma once

#include <map>
#include <utility>

#include "analysis/diagnostics.hpp"
#include "model/model.hpp"

namespace hcg::analysis {

/// One element of the interval lattice: a closed range [lo, hi] of the
/// per-element values a signal can take.  Bounds are doubles; integer
/// signals use exact endpoints up to 2^53 and outward-rounded ones beyond.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  bool contains(double value) const { return value >= lo && value <= hi; }
  bool singleton() const { return lo == hi; }
  /// Inclusion in the interval order (this ⊆ other).
  bool inside(const Interval& other) const {
    return lo >= other.lo && hi <= other.hi;
  }
  bool operator==(const Interval&) const = default;

  /// "[lo, hi]" with shortest-round-trip formatting.
  std::string to_string() const;
};

/// Lattice join (interval hull).
Interval join(const Interval& a, const Interval& b);

/// The full representable range of an element type: exact integer bounds
/// (outward-rounded where a double cannot hold them), ±inf for floats and
/// complex components.
Interval type_interval(DataType type);

/// True when every value in `iv` is representable in `type` — the query the
/// lane-narrowing pass and the Cast transfer function ask.  Conservative:
/// uses inward-rounded type bounds, so a borderline 64-bit range may be
/// rejected but never wrongly accepted.
bool interval_fits(const Interval& iv, DataType type);

/// True when `iv` is strictly narrower than its type's full range with both
/// endpoints finite — the "do we actually know something?" gate every
/// HCG6xx warning applies, so a model with undeclared (top) or only
/// half-bounded input ranges stays warning-free.
bool interval_bounded(const Interval& iv, DataType type);

/// The analysis result: per-signal intervals plus summary statistics for
/// the hcg-report-v1 `range_analysis` section.
struct RangeAnalysis {
  /// Interval per (actor id, output port) of the resolved model.
  std::map<std::pair<ActorId, int>, Interval> intervals;

  int actors_analyzed = 0;   // actors the propagation visited
  int bounded_outputs = 0;   // output signals proven narrower than their type
  int widened_delays = 0;    // UnitDelay states widened to top (unstable)

  /// Interval of (actor, port); nullptr when the signal was not analyzed
  /// (complex-typed signals of unreachable actors, for example).
  const Interval* find(ActorId actor, int port) const;
};

/// Propagates intervals over a *resolved* model (throws hcg::Error when it
/// is not resolved or has no firing order).  When `diags` is non-null the
/// HCG6xx numeric-safety diagnostics are emitted into it:
///
///   HCG601  possible-signed-overflow   (warning, bounded operands only)
///   HCG602  possible-division-by-zero  (warning, bounded divisor only)
///   HCG603  lossy-narrowing-cast       (warning, bounded input only)
///   HCG604  dead-switch-branch         (remark)
///   HCG605  constant-foldable          (remark)
RangeAnalysis analyze_ranges(const Model& resolved, DiagnosticEngine* diags);

}  // namespace hcg::analysis
