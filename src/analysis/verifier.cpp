#include "analysis/verifier.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/trace.hpp"
#include "support/error.hpp"

namespace hcg::analysis {
namespace {

std::string loop_desc(const cgir::Stmt& loop) {
  std::string out = "loop [" + std::to_string(loop.begin) + "," +
                    std::to_string(loop.end) + ")";
  if (loop.step != 1) out += " step " + std::to_string(loop.step);
  if (loop.vector_loop) out += " vector";
  if (loop.predicated) out += " predicated";
  return out;
}

std::string stmt_desc(const cgir::Stmt& stmt) {
  if (stmt.kind == cgir::Stmt::Kind::kLoop) return loop_desc(stmt);
  return "'" + stmt.text + "'";
}

/// Buffers a statement subtree writes elementwise (`buf[i] = ...` under the
/// loop induction variable) — the footprint HCG310 compares across siblings.
void collect_elementwise_writes(const cgir::Stmt& stmt,
                                std::unordered_set<std::string>& out) {
  for (const cgir::BufferAccess& access : stmt.accesses) {
    if (access.write && access.elementwise) out.insert(access.buffer);
  }
  for (const cgir::Stmt& child : stmt.body) {
    collect_elementwise_writes(child, out);
  }
}

/// Every buffer a statement subtree touches, read or write — used to tell a
/// reused slot apart from a redundant remainder (HCG310).
void collect_all_accesses(const cgir::Stmt& stmt,
                          std::unordered_set<std::string>& out) {
  for (const cgir::BufferAccess& access : stmt.accesses) {
    out.insert(access.buffer);
  }
  for (const cgir::Stmt& child : stmt.body) {
    collect_all_accesses(child, out);
  }
}

/// Walks one function body, tracking lexical scope.  A scope frame holds the
/// locals defined so far in that brace level; names from enclosing frames
/// stay visible (the IR never shadows, and HCG302 flags same-frame dupes).
class FunctionChecker {
 public:
  FunctionChecker(const cgir::TranslationUnit& tu, std::string func,
                  std::vector<Diagnostic>& out)
      : func_(std::move(func)), out_(out) {
    for (const cgir::BufferDecl& decl : tu.buffers) {
      if (!decls_.emplace(decl.name, &decl).second) {
        error("HCG307", "buffer '" + decl.name + "'",
              "buffer '" + decl.name + "' is declared more than once");
      }
    }
  }

  void run(const std::vector<cgir::Stmt>& body) {
    scopes_.push_back({});
    written_.push_back({});
    walk(body, /*loop=*/nullptr);
    written_.pop_back();
    scopes_.pop_back();
  }

 private:
  void error(std::string_view code, const std::string& where,
             std::string message) {
    Diagnostic diag;
    diag.code = std::string(code);
    diag.severity = Severity::kError;
    diag.location = func_ + ": " + where;
    diag.message = std::move(message);
    out_.push_back(std::move(diag));
  }

  bool visible(const std::string& name) const {
    for (const auto& frame : scopes_) {
      if (frame.count(name)) return true;
    }
    return false;
  }

  bool written_in_scope(const std::string& buffer) const {
    for (const auto& frame : written_) {
      if (frame.count(buffer)) return true;
    }
    return false;
  }

  /// Loop fusion leaves a *pending handoff*: a pure load of a buffer an
  /// earlier statement in the fused body stored, reusing the producer's
  /// register name.  Copy forwarding erases exactly these loads next, so a
  /// redefinition of this one shape is legal between the two passes (and
  /// cannot survive forwarding — HCG302 still catches real duplicates).
  bool is_pending_handoff(const cgir::Stmt& stmt) const {
    if (!stmt.is_load) return false;
    for (const cgir::BufferAccess& access : stmt.accesses) {
      if (!access.write && written_in_scope(access.buffer)) return true;
    }
    return false;
  }

  void check_text(const cgir::Stmt& stmt, const cgir::Stmt* loop) {
    const std::string where = stmt_desc(stmt);
    const bool handoff = is_pending_handoff(stmt);
    for (const cgir::BufferAccess& access : stmt.accesses) {
      auto it = decls_.find(access.buffer);
      if (it == decls_.end()) {
        // Not a static buffer: must be a local (an I/O pointer alias or a
        // vector register) defined by an earlier statement in scope.
        if (!visible(access.buffer)) {
          error("HCG305", where,
                "access to '" + access.buffer +
                    "' which is neither a declared buffer nor a local "
                    "defined earlier in scope");
        }
        continue;
      }
      const cgir::BufferDecl& decl = *it->second;
      if (access.write && decl.is_const) {
        error("HCG306", where,
              "write to buffer '" + decl.name + "' which is declared const");
      }
      if (access.elementwise && loop != nullptr &&
          loop->end > decl.components) {
        error("HCG301", where,
              "elementwise access to '" + decl.name + "' in " +
                  loop_desc(*loop) + " exceeds its extent of " +
                  std::to_string(decl.components) + " elements");
      }
    }
    if (stmt.is_store && !stmt.stores_var.empty() &&
        !visible(stmt.stores_var)) {
      error("HCG304", where,
            "store of '" + stmt.stores_var +
                "' which no earlier statement in scope defines");
    }
    if (!stmt.defines.empty()) {
      if (!scopes_.back().insert(stmt.defines).second && !handoff) {
        error("HCG302", where,
              "local '" + stmt.defines +
                  "' is defined twice in the same scope");
      }
    }
    for (const cgir::BufferAccess& access : stmt.accesses) {
      if (access.write) written_.back().insert(access.buffer);
    }
  }

  void check_loop_shape(const cgir::Stmt& loop,
                        const std::vector<cgir::Stmt>& siblings,
                        std::size_t index, const cgir::Stmt* parent) {
    const std::string where = loop_desc(loop);
    if (loop.step < 1 || loop.begin < 0 || loop.end < loop.begin) {
      error("HCG303", where, "malformed iteration domain");
      return;
    }
    if (loop.predicated) {
      // HCG310: a predicated VLA loop must cover [0, n) entirely by itself.
      // Its predicate absorbs the tail, so a begin offset, a missing runtime
      // stride, or any sibling loop writing the same output elementwise
      // (the remainder it was supposed to replace) is a lowering bug.
      if (loop.begin != 0) {
        error("HCG310", where,
              "predicated loop starts at " + std::to_string(loop.begin) +
                  "; it must cover [0, n) by itself");
      }
      if (loop.step_expr.empty()) {
        error("HCG310", where,
              "predicated loop has no runtime stride expression");
      }
      if (loop.vector_loop || loop.single_iteration || loop.strip_mined) {
        error("HCG310", where,
              "predicated loop also carries a fixed-width loop form");
      }
      // A redundant remainder is emitted right after its main loop, before
      // anything else touches the output.  A later loop that writes the
      // same buffer *after* an intervening access is a reused slot holding
      // a different signal (legacy -O0 buffer reuse), not a remainder.
      std::unordered_set<std::string> own;
      collect_elementwise_writes(loop, own);
      std::unordered_set<std::string> touched_since;
      for (std::size_t j = index + 1; j < siblings.size(); ++j) {
        if (siblings[j].kind == cgir::Stmt::Kind::kLoop) {
          std::unordered_set<std::string> other;
          collect_elementwise_writes(siblings[j], other);
          bool flagged = false;
          for (const std::string& buffer : own) {
            if (other.count(buffer) && !touched_since.count(buffer)) {
              error("HCG310", where,
                    "sibling " + loop_desc(siblings[j]) +
                        " also writes '" + buffer +
                        "' elementwise; the predicated loop already covers "
                        "the whole domain, so that remainder is redundant");
              flagged = true;
              break;
            }
          }
          if (flagged) break;
        }
        collect_all_accesses(siblings[j], touched_since);
      }
      return;
    }
    if (loop.strip_mined) {
      // A strip-mined lane loop must sit directly inside a loop and cover
      // exactly one outer stride: [0, parent step) by 1, with a distinct
      // induction variable — together the pair walks the outer domain.
      if (parent == nullptr) {
        error("HCG309", where,
              "strip-mined loop is not nested inside an outer loop");
      } else if (loop.begin != 0 || loop.step != 1 ||
                 loop.end != parent->step) {
        error("HCG309", where,
              "strip-mined loop does not cover exactly one stride of its "
              "outer loop (expected [0," +
                  std::to_string(parent->step) + ") step 1)");
      } else if (loop.induction_var == parent->induction_var) {
        error("HCG309", where,
              "strip-mined loop reuses its outer loop's induction variable "
              "'" + parent->induction_var + "'");
      }
    }
    if (!loop.vector_loop && !loop.strip_mined && loop.begin > 0) {
      // A scalar tail produced by tiling: some earlier sibling loop must
      // end exactly where this one begins, so the pair covers [0, end).
      bool covered = false;
      for (std::size_t j = 0; j < index; ++j) {
        const cgir::Stmt& prev = siblings[j];
        if (prev.kind != cgir::Stmt::Kind::kLoop) continue;
        if (prev.end == loop.begin) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        error("HCG303", where,
              "scalar loop starts at " + std::to_string(loop.begin) +
                  " but no earlier sibling loop ends there");
      }
    }
    if (loop.single_iteration && loop.end != loop.begin + loop.step) {
      error("HCG303", where,
            "single-iteration loop spans more than one step");
    }
    if (loop.vector_loop && (loop.end - loop.begin) % loop.step != 0) {
      error("HCG303", where,
            "vector loop trip (" + std::to_string(loop.end - loop.begin) +
                " elements) is not a multiple of its stride " +
                std::to_string(loop.step) +
                "; the final iteration would read past the region");
    }
    if (loop.vector_loop && loop.begin > 0) {
      // The scalar remainder loop must precede its vector main loop and
      // cover [0, begin) exactly, so the pair covers the region width.
      bool covered = false;
      for (std::size_t j = 0; j < index; ++j) {
        const cgir::Stmt& prev = siblings[j];
        if (prev.kind != cgir::Stmt::Kind::kLoop || prev.vector_loop) continue;
        if (prev.begin == 0 && prev.end == loop.begin) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        error("HCG303", where,
              "vector loop starts at " + std::to_string(loop.begin) +
                  " but no earlier scalar loop covers [0," +
                  std::to_string(loop.begin) + ")");
      }
    }
  }

  void walk(const std::vector<cgir::Stmt>& body, const cgir::Stmt* loop) {
    for (std::size_t i = 0; i < body.size(); ++i) {
      const cgir::Stmt& stmt = body[i];
      if (stmt.kind == cgir::Stmt::Kind::kText) {
        check_text(stmt, loop);
        continue;
      }
      check_loop_shape(stmt, body, i, loop);
      scopes_.push_back({});
      written_.push_back({});
      // A strip-mined lane loop's elementwise accesses belong to the
      // *enclosing* loop's iteration domain, so keep that loop as the
      // bound-check context (HCG301) when descending into it.
      walk(stmt.body, stmt.strip_mined && loop != nullptr ? loop : &stmt);
      written_.pop_back();
      scopes_.pop_back();
    }
  }

  std::string func_;
  std::vector<Diagnostic>& out_;
  std::unordered_map<std::string, const cgir::BufferDecl*> decls_;
  std::vector<std::unordered_set<std::string>> scopes_;
  /// Buffers written so far, per open scope (for handoff detection).
  std::vector<std::unordered_set<std::string>> written_;
};

}  // namespace

std::vector<Diagnostic> verify_unit(const cgir::TranslationUnit& tu) {
  std::vector<Diagnostic> out;
  FunctionChecker init(tu, "init", out);
  init.run(tu.init.body);
  // HCG307 is a unit-level property; report it once (the init checker
  // already did), so drop duplicates the step checker would re-find.
  std::vector<Diagnostic> step_out;
  FunctionChecker step(tu, "step", step_out);
  step.run(tu.step.body);
  for (Diagnostic& diag : step_out) {
    if (diag.code == "HCG307") continue;
    out.push_back(std::move(diag));
  }
  return out;
}

std::vector<Diagnostic> verify_arena_bindings(
    const std::vector<cgir::ArenaBinding>& bindings) {
  std::vector<Diagnostic> out;
  std::unordered_map<std::string, std::vector<const cgir::ArenaBinding*>>
      by_slot;
  for (const cgir::ArenaBinding& binding : bindings) {
    by_slot[binding.slot].push_back(&binding);
  }
  // Deterministic report order: iterate the original vector, compare each
  // member against earlier members of its slot.
  for (const cgir::ArenaBinding& binding : bindings) {
    for (const cgir::ArenaBinding* other : by_slot[binding.slot]) {
      if (other == &binding) break;
      const bool disjoint = other->last_access < binding.first_write ||
                            binding.last_access < other->first_write;
      if (disjoint) continue;
      Diagnostic diag;
      diag.code = "HCG308";
      diag.severity = Severity::kError;
      diag.location = "arena slot '" + binding.slot + "'";
      diag.message =
          "buffers '" + other->buffer + "' [" +
          std::to_string(other->first_write) + "," +
          std::to_string(other->last_access) + "] and '" + binding.buffer +
          "' [" + std::to_string(binding.first_write) + "," +
          std::to_string(binding.last_access) +
          "] share the slot but their live ranges overlap";
      out.push_back(std::move(diag));
    }
  }
  return out;
}

std::size_t require_valid_unit(const cgir::TranslationUnit& tu,
                               const cgir::PassStats& stats,
                               std::string_view stage) {
  HCG_TRACE_SCOPE("cgir.verify");
  std::vector<Diagnostic> diags = verify_unit(tu);
  std::vector<Diagnostic> arena = verify_arena_bindings(stats.arena_bindings);
  diags.insert(diags.end(), std::make_move_iterator(arena.begin()),
               std::make_move_iterator(arena.end()));
  if (!diags.empty()) {
    const Diagnostic& first = diags.front();
    throw CodegenError("cgir verifier: invariant broken after pass '" +
                       std::string(stage) + "': " + first.code + " at " +
                       first.location + ": " + first.message +
                       (diags.size() > 1
                            ? " (+" + std::to_string(diags.size() - 1) +
                                  " more)"
                            : ""));
  }
  return 2;  // unit + arena checks both ran clean
}

}  // namespace hcg::analysis
