// Deterministic random data generation.
//
// The pre-calculation step of Algorithm 1 times candidate implementations on
// randomly generated inputs, and the fuzzing subsystem (docs/FUZZING.md)
// derives whole models from a seed; tests, benches and fuzz campaigns need
// those draws to be reproducible *across platforms*, so everything funnels
// through this seeded engine.
//
// Portability contract: the raw mt19937_64 bit stream is fully specified by
// the C++ standard, but std::uniform_int_distribution and
// std::uniform_real_distribution are NOT — libstdc++ and libc++ map the same
// bit stream to different values, so a fuzz seed minimized on one platform
// would not reproduce on another.  The bounded draws below therefore use a
// self-contained Lemire multiply-shift reduction (with rejection, so they
// stay exactly uniform) and an explicit 53-bit mantissa mapping for reals.
// test_support.cpp pins expected values; do not change the algorithms
// without updating the pins and bumping the fuzz corpus.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace hcg {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : engine_(seed) {}

  /// The next raw 64-bit engine word.
  std::uint64_t next_u64() { return engine_(); }

  /// Uniform integer in [0, range); range == 0 means the full 64-bit span.
  /// Lemire's multiply-shift reduction, with rejection of the biased low
  /// slice so every value is exactly equally likely.
  std::uint64_t bounded(std::uint64_t range) {
    if (range == 0) return engine_();
    unsigned __int128 product =
        static_cast<unsigned __int128>(engine_()) * range;
    auto low = static_cast<std::uint64_t>(product);
    if (low < range) {
      const std::uint64_t threshold = (0 - range) % range;
      while (low < threshold) {
        product = static_cast<unsigned __int128>(engine_()) * range;
        low = static_cast<std::uint64_t>(product);
      }
    }
    return static_cast<std::uint64_t>(product >> 64);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    // hi - lo + 1 in unsigned arithmetic; wraps to 0 for the full span,
    // which bounded() treats as "any 64-bit value".
    const std::uint64_t range = static_cast<std::uint64_t>(hi) -
                                static_cast<std::uint64_t>(lo) + 1;
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                     bounded(range));
  }

  /// Uniform double in [lo, hi).  The unit draw keeps exactly the 53
  /// mantissa bits a double can hold, so the mapping is bit-identical on
  /// every IEEE-754 platform.
  double uniform_real(double lo, double hi) {
    const double unit = static_cast<double>(engine_() >> 11) * 0x1.0p-53;
    return lo + unit * (hi - lo);
  }

  /// Vector of `n` floats in [-1, 1) — typical signal-processing payload.
  std::vector<float> signal_f32(std::size_t n) {
    std::vector<float> out(n);
    for (float& v : out) v = static_cast<float>(uniform_real(-1.0, 1.0));
    return out;
  }

  /// Vector of `n` doubles in [-1, 1).
  std::vector<double> signal_f64(std::size_t n) {
    std::vector<double> out(n);
    for (double& v : out) v = uniform_real(-1.0, 1.0);
    return out;
  }

  /// Vector of `n` int32 samples in [lo, hi].
  std::vector<std::int32_t> signal_i32(std::size_t n, std::int32_t lo = -1000,
                                       std::int32_t hi = 1000) {
    std::vector<std::int32_t> out(n);
    for (auto& v : out) v = static_cast<std::int32_t>(uniform_int(lo, hi));
    return out;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace hcg
