// Deterministic random data generation.
//
// The pre-calculation step of Algorithm 1 times candidate implementations on
// randomly generated inputs; tests and benches need those inputs to be
// reproducible, so everything funnels through this seeded engine.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace hcg {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Vector of `n` floats in [-1, 1) — typical signal-processing payload.
  std::vector<float> signal_f32(std::size_t n) {
    std::vector<float> out(n);
    for (float& v : out) v = static_cast<float>(uniform_real(-1.0, 1.0));
    return out;
  }

  /// Vector of `n` doubles in [-1, 1).
  std::vector<double> signal_f64(std::size_t n) {
    std::vector<double> out(n);
    for (double& v : out) v = uniform_real(-1.0, 1.0);
    return out;
  }

  /// Vector of `n` int32 samples in [lo, hi].
  std::vector<std::int32_t> signal_i32(std::size_t n, std::int32_t lo = -1000,
                                       std::int32_t hi = 1000) {
    std::vector<std::int32_t> out(n);
    for (auto& v : out) v = static_cast<std::int32_t>(uniform_int(lo, hi));
    return out;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace hcg
