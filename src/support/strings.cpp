#include "support/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>

#include "support/error.hpp"

namespace hcg {

namespace {
bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}
}  // namespace

std::string_view trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && is_space(text[begin])) ++begin;
  while (end > begin && is_space(text[end - 1])) --end;
  return text.substr(begin, end - begin);
}

std::vector<std::string> split(std::string_view text, char separator) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(separator, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(trim(text.substr(start)));
      break;
    }
    out.emplace_back(trim(text.substr(start, pos - start)));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> split_whitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && is_space(text[i])) ++i;
    size_t start = i;
    while (i < text.size() && !is_space(text[i])) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& pieces,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += separator;
    out += pieces[i];
  }
  return out;
}

std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  out.reserve(text.size());
  size_t start = 0;
  while (true) {
    size_t pos = text.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(text.substr(start));
      break;
    }
    out.append(text.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
  return out;
}

namespace {

bool identifier_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

}  // namespace

std::string replace_identifier(std::string_view text, std::string_view from,
                               std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  out.reserve(text.size());
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t hit = text.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(text.substr(pos));
      break;
    }
    bool left_ok = hit == 0 || !identifier_char(text[hit - 1]);
    std::size_t after = hit + from.size();
    bool right_ok = after >= text.size() || !identifier_char(text[after]);
    out.append(text.substr(pos, hit - pos));
    if (left_ok && right_ok) {
      out.append(to);
    } else {
      out.append(from);
    }
    pos = after;
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

long long parse_int(std::string_view text) {
  text = trim(text);
  long long value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    throw ParseError("not an integer: '" + std::string(text) + "'");
  }
  return value;
}

double parse_double(std::string_view text) {
  text = trim(text);
  if (text.empty()) throw ParseError("not a number: ''");
  std::string copy(text);
  char* end = nullptr;
  double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size()) {
    throw ParseError("not a number: '" + copy + "'");
  }
  return value;
}

bool is_identifier(std::string_view name) {
  if (name.empty()) return false;
  auto alpha = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  auto alnum = [&](char c) { return alpha(c) || (c >= '0' && c <= '9'); };
  if (!alpha(name[0])) return false;
  for (char c : name.substr(1)) {
    if (!alnum(c)) return false;
  }
  return true;
}

std::string sanitize_identifier(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(out.begin(), '_');
  return out;
}

}  // namespace hcg
