#include "support/fileio.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <fstream>
#include <functional>
#include <sstream>

#include "support/error.hpp"
#include "support/faults.hpp"

namespace hcg {

namespace {

/// Fault hook shared by both writers ("fileio.write", keyed by the logical
/// destination path).  kTorn emulates a crash mid-write: half the content is
/// flushed through `write_half`, then the writer dies.
void check_write_fault(const std::filesystem::path& path,
                       std::string_view content,
                       const std::function<void(std::string_view)>& write_half) {
  switch (faults::probe("fileio.write", path.string())) {
    case faults::Action::kNone:
      return;
    case faults::Action::kTorn:
      write_half(content.substr(0, content.size() / 2));
      throw Error("injected torn write: " + path.string());
    case faults::Action::kThrow:
      throw faults::FaultInjected("injected fault at fileio.write [" +
                                  path.string() + "]");
    default:
      throw Error("injected write failure: " + path.string());
  }
}

}  // namespace

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open file for reading: " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::filesystem::path& path, std::string_view content) {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("cannot open file for writing: " + path.string());
  check_write_fault(path, content, [&](std::string_view half) {
    out.write(half.data(), static_cast<std::streamsize>(half.size()));
    out.flush();
  });
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!out) throw Error("short write to file: " + path.string());
}

namespace {
std::atomic<unsigned> g_tempdir_counter{0};
std::atomic<unsigned> g_tempfile_counter{0};

/// Writes content to an open fd completely; returns false on any error.
bool write_all(int fd, std::string_view content) {
  std::size_t done = 0;
  while (done < content.size()) {
    const ssize_t n = ::write(fd, content.data() + done, content.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}
}  // namespace

void write_file_atomic(const std::filesystem::path& path,
                       std::string_view content) {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  // Unique per process *and* per call, so concurrent savers of the same
  // target never share a temp file; the loser's rename simply wins later.
  const unsigned serial = g_tempfile_counter.fetch_add(1);
  std::filesystem::path temp = path;
  temp += ".tmp-" + std::to_string(::getpid()) + "-" + std::to_string(serial);

  const int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw Error("cannot open temp file for atomic write: " + temp.string());
  }
  try {
    check_write_fault(path, content, [&](std::string_view half) {
      write_all(fd, half);
    });
    if (!write_all(fd, content)) {
      throw Error("short write to temp file: " + temp.string());
    }
    // Durability before visibility: the rename must never publish a file
    // whose blocks are still in flight.
    if (::fsync(fd) != 0) {
      throw Error("fsync failed for temp file: " + temp.string());
    }
  } catch (...) {
    ::close(fd);
    std::error_code ec;
    std::filesystem::remove(temp, ec);
    throw;
  }
  ::close(fd);
  std::error_code ec;
  std::filesystem::rename(temp, path, ec);
  if (ec) {
    std::error_code cleanup;
    std::filesystem::remove(temp, cleanup);
    throw Error("atomic rename failed: " + temp.string() + " -> " +
                path.string() + " (" + ec.message() + ")");
  }
}

TempDir::TempDir(std::string_view prefix) {
  const auto base = std::filesystem::temp_directory_path();
  // Combine pid + counter so parallel test processes never collide.
  const unsigned serial = g_tempdir_counter.fetch_add(1);
  for (int attempt = 0; attempt < 100; ++attempt) {
    std::filesystem::path candidate =
        base / (std::string(prefix) + "-" + std::to_string(::getpid()) + "-" +
                std::to_string(serial) + "-" + std::to_string(attempt));
    std::error_code ec;
    if (std::filesystem::create_directory(candidate, ec)) {
      path_ = candidate;
      return;
    }
  }
  throw Error("cannot create temporary directory under " + base.string());
}

TempDir::~TempDir() {
  if (keep_ || path_.empty()) return;
  std::error_code ec;
  std::filesystem::remove_all(path_, ec);  // best effort; never throws
}

}  // namespace hcg
