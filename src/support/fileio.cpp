#include "support/fileio.hpp"

#include <unistd.h>

#include <atomic>
#include <fstream>
#include <sstream>

#include "support/error.hpp"

namespace hcg {

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open file for reading: " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::filesystem::path& path, std::string_view content) {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("cannot open file for writing: " + path.string());
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!out) throw Error("short write to file: " + path.string());
}

namespace {
std::atomic<unsigned> g_tempdir_counter{0};
}

TempDir::TempDir(std::string_view prefix) {
  const auto base = std::filesystem::temp_directory_path();
  // Combine pid + counter so parallel test processes never collide.
  const unsigned serial = g_tempdir_counter.fetch_add(1);
  for (int attempt = 0; attempt < 100; ++attempt) {
    std::filesystem::path candidate =
        base / (std::string(prefix) + "-" + std::to_string(::getpid()) + "-" +
                std::to_string(serial) + "-" + std::to_string(attempt));
    std::error_code ec;
    if (std::filesystem::create_directory(candidate, ec)) {
      path_ = candidate;
      return;
    }
  }
  throw Error("cannot create temporary directory under " + base.string());
}

TempDir::~TempDir() {
  if (keep_ || path_.empty()) return;
  std::error_code ec;
  std::filesystem::remove_all(path_, ec);  // best effort; never throws
}

}  // namespace hcg
