// Monotonic wall-clock stopwatch used by the pre-calculation engine and the
// benchmark harness.
#pragma once

#include <chrono>
#include <cstdint>

namespace hcg {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Elapsed time since construction / last reset.
  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  std::int64_t elapsed_nanoseconds() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hcg
