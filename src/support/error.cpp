#include "support/error.hpp"

namespace hcg {

std::string ParseError::format(const std::string& what, int line, int column) {
  if (line <= 0) return what;
  std::string out = what;
  out += " (at line ";
  out += std::to_string(line);
  if (column > 0) {
    out += ", column ";
    out += std::to_string(column);
  }
  out += ")";
  return out;
}

void require(bool condition, const std::string& message) {
  if (!condition) throw InternalError(message);
}

}  // namespace hcg
