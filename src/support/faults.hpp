// Deterministic fault injection for robustness testing (docs/ROBUSTNESS.md).
//
// Production code plants *probes* at the places that can fail in the wild —
// file writes, compiler invocations, candidate measurements, pool tasks —
// and the test (or the HCG_FAULTS environment variable) arms a registry of
// rules describing which probes must misbehave and how:
//
//   HCG_FAULTS="toolchain.compile=fail@2,fileio.write=torn,precalc.measure=throw"
//
// Rule grammar (comma-separated entries):
//
//   entry      := site [':' keyglob] '=' action ['@' occurrence]
//   site       := glob over the probe's site name ("toolchain.compile", ...)
//   keyglob    := glob over the probe's key (an impl id, a file path, ...)
//   action     := fail | throw | torn | timeout
//   occurrence := N    fire only on the Nth matching hit (1-based)
//               | N+   fire on the Nth and every later hit
//
// Globs support '*' (any run) and '?' (any one character).  Without '@' a
// rule fires on every matching hit.  What each action *means* is decided by
// the probe site; see the per-site table in docs/ROBUSTNESS.md.
//
// The registry costs one relaxed atomic load per probe when no faults are
// armed, and configuring CMake with -DHCG_DISABLE_FAULTS=ON (the same
// pattern as HCG_DISABLE_TRACING) compiles every probe to a constant so the
// whole mechanism vanishes from production builds.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.hpp"

namespace hcg::faults {

/// What an armed probe should do.  kNone means "behave normally".
enum class Action : std::uint8_t {
  kNone,
  kFail,     // report failure through the site's normal error channel
  kThrow,    // throw FaultInjected (a simulated crash)
  kTorn,     // fileio: stop half-way through the write (a simulated power cut)
  kTimeout,  // pretend the operation exceeded its deadline
};

/// Thrown by probe sites executing a `throw` action.  Derives from
/// hcg::Error so the library's normal error handling sees it.
class FaultInjected : public Error {
 public:
  using Error::Error;
};

/// Glob match with '*' and '?' (no character classes).
bool glob_match(std::string_view pattern, std::string_view text);

/// Static description of one probe site.  The catalog below is the single
/// source of truth for which sites exist: `hcgc faults` and HCG_FAULTS=list
/// render it, the fuzz harness sweeps it (docs/FUZZING.md), and a test
/// scans the sources for probe()/raise_if_armed() literals to prove the
/// catalog cannot drift from the call sites.
struct SiteInfo {
  std::string_view site;     // probe name, e.g. "toolchain.compile"
  std::string_view module;   // source module that plants the probe
  std::string_view key;      // what the rule's key glob matches against
  std::string_view actions;  // actions the site honors and their meaning
};

/// Every registered probe site, sorted by site name.
const std::vector<SiteInfo>& site_catalog();

/// Human-readable catalog table (the `hcgc faults` / HCG_FAULTS=list text).
std::string render_site_catalog();

class Registry {
 public:
  /// The process-wide registry; the first call arms it from HCG_FAULTS.
  static Registry& instance();

  /// Replaces the armed rule set.  Throws hcg::ParseError on bad grammar.
  void configure(std::string_view spec);

  /// Re-arms from the HCG_FAULTS environment variable (empty/unset clears).
  void configure_from_env();

  /// Disarms everything and resets the occurrence counters.
  void clear();

  /// True when at least one rule is armed (single relaxed load).
  bool active() const { return active_.load(std::memory_order_relaxed); }

  /// Consults the armed rules for a probe hit.  Every matching rule counts
  /// the hit; the first rule whose occurrence selector fires decides the
  /// action.  kNone when nothing fires.
  Action consult(std::string_view site, std::string_view key);

  /// Total probe hits that fired an action since the last configure/clear.
  std::uint64_t injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

 private:
  Registry() { configure_from_env(); }

  struct Rule {
    std::string site_glob;
    std::string key_glob;  // empty: match any key
    Action action = Action::kNone;
    std::uint64_t at = 0;  // 0: every occurrence; N: see sticky
    bool sticky = false;   // true: fire from occurrence `at` onward
    std::atomic<std::uint64_t> hits{0};
  };

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Rule>> rules_;
  std::atomic<bool> active_{false};
  std::atomic<std::uint64_t> injected_{0};
};

#ifdef HCG_DISABLE_FAULTS

inline Action probe(std::string_view, std::string_view = {}) {
  return Action::kNone;
}

#else

/// The probe call sites use: "which fault, if any, is armed for me now?"
inline Action probe(std::string_view site, std::string_view key = {}) {
  Registry& registry = Registry::instance();
  if (!registry.active()) return Action::kNone;
  return registry.consult(site, key);
}

#endif

/// Convenience for sites with a single failure mode: any armed action is a
/// thrown FaultInjected.
inline void raise_if_armed(std::string_view site, std::string_view key = {}) {
  if (probe(site, key) != Action::kNone) {
    throw FaultInjected("injected fault at " + std::string(site) +
                        (key.empty() ? "" : " [" + std::string(key) + "]"));
  }
}

}  // namespace hcg::faults
