#include "support/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

#include "support/error.hpp"

namespace hcg {

namespace {

/// 0 = no override; set by set_default_parallelism (the --jobs flag).
std::atomic<int> g_default_override{0};

int clamp_jobs(long n) {
  return static_cast<int>(std::clamp<long>(n, 1, 256));
}

int env_or_hardware_parallelism() {
  if (const char* env = std::getenv("HCG_JOBS");
      env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long n = std::strtol(env, &end, 10);
    if (end != env && n >= 1) return clamp_jobs(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : clamp_jobs(static_cast<long>(hw));
}

}  // namespace

int ThreadPool::default_parallelism() {
  const int override = g_default_override.load(std::memory_order_relaxed);
  if (override > 0) return override;
  return env_or_hardware_parallelism();
}

void ThreadPool::set_default_parallelism(int n) {
  g_default_override.store(n > 0 ? clamp_jobs(n) : 0,
                           std::memory_order_relaxed);
}

ThreadPool::ThreadPool(int threads)
    : size_(threads > 0 ? clamp_jobs(threads) : default_parallelism()) {
  if (size_ == 1) return;  // inline mode: no workers at all
  workers_.reserve(static_cast<std::size_t>(size_));
  for (int i = 0; i < size_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    require(!stopping_, "ThreadPool: submit after shutdown");
    queue_.push_back(std::move(task));
  }
  ready_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Graceful shutdown: drain the queue before exiting.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace hcg
