// Fixed-size worker pool for the parallel synthesis engine.
//
// A ThreadPool owns N worker threads draining one FIFO task queue; submit()
// returns a std::future for the task's result.  The destructor drains the
// queue and joins every worker (graceful shutdown: already-queued tasks
// still run, new submissions are rejected).
//
// A pool of size 1 runs tasks *inline* inside submit() on the caller's
// thread: `--jobs 1` is genuinely serial — same stack, same thread-local
// state, zero scheduling jitter — which is what the determinism tests pin
// against.
//
// The default pool size is resolved once per call from, in order:
//   1. set_default_parallelism(n)  (the `hcgc --jobs N` flag)
//   2. the HCG_JOBS environment variable
//   3. std::thread::hardware_concurrency()
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "support/faults.hpp"

namespace hcg {

class ThreadPool {
 public:
  /// `threads` <= 0 picks default_parallelism().
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of execution lanes (1 = inline, no worker threads).
  int size() const { return size_; }

  /// Tasks queued but not yet picked up by a worker.
  std::size_t pending() const;

  /// Total tasks ever submitted to this pool.
  std::uint64_t submitted() const {
    return submitted_.load(std::memory_order_relaxed);
  }

  /// Schedules `fn()` and returns a future for its result.  With size 1 the
  /// task runs before submit() returns.  Exceptions propagate through the
  /// future.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    // shared_ptr because std::function requires a copyable target and
    // packaged_task is move-only.  The fault probe runs *inside* the task so
    // an injected pool.task failure surfaces exactly like a task that threw
    // on a worker: through the future, at whatever point the task actually
    // executes.
    auto task = std::make_shared<std::packaged_task<R()>>(
        [fn = std::forward<Fn>(fn)]() mutable -> R {
          faults::raise_if_armed("pool.task");
          return fn();
        });
    std::future<R> future = task->get_future();
    submitted_.fetch_add(1, std::memory_order_relaxed);
    if (size_ == 1) {
      (*task)();
      return future;
    }
    enqueue([task] { (*task)(); });
    return future;
  }

  /// The process-wide default lane count (see header comment).  Always >= 1.
  static int default_parallelism();

  /// Overrides default_parallelism() for the rest of the process (<= 0
  /// clears the override, falling back to HCG_JOBS / hardware concurrency).
  static void set_default_parallelism(int n);

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();

  int size_ = 1;
  std::atomic<std::uint64_t> submitted_{0};
  std::vector<std::thread> workers_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
};

}  // namespace hcg
