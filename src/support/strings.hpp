// Small string utilities shared across the library.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hcg {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// Splits on `separator`, trimming each piece; empty pieces are kept.
std::vector<std::string> split(std::string_view text, char separator);

/// Splits on any amount of ASCII whitespace; empty pieces are dropped.
std::vector<std::string> split_whitespace(std::string_view text);

/// True if `text` begins with / ends with the given prefix or suffix.
bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// Joins `pieces` with `separator` between elements.
std::string join(const std::vector<std::string>& pieces,
                 std::string_view separator);

/// Replaces every occurrence of `from` with `to`.
std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to);

/// Replaces occurrences of the identifier `from` with `to`, but only where
/// `from` is not part of a longer identifier (C token boundaries on both
/// sides), so renaming `buf1` leaves `buf10` and `sig_buf1` untouched.
std::string replace_identifier(std::string_view text, std::string_view from,
                               std::string_view to);

/// Lower-cases ASCII letters.
std::string to_lower(std::string_view text);

/// Parses a decimal integer; throws hcg::ParseError on garbage.
long long parse_int(std::string_view text);

/// Parses a floating point number; throws hcg::ParseError on garbage.
double parse_double(std::string_view text);

/// True if `name` is a valid C identifier.
bool is_identifier(std::string_view name);

/// Mangles an arbitrary string into a valid C identifier (non-alphanumeric
/// characters become '_', a leading digit gets an extra '_' prefix).
std::string sanitize_identifier(std::string_view name);

}  // namespace hcg
