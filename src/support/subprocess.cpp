#include "support/subprocess.hpp"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <string.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>

#include "support/error.hpp"
#include "support/faults.hpp"
#include "support/stopwatch.hpp"

namespace hcg {

namespace {

void sleep_seconds(double seconds) {
  if (seconds <= 0) return;
  timespec ts;
  ts.tv_sec = static_cast<time_t>(seconds);
  ts.tv_nsec = static_cast<long>((seconds - std::floor(seconds)) * 1e9);
  ::nanosleep(&ts, nullptr);
}

/// One fork/exec attempt.  Returns true when the attempt produced a final
/// result (the child ran, or the failure is permanent); false when the spawn
/// failed transiently and the caller may retry.
bool spawn_once(const std::vector<std::string>& argv,
                const SubprocessOptions& options, SubprocessResult& result) {
  // Injected transient spawn failures exercise the retry path.
  const faults::Action injected = faults::probe("subprocess.spawn", argv[0]);
  if (injected == faults::Action::kThrow) {
    throw faults::FaultInjected("injected fault at subprocess.spawn [" +
                                argv[0] + "]");
  }
  if (injected != faults::Action::kNone) {
    result.kind = ExitKind::kSpawnFailed;
    result.error = "injected transient spawn failure";
    return false;
  }

  int out_pipe[2];  // child stdout+stderr -> parent
  if (::pipe(out_pipe) != 0) {
    result.kind = ExitKind::kSpawnFailed;
    result.error = std::string("pipe: ") + ::strerror(errno);
    return false;
  }
  int exec_pipe[2];  // CLOEXEC channel reporting exec failure errno
  if (::pipe2(exec_pipe, O_CLOEXEC) != 0) {
    const int saved = errno;
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    result.kind = ExitKind::kSpawnFailed;
    result.error = std::string("pipe2: ") + ::strerror(saved);
    return false;
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    const int saved = errno;
    for (int fd : {out_pipe[0], out_pipe[1], exec_pipe[0], exec_pipe[1]}) {
      ::close(fd);
    }
    result.kind = ExitKind::kSpawnFailed;
    result.error = std::string("fork: ") + ::strerror(saved);
    return saved != EAGAIN && saved != ENOMEM;  // those two are transient
  }

  if (pid == 0) {
    // Child.  Own process group so a timeout can kill cc *and* anything it
    // spawned (cc1, as, ld) in one sweep.
    ::setpgid(0, 0);
    const int devnull = ::open("/dev/null", O_RDONLY);
    if (devnull >= 0) ::dup2(devnull, STDIN_FILENO);
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::dup2(out_pipe[1], STDERR_FILENO);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    ::close(exec_pipe[0]);
    if (devnull > STDERR_FILENO) ::close(devnull);

    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& arg : argv) {
      cargv.push_back(const_cast<char*>(arg.c_str()));
    }
    cargv.push_back(nullptr);
    ::execvp(cargv[0], cargv.data());
    const int exec_errno = errno;
    (void)!::write(exec_pipe[1], &exec_errno, sizeof(exec_errno));
    ::_exit(127);
  }

  // Parent.  Mirror the child's setpgid to close the fork/exec race; one of
  // the two calls wins, failure of the loser is expected.
  ::setpgid(pid, pid);
  ::close(out_pipe[1]);
  ::close(exec_pipe[1]);

  int exec_errno = 0;
  ssize_t exec_read;
  do {
    exec_read = ::read(exec_pipe[0], &exec_errno, sizeof(exec_errno));
  } while (exec_read < 0 && errno == EINTR);
  ::close(exec_pipe[0]);
  if (exec_read == static_cast<ssize_t>(sizeof(exec_errno))) {
    // exec never happened; reap the stub child and report.
    ::close(out_pipe[0]);
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
    result.kind = ExitKind::kSpawnFailed;
    result.error =
        "exec '" + argv[0] + "' failed: " + ::strerror(exec_errno);
    return exec_errno != EAGAIN && exec_errno != ETXTBSY;
  }

  // Drain the output pipe under the deadline.
  Stopwatch timer;
  bool timed_out = false;
  bool truncated = false;
  char buffer[4096];
  for (;;) {
    int poll_ms = -1;
    if (options.timeout_seconds > 0) {
      const double remaining =
          options.timeout_seconds - timer.elapsed_seconds();
      if (remaining <= 0) {
        timed_out = true;
        break;
      }
      poll_ms = static_cast<int>(remaining * 1e3) + 1;
    }
    pollfd pfd{out_pipe[0], POLLIN, 0};
    const int ready = ::poll(&pfd, 1, poll_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;  // deadline re-checked at loop top
    const ssize_t n = ::read(out_pipe[0], buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // EOF: every write end is closed
    if (result.output.size() < options.max_capture_bytes) {
      const std::size_t room = options.max_capture_bytes - result.output.size();
      result.output.append(buffer,
                           std::min(static_cast<std::size_t>(n), room));
      if (static_cast<std::size_t>(n) > room) truncated = true;
    } else {
      truncated = true;  // keep draining so the child never blocks
    }
  }
  ::close(out_pipe[0]);
  if (truncated) result.output += "\n...[output truncated]";

  if (timed_out) {
    // Kill the whole group; fall back to the child alone if the group is
    // already gone.
    if (::kill(-pid, SIGKILL) != 0) ::kill(pid, SIGKILL);
  }

  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  result.wall_seconds = timer.elapsed_seconds();

  if (timed_out) {
    result.kind = ExitKind::kTimedOut;
    result.term_signal = SIGKILL;
  } else if (WIFEXITED(status)) {
    result.kind = ExitKind::kExited;
    result.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    result.kind = ExitKind::kSignaled;
    result.term_signal = WTERMSIG(status);
  } else {
    result.kind = ExitKind::kSpawnFailed;
    result.error = "unrecognized wait status " + std::to_string(status);
  }
  return true;
}

}  // namespace

std::string SubprocessResult::describe() const {
  char text[160];
  switch (kind) {
    case ExitKind::kExited:
      std::snprintf(text, sizeof(text), "exited with code %d", exit_code);
      return text;
    case ExitKind::kSignaled: {
      const char* name = ::strsignal(term_signal);
      std::snprintf(text, sizeof(text), "killed by signal %d (%s)",
                    term_signal, name != nullptr ? name : "?");
      return text;
    }
    case ExitKind::kTimedOut:
      std::snprintf(text, sizeof(text), "timed out after %.1fs (killed)",
                    wall_seconds);
      return text;
    case ExitKind::kSpawnFailed:
      return "spawn failed: " + error;
  }
  return "unknown status";
}

SubprocessResult run_subprocess(const std::vector<std::string>& argv,
                                const SubprocessOptions& options) {
  require(!argv.empty(), "run_subprocess: empty argv");
  SubprocessResult result;
  double backoff = options.retry_backoff_seconds;
  const int attempts = std::max(0, options.spawn_retries) + 1;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    result = SubprocessResult{};
    result.attempts = attempt;
    if (spawn_once(argv, options, result)) return result;
    if (attempt < attempts) {
      sleep_seconds(backoff);
      backoff *= 2;
    }
  }
  return result;
}

}  // namespace hcg
