// Error hierarchy for the HCG library.
//
// All contract violations and unrecoverable conditions are reported by
// throwing a subclass of hcg::Error.  Each subclass corresponds to one
// phase of the pipeline so callers can catch at the granularity they need.
#pragma once

#include <stdexcept>
#include <string>

namespace hcg {

/// Base class of every exception thrown by the HCG library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed input text (XML documents, .isa instruction tables, model files).
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line = 0, int column = 0)
      : Error(format(what, line, column)), line_(line), column_(column) {}

  int line() const noexcept { return line_; }
  int column() const noexcept { return column_; }

 private:
  static std::string format(const std::string& what, int line, int column);
  int line_ = 0;
  int column_ = 0;
};

/// A structurally invalid model (dangling connection, dimension mismatch,
/// cycles in the dataflow, unknown actor type, ...).
class ModelError : public Error {
 public:
  using Error::Error;
};

/// Failure inside the SIMD instruction synthesis engine.
class SynthesisError : public Error {
 public:
  using Error::Error;
};

/// Failure while emitting C code.
class CodegenError : public Error {
 public:
  using Error::Error;
};

/// Failure in the host toolchain harness (gcc invocation, dlopen, ...).
class ToolchainError : public Error {
 public:
  using Error::Error;
};

/// Internal invariant violation; indicates a bug in HCG itself.
class InternalError : public Error {
 public:
  using Error::Error;
};

/// Throws InternalError when `condition` is false.  Used for invariants that
/// must hold regardless of user input.
void require(bool condition, const std::string& message);

}  // namespace hcg
