// File-system helpers: whole-file read/write and scoped temporary
// directories used by the toolchain harness.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>

namespace hcg {

/// Reads a whole file; throws hcg::Error if it cannot be opened.
std::string read_file(const std::filesystem::path& path);

/// Writes a whole file (creating parent directories); throws on failure.
void write_file(const std::filesystem::path& path, std::string_view content);

/// Crash-safe whole-file write: the content lands in a unique temp file in
/// the target's directory (fsynced), then rename()s over `path`, so readers
/// only ever observe the old or the new complete file — never a partial one.
/// Throws on failure; the temp file is removed on every error path.
void write_file_atomic(const std::filesystem::path& path,
                       std::string_view content);

/// Creates a unique directory under the system temp dir and removes it (and
/// everything inside) on destruction.
class TempDir {
 public:
  explicit TempDir(std::string_view prefix = "hcg");
  ~TempDir();

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::filesystem::path& path() const { return path_; }

  /// Leaves the directory on disk (for debugging generated code).
  void keep() { keep_ = true; }

 private:
  std::filesystem::path path_;
  bool keep_ = false;
};

}  // namespace hcg
