#include "support/faults.hpp"

#include <cstdio>
#include <cstdlib>

#include "support/strings.hpp"

namespace hcg::faults {

bool glob_match(std::string_view pattern, std::string_view text) {
  // Iterative matcher with single-star backtracking: classic and linear for
  // the short patterns a fault spec contains.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

const std::vector<SiteInfo>& site_catalog() {
  // Single source of truth for the probe sites planted across the tree;
  // keep in sync with the per-site table in docs/ROBUSTNESS.md.  A test
  // scans the sources for probe literals, so adding a probe without a
  // catalog row (or the reverse) fails the suite.
  static const std::vector<SiteInfo> kSites = {
      {"analysis.range", "fuzz/differential",
       "model name", "any action corrupts the predicted intervals; the "
       "range-soundness cross-check must catch it"},
      {"bench.measure", "bench/bench_util",
       "metric name", "any action inflates the timed reading 16x"},
      {"cgir.pass", "cgir/passes",
       "pass name", "any action corrupts the IR after the pass runs"},
      {"fileio.write", "support/fileio",
       "destination path", "fail/throw error out; torn stops half-way"},
      {"pool.task", "support/thread_pool",
       "(none)", "any action throws FaultInjected at task start"},
      {"precalc.measure", "synth/intensive",
       "implementation id", "candidate dropped (fail=compile, throw=crash, "
       "timeout=timeout)"},
      {"subprocess.spawn", "support/subprocess",
       "argv[0]", "any action simulates a transient spawn failure"},
      {"toolchain.compile", "toolchain/compiled_model",
       "model/tool", "fail/throw/torn fail the compile; timeout hangs it"},
  };
  return kSites;
}

std::string render_site_catalog() {
  std::string out = "fault probe sites (HCG_FAULTS=\"site[:keyglob]=fail|"
                    "throw|torn|timeout[@N|@N+]\"):\n";
  for (const SiteInfo& info : site_catalog()) {
    out += "  ";
    out += info.site;
    out.append(info.site.size() < 18 ? 18 - info.site.size() : 1, ' ');
    out += info.module;
    out.append(info.module.size() < 24 ? 24 - info.module.size() : 1, ' ');
    out += "key=";
    out += info.key;
    out += "\n";
    out += "                    ";
    out.append(24, ' ');
    out += info.actions;
    out += "\n";
  }
  return out;
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

namespace {

Action parse_action(std::string_view name, std::string_view entry) {
  if (name == "fail") return Action::kFail;
  if (name == "throw") return Action::kThrow;
  if (name == "torn") return Action::kTorn;
  if (name == "timeout") return Action::kTimeout;
  throw ParseError("HCG_FAULTS: unknown action '" + std::string(name) +
                   "' in '" + std::string(entry) +
                   "' (fail|throw|torn|timeout)");
}

}  // namespace

void Registry::configure(std::string_view spec) {
  std::vector<std::unique_ptr<Rule>> parsed;
  for (const std::string& raw : split(spec, ',')) {
    const std::string_view entry = trim(raw);
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      throw ParseError("HCG_FAULTS: expected site=action in '" +
                       std::string(entry) + "'");
    }
    auto rule = std::make_unique<Rule>();

    std::string_view selector = trim(entry.substr(0, eq));
    const std::size_t colon = selector.find(':');
    if (colon != std::string_view::npos) {
      rule->key_glob = std::string(trim(selector.substr(colon + 1)));
      selector = trim(selector.substr(0, colon));
    }
    if (selector.empty()) {
      throw ParseError("HCG_FAULTS: empty site in '" + std::string(entry) +
                       "'");
    }
    rule->site_glob = std::string(selector);

    std::string_view action = trim(entry.substr(eq + 1));
    const std::size_t at = action.find('@');
    if (at != std::string_view::npos) {
      std::string_view occurrence = trim(action.substr(at + 1));
      if (!occurrence.empty() && occurrence.back() == '+') {
        rule->sticky = true;
        occurrence.remove_suffix(1);
      }
      const long long n = parse_int(occurrence);
      if (n < 1) {
        throw ParseError("HCG_FAULTS: occurrence must be >= 1 in '" +
                         std::string(entry) + "'");
      }
      rule->at = static_cast<std::uint64_t>(n);
      action = trim(action.substr(0, at));
    }
    rule->action = parse_action(action, entry);
    parsed.push_back(std::move(rule));
  }

  std::lock_guard<std::mutex> lock(mutex_);
  rules_ = std::move(parsed);
  injected_.store(0, std::memory_order_relaxed);
  active_.store(!rules_.empty(), std::memory_order_relaxed);
}

void Registry::configure_from_env() {
  const char* env = std::getenv("HCG_FAULTS");
  std::string_view spec = env == nullptr ? std::string_view{}
                                         : std::string_view{env};
  if (spec == "list") {
    // Discoverability escape hatch: HCG_FAULTS=list prints the registered
    // probe sites on stderr (any hcg binary) and arms nothing, so sweeps
    // and docs can be checked against the live registry.
    std::fputs(render_site_catalog().c_str(), stderr);
    spec = {};
  }
  configure(spec);
}

void Registry::clear() { configure({}); }

Action Registry::consult(std::string_view site, std::string_view key) {
  std::lock_guard<std::mutex> lock(mutex_);
  Action fired = Action::kNone;
  for (const std::unique_ptr<Rule>& rule : rules_) {
    if (!glob_match(rule->site_glob, site)) continue;
    if (!rule->key_glob.empty() && !glob_match(rule->key_glob, key)) continue;
    // Every matching rule counts the hit so nth-occurrence selectors stay
    // accurate even when an earlier rule already fired.
    const std::uint64_t hit =
        rule->hits.fetch_add(1, std::memory_order_relaxed) + 1;
    if (fired != Action::kNone) continue;
    const bool due = rule->at == 0 ||
                     (rule->sticky ? hit >= rule->at : hit == rule->at);
    if (!due) continue;
    fired = rule->action;
  }
  if (fired != Action::kNone) {
    injected_.fetch_add(1, std::memory_order_relaxed);
  }
  return fired;
}

}  // namespace hcg::faults
