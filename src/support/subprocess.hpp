// Hardened subprocess runner: fork/exec with decoded exit status, a
// wall-clock timeout enforced by killing the child's whole process group,
// captured output, and bounded retry with exponential backoff for transient
// spawn failures.  Replaces raw std::system() in the toolchain harness so a
// crashed or hung compiler degrades one candidate instead of the process.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hcg {

struct SubprocessOptions {
  /// Wall-clock limit in seconds; <= 0 disables.  On expiry the child's
  /// process group is SIGKILLed and the result reports kTimedOut.
  double timeout_seconds = 0.0;
  /// Extra attempts when the child cannot be *spawned* (fork failure or an
  /// injected transient fault).  A process that ran and failed is never
  /// retried — only failures to start it are.
  int spawn_retries = 0;
  /// Sleep before the first retry; doubles on each further retry.
  double retry_backoff_seconds = 0.05;
  /// Captured output is truncated (with a marker) beyond this size; the
  /// pipe keeps draining so the child never blocks on a full pipe.
  std::size_t max_capture_bytes = 1 << 20;
};

enum class ExitKind : std::uint8_t {
  kExited,       // normal termination; exit_code is valid
  kSignaled,     // killed by a signal; term_signal is valid
  kTimedOut,     // exceeded timeout_seconds and was killed
  kSpawnFailed,  // never started; error has the reason
};

struct SubprocessResult {
  ExitKind kind = ExitKind::kSpawnFailed;
  int exit_code = -1;       // valid when kind == kExited
  int term_signal = 0;      // valid when kind == kSignaled
  std::string output;       // child stdout+stderr, possibly truncated
  std::string error;        // spawn-failure detail
  double wall_seconds = 0.0;
  int attempts = 0;         // spawn attempts consumed (>= 1 unless injected)

  bool ok() const { return kind == ExitKind::kExited && exit_code == 0; }

  /// "exited with code 1", "killed by signal 11 (Segmentation fault)",
  /// "timed out after 2.0s (killed)", "spawn failed: ..."
  std::string describe() const;
};

/// Runs `argv` (resolved through PATH) with stdin from /dev/null and
/// stdout+stderr captured.  Never throws on child failure — every outcome is
/// in the result; throws hcg::Error only on caller bugs (empty argv) and
/// faults::FaultInjected under an armed `subprocess.spawn=throw` probe.
SubprocessResult run_subprocess(const std::vector<std::string>& argv,
                                const SubprocessOptions& options = {});

}  // namespace hcg
