// Minimal leveled logger.
//
// The library logs sparingly (synthesis decisions, toolchain invocations).
// The default level is kWarn so tests and benches stay quiet; tools that
// want the narrative call set_log_level(LogLevel::kInfo).
#pragma once

#include <sstream>
#include <string>

namespace hcg {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_write(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_write(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace hcg
