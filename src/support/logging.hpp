// Minimal leveled logger.
//
// The library logs sparingly (synthesis decisions, toolchain invocations).
// The default level is kWarn so tests and benches stay quiet; tools that
// want the narrative call set_log_level(LogLevel::kInfo) or export
// HCG_LOG=info (see apply_log_env).
//
// Lines carry a wall-clock timestamp and an optional module tag:
//   [hcg INFO  12:34:56.789 synth] Algorithm 1: FFT/c64 ...
//
// Message construction is gated on the threshold: a discarded
// log_debug() << ... never materializes its ostringstream, so disabled
// levels cost one atomic load per statement.
#pragma once

#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace hcg {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parses "debug" | "info" | "warn" | "error" | "off" (case-insensitive);
/// nullopt for anything else.
std::optional<LogLevel> parse_log_level(std::string_view text);

/// Applies the HCG_LOG environment variable (if set and valid) to the global
/// threshold.  Called at startup by hcgc and the bench binaries.  Returns
/// true when a valid value was applied.
bool apply_log_env();

namespace detail {
void log_write(LogLevel level, const char* module, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level, const char* module = nullptr)
      : level_(level), module_(module) {
    if (level >= log_level()) stream_.emplace();
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() {
    if (stream_) log_write(level_, module_, stream_->str());
  }

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (stream_) *stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* module_;
  std::optional<std::ostringstream> stream_;
};
}  // namespace detail

inline detail::LogLine log_debug(const char* module = nullptr) {
  return detail::LogLine(LogLevel::kDebug, module);
}
inline detail::LogLine log_info(const char* module = nullptr) {
  return detail::LogLine(LogLevel::kInfo, module);
}
inline detail::LogLine log_warn(const char* module = nullptr) {
  return detail::LogLine(LogLevel::kWarn, module);
}
inline detail::LogLine log_error(const char* module = nullptr) {
  return detail::LogLine(LogLevel::kError, module);
}

}  // namespace hcg
