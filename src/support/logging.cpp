#include "support/logging.hpp"

#include <atomic>
#include <cstdio>

namespace hcg {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {
void log_write(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  std::fprintf(stderr, "[hcg %s] %s\n", level_tag(level), message.c_str());
}
}  // namespace detail

}  // namespace hcg
