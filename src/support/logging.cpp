#include "support/logging.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <ctime>

#include <chrono>

namespace hcg {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

/// Wall-clock "HH:MM:SS.mmm" for log line prefixes.
void format_timestamp(char* buf, size_t size) {
  using namespace std::chrono;
  const auto now = system_clock::now();
  const std::time_t secs = system_clock::to_time_t(now);
  const auto millis =
      duration_cast<milliseconds>(now.time_since_epoch()).count() % 1000;
  std::tm tm_buf;
  localtime_r(&secs, &tm_buf);
  std::snprintf(buf, size, "%02d:%02d:%02d.%03d", tm_buf.tm_hour,
                tm_buf.tm_min, tm_buf.tm_sec, static_cast<int>(millis));
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

std::optional<LogLevel> parse_log_level(std::string_view text) {
  if (iequals(text, "debug")) return LogLevel::kDebug;
  if (iequals(text, "info")) return LogLevel::kInfo;
  if (iequals(text, "warn") || iequals(text, "warning")) return LogLevel::kWarn;
  if (iequals(text, "error")) return LogLevel::kError;
  if (iequals(text, "off") || iequals(text, "none")) return LogLevel::kOff;
  return std::nullopt;
}

bool apply_log_env() {
  const char* env = std::getenv("HCG_LOG");
  if (env == nullptr) return false;
  const std::optional<LogLevel> level = parse_log_level(env);
  if (!level) {
    std::fprintf(stderr,
                 "[hcg WARN ] ignoring HCG_LOG='%s' "
                 "(want debug|info|warn|error|off)\n",
                 env);
    return false;
  }
  set_log_level(*level);
  return true;
}

namespace detail {
void log_write(LogLevel level, const char* module, const std::string& message) {
  if (level < g_level.load()) return;
  char ts[16];
  format_timestamp(ts, sizeof(ts));
  if (module != nullptr) {
    std::fprintf(stderr, "[hcg %s %s %s] %s\n", level_tag(level), ts, module,
                 message.c_str());
  } else {
    std::fprintf(stderr, "[hcg %s %s] %s\n", level_tag(level), ts,
                 message.c_str());
  }
}
}  // namespace detail

}  // namespace hcg
