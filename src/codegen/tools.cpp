// The three code generators compared in the paper, as thin configurations
// of the shared emitter.
#include <utility>

#include "codegen/generator.hpp"

namespace hcg::codegen {

namespace {

class HcgGenerator final : public Generator {
 public:
  HcgGenerator(const isa::VectorIsa& isa, synth::SelectionHistory* history,
               synth::BatchOptions batch_options, int opt_level,
               bool profile_gen, EmitTuning tuning)
      : isa_(isa),
        history_(history),
        batch_options_(batch_options),
        opt_level_(opt_level),
        profile_gen_(profile_gen),
        tuning_(std::move(tuning)) {}

  std::string name() const override { return "hcg"; }

  GeneratedCode generate(const Model& model) override {
    EmitConfig config;
    config.tool_name = "hcg";
    config.batch_mode = BatchMode::kRegions;
    config.isa = &isa_;
    config.select_intensive = true;
    config.history = history_ != nullptr ? history_ : &own_history_;
    config.batch_options = batch_options_;
    config.opt_level = opt_level_;
    // HCG keeps the conventional composition optimizations of the Simulink
    // Coder path (paper §3: only the implementation part of actors changes).
    config.fold_scalar_expressions = true;
    config.reuse_buffers = true;
    config.profile_gen = profile_gen_;
    config.tile_elems = tuning_.tile_elems;
    config.dump_cgir_after = tuning_.dump_cgir_after;
    return emit_model(model, config);
  }

 private:
  const isa::VectorIsa& isa_;
  synth::SelectionHistory* history_;
  synth::SelectionHistory own_history_;
  synth::BatchOptions batch_options_;
  int opt_level_;
  bool profile_gen_;
  EmitTuning tuning_;
};

class SimulinkGenerator final : public Generator {
 public:
  SimulinkGenerator(const isa::VectorIsa* scattered_isa, int opt_level,
                    EmitTuning tuning)
      : scattered_isa_(scattered_isa),
        opt_level_(opt_level),
        tuning_(std::move(tuning)) {}

  std::string name() const override { return "simulink"; }

  GeneratedCode generate(const Model& model) override {
    EmitConfig config;
    config.tool_name = "simulink";
    if (scattered_isa_ != nullptr) {
      // §4.2: on Intel, Simulink Coder emits scattered per-actor SIMD whose
      // intermediate results bounce through memory between loops.
      config.batch_mode = BatchMode::kScattered;
      config.isa = scattered_isa_;
    } else {
      config.batch_mode = BatchMode::kUnrollThenLoops;
    }
    config.fold_scalar_expressions = true;
    config.reuse_buffers = true;
    config.select_intensive = false;  // generic intensive functions
    config.opt_level = opt_level_;
    config.tile_elems = tuning_.tile_elems;
    config.dump_cgir_after = tuning_.dump_cgir_after;
    return emit_model(model, config);
  }

 private:
  const isa::VectorIsa* scattered_isa_;
  int opt_level_;
  EmitTuning tuning_;
};

class DfsynthGenerator final : public Generator {
 public:
  DfsynthGenerator(int opt_level, EmitTuning tuning)
      : opt_level_(opt_level), tuning_(std::move(tuning)) {}

  std::string name() const override { return "dfsynth"; }

  GeneratedCode generate(const Model& model) override {
    EmitConfig config;
    config.tool_name = "dfsynth";
    config.batch_mode = BatchMode::kScalarLoops;  // cyclic computation code
    config.fold_scalar_expressions = false;
    config.reuse_buffers = false;
    config.select_intensive = false;  // generic intensive functions
    config.opt_level = opt_level_;
    config.tile_elems = tuning_.tile_elems;
    config.dump_cgir_after = tuning_.dump_cgir_after;
    return emit_model(model, config);
  }

 private:
  int opt_level_;
  EmitTuning tuning_;
};

}  // namespace

std::unique_ptr<Generator> make_hcg_generator(const isa::VectorIsa& isa,
                                              synth::SelectionHistory* history,
                                              synth::BatchOptions batch_options,
                                              int opt_level, bool profile_gen,
                                              EmitTuning tuning) {
  return std::make_unique<HcgGenerator>(isa, history, batch_options, opt_level,
                                        profile_gen, std::move(tuning));
}

std::unique_ptr<Generator> make_simulink_generator(
    const isa::VectorIsa* scattered_isa, int opt_level, EmitTuning tuning) {
  return std::make_unique<SimulinkGenerator>(scattered_isa, opt_level,
                                             std::move(tuning));
}

std::unique_ptr<Generator> make_dfsynth_generator(int opt_level,
                                                  EmitTuning tuning) {
  return std::make_unique<DfsynthGenerator>(opt_level, std::move(tuning));
}

}  // namespace hcg::codegen
