// Code generation: the common emitter all three tools share, plus the
// configuration knobs that differentiate them.
//
// Every generator produces a self-contained C translation unit with the ABI
//   void <model>_init(void);
//   void <model>_step(const void* const* inputs, void* const* outputs);
// where inputs/outputs carry one pointer per Inport/Outport in declaration
// order.  Complex (c64) signals are interleaved float arrays.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cgir/passes.hpp"
#include "isa/instruction.hpp"
#include "model/model.hpp"
#include "obs/report.hpp"
#include "synth/batch.hpp"
#include "synth/history.hpp"
#include "synth/intensive.hpp"

namespace hcg::codegen {

/// How element-wise (batch) actors are translated.
enum class BatchMode : std::uint8_t {
  kScalarLoops,      // one scalar loop per actor (DFSynth style)
  kUnrollThenLoops,  // unrolled statements below a threshold, else loops
                     // (Simulink Coder style, paper Figure 2)
  kScattered,        // one *vectorized* loop per actor, load/store each pass
                     // (Simulink Coder on Intel, paper §4.2 / Figure 5(b))
  kRegions,          // Algorithm 2: fused SIMD over whole regions (HCG)
};

struct EmitConfig {
  std::string tool_name = "hcg";
  BatchMode batch_mode = BatchMode::kRegions;
  /// Worker threads for the parallel synthesis engine (intensive actor
  /// pre-calculation and Algorithm 2 region matching).  0 = the process
  /// default (`hcgc --jobs`, HCG_JOBS, else hardware concurrency); 1 runs
  /// everything inline on the calling thread.
  int jobs = 0;
  /// Instruction table for kScattered / kRegions; may be null otherwise.
  const isa::VectorIsa* isa = nullptr;
  /// kUnrollThenLoops: arrays up to this length are fully unrolled.
  int unroll_threshold = 32;
  /// Fold single-consumer scalar expressions into their consumer
  /// (Simulink Coder's "expression folding").
  bool fold_scalar_expressions = false;
  /// Reuse signal buffers whose live ranges do not overlap
  /// (Simulink Coder's "output variable reuse"; HCG inherits it).
  bool reuse_buffers = false;
  /// Optimization level for the cgir pass pipeline run over the lowered
  /// translation unit.  0 = lowering only (output byte-identical to the
  /// historical string emitter); 1 = region loop fusion + copy forwarding,
  /// and — when reuse_buffers is set — arena rebinding of intermediate
  /// buffers (which replaces the legacy slot-reuse naming at -O1);
  /// 2 = additionally cross-scale producer-consumer fusion (strip-mining),
  /// scalar-loop tiling, and coalescing-aware buffer layout.
  int opt_level = 0;
  /// Tile width (elements) for the -O2 scalar-loop tiling pass; 0 derives a
  /// static width from the region plan's vector lane count (4 lanes).  Pin
  /// it when external measured-cost data (hcgc profile, the kernel-sweep
  /// benches) identifies a better width for the target.
  int tile_elems = 0;
  /// When non-empty, capture a "cgir-v1" dump of the unit as it stood
  /// right after the named pass ("lower", "fuse_loops", "fuse_cross_scale",
  /// "forward_copies", "eliminate_dead_buffers", "tile_loops",
  /// "reuse_arena", "coalesce_layout") into GeneratedCode::cgir_dump_after
  /// (the `hcgc --dump-cgir-after=<pass>` surface).
  std::string dump_cgir_after;
  /// Run the cgir verifier (analysis/verifier.hpp) over the lowered unit and
  /// again after every -O1 pass; an invariant violation throws CodegenError
  /// naming the pass that broke it.  Also enabled process-wide by the
  /// HCG_VERIFY environment variable (any value except "" / "0"), which is
  /// how the test suite keeps it always-on.
  bool verify_cgir = false;
  /// Instrument the final unit with per-region profiling counters (the
  /// `hcgc --profile-gen` surface; see docs/PROFILING.md).  The counters are
  /// guarded by the HCG_PROF preprocessor macro, so without -DHCG_PROF the
  /// compiled behavior is unchanged — but the emitted *text* differs, which
  /// is why this is off by default (byte-identity with the historical
  /// emitter).  Instrumentation runs after the -O1 passes and after the last
  /// verifier checkpoint.
  bool profile_gen = false;
  /// Algorithm 1 implementation selection; false = generic implementations.
  bool select_intensive = false;
  synth::SelectionHistory* history = nullptr;  // used when select_intensive
  synth::IntensiveOptions intensive_options;
  synth::BatchOptions batch_options;
};

struct GeneratedCode {
  std::string source;
  std::string model_name;
  std::string init_symbol;
  std::string step_symbol;
  std::string tool_name;
  /// Compiler flags the ISA needs (e.g. "-mavx2 -mfma"); space separated.
  std::string compile_flags;
  /// True when the source includes hcg_neon_sim.h (needs -I<data dir>).
  bool needs_neon_sim = false;

  // ---- reproducibility metadata (white-box test & bench surface) ----------
  /// SIMD instruction names emitted, in order.
  std::vector<std::string> simd_instructions;
  /// Intensive actor name -> selected implementation id.
  std::map<std::string, std::string> intensive_choices;
  /// Total bytes of static signal/state buffers (memory-parity experiment).
  std::size_t static_buffer_bytes = 0;
  /// Number of batch regions fused by Algorithm 2.
  int fused_regions = 0;
  /// "cgir-v1" serialization of the translation unit after passes (the
  /// `hcgc --dump-cgir` surface; cgir::parse_dump() round-trips it).
  std::string cgir_dump;
  /// "cgir-v1" snapshot captured right after the pass named by
  /// EmitConfig::dump_cgir_after; empty when that option is unset or the
  /// named pass never ran at the chosen opt level.
  std::string cgir_dump_after;
  /// Profiling sites instrumented into the unit (empty unless
  /// EmitConfig::profile_gen); index order matches the HCG_PROF counters
  /// and the `hcg-profile-v1` dump.
  std::vector<cgir::ProfileSite> profile_sites;

  /// Structured account of this generation run: per-phase timings, every
  /// Algorithm 1 choice with its measured candidate times, and every
  /// Algorithm 2 region with its matched instructions.  Serialized by
  /// `hcgc --report`; see docs/OBSERVABILITY.md for the schema.
  obs::Report report;
};

/// Emits C code for a model (resolved internally) under a configuration.
GeneratedCode emit_model(const Model& model, const EmitConfig& config);

/// Per-run emitter tuning shared by the three tool factories: knobs that do
/// not differentiate the tools but parameterize one invocation (the hcgc
/// surface).  Both fields default to "off" so existing callers are
/// unaffected.
struct EmitTuning {
  /// EmitConfig::tile_elems — -O2 tile width override (0 = derive).
  int tile_elems = 0;
  /// EmitConfig::dump_cgir_after — pass name to snapshot, or empty.
  std::string dump_cgir_after;
};

/// Abstract tool interface.
class Generator {
 public:
  virtual ~Generator() = default;
  virtual std::string name() const = 0;
  virtual GeneratedCode generate(const Model& model) = 0;
};

/// The HCG generator (this paper): Algorithm 1 + Algorithm 2 against the
/// given instruction table.  The history is shared across calls.
/// `opt_level` selects the cgir pass pipeline (default -O1).
std::unique_ptr<Generator> make_hcg_generator(const isa::VectorIsa& isa,
                                              synth::SelectionHistory* history = nullptr,
                                              synth::BatchOptions batch_options = {},
                                              int opt_level = 1,
                                              bool profile_gen = false,
                                              EmitTuning tuning = {});

/// Simulink-Coder-like baseline: expression folding, variable reuse,
/// unrolled scalar statements (Figure 2), generic intensive functions.
/// `scattered_isa` enables the per-actor scattered-SIMD mode of §4.2.
std::unique_ptr<Generator> make_simulink_generator(
    const isa::VectorIsa* scattered_isa = nullptr, int opt_level = 0,
    EmitTuning tuning = {});

/// DFSynth-like baseline: per-actor loop code, generic intensive functions.
std::unique_ptr<Generator> make_dfsynth_generator(int opt_level = 0,
                                                  EmitTuning tuning = {});

}  // namespace hcg::codegen
