// The emitter: lowers a resolved model — scheduled actors plus Algorithm 2's
// matched batch regions — into the cgir translation unit, runs the -O1 pass
// pipeline over it (loop fusion, copy forwarding, arena reuse), and prints
// the result.  At -O0 the printed output is byte-identical to the historical
// string-concatenation emitter.
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <future>
#include <set>

#include "actors/catalog.hpp"
#include "actors/exec.hpp"
#include "analysis/range.hpp"
#include "analysis/verifier.hpp"
#include "cgir/cgir.hpp"
#include "cgir/passes.hpp"
#include "codegen/generator.hpp"
#include "actors/resolve.hpp"
#include "graph/regions.hpp"
#include "kernels/library.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/stopwatch.hpp"
#include "support/strings.hpp"
#include "support/thread_pool.hpp"

namespace hcg::codegen {

namespace {

/// A signal is identified by its producing (actor, output port).
using SignalId = std::pair<ActorId, int>;

class Emitter {
 public:
  Emitter(const Model& model, const EmitConfig& config)
      : model_(model), config_(config) {
    Stopwatch timer;
    resolve_model(model_);
    resolve_ms_ = timer.elapsed_seconds() * 1e3;
  }

  GeneratedCode run() {
    HCG_TRACE_SCOPE("codegen.emit");
    out_.model_name = model_.name();
    out_.tool_name = config_.tool_name;
    out_.init_symbol = model_.name() + "_init";
    out_.step_symbol = model_.name() + "_step";

    out_.report.model = model_.name();
    out_.report.tool = config_.tool_name;
    out_.report.isa = config_.isa != nullptr ? config_.isa->name : "";
    out_.report.actor_count = model_.actor_count();
    out_.report.phases.push_back({"resolve", resolve_ms_});

    // The synthesis pool: intensive pre-calculation sweeps and Algorithm 2
    // region matching fan out over it; everything else stays on this thread.
    ThreadPool pool(config_.jobs);
    obs::Registry::instance().gauge("synth.pool.threads").set(pool.size());

    Stopwatch phase;
    {
      HCG_TRACE_SCOPE("emit.regions");
      narrow_regions_by_range();
      build_regions();
      order_ = emission_order(model_, regions_);
    }
    finish_phase("regions", phase);
    {
      HCG_TRACE_SCOPE("emit.intensive");
      select_intensive_implementations(pool);
    }
    finish_phase("intensive_select", phase);
    {
      HCG_TRACE_SCOPE("emit.plan");
      plan_folding();
      plan_buffers();
    }
    finish_phase("plan", phase);
    {
      HCG_TRACE_SCOPE("emit.batch");
      synthesize_regions(pool);
    }
    finish_phase("batch_synth", phase);
    {
      HCG_TRACE_SCOPE("emit.body");
      emit_header();
      emit_kernel_sources();
      emit_init();
      emit_step();
    }
    finish_phase("emit", phase);
    {
      HCG_TRACE_SCOPE("emit.opt");
      run_pass_pipeline();
    }
    finish_phase("opt", phase);

    out_.report.emit_bytes = source_.size();
    out_.report.static_buffer_bytes = out_.static_buffer_bytes;
    out_.report.fused_regions = out_.fused_regions;
    static obs::Counter& bytes_metric =
        obs::Registry::instance().counter("codegen.emit_bytes");
    static obs::Counter& models_metric =
        obs::Registry::instance().counter("codegen.models");
    static obs::Counter& fused_metric =
        obs::Registry::instance().counter("batch.fused_regions");
    bytes_metric.add(source_.size());
    models_metric.add();
    fused_metric.add(static_cast<std::uint64_t>(out_.fused_regions));
    obs::Registry::instance()
        .gauge("batch.simd_coverage")
        .set(out_.report.simd_coverage());

    out_.source = std::move(source_);
    return std::move(out_);
  }

 private:
  /// Closes one report phase: records the elapsed time and restarts `timer`.
  void finish_phase(const char* name, Stopwatch& timer) {
    out_.report.phases.push_back({name, timer.elapsed_seconds() * 1e3});
    timer.reset();
  }

  // ------------------------------------------------------------------
  // Planning
  // ------------------------------------------------------------------

  // ------------------------------------------------------------------
  // Range-driven lane narrowing (docs/ANALYSIS.md)
  // ------------------------------------------------------------------

  /// Narrower same-signedness integer candidates, narrowest first.
  static std::vector<DataType> narrowing_candidates(DataType cur) {
    std::vector<DataType> out;
    const std::vector<DataType> pool =
        is_signed_int(cur)
            ? std::vector<DataType>{DataType::kInt8, DataType::kInt16,
                                    DataType::kInt32}
            : std::vector<DataType>{DataType::kUInt8, DataType::kUInt16,
                                    DataType::kUInt32};
    if (!is_integer(cur)) return out;
    for (DataType t : pool) {
      if (bit_width(t) < bit_width(cur)) out.push_back(t);
    }
    return out;
  }

  /// A model actor name no existing actor uses.
  std::string fresh_actor_name(int* counter) {
    for (;; ++*counter) {
      std::string name = "hcg_nw_" + std::to_string(*counter);
      if (model_.find_actor(name) == kNoActor) {
        ++*counter;
        return name;
      }
    }
  }

  /// Everything except the value-range proof that narrowing one region to
  /// `nar` needs: more lanes than the current type, a viable plan at the
  /// narrow width, a single-instruction implementation for every node, and
  /// representable scalar constants / in-range shift immediates.
  bool narrowing_isa_ok(const BatchRegion& region, DataType cur,
                        DataType nar) const {
    const isa::VectorIsa& isa = *config_.isa;
    const int lanes_nar = isa.lanes(nar);
    if (lanes_nar <= 0 || lanes_nar <= isa.lanes(cur)) return false;
    if (!isa.predicated(nar) && region.graph.length() < lanes_nar) {
      return false;
    }
    if (region.graph.node_count() <
        config_.batch_options.min_nodes_for_simd) {
      return false;
    }
    for (const DfgNode& node : region.graph.nodes()) {
      if (!isa.supports(node.op, nar, nar)) return false;
      for (const ValueRef& operand : node.operands) {
        if (operand.kind == ValueRef::Kind::kScalarConst) {
          const double t = std::trunc(operand.scalar);
          if (!analysis::interval_fits({t, t}, nar)) return false;
        }
        if (operand.kind == ValueRef::Kind::kImmediate &&
            operand.imm >= bit_width(nar)) {
          return false;
        }
      }
    }
    return true;
  }

  /// The value-range proof: every node result and every array entering the
  /// region provably fits `nar`.  (A node interval that would wrap at the
  /// *current* width is top, which never fits, so a region that passes here
  /// computes identical values at either width.)
  bool narrowing_range_ok(const BatchRegion& region,
                          const analysis::RangeAnalysis& ranges,
                          DataType nar) const {
    for (const DfgNode& node : region.graph.nodes()) {
      const analysis::Interval* iv = ranges.find(node.actor, 0);
      if (iv == nullptr || !analysis::interval_fits(*iv, nar)) return false;
    }
    for (const DfgExternal& ext : region.graph.externals()) {
      const analysis::Interval* iv = ranges.find(ext.src, ext.src_port);
      if (iv == nullptr || !analysis::interval_fits(*iv, nar)) return false;
    }
    return true;
  }

  /// Splices Cast actors around one region so it re-resolves at `nar`:
  /// a Cast-down on every external input signal, a Cast-up back to `cur`
  /// on every signal leaving the region.  A Constant feeding only this
  /// region is instead retyped in place — its value provably fits `nar`,
  /// and folding the conversion into the initializer avoids a per-step
  /// cast pass over the whole array.  The region's own actors keep their
  /// types param-free (elementwise actors inherit operand types), so
  /// re-resolution retypes the whole chain.
  void rewrite_region_narrow(const BatchRegion& region, DataType cur,
                             DataType nar, int* name_counter) {
    const std::set<ActorId> members(region.actors.begin(),
                                    region.actors.end());
    for (const DfgExternal& ext : region.graph.externals()) {
      const std::vector<Connection> consumers =
          model_.outgoing(ext.src, ext.src_port);
      Actor& producer = model_.actor(ext.src);
      if (producer.type() == "Constant") {
        bool all_in_region = true;
        for (const Connection& c : model_.outgoing_all(ext.src)) {
          all_in_region &= members.count(c.dst) > 0;
        }
        if (all_in_region) {
          producer.set_param("dtype", short_name(nar));
          continue;
        }
      }
      const ActorId down =
          model_.add_actor(fresh_actor_name(name_counter), "Cast");
      model_.actor(down).set_param("to", short_name(nar));
      model_.connect(ext.src, ext.src_port, down, 0);
      for (const Connection& c : consumers) {
        if (members.count(c.dst)) {
          model_.rewire_input(c.dst, c.dst_port, down, 0);
        }
      }
    }
    for (int node_index : region.graph.outputs()) {
      const ActorId src = region.graph.node(node_index).actor;
      const std::vector<Connection> consumers = model_.outgoing(src, 0);
      ActorId up = kNoActor;
      for (const Connection& c : consumers) {
        if (members.count(c.dst)) continue;
        if (up == kNoActor) {
          up = model_.add_actor(fresh_actor_name(name_counter), "Cast");
          model_.actor(up).set_param("to", short_name(cur));
          model_.connect(src, 0, up, 0);
        }
        model_.rewire_input(c.dst, c.dst_port, up, 0);
      }
    }
  }

  /// The range-driven lane-narrowing pass: re-plans an integer batch region
  /// at a narrower element type when the interval analysis proves every
  /// value fits, doubling (or quadrupling) the SIMD lanes Algorithm 2 gets
  /// to use.  Runs before build_regions() so the rebuilt regions are the
  /// narrow chains (the inserted mixed-width Casts fall out of regions by
  /// the HCG404 rule).  Off at -O0; regions-mode only.
  void narrow_regions_by_range() {
    const bool enabled = config_.opt_level >= 1 &&
                         config_.batch_mode == BatchMode::kRegions &&
                         config_.isa != nullptr;
    if (!enabled) return;

    int narrowed = 0;
    int blocked = 0;
    int name_counter = 0;
    std::set<ActorId> narrowed_members;
    auto remark = [this](std::string code, std::string message) {
      obs::ReportDiagnostic diag;
      diag.code = std::move(code);
      diag.severity = "remark";
      diag.location = model_.name() + ": regions";
      diag.message = std::move(message);
      out_.report.diagnostics.push_back(std::move(diag));
    };
    auto region_names = [this](const BatchRegion& region) {
      std::string out;
      for (ActorId id : region.actors) {
        if (!out.empty()) out += ", ";
        out += model_.actor(id).name();
      }
      return out;
    };
    // Uniform-type integer chains only: a same-width Cast (e.g. i32 to
    // f32) inside a region gives it two element types, and narrowing a
    // mixed chain is not expressible as one retype.
    auto narrowable_type = [](const BatchRegion& region) {
      const DataType cur = region.graph.nodes().front().out_type;
      if (!is_integer(cur) || bit_width(cur) < 16) return std::optional<DataType>();
      for (const DfgNode& node : region.graph.nodes()) {
        if (node.out_type != cur) return std::optional<DataType>();
      }
      for (const DfgExternal& ext : region.graph.externals()) {
        if (ext.type != cur) return std::optional<DataType>();
      }
      return std::optional<DataType>(cur);
    };

    // One region is rewritten per round, then regions and intervals are
    // recomputed from the rewritten model — a rewrite moves wires other
    // regions' snapshots may reference, so stale snapshots must never be
    // rewritten.  Rewritten chains are remembered and skipped, which bounds
    // the loop by the region count.
    analysis::RangeAnalysis ranges;
    for (bool progress = true; progress;) {
      progress = false;
      ranges = analysis::analyze_ranges(model_, nullptr);
      for (const BatchRegion& region :
           find_batch_regions(model_, *config_.isa)) {
        const std::optional<DataType> cur = narrowable_type(region);
        if (!cur) continue;
        bool member_done = false;
        for (ActorId id : region.actors) {
          if (narrowed_members.count(id)) member_done = true;
        }
        if (member_done) continue;
        for (DataType nar : narrowing_candidates(*cur)) {
          if (!narrowing_isa_ok(region, *cur, nar)) continue;
          if (!narrowing_range_ok(region, ranges, nar)) continue;
          rewrite_region_narrow(region, *cur, nar, &name_counter);
          resolve_model(model_);
          narrowed_members.insert(region.actors.begin(),
                                  region.actors.end());
          ++narrowed;
          remark("HCG411",
                 "region {" + region_names(region) + "} re-planned at " +
                     std::string(short_name(nar)) + " (" +
                     std::to_string(config_.isa->lanes(nar)) +
                     " lanes, was " + std::string(short_name(*cur)) +
                     " at " + std::to_string(config_.isa->lanes(*cur)) +
                     "): proven value ranges fit the narrower type");
          progress = true;
          break;
        }
        if (progress) break;
      }
    }

    // Final scan: regions that would narrow but for an unprovable range.
    for (const BatchRegion& region :
         find_batch_regions(model_, *config_.isa)) {
      const std::optional<DataType> cur = narrowable_type(region);
      if (!cur) continue;
      bool member_done = false;
      for (ActorId id : region.actors) {
        if (narrowed_members.count(id)) member_done = true;
      }
      if (member_done) continue;
      for (DataType nar : narrowing_candidates(*cur)) {
        if (!narrowing_isa_ok(region, *cur, nar)) continue;
        if (narrowing_range_ok(region, ranges, nar)) continue;
        ++blocked;
        remark("HCG412",
               "region {" + region_names(region) +
                   "} could use more SIMD lanes at " +
                   std::string(short_name(nar)) +
                   ", but the value range could not be proven to fit; "
                   "declare Inport range_min/range_max to enable narrowing");
        break;
      }
    }

    out_.report.range_ran = true;
    out_.report.range_actors_analyzed = ranges.actors_analyzed;
    out_.report.range_bounded_outputs = ranges.bounded_outputs;
    out_.report.range_widened_delays = ranges.widened_delays;
    out_.report.regions_narrowed = narrowed;
    out_.report.narrowing_blocked = blocked;
    static obs::Counter& narrowed_metric =
        obs::Registry::instance().counter("codegen.range.regions_narrowed");
    narrowed_metric.add(static_cast<std::uint64_t>(narrowed));
  }

  void build_regions() {
    if (config_.batch_mode == BatchMode::kRegions) {
      require(config_.isa != nullptr, "BatchMode::kRegions needs an ISA");
      regions_ = find_batch_regions(model_, *config_.isa);
    } else if (config_.batch_mode == BatchMode::kScattered) {
      require(config_.isa != nullptr, "BatchMode::kScattered needs an ISA");
      // One region per batch actor: each actor gets its own load/compute/
      // store loop — the "scattered SIMD" the paper attributes to Simulink
      // Coder on Intel.
      std::vector<BatchRegion> grouped = find_batch_regions(model_, *config_.isa);
      for (const BatchRegion& region : grouped) {
        for (ActorId id : region.actors) {
          regions_.push_back(singleton_batch_region(model_, id));
        }
      }
    }
    for (size_t r = 0; r < regions_.size(); ++r) {
      for (ActorId id : regions_[r].actors) {
        region_of_[id] = static_cast<int>(r);
      }
    }
    // Predict which regions Algorithm 2 will vectorize (the shared helper
    // mirrors its early exits) so interior signals — which live entirely in
    // vector registers — get no memory buffer.
    for (const BatchRegion& region : regions_) {
      const RegionVectorPlan plan = plan_region_vectorization(
          region, config_.isa->capability(),
          config_.batch_options.min_nodes_for_simd);
      if (!plan.viable) continue;
      for (const auto& [actor, node_index] : region.node_of) {
        if (!region.graph.is_output(node_index)) register_only_.insert(actor);
      }
    }
  }

  /// Fans `task(0..count-1)` out over the pool and collects the results in
  /// index order.  Every task is awaited even on failure (nothing may still
  /// reference this stack frame afterwards); the first exception, in index
  /// order, is rethrown once all tasks have finished.
  template <typename Result, typename Task>
  static std::vector<Result> run_indexed(ThreadPool& pool, std::size_t count,
                                         const Task& task) {
    static obs::Counter& tasks_metric =
        obs::Registry::instance().counter("synth.pool.tasks");
    std::vector<std::future<Result>> futures;
    futures.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      futures.push_back(pool.submit([&task, i] { return task(i); }));
      tasks_metric.add();
    }
    obs::Registry::instance()
        .gauge("synth.pool.queue_depth")
        .set(static_cast<double>(pool.pending()));
    std::vector<Result> results;
    results.reserve(count);
    std::exception_ptr first_error;
    for (std::future<Result>& future : futures) {
      try {
        results.push_back(future.get());
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
        results.emplace_back();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return results;
  }

  void select_intensive_implementations(ThreadPool& pool) {
    const kernels::CodeLibrary& library = kernels::CodeLibrary::instance();
    std::vector<const Actor*> intensive;
    for (const Actor& actor : model_.actors()) {
      if (classify(model_, actor.id()) != ActorKind::kIntensive) continue;
      intensive.push_back(&actor);
    }
    if (intensive.empty()) return;

    // Algorithm 1 sweeps run concurrently; the single-flight selector makes
    // duplicate (type, dtype, shapes) keys share one measurement, whether
    // the duplicates race in parallel or arrive sequentially at --jobs 1.
    std::vector<synth::IntensiveSelection> selections;
    if (config_.select_intensive) {
      synth::SelectionHistory* history =
          config_.history != nullptr ? config_.history : &local_history_;
      selections = run_indexed<synth::IntensiveSelection>(
          pool, intensive.size(), [&](std::size_t i) {
            return selector_.select(*intensive[i], *history,
                                    config_.intensive_options);
          });
    }

    // Report entries, impl bindings and kernel sources are committed on this
    // thread in model order, so the output is identical at every job count.
    for (std::size_t i = 0; i < intensive.size(); ++i) {
      const Actor& actor = *intensive[i];
      const DataType dtype = actor.input(0).type;
      obs::ReportIntensive entry;
      entry.actor = actor.name();
      entry.actor_type = actor.type();
      entry.dtype = std::string(short_name(dtype));
      const kernels::KernelImpl* impl = nullptr;
      if (config_.select_intensive) {
        const synth::IntensiveSelection& selection = selections[i];
        impl = selection.impl;
        entry.selected = true;
        entry.from_history = selection.from_history;
        for (const auto& [id, seconds] : selection.measured_costs) {
          entry.candidates.push_back({id, seconds * 1e3});
        }
        if (!selection.failures.empty()) {
          // Degraded mode: the run survived candidate failures — record
          // every one so report readers can see the output is lossy.
          obs::ReportFallback fallback;
          fallback.actor = actor.name();
          fallback.stage = "precalc";
          fallback.impl = impl->id;
          fallback.reference_fallback = selection.degraded;
          for (const synth::CandidateFailure& failure : selection.failures) {
            fallback.failures.push_back({failure.impl, failure.reason});
          }
          out_.report.degraded.push_back(std::move(fallback));
        }
      } else {
        impl = &library.general_implementation(actor.type(), dtype);
      }
      entry.impl = impl->id;
      out_.report.intensive.push_back(std::move(entry));
      intensive_impl_[actor.id()] = impl;
      out_.intensive_choices[actor.name()] = impl->id;
      kernel_sources_.insert(impl->source_key);
    }
  }

  /// Runs Algorithm 2 over every batch region concurrently (regions are
  /// independent dataflow graphs) and caches the results; emit_step() then
  /// merges them in deterministic region order.  Buffer names are planned
  /// by the time this runs, so the tasks only read shared state.
  void synthesize_regions(ThreadPool& pool) {
    if (regions_.empty()) return;
    region_synth_ = run_indexed<synth::BatchSynthResult>(
        pool, regions_.size(), [this](std::size_t r) {
          return synth::synthesize_batch(
              model_, regions_[r], *config_.isa,
              [this](ActorId id, int port) {
                return buffer_name_.at({id, port});
              },
              config_.batch_options, /*indent=*/1);
        });
  }

  /// Expression folding: single-consumer scalar elementwise/constant signals
  /// are inlined into their consumer instead of materialized.
  void plan_folding() {
    if (!config_.fold_scalar_expressions) return;
    for (const Actor& actor : model_.actors()) {
      if (actor.output_count() != 1) continue;
      if (actor.type() == "Inport" || actor.type() == "UnitDelay") continue;
      if (region_of_.count(actor.id())) continue;
      const PortSpec& out = actor.output(0);
      if (out.shape.elements() != 1 || is_complex(out.type)) continue;
      const bool is_const = actor.type() == "Constant";
      const bool is_elementwise = actor_type_info(actor.type()).elementwise;
      if (!is_const && !is_elementwise) continue;
      const auto consumers = model_.outgoing(actor.id(), 0);
      if (consumers.size() != 1) continue;
      // Never fold into a delay (its update happens at end of step) or into
      // an intensive kernel call (needs a real buffer).
      const Actor& consumer = model_.actor(consumers[0].dst);
      if (consumer.type() == "UnitDelay" ||
          actor_type_info(consumer.type()).intensive) {
        continue;
      }
      folded_.insert(actor.id());
    }
  }

  bool is_folded(ActorId id) const { return folded_.count(id) != 0; }

  void plan_buffers() {
    // Inports bind to the step's input pointers.
    for (ActorId id : model_.inports()) {
      buffer_name_[{id, 0}] = "in_" + sanitize_identifier(model_.actor(id).name());
    }

    // Signals consumed by an Outport can be produced directly into the
    // caller's output buffer, eliminating the boundary memcpy.  (Inport,
    // Constant and UnitDelay sources keep their own storage: the first is
    // read-only, the latter two persist across steps.)
    for (ActorId id : model_.outports()) {
      const Connection conn = *model_.incoming(id, 0);
      const Actor& src = model_.actor(conn.src);
      if (src.type() == "Inport" || src.type() == "Constant" ||
          src.type() == "UnitDelay" || is_folded(conn.src)) {
        continue;
      }
      const SignalId signal{conn.src, conn.src_port};
      if (buffer_name_.count(signal)) continue;  // already aliased
      buffer_name_[signal] = "out_" + sanitize_identifier(model_.actor(id).name());
      direct_outports_.insert(id);
    }

    // Live-range buffer reuse (Simulink Coder's output variable reuse).
    // Position = index in the emission order; a signal is live from its
    // producer's position to its last consumer's position.  At -O1 the
    // cgir arena pass supersedes this slot naming: every signal keeps its
    // own `sig_` buffer here, marked arena-eligible, and the pass rebinds
    // non-overlapping ones after fusion has settled the true live ranges.
    const bool legacy_slots = config_.reuse_buffers && config_.opt_level < 1;
    std::map<ActorId, int> position;
    for (size_t i = 0; i < order_.size(); ++i) {
      if (order_[i].actor != kNoActor) {
        position[order_[i].actor] = static_cast<int>(i);
      } else {
        for (ActorId id : regions_[static_cast<size_t>(order_[i].region)].actors) {
          position[id] = static_cast<int>(i);
        }
      }
    }

    struct Slot {
      std::string name;
      DataType type;
      Shape shape;
      int free_at = -1;
    };
    std::vector<Slot> slots;

    for (const EmissionItem& item : order_) {
      std::vector<ActorId> producers;
      if (item.actor != kNoActor) {
        producers.push_back(item.actor);
      } else {
        producers = regions_[static_cast<size_t>(item.region)].actors;
      }
      for (ActorId id : producers) {
        const Actor& actor = model_.actor(id);
        if (actor.type() == "Inport" || is_folded(id)) continue;
        if (register_only_.count(id)) continue;  // lives in vector registers
        for (int port = 0; port < actor.output_count(); ++port) {
          if (buffer_name_.count({id, port})) continue;  // output-aliased
          const PortSpec& spec = actor.output(port);
          const bool reusable = config_.reuse_buffers &&
                                actor.type() != "Constant" &&
                                actor.type() != "UnitDelay";
          int last_use = position.at(id);
          for (const Connection& c : model_.outgoing(id, port)) {
            // A folded consumer evaluates inside the statement of the actor
            // it was inlined into, so the read happens at that actor's
            // position — follow the chain to the real emission site.
            ActorId reader = c.dst;
            while (is_folded(reader)) {
              reader = model_.outgoing(reader, 0).front().dst;
            }
            // A UnitDelay consumer reads its input in the end-of-step latch
            // (flush_delay_updates), not at its schedule position, so the
            // feeding buffer stays live for the whole step.
            if (model_.actor(reader).type() == "UnitDelay") {
              last_use = static_cast<int>(order_.size());
            } else {
              last_use = std::max(last_use, position.at(reader));
            }
          }

          std::string name;
          if (reusable && legacy_slots) {
            Slot* found = nullptr;
            for (Slot& slot : slots) {
              if (slot.type == spec.type && slot.shape == spec.shape &&
                  slot.free_at < position.at(id)) {
                found = &slot;
                break;
              }
            }
            if (found == nullptr) {
              slots.push_back(Slot{"buf" + std::to_string(slots.size()),
                                   spec.type, spec.shape, -1});
              found = &slots.back();
              declare_buffer(found->name, spec, /*constant=*/nullptr,
                             /*arena_eligible=*/false);
            }
            found->free_at = last_use;
            name = found->name;
          } else {
            name = (actor.type() == "UnitDelay" ? "dly_" : "sig_") +
                   sanitize_identifier(actor.name());
            if (port != 0) name += "_p" + std::to_string(port);
            const Actor* const_src =
                actor.type() == "Constant" ? &actor : nullptr;
            declare_buffer(name, spec, const_src, /*arena_eligible=*/reusable);
          }
          buffer_name_[{id, port}] = name;
        }
      }
    }
  }

  /// Declares a static buffer in the translation unit.
  void declare_buffer(const std::string& name, const PortSpec& spec,
                      const Actor* constant_source, bool arena_eligible) {
    cgir::BufferDecl decl;
    decl.name = name;
    decl.ctype = std::string(c_name(spec.type));
    decl.components =
        is_complex(spec.type) ? spec.shape.elements() * 2 : spec.shape.elements();
    decl.elem_bytes = byte_width(component_type(spec.type));
    decl.arena_eligible = arena_eligible;
    if (constant_source != nullptr) {
      decl.is_const = true;
      Tensor value = constant_tensor(*constant_source);
      std::vector<std::string> literals;
      literals.reserve(static_cast<std::size_t>(decl.components));
      for (int i = 0; i < decl.components; ++i) {
        literals.push_back(component_literal(value, i));
      }
      decl.init_values = join(literals, ", ");
    }
    tu_.buffers.push_back(std::move(decl));
  }

  static std::string component_literal(const Tensor& value, int i) {
    const DataType comp = component_type(value.type());
    if (comp == DataType::kFloat32) {
      if (is_complex(value.type())) {
        return std::to_string(value.as<float>()[i]) + "f";
      }
      return std::to_string(value.as<float>()[i]) + "f";
    }
    if (comp == DataType::kFloat64) {
      if (is_complex(value.type())) return std::to_string(value.as<double>()[i]);
      return std::to_string(value.as<double>()[i]);
    }
    return std::to_string(value.get_int(i));
  }

  // ------------------------------------------------------------------
  // Expressions
  // ------------------------------------------------------------------

  /// C expression for one element of a signal: buffer[index] or, for folded
  /// producers, the inlined expression.  Buffer reads are recorded into the
  /// active access sink (when one is installed) so the statement being built
  /// carries its dependence information for the passes.
  std::string element_expr(const SignalId& signal, const std::string& index) {
    const Actor& producer = model_.actor(signal.first);
    if (is_folded(signal.first)) return folded_expr(producer);
    const std::string& buffer = buffer_name_.at(signal);
    if (access_sink_ != nullptr) {
      access_sink_->push_back({buffer, false, index == "i"});
    }
    return buffer + "[" + index + "]";
  }

  std::string folded_expr(const Actor& actor) {
    if (actor.type() == "Constant") {
      Tensor value = constant_tensor(actor);
      return "(" + std::string(c_name(actor.output(0).type)) + ")" +
             component_literal(value, 0);
    }
    // The cast re-narrows the intermediate to the signal's declared type.
    // C integer promotion would otherwise leak un-wrapped sub-int values
    // (e.g. u16 Shl) into the consumer, where a store into a typed buffer
    // no longer truncates them.
    return "((" + std::string(c_name(actor.output(0).type)) + ")(" +
           elementwise_expr(actor, "0") + "))";
  }

  /// The scalar expression computing one element of an elementwise actor.
  std::string elementwise_expr(const Actor& actor, const std::string& index) {
    const BatchOp op = batch_op_for_actor_type(actor.type());
    const SignalId src0 = source_of(actor.id(), 0);
    const std::string a = element_expr(src0, index);
    std::string b, c;
    if (arity(op) >= 3) {
      c = element_expr(source_of(actor.id(), 2), index);
    }
    if (arity(op) >= 2) {
      b = element_expr(source_of(actor.id(), 1), index);
    } else if (has_immediate(op)) {
      b = std::to_string(actor.int_param("amount"));
    } else if (op == BatchOp::kMulC) {
      b = isa::scalar_literal(actor.output(0).type,
                              parse_double(actor.param("gain")));
    } else if (op == BatchOp::kAddC) {
      b = isa::scalar_literal(actor.output(0).type,
                              parse_double(actor.param("bias")));
    }
    return scalar_c_expr(op, actor.output(0).type, a, b, c);
  }

  SignalId source_of(ActorId id, int port) const {
    const Connection conn = *model_.incoming(id, port);
    return {conn.src, conn.src_port};
  }

  // ------------------------------------------------------------------
  // Lowering
  // ------------------------------------------------------------------

  /// Appends a statement to the step body.
  void push(cgir::Stmt stmt) { tu_.step.body.push_back(std::move(stmt)); }

  void emit_header() {
    tu_.header_lines.push_back("/* Generated by " + config_.tool_name +
                               " for model '" + model_.name() + "'.");
    tu_.header_lines.push_back(" * ABI: void " + out_.init_symbol + "(void);");
    tu_.header_lines.push_back(" *      void " + out_.step_symbol +
                               "(const void* const* inputs, void* const* "
                               "outputs); */");
    tu_.header_lines.push_back("#include <stdint.h>");
    tu_.header_lines.push_back("#include <string.h>");
    tu_.header_lines.push_back("#include <math.h>");
    const bool may_use_simd =
        config_.isa != nullptr &&
        (config_.batch_mode == BatchMode::kScattered ||
         config_.batch_mode == BatchMode::kRegions) &&
        !regions_.empty();
    if (may_use_simd) {
      if (config_.isa->simulated) {
        tu_.header_lines.push_back("#include \"" + config_.isa->header + "\"");
      } else {
        tu_.header_lines.push_back("#include <" + config_.isa->header + ">");
      }
      out_.compile_flags = config_.isa->compile_flags;
      out_.needs_neon_sim = config_.isa->simulated;
    }
    tu_.header_lines.push_back("");
  }

  void emit_kernel_sources() {
    if (kernel_sources_.empty()) return;
    const kernels::CodeLibrary& library = kernels::CodeLibrary::instance();
    for (const std::string& key : kernel_sources_) {
      tu_.kernel_sources.push_back(std::string(library.source(key)));
    }
  }

  void emit_init() {
    tu_.init.opener = "void " + out_.init_symbol + "(void) {";
    for (const Actor& actor : model_.actors()) {
      if (actor.type() != "UnitDelay") continue;
      const std::string& name = buffer_name_.at({actor.id(), 0});
      cgir::Stmt stmt = cgir::Stmt::text_line("memset(" + name +
                                              ", 0, sizeof(" + name + "));");
      stmt.accesses.push_back({name, true, false});
      tu_.init.body.push_back(std::move(stmt));
    }
  }

  void emit_step() {
    tu_.step.opener = "void " + out_.step_symbol +
                      "(const void* const* inputs, void* const* outputs) {";

    const std::vector<ActorId> ins = model_.inports();
    for (size_t i = 0; i < ins.size(); ++i) {
      const Actor& port = model_.actor(ins[i]);
      const std::string ctype(c_name(port.output(0).type));
      const std::string& name = buffer_name_.at({ins[i], 0});
      cgir::Stmt stmt = cgir::Stmt::text_line(
          "const " + ctype + "* " + name + " = (const " + ctype + "*)inputs[" +
          std::to_string(i) + "];");
      // The pointer local is a definition the verifier tracks: later accesses
      // to `name` resolve against this line, not a buffer declaration.
      stmt.defines = name;
      push(std::move(stmt));
    }
    const std::vector<ActorId> outs = model_.outports();
    for (size_t i = 0; i < outs.size(); ++i) {
      const Actor& port = model_.actor(outs[i]);
      const std::string ctype(c_name(port.input(0).type));
      const std::string name = "out_" + sanitize_identifier(port.name());
      cgir::Stmt stmt = cgir::Stmt::text_line(ctype + "* " + name + " = (" +
                                              ctype + "*)outputs[" +
                                              std::to_string(i) + "];");
      stmt.defines = name;
      push(std::move(stmt));
    }
    push(cgir::Stmt::text_line(""));

    for (const EmissionItem& item : order_) {
      if (item.region >= 0) {
        emit_region(static_cast<size_t>(item.region));
      } else {
        emit_actor(model_.actor(item.actor));
      }
    }

    flush_delay_updates();
  }

  /// Emits the end-of-step delay register copies.  A delay's register is
  /// also its output buffer, so when one delay feeds another the reader's
  /// copy must land before the producer's register is overwritten — i.e.
  /// updates run in reverse dependency order (a chain d0 -> d1 updates d1
  /// first).  A direct delay-to-delay cycle has no valid order; it is
  /// broken by snapshotting one register into a step-local temporary.
  void flush_delay_updates() {
    if (delay_updates_.empty()) return;
    push(cgir::Stmt::text_line("/* delay state updates */"));
    std::vector<DelayUpdate> pending = std::move(delay_updates_);
    delay_updates_.clear();
    int snapshots = 0;
    while (!pending.empty()) {
      // Pick an update whose register no other pending update still reads.
      size_t pick = pending.size();
      for (size_t i = 0; i < pending.size() && pick == pending.size(); ++i) {
        bool read_later = false;
        for (size_t j = 0; j < pending.size(); ++j) {
          if (j != i && pending[j].src == pending[i].state) read_later = true;
        }
        if (!read_later) pick = i;
      }
      if (pick == pending.size()) {
        // Every register is still read by some other update: a cycle.
        // Snapshot the first register and retarget its readers.
        const DelayUpdate& blocked = pending.front();
        const std::string snap =
            "dly_snap" + std::to_string(snapshots++);
        cgir::Stmt decl = cgir::Stmt::text_line(
            blocked.c_type + " " + snap + "[" +
            std::to_string(blocked.components) + "];");
        decl.defines = snap;
        push(std::move(decl));
        push(delay_copy_stmt(snap, blocked.state, blocked.components,
                             blocked.c_type));
        for (DelayUpdate& u : pending) {
          if (u.src == blocked.state) u.src = snap;
        }
        continue;
      }
      const DelayUpdate& u = pending[pick];
      push(delay_copy_stmt(u.state, u.src, u.components, u.c_type));
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }

  static cgir::Stmt delay_copy_stmt(const std::string& dst,
                                    const std::string& src, int components,
                                    const std::string& c_type) {
    cgir::Stmt stmt = cgir::Stmt::text_line(
        "memcpy(" + dst + ", " + src + ", " + std::to_string(components) +
        " * sizeof(" + c_type + "));");
    stmt.accesses.push_back({dst, true, false});
    stmt.accesses.push_back({src, false, false});
    return stmt;
  }

  void emit_region(size_t region_index) {
    const BatchRegion& region = regions_[region_index];
    // Algorithm 2 already ran (concurrently) in synthesize_regions; this
    // merge step is serial and follows the deterministic emission order.
    synth::BatchSynthResult& result = region_synth_[region_index];

    obs::ReportRegion entry;
    for (ActorId id : region.actors) {
      entry.actors.push_back(model_.actor(id).name());
    }
    entry.nodes = region.graph.node_count();
    entry.used_simd = result.used_simd;
    entry.batch_size = result.batch_size;
    entry.batch_count = result.batch_count;
    entry.scalar_remainder = result.offset;
    entry.predicated = result.predicated;
    entry.instructions = result.instructions_used;
    out_.report.regions.push_back(std::move(entry));

    if (result.used_simd) {
      for (std::string& name : result.instructions_used) {
        out_.simd_instructions.push_back(std::move(name));
      }
      if (region.actors.size() > 1) ++out_.fused_regions;
      simd_emitted_ = true;

      // The batch-region banner attaches to the first loop of the region
      // (the scalar remainder when one exists — Algorithm 2 line 26 puts it
      // "at the front" — otherwise the vector loop).
      bool banner_pending = true;
      if (result.offset != 0) {
        cgir::Stmt remainder;
        remainder.kind = cgir::Stmt::Kind::kLoop;
        remainder.begin = 0;
        remainder.end = result.offset;
        remainder.step = 1;
        remainder.fusible = true;
        remainder.banner_actors = static_cast<int>(region.actors.size());
        remainder.banner_isa = config_.isa->name;
        remainder.body = std::move(result.remainder_body);
        banner_pending = false;
        push(std::move(remainder));
      }
      cgir::Stmt main;
      main.kind = cgir::Stmt::Kind::kLoop;
      if (result.predicated) {
        // One vector-length-agnostic loop over [0, n): the runtime-stride
        // expression replaces the constant step, the predicate handles the
        // tail, and no pass may reshape the iteration domain (not a
        // vector_loop, not fusible).
        main.predicated = true;
        main.step_expr = result.step_expr;
        main.begin = 0;
        main.end = region.graph.length();
        main.step = result.batch_size;  // granule lanes, for trip estimates
        static obs::Counter& predicated_metric =
            obs::Registry::instance().counter("codegen.loops.predicated");
        predicated_metric.add();
        ++out_.report.loops_predicated;
      } else {
        main.vector_loop = true;
        main.fusible = true;
        main.begin = result.offset;
        main.step = result.batch_size;
        if (result.batch_count >= 2) {
          main.end = region.graph.length();
        } else {
          main.single_iteration = true;
          main.end = result.offset + result.batch_size;
        }
      }
      if (banner_pending) {
        main.banner_actors = static_cast<int>(region.actors.size());
        main.banner_isa = config_.isa->name;
      }
      main.body = std::move(result.vector_body);
      push(std::move(main));
      return;
    }
    // Algorithm 2 lines 3-4: conventionalTranslate.
    for (ActorId id : region.actors) emit_actor(model_.actor(id));
  }

  void emit_actor(const Actor& actor) {
    const std::string& type = actor.type();
    if (type == "Inport" || type == "Constant") return;
    if (is_folded(actor.id())) return;

    if (type == "Outport") {
      if (direct_outports_.count(actor.id())) {
        return;  // the producer already wrote into the output buffer
      }
      const SignalId src = source_of(actor.id(), 0);
      const std::string out_name = "out_" + sanitize_identifier(actor.name());
      if (is_folded(src.first)) {
        cgir::Stmt stmt;
        access_sink_ = &stmt.accesses;
        stmt.text =
            out_name + "[0] = " + folded_expr(model_.actor(src.first)) + ";";
        access_sink_ = nullptr;
        stmt.accesses.push_back({out_name, true, false});
        push(std::move(stmt));
      } else {
        const PortSpec& spec = actor.input(0);
        const int components = is_complex(spec.type)
                                   ? spec.shape.elements() * 2
                                   : spec.shape.elements();
        cgir::Stmt stmt = cgir::Stmt::text_line(
            "memcpy(" + out_name + ", " + buffer_name_.at(src) + ", " +
            std::to_string(components) + " * sizeof(" +
            std::string(c_name(spec.type)) + "));");
        stmt.accesses.push_back({out_name, true, false});
        stmt.accesses.push_back({buffer_name_.at(src), false, false});
        push(std::move(stmt));
      }
      return;
    }

    if (type == "UnitDelay") {
      // Output buffer *is* the state; schedule the update for end-of-step
      // (flush_delay_updates orders the copies so chained delays keep their
      // full latency).
      const SignalId src = source_of(actor.id(), 0);
      const PortSpec& spec = actor.output(0);
      const int components = is_complex(spec.type) ? spec.shape.elements() * 2
                                                   : spec.shape.elements();
      delay_updates_.push_back({buffer_name_.at({actor.id(), 0}),
                                buffer_name_.at(src), components,
                                std::string(c_name(spec.type))});
      return;
    }

    const ActorTypeInfo& info = actor_type_info(type);
    if (info.elementwise) {
      emit_elementwise(actor);
      return;
    }
    if (info.intensive) {
      emit_intensive(actor);
      return;
    }
    throw CodegenError("no conventional translation for actor type '" + type +
                       "'");
  }

  void emit_elementwise(const Actor& actor) {
    const int n = actor.output(0).shape.elements();
    const std::string dst = buffer_name_.at({actor.id(), 0});
    const bool unroll = config_.batch_mode == BatchMode::kUnrollThenLoops &&
                        n <= config_.unroll_threshold;
    if (n == 1) {
      cgir::Stmt stmt;
      access_sink_ = &stmt.accesses;
      stmt.text = dst + "[0] = " + elementwise_expr(actor, "0") + ";";
      access_sink_ = nullptr;
      stmt.accesses.push_back({dst, true, false});
      push(std::move(stmt));
    } else if (unroll) {
      // Paper Figure 2: one statement per element.
      for (int i = 0; i < n; ++i) {
        const std::string idx = std::to_string(i);
        cgir::Stmt stmt;
        access_sink_ = &stmt.accesses;
        stmt.text = dst + "[" + idx + "] = " + elementwise_expr(actor, idx) + ";";
        access_sink_ = nullptr;
        stmt.accesses.push_back({dst, true, false});
        push(std::move(stmt));
      }
    } else {
      cgir::Stmt loop;
      loop.kind = cgir::Stmt::Kind::kLoop;
      loop.begin = 0;
      loop.end = n;
      loop.step = 1;
      // At -O2 conventional scalar loops join the fusion candidate set: the
      // same-shape fuser merges equal-length chains, and cross-scale fusion
      // strip-mines the survivors into adjacent vector loops.  These are
      // exactly the loops the HCG4xx SIMD-blocker remarks (no-simd-op,
      // scale-mismatch, ...) excluded from batch regions.  Kept off below
      // -O2 so -O0/-O1 output stays pinned.
      loop.fusible = config_.opt_level >= 2;
      cgir::Stmt body_line;
      access_sink_ = &body_line.accesses;
      body_line.text = dst + "[i] = " + elementwise_expr(actor, "i") + ";";
      access_sink_ = nullptr;
      body_line.accesses.push_back({dst, true, true});
      loop.body.push_back(std::move(body_line));
      push(std::move(loop));
    }
  }

  void emit_intensive(const Actor& actor) {
    const kernels::KernelImpl& impl = *intensive_impl_.at(actor.id());
    const std::string out = buffer_name_.at({actor.id(), 0});
    const std::string in0 = buffer_name_.at(source_of(actor.id(), 0));
    const bool inverse =
        actor.type() == "IFFT" || actor.type() == "IFFT2D";
    const Shape& shape0 = actor.input(0).shape;

    std::string call;
    std::string in1;
    switch (impl.sig) {
      case kernels::KernelSig::kFft1D:
        call = impl.c_function + "(" + in0 + ", " + out + ", " +
               std::to_string(shape0.elements()) + ", " +
               (inverse ? "1" : "0") + ");";
        break;
      case kernels::KernelSig::kFft2D:
        call = impl.c_function + "(" + in0 + ", " + out + ", " +
               std::to_string(shape0.dims[0]) + ", " +
               std::to_string(shape0.dims[1]) + ", " + (inverse ? "1" : "0") +
               ");";
        break;
      case kernels::KernelSig::kXform1D:
        call = impl.c_function + "(" + in0 + ", " + out + ", " +
               std::to_string(shape0.elements()) + ");";
        break;
      case kernels::KernelSig::kXform2D:
        call = impl.c_function + "(" + in0 + ", " + out + ", " +
               std::to_string(shape0.dims[0]) + ", " +
               std::to_string(shape0.dims[1]) + ");";
        break;
      case kernels::KernelSig::kConv1D: {
        in1 = buffer_name_.at(source_of(actor.id(), 1));
        const Shape& shape1 = actor.input(1).shape;
        call = impl.c_function + "(" + in0 + ", " +
               std::to_string(shape0.elements()) + ", " + in1 + ", " +
               std::to_string(shape1.elements()) + ", " + out + ");";
        break;
      }
      case kernels::KernelSig::kConv2D: {
        in1 = buffer_name_.at(source_of(actor.id(), 1));
        const Shape& shape1 = actor.input(1).shape;
        call = impl.c_function + "(" + in0 + ", " +
               std::to_string(shape0.dims[0]) + ", " +
               std::to_string(shape0.dims[1]) + ", " + in1 + ", " +
               std::to_string(shape1.dims[0]) + ", " +
               std::to_string(shape1.dims[1]) + ", " + out + ");";
        break;
      }
      case kernels::KernelSig::kMatMul: {
        in1 = buffer_name_.at(source_of(actor.id(), 1));
        call = impl.c_function + "(" + in0 + ", " + in1 + ", " + out + ", " +
               std::to_string(shape0.dims[0]) + ");";
        break;
      }
      case kernels::KernelSig::kMatInv:
      case kernels::KernelSig::kMatDet:
        call = impl.c_function + "(" + in0 + ", " + out + ", " +
               std::to_string(shape0.dims[0]) + ");";
        break;
    }
    if (call.empty()) {
      throw CodegenError("emit_intensive: bad kernel signature");
    }
    cgir::Stmt stmt = cgir::Stmt::text_line(std::move(call));
    stmt.accesses.push_back({out, true, false});
    stmt.accesses.push_back({in0, false, false});
    if (!in1.empty()) stmt.accesses.push_back({in1, false, false});
    if (config_.profile_gen) {
      stmt.prof_tag = "intensive:" + actor.name() + ":" + impl.id;
    }
    push(std::move(stmt));
  }

  // ------------------------------------------------------------------
  // Passes + printing
  // ------------------------------------------------------------------

  static bool verify_env_enabled() {
    const char* env = std::getenv("HCG_VERIFY");
    return env != nullptr && *env != '\0' && std::string_view(env) != "0";
  }

  /// Static tile width for the -O2 tiling pass when EmitConfig does not pin
  /// one: four vector strides of the widest planned region loop (so one tile
  /// is a handful of full SIMD iterations), 16 when nothing vectorized.
  /// Never derived from timings — output must be byte-identical across runs
  /// and job counts.
  int derive_tile_elems() const {
    int lanes = 0;
    for (const cgir::Stmt& stmt : tu_.step.body) {
      if (stmt.kind == cgir::Stmt::Kind::kLoop &&
          (stmt.vector_loop || stmt.single_iteration)) {
        lanes = std::max(lanes, stmt.step);
      }
    }
    return lanes > 0 ? 4 * lanes : 16;
  }

  void run_pass_pipeline() {
    const bool verify = config_.verify_cgir || verify_env_enabled();
    cgir::PassStats stats;
    if (verify) {
      // Checkpoint "lower": the freshly lowered unit, before any pass.
      analysis::require_valid_unit(tu_, stats, "lower");
      out_.report.verified_passes.emplace_back("lower");
    }
    if (config_.dump_cgir_after == "lower") {
      out_.cgir_dump_after = cgir::dump(tu_);
    }
    if (config_.opt_level >= 1) {
      cgir::PassOptions options;
      options.fuse_loops = true;
      options.reuse_arena = config_.reuse_buffers;
      if (config_.opt_level >= 2) {
        options.fuse_cross_scale = true;
        options.tile_scalar_loops = true;
        options.coalesce_layout = true;
        options.localize_strips = true;
        options.tile_elems = config_.tile_elems > 0 ? config_.tile_elems
                                                    : derive_tile_elems();
      }
      if (verify || !config_.dump_cgir_after.empty()) {
        options.after_pass = [this, verify](std::string_view pass,
                                            const cgir::TranslationUnit& tu,
                                            const cgir::PassStats& pass_stats) {
          if (verify) {
            analysis::require_valid_unit(tu, pass_stats, pass);
            out_.report.verified_passes.emplace_back(pass);
          }
          if (pass == config_.dump_cgir_after) {
            out_.cgir_dump_after = cgir::dump(tu);
          }
        };
      }
      stats = cgir::run_passes(tu_, options);
    }
    if (config_.profile_gen) {
      // After the passes (the instrumented loops are the final ones) and
      // after the last verifier checkpoint (the injected HCG_PROF_* text
      // statements are not part of the verified dataflow).
      cgir::ProfileOptions profile_options;
      profile_options.model_name = model_.name();
      out_.profile_sites = cgir::instrument_profiling(tu_, profile_options);
    }
    source_ = cgir::print(tu_);
    out_.cgir_dump = cgir::dump(tu_);

    out_.static_buffer_bytes = 0;
    for (const cgir::BufferDecl& decl : tu_.buffers) {
      out_.static_buffer_bytes += decl.bytes();
    }

    out_.report.opt_level = config_.opt_level;
    out_.report.loops_fused = stats.loops_fused;
    out_.report.copies_elided = stats.copies_elided;
    out_.report.arena_bytes_saved = stats.arena_bytes_saved;
    out_.report.cross_scale_fused = stats.cross_scale_fused;
    out_.report.loops_tiled = stats.loops_tiled;
    out_.report.buffers_relocated = stats.buffers_relocated;
    out_.report.stride1_accesses = stats.stride1_accesses;
    out_.report.strips_localized = stats.strips_localized;
    static obs::Counter& fusion_metric =
        obs::Registry::instance().counter("codegen.fusion.loops_fused");
    static obs::Counter& arena_metric =
        obs::Registry::instance().counter("codegen.arena.bytes_saved");
    static obs::Counter& cross_scale_metric = obs::Registry::instance().counter(
        "codegen.fusion.cross_scale_fused");
    static obs::Counter& tile_metric =
        obs::Registry::instance().counter("codegen.tile.loops_tiled");
    static obs::Counter& stride1_metric = obs::Registry::instance().counter(
        "codegen.layout.stride1_accesses");
    fusion_metric.add(static_cast<std::uint64_t>(stats.loops_fused));
    arena_metric.add(stats.arena_bytes_saved);
    cross_scale_metric.add(static_cast<std::uint64_t>(stats.cross_scale_fused));
    tile_metric.add(static_cast<std::uint64_t>(stats.loops_tiled));
    stride1_metric.add(static_cast<std::uint64_t>(stats.stride1_accesses));

    // -O2 pass remarks, mirrored into the report like lint findings so a
    // --report consumer sees where the new passes fired.
    auto remark = [this](std::string code, std::string message) {
      obs::ReportDiagnostic diag;
      diag.code = std::move(code);
      diag.severity = "remark";
      diag.location = model_.name() + ": step";
      diag.message = std::move(message);
      out_.report.diagnostics.push_back(std::move(diag));
    };
    if (stats.cross_scale_fused > 0) {
      remark("HCG408", std::to_string(stats.cross_scale_fused) +
                           " scalar loop(s) strip-mined and fused across a "
                           "scale boundary");
    }
    if (stats.loops_tiled > 0) {
      remark("HCG409", std::to_string(stats.loops_tiled) +
                           " scalar loop(s) tiled into constant-trip chunks");
    }
    if (stats.buffers_relocated > 0) {
      remark("HCG410", std::to_string(stats.buffers_relocated) +
                           " buffer declaration(s) re-ordered for coalesced "
                           "stride-1 access");
    }
  }

  // ------------------------------------------------------------------

  Model model_;
  EmitConfig config_;
  GeneratedCode out_;
  std::string source_;
  cgir::TranslationUnit tu_;
  /// When non-null, element_expr records buffer reads here (the statement
  /// currently being built).
  std::vector<cgir::BufferAccess>* access_sink_ = nullptr;
  std::vector<BatchRegion> regions_;
  std::map<ActorId, int> region_of_;
  /// Per-region Algorithm 2 results, index-aligned with regions_.
  std::vector<synth::BatchSynthResult> region_synth_;
  std::vector<EmissionItem> order_;
  /// In-run single-flight cache + fallback history for Algorithm 1 (used
  /// when the caller provides no persistent history).
  synth::SingleFlightSelector selector_;
  synth::SelectionHistory local_history_;
  std::map<ActorId, const kernels::KernelImpl*> intensive_impl_;
  std::set<std::string> kernel_sources_;
  std::set<ActorId> folded_;
  std::set<ActorId> register_only_;
  std::set<ActorId> direct_outports_;
  std::map<SignalId, std::string> buffer_name_;
  /// One pending end-of-step register copy (see flush_delay_updates()).
  struct DelayUpdate {
    std::string state;   // the delay's register/output buffer (written)
    std::string src;     // the buffer feeding the delay's input (read)
    int components = 0;  // scalar components to copy
    std::string c_type;  // element C type for sizeof
  };
  std::vector<DelayUpdate> delay_updates_;
  bool simd_emitted_ = false;
  double resolve_ms_ = 0.0;
};

}  // namespace

GeneratedCode emit_model(const Model& model, const EmitConfig& config) {
  return Emitter(model, config).run();
}

}  // namespace hcg::codegen
