// Experiment E7 — the §4.3 discussion: "when the model contains one or two
// batch computing actors, HCG will still translate them into SIMD
// instructions [and] the efficiency may be less than the conventional code
// because of the cost of data transmission between memory and vector
// registers.  We can solve this problem by a preliminary check and setting a
// threshold."
//
// This bench sweeps batch-chain length 1..8 and compares HCG's SIMD code
// against the conventional loop code, then shows the effect of HCG's
// min_nodes_for_simd threshold knob.
#include "bench_util.hpp"
#include "isa/builtin.hpp"

using namespace hcg;

int main() {
  const isa::VectorIsa& neon = isa::builtin("neon_sim");

  std::printf("== SIMD threshold ablation (chain of batch actors, f32[1024], "
              "NEON-sim, -O2) ==\n\n");
  std::vector<std::vector<std::string>> table;
  table.push_back({"Chain length", "Conventional (DFSynth)", "HCG SIMD",
                   "SIMD speedup", "HCG thr=3 picks"});

  for (int actors = 1; actors <= 8; ++actors) {
    Model model = resolved(benchmodels::batch_chain_model(actors));
    bench::IoBinding io = bench::bind_io(model);

    auto dfsynth = codegen::make_dfsynth_generator();
    codegen::GeneratedCode conventional = dfsynth->generate(model);
    toolchain::CompiledModel conv_compiled = bench::compile(conventional);
    bench::verify_against_oracle(conv_compiled, model, io, 2e-2);
    const double conv_time =
        bench::time_steps(conv_compiled, io.in_ptrs, io.out_ptrs)
            .seconds_per_step;

    auto hcg = codegen::make_hcg_generator(neon);
    codegen::GeneratedCode simd = hcg->generate(model);
    toolchain::CompiledModel simd_compiled = bench::compile(simd);
    bench::verify_against_oracle(simd_compiled, model, io, 2e-2);
    const double simd_time =
        bench::time_steps(simd_compiled, io.in_ptrs, io.out_ptrs)
            .seconds_per_step;

    // The thresholded generator: regions below 3 nodes stay conventional.
    synth::BatchOptions threshold;
    threshold.min_nodes_for_simd = 3;
    auto hcg_thr = codegen::make_hcg_generator(neon, nullptr, threshold);
    codegen::GeneratedCode thr_code = hcg_thr->generate(model);

    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx", conv_time / simd_time);
    table.push_back({std::to_string(actors),
                     bench::format_seconds(conv_time),
                     bench::format_seconds(simd_time), speedup,
                     thr_code.simd_instructions.empty() ? "conventional"
                                                        : "SIMD"});
  }
  bench::print_table(table);
  return 0;
}
