// Experiment E8 — Algorithm 1 ablation: the value of the selection history.
// Synthesizing the same intensive actor shape repeatedly should cost the
// pre-calculation only once; with the history disabled every synthesis pays
// it again.
#include "bench_util.hpp"
#include "isa/builtin.hpp"
#include "synth/intensive.hpp"

using namespace hcg;

int main() {
  const int kRepeats = 8;
  const std::vector<int> sizes = {256, 1024, 4096};

  std::printf("== Selection-history ablation: synthesize the FFT actor %d "
              "times per size ==\n\n", kRepeats);
  std::vector<std::vector<std::string>> table;
  table.push_back({"FFT size", "history ON total", "history OFF total",
                   "speedup", "chosen impl"});

  for (int n : sizes) {
    Model model = resolved(benchmodels::fft_model(n));
    const Actor& actor = model.actor_by_name("fft");

    synth::IntensiveOptions with;
    with.use_history = true;
    synth::IntensiveOptions without;
    without.use_history = false;

    synth::SelectionHistory history;
    Stopwatch on_timer;
    std::string chosen;
    for (int i = 0; i < kRepeats; ++i) {
      chosen = synth::select_implementation(actor, history, with).impl->id;
    }
    const double on_total = on_timer.elapsed_seconds();

    synth::SelectionHistory unused;
    Stopwatch off_timer;
    for (int i = 0; i < kRepeats; ++i) {
      synth::select_implementation(actor, unused, without);
    }
    const double off_total = off_timer.elapsed_seconds();

    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.1fx", off_total / on_total);
    table.push_back({std::to_string(n), bench::format_seconds(on_total),
                     bench::format_seconds(off_total), speedup, chosen});
  }
  bench::print_table(table);
  return 0;
}
