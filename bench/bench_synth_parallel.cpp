// Parallel synthesis engine benchmark: end-to-end codegen (resolve, region
// construction, Algorithm 1 pre-calculation sweeps, Algorithm 2 matching,
// emission) of a 64-intensive-actor model at --jobs 1/2/4/8, plus the
// single-flight dedup effect on a model whose actors share selection keys.
//
// Writes BENCH_synth_parallel.json (into argv[1], a directory, default ".")
// in the shared hcg-bench-v1 schema (bench_util.hpp) so the perf trajectory
// has machine-readable data points: per-jobs best emission time and speedup,
// plus the single-flight dedup counters.
//
// Speedups scale with real cores: on a single-core container the jobs sweep
// is flat (the pool cannot beat the hardware) while the dedup section still
// shows the measured-once win.
#include "bench_util.hpp"

#include "isa/builtin.hpp"
#include "synth/intensive.hpp"

namespace {

using namespace hcg;

constexpr int kActors = 64;

codegen::EmitConfig farm_config(int jobs) {
  codegen::EmitConfig config;
  config.tool_name = "hcg";
  config.batch_mode = codegen::BatchMode::kRegions;
  config.isa = &isa::builtin("neon_sim");
  config.select_intensive = true;  // fresh per-run history: every key measures
  config.fold_scalar_expressions = true;
  config.reuse_buffers = true;
  config.jobs = jobs;
  return config;
}

/// Best-of-3 end-to-end emit_model time for the given job count.
double time_codegen(const Model& model, int jobs) {
  double best = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    Stopwatch timer;
    codegen::GeneratedCode code = codegen::emit_model(model, farm_config(jobs));
    best = std::min(best, timer.elapsed_seconds());
    if (code.intensive_choices.size() != kActors) {
      std::fprintf(stderr, "FATAL: expected %d intensive choices, got %zu\n",
                   kActors, code.intensive_choices.size());
      std::exit(1);
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";
  const unsigned hw = std::thread::hardware_concurrency();

  const Model distinct = benchmodels::intensive_farm_model(kActors, true);
  const Model duplicated = benchmodels::intensive_farm_model(kActors, false);

  // ---- jobs sweep over the distinct-key model -----------------------------
  const int kJobs[] = {1, 2, 4, 8};
  std::vector<double> seconds;
  for (int jobs : kJobs) seconds.push_back(time_codegen(distinct, jobs));

  std::vector<std::vector<std::string>> table;
  table.push_back({"jobs", "codegen", "speedup"});
  for (size_t i = 0; i < seconds.size(); ++i) {
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx", seconds[0] / seconds[i]);
    table.push_back({std::to_string(kJobs[i]),
                     bench::format_seconds(seconds[i]), speedup});
  }
  std::printf("synth_parallel: %d intensive actors, hw concurrency %u\n\n",
              kActors, hw);
  bench::print_table(table);

  // ---- single-flight dedup on the shared-key model ------------------------
  obs::Counter& precalc = obs::Registry::instance().counter("synth.precalc.runs");
  obs::Counter& dedup = obs::Registry::instance().counter("synth.pool.dedup_hits");
  const std::uint64_t precalc_before = precalc.value();
  const std::uint64_t dedup_before = dedup.value();
  const double dup_seconds = time_codegen(duplicated, 1);
  // time_codegen runs 3 emits; each fresh run re-measures its distinct keys.
  const std::uint64_t precalc_runs = (precalc.value() - precalc_before) / 3;
  const std::uint64_t dedup_hits = (dedup.value() - dedup_before) / 3;
  std::printf("\ndedup: %d actors share %llu keys -> %llu sweeps, "
              "%llu single-flight hits (%s at jobs=1)\n",
              kActors, static_cast<unsigned long long>(precalc_runs),
              static_cast<unsigned long long>(precalc_runs),
              static_cast<unsigned long long>(dedup_hits),
              bench::format_seconds(dup_seconds).c_str());

  // ---- machine-readable record (hcg-bench-v1, shared writer) --------------
  std::vector<bench::BenchMetric> metrics;
  metrics.push_back(bench::count_metric("farm.actors", kActors));
  for (size_t i = 0; i < seconds.size(); ++i) {
    const std::string jobs = "jobs" + std::to_string(kJobs[i]);
    metrics.push_back(bench::time_metric(
        jobs + ".best_seconds",
        bench::measured(jobs + ".best_seconds", seconds[i])));
    metrics.push_back(
        bench::ratio_metric(jobs + ".speedup", seconds[0] / seconds[i]));
  }
  metrics.push_back(bench::count_metric("dedup.precalc_runs",
                                        static_cast<double>(precalc_runs)));
  metrics.push_back(bench::count_metric("dedup.dedup_hits",
                                        static_cast<double>(dedup_hits)));
  metrics.push_back(bench::time_metric(
      "dedup.best_seconds",
      bench::measured("dedup.best_seconds", dup_seconds)));
  const std::string out_path = bench::write_bench_json(
      out_dir, "synth_parallel", bench::bench_env(), metrics);
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return 0;
}
