// Generator scalability: code-generation wall time as the model grows
// (batch chains of 10..200 actors).  Complements E4 — the paper reports
// whole-suite generation times; this shows how Algorithm 2's subgraph
// enumeration scales with region size.
#include "bench_util.hpp"
#include "isa/builtin.hpp"

using namespace hcg;

int main() {
  const isa::VectorIsa& neon = isa::builtin("neon_sim");

  std::printf("== Generation-time scaling over batch-chain length ==\n\n");
  std::vector<std::vector<std::string>> table;
  table.push_back({"Actors", "Simulink", "DFSynth", "HCG", "HCG instrs"});

  for (int actors : {10, 25, 50, 100, 200}) {
    Model model = resolved(benchmodels::batch_chain_model(actors, 256));

    auto time_tool = [&](codegen::Generator& tool) {
      // Best of 3 to de-noise.
      double best = 1e30;
      codegen::GeneratedCode last;
      for (int i = 0; i < 3; ++i) {
        Stopwatch timer;
        last = tool.generate(model);
        best = std::min(best, timer.elapsed_seconds());
      }
      return std::pair{best, last};
    };

    auto sc = codegen::make_simulink_generator();
    auto df = codegen::make_dfsynth_generator();
    auto hcg = codegen::make_hcg_generator(neon);
    auto [t_sc, c_sc] = time_tool(*sc);
    auto [t_df, c_df] = time_tool(*df);
    auto [t_hcg, c_hcg] = time_tool(*hcg);

    table.push_back({std::to_string(actors), bench::format_seconds(t_sc),
                     bench::format_seconds(t_df),
                     bench::format_seconds(t_hcg),
                     std::to_string(c_hcg.simd_instructions.size())});
  }
  bench::print_table(table);
  return 0;
}
