// Experiment E3 — paper Figure 5: the six models x three generators across
// two architectures and two compiler configurations.
//
// Substitutions (DESIGN.md §3): the ARM Cortex-A72 is represented by the
// NEON-sim backend (identical generated NEON code, portable execution);
// GCC 11 / Clang 12 are represented by two GCC optimizer configurations
// cc-A = -O2 and cc-B = -O3.  On Intel, Simulink Coder runs in its
// scattered-SIMD mode (per-actor vector loops, §4.2) and HCG uses AVX2.
#include "bench_util.hpp"
#include "isa/builtin.hpp"

using namespace hcg;

namespace {

struct Config {
  std::string label;
  std::string arch;  // "arm" or "intel"
  std::string opt;   // cc flags
};

}  // namespace

int main() {
  const Config configs[] = {
      {"(a) ARM + cc-A (-O2)", "arm", "-O2"},
      {"(b) Intel + cc-A (-O2)", "intel", "-O2"},
      {"(c) ARM + cc-B (-O3)", "arm", "-O3"},
      {"(d) Intel + cc-B (-O3)", "intel", "-O3"},
  };

  const isa::VectorIsa& neon = isa::builtin("neon_sim");
  const isa::VectorIsa& avx2 = isa::builtin("avx2");
  synth::SelectionHistory history;

  for (const Config& config : configs) {
    std::printf("== Figure 5%s ==\n", config.label.c_str());
    std::vector<std::vector<std::string>> table;
    table.push_back({"Model", "Simulink", "DFSynth", "HCG", "impr(SC)",
                     "impr(DF)"});

    for (Model& raw : benchmodels::paper_models()) {
      Model model = resolved(std::move(raw));
      bench::IoBinding io = bench::bind_io(model);

      std::unique_ptr<codegen::Generator> simulink;
      std::unique_ptr<codegen::Generator> hcg;
      if (config.arch == "arm") {
        simulink = codegen::make_simulink_generator();  // no SIMD on ARM
        hcg = codegen::make_hcg_generator(neon, &history);
      } else {
        simulink = codegen::make_simulink_generator(&avx2);  // scattered
        hcg = codegen::make_hcg_generator(avx2, &history);
      }
      auto dfsynth = codegen::make_dfsynth_generator();

      codegen::Generator* tools[3] = {simulink.get(), dfsynth.get(), hcg.get()};
      double seconds[3] = {0, 0, 0};
      for (int t = 0; t < 3; ++t) {
        codegen::GeneratedCode code = tools[t]->generate(model);
        toolchain::CompiledModel compiled = bench::compile(code, config.opt);
        bench::verify_against_oracle(compiled, model, io, 2e-2);
        seconds[t] = bench::time_steps(compiled, io.in_ptrs, io.out_ptrs)
                         .seconds_per_step;
      }
      table.push_back({model.name(),
                       bench::format_seconds(seconds[0]),
                       bench::format_seconds(seconds[1]),
                       bench::format_seconds(seconds[2]),
                       bench::format_percent(1.0 - seconds[2] / seconds[0]),
                       bench::format_percent(1.0 - seconds[2] / seconds[1])});
    }
    bench::print_table(table);
    std::printf("\n");
  }
  return 0;
}
