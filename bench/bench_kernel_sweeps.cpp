// Figure-1-style implementation sweeps for the remaining intensive actor
// families: DCT, convolution and small matrices.  These are the cost curves
// Algorithm 1's pre-calculation navigates for actors other than the FFT of
// Figure 1 — including the direct-vs-FFT convolution crossover as the
// kernel length grows.
#include <benchmark/benchmark.h>

#include <utility>
#include <vector>

#include "kernels/kernels.h"
#include "support/rng.hpp"

namespace {

using hcg::Rng;

// ---------------------------------------------------------------------------
// DCT implementations across sizes
// ---------------------------------------------------------------------------

using DctFn = void (*)(const float*, float*, int);

void run_dct(benchmark::State& state, DctFn fn) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(7);
  std::vector<float> in = rng.signal_f32(static_cast<size_t>(n));
  std::vector<float> out(static_cast<size_t>(n));
  for (auto _ : state) {
    fn(in.data(), out.data(), n);
    benchmark::DoNotOptimize(out.data());
  }
}

// ---------------------------------------------------------------------------
// Convolution: direct vs blocked vs FFT as the kernel length grows
// ---------------------------------------------------------------------------

using ConvFn = void (*)(const float*, int, const float*, int, float*);

void run_conv(benchmark::State& state, ConvFn fn) {
  const int na = 1024;
  const int nb = static_cast<int>(state.range(0));
  Rng rng(8);
  std::vector<float> a = rng.signal_f32(static_cast<size_t>(na));
  std::vector<float> b = rng.signal_f32(static_cast<size_t>(nb));
  std::vector<float> out(static_cast<size_t>(na + nb - 1));
  for (auto _ : state) {
    fn(a.data(), na, b.data(), nb, out.data());
    benchmark::DoNotOptimize(out.data());
  }
}

// ---------------------------------------------------------------------------
// Matrix kernels: generic loop vs unrolled/analytic for n = 2..4
// ---------------------------------------------------------------------------

using MatMulFn = void (*)(const float*, const float*, float*, int);
using MatUnFn = void (*)(const float*, float*, int);

void run_matmul(benchmark::State& state, MatMulFn fn) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(9);
  std::vector<float> a = rng.signal_f32(static_cast<size_t>(n) * n);
  std::vector<float> b = rng.signal_f32(static_cast<size_t>(n) * n);
  std::vector<float> out(static_cast<size_t>(n) * n);
  for (auto _ : state) {
    fn(a.data(), b.data(), out.data(), n);
    benchmark::DoNotOptimize(out.data());
  }
}

void run_matinv(benchmark::State& state, MatUnFn fn) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(10);
  std::vector<float> a = rng.signal_f32(static_cast<size_t>(n) * n);
  for (int i = 0; i < n; ++i) {
    a[static_cast<size_t>(i * n + i)] += static_cast<float>(n) + 2.0f;
  }
  std::vector<float> out(static_cast<size_t>(n) * n);
  for (auto _ : state) {
    fn(a.data(), out.data(), n);
    benchmark::DoNotOptimize(out.data());
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (int n : {16, 64, 256, 1024}) {
    benchmark::RegisterBenchmark(
        "dct_naive", [](benchmark::State& s) { run_dct(s, &hcg_dct_naive_f32); })
        ->Arg(n)->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(
        "dct_lee", [](benchmark::State& s) { run_dct(s, &hcg_dct_lee_f32); })
        ->Arg(n)->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(
        "dct_fft", [](benchmark::State& s) { run_dct(s, &hcg_dct_fft_f32); })
        ->Arg(n)->Unit(benchmark::kMicrosecond);
  }

  // Kernel-length sweep at fixed signal length 1024: the direct/FFT
  // crossover is the interesting feature.
  for (int nb : {4, 16, 64, 256, 1024}) {
    benchmark::RegisterBenchmark(
        "conv_direct",
        [](benchmark::State& s) { run_conv(s, &hcg_conv_direct_f32); })
        ->Arg(nb)->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(
        "conv_blocked",
        [](benchmark::State& s) { run_conv(s, &hcg_conv_blocked_f32); })
        ->Arg(nb)->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(
        "conv_saxpy",
        [](benchmark::State& s) { run_conv(s, &hcg_conv_saxpy_f32); })
        ->Arg(nb)->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(
        "conv_fft", [](benchmark::State& s) { run_conv(s, &hcg_conv_fft_f32); })
        ->Arg(nb)->Unit(benchmark::kMicrosecond);
  }

  for (int n : {2, 3, 4}) {
    benchmark::RegisterBenchmark(
        "matmul_generic",
        [](benchmark::State& s) { run_matmul(s, &hcg_matmul_generic_f32); })
        ->Arg(n);
    benchmark::RegisterBenchmark(
        "matmul_unrolled",
        [](benchmark::State& s) { run_matmul(s, &hcg_matmul_unrolled_f32); })
        ->Arg(n);
    benchmark::RegisterBenchmark(
        "matinv_gauss",
        [](benchmark::State& s) { run_matinv(s, &hcg_matinv_gauss_f32); })
        ->Arg(n);
    benchmark::RegisterBenchmark(
        "matinv_adjugate",
        [](benchmark::State& s) { run_matinv(s, &hcg_matinv_adjugate_f32); })
        ->Arg(n);
  }

  // Blocked-tile sweep at sizes past the unrolled forms: the generic
  // row-column loop against the two cache-blocked tile widths Algorithm 1
  // measures, across matrices on both sides of the L1 boundary.
  for (int n : {32, 96, 128}) {
    benchmark::RegisterBenchmark(
        "matmul_generic",
        [](benchmark::State& s) { run_matmul(s, &hcg_matmul_generic_f32); })
        ->Arg(n)->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(
        "matmul_blocked8",
        [](benchmark::State& s) { run_matmul(s, &hcg_matmul_blocked8_f32); })
        ->Arg(n)->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(
        "matmul_blocked32",
        [](benchmark::State& s) { run_matmul(s, &hcg_matmul_blocked32_f32); })
        ->Arg(n)->Unit(benchmark::kMicrosecond);
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
