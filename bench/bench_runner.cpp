// Bench regression orchestrator (docs/PROFILING.md): runs the standing
// benchmark suites, writes one hcg-bench-v1 BENCH_<suite>.json per suite,
// and — in --check mode — compares the fresh numbers against a committed
// baseline directory, exiting 9 when a metric regressed.
//
//   bench_runner --record --out bench/baseline        # refresh the baseline
//   bench_runner --check --baseline bench/baseline    # the CI perf gate
//
// Gate semantics (the whole point of the kind field):
//   - "count" metrics are deterministic codegen facts (fused regions, SIMD
//     instruction counts, buffer bytes, dedup hits).  ANY drift from the
//     baseline fails the check, in either direction — a count that changed
//     means codegen behavior changed and the baseline must be re-recorded
//     deliberately.
//   - "time"/"ratio" metrics are noisy.  They gate with a relative
//     threshold (--threshold, default 40%), and only when the current cpu
//     count matches the baseline's environment fingerprint; on a mismatched
//     machine they are skipped with a warning (--strict gates anyway).
//   - a metric present in the baseline but missing from the current run is
//     a warning, not a regression (a compiler-less container skips the exec
//     suite without failing the gate).
//
// Exit codes: 0 ok, 2 usage error, 9 regression detected.
#include "bench_util.hpp"

#include "isa/builtin.hpp"
#include "synth/history.hpp"

#include <cmath>
#include <functional>

namespace {

using namespace hcg;

constexpr int kExitRegression = 9;
constexpr int kFarmActors = 16;

// ---- suites ---------------------------------------------------------------

codegen::GeneratedCode emit_hcg(const Model& model,
                                synth::SelectionHistory* history,
                                int opt_level = 1) {
  auto hcg = codegen::make_hcg_generator(isa::builtin("neon_sim"), history, {},
                                         opt_level);
  return hcg->generate(model);
}

/// Deterministic codegen facts + end-to-end emission time for three models.
std::vector<bench::BenchMetric> suite_codegen() {
  std::vector<bench::BenchMetric> metrics;
  std::vector<Model> models;
  models.push_back(benchmodels::fir_model(1024));
  models.push_back(benchmodels::highpass_model(1024));
  models.push_back(benchmodels::paper_fig4_model());
  for (Model& raw : models) {
    Model model = resolved(std::move(raw));
    const std::string m = model.name();
    // Calibrated best-of-N: a single sub-millisecond emission is far too
    // noisy to gate, so repeat until the time budget is spent and keep the
    // fastest run (the one with the least scheduler interference).
    auto emit_once = [&model]() {
      synth::SelectionHistory history;  // cold: includes Algorithm 1 sweeps
      Stopwatch timer;
      codegen::GeneratedCode code = emit_hcg(model, &history);
      return std::pair<double, codegen::GeneratedCode>(
          timer.elapsed_seconds(), std::move(code));
    };
    auto [emit_seconds, code] = emit_once();
    const int reps = static_cast<int>(
        std::clamp(bench::target_seconds() / std::max(emit_seconds, 1e-9),
                   4.0, 2000.0));
    for (int rep = 0; rep < reps; ++rep) {
      emit_seconds = std::min(emit_seconds, emit_once().first);
    }
    metrics.push_back(bench::time_metric(
        m + ".emit_seconds", bench::measured(m + ".emit_seconds", emit_seconds)));
    metrics.push_back(bench::count_metric(
        m + ".fused_regions", code.fused_regions));
    metrics.push_back(bench::count_metric(
        m + ".simd_instructions",
        static_cast<double>(code.simd_instructions.size())));
    metrics.push_back(bench::count_metric(
        m + ".static_buffer_bytes",
        static_cast<double>(code.static_buffer_bytes), "B"));
  }

  // -O2 pass facts (PR 7), all deterministic counts.  mixed_pipeline has a
  // deliberate scale boundary, so cross-scale fusion must fire; the dfsynth
  // leg is all scalar loops, so the tiling and layout passes must fire.
  {
    Model model = resolved(benchmodels::mixed_pipeline_model(1024));
    synth::SelectionHistory history;
    codegen::GeneratedCode code = emit_hcg(model, &history, 2);
    const obs::Report& r = code.report;
    metrics.push_back(bench::count_metric(
        "mixed_pipeline.o2.cross_scale_fused", r.cross_scale_fused));
    metrics.push_back(bench::count_metric(
        "mixed_pipeline.o2.stride1_accesses", r.stride1_accesses));
    metrics.push_back(bench::count_metric(
        "mixed_pipeline.o2.simd_instructions",
        static_cast<double>(code.simd_instructions.size())));
  }
  {
    Model model = resolved(benchmodels::fir_model(1024));
    codegen::GeneratedCode code =
        codegen::make_dfsynth_generator(2)->generate(model);
    const obs::Report& r = code.report;
    metrics.push_back(bench::count_metric(
        "fir_bench.dfsynth_o2.loops_tiled", r.loops_tiled));
    metrics.push_back(bench::count_metric(
        "fir_bench.dfsynth_o2.buffers_relocated", r.buffers_relocated));
    metrics.push_back(bench::count_metric(
        "fir_bench.dfsynth_o2.stride1_accesses", r.stride1_accesses));
  }
  return metrics;
}

/// Compiled step() timing, HCG vs the Simulink-style baseline.  Needs a C
/// compiler; any toolchain failure skips the model with a warning rather
/// than failing the run (missing metrics warn, they don't regress).
std::vector<bench::BenchMetric> suite_exec() {
  std::vector<bench::BenchMetric> metrics;
  std::vector<Model> models;
  models.push_back(benchmodels::fir_model(1024));
  models.push_back(benchmodels::paper_fig4_model());
  for (Model& raw : models) {
    Model model = resolved(std::move(raw));
    const std::string m = model.name();
    try {
      bench::IoBinding io = bench::bind_io(model);
      synth::SelectionHistory history;
      codegen::GeneratedCode hcg_code = emit_hcg(model, &history);
      codegen::GeneratedCode sc_code =
          codegen::make_simulink_generator()->generate(model);

      toolchain::CompiledModel hcg_bin = bench::compile(hcg_code);
      bench::verify_against_oracle(hcg_bin, model, io, 2e-2);
      const double hcg_s =
          bench::time_steps(hcg_bin, io.in_ptrs, io.out_ptrs).seconds_per_step;

      toolchain::CompiledModel sc_bin = bench::compile(sc_code);
      bench::verify_against_oracle(sc_bin, model, io, 2e-2);
      const double sc_s =
          bench::time_steps(sc_bin, io.in_ptrs, io.out_ptrs).seconds_per_step;

      const double step = bench::measured(m + ".step_seconds", hcg_s);
      metrics.push_back(bench::time_metric(m + ".step_seconds", step));
      metrics.push_back(bench::ratio_metric(m + ".speedup_vs_simulink",
                                            sc_s / std::max(step, 1e-12)));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "warning: exec suite skipped '%s': %s\n",
                   m.c_str(), e.what());
    }
  }

  // -O2 vs -O1 on the cross-scale fusion workload: the measured win the
  // tentpole claims, gated against the committed baseline.
  try {
    Model model = resolved(benchmodels::mixed_pipeline_model(4096));
    bench::IoBinding io = bench::bind_io(model);
    synth::SelectionHistory history;
    codegen::GeneratedCode o1_code = emit_hcg(model, &history, 1);
    codegen::GeneratedCode o2_code = emit_hcg(model, &history, 2);

    toolchain::CompiledModel o1_bin = bench::compile(o1_code);
    bench::verify_against_oracle(o1_bin, model, io, 2e-2);
    const double o1_s =
        bench::time_steps(o1_bin, io.in_ptrs, io.out_ptrs).seconds_per_step;

    toolchain::CompiledModel o2_bin = bench::compile(o2_code);
    bench::verify_against_oracle(o2_bin, model, io, 2e-2);
    const double o2_s =
        bench::time_steps(o2_bin, io.in_ptrs, io.out_ptrs).seconds_per_step;

    const double step =
        bench::measured("mixed_pipeline.o2_step_seconds", o2_s);
    metrics.push_back(
        bench::time_metric("mixed_pipeline.o2_step_seconds", step));
    metrics.push_back(bench::ratio_metric("mixed_pipeline.o2_speedup_vs_o1",
                                          o1_s / std::max(step, 1e-12)));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "warning: exec suite skipped 'mixed_pipeline': %s\n",
                 e.what());
  }

  // Algorithm 1's measured tile choice on a 96x96 MatMul: the selected
  // cache-blocked kernel against the generic row-column fallback the
  // baseline tools use.
  try {
    Model model = resolved(benchmodels::matmul_pipeline_model(96));
    bench::IoBinding io = bench::bind_io(model);
    synth::SelectionHistory history;
    codegen::GeneratedCode hcg_code = emit_hcg(model, &history, 2);
    codegen::GeneratedCode generic_code =
        codegen::make_dfsynth_generator()->generate(model);

    toolchain::CompiledModel hcg_bin = bench::compile(hcg_code);
    bench::verify_against_oracle(hcg_bin, model, io, 2e-2);
    const double hcg_s =
        bench::time_steps(hcg_bin, io.in_ptrs, io.out_ptrs).seconds_per_step;

    toolchain::CompiledModel generic_bin = bench::compile(generic_code);
    bench::verify_against_oracle(generic_bin, model, io, 2e-2);
    const double generic_s =
        bench::time_steps(generic_bin, io.in_ptrs, io.out_ptrs)
            .seconds_per_step;

    const double step =
        bench::measured("matmul_pipeline.step_seconds", hcg_s);
    metrics.push_back(
        bench::time_metric("matmul_pipeline.step_seconds", step));
    metrics.push_back(bench::ratio_metric(
        "matmul_pipeline.blocked_speedup_vs_generic",
        generic_s / std::max(step, 1e-12)));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "warning: exec suite skipped 'matmul_pipeline': %s\n",
                 e.what());
  }
  return metrics;
}

/// Scalable-backend kernel sweep (PR 8): the predicated-tail loop form
/// (--isa sve) against the fixed-width vector+remainder form (neon_sim) on
/// lengths that do and do not divide the lane count.  The count metrics are
/// the tentpole's acceptance facts — every sve region lowers to predicated
/// loops with zero scalar-remainder elements, while the fixed-width table
/// provably leaves a tail on the prime length.  The timing leg compares the
/// two tail strategies on compiled code (both tables are simulated, so this
/// runs on any host with a C compiler).
std::vector<bench::BenchMetric> suite_sve() {
  std::vector<bench::BenchMetric> metrics;
  auto emit_with = [](const Model& model, const char* table) {
    synth::SelectionHistory history;
    auto gen =
        codegen::make_hcg_generator(isa::builtin(table), &history, {}, 1);
    return gen->generate(model);
  };
  auto remainder_elems = [](const obs::Report& report) {
    int total = 0;
    for (const obs::ReportRegion& region : report.regions) {
      total += region.scalar_remainder;
    }
    return total;
  };

  // 1024 divides every lane count; 1021 is prime, so every fixed-width
  // table leaves a scalar tail there and the scalable table must not.
  const int kLengths[] = {1024, 1021};
  for (int n : kLengths) {
    Model model = resolved(benchmodels::fir_model(n));
    const std::string m = "fir" + std::to_string(n);
    codegen::GeneratedCode sve_code = emit_with(model, "sve");
    codegen::GeneratedCode neon_code = emit_with(model, "neon_sim");
    metrics.push_back(bench::count_metric(
        m + ".sve.loops_predicated", sve_code.report.loops_predicated));
    metrics.push_back(bench::count_metric(
        m + ".sve.remainder_elems", remainder_elems(sve_code.report)));
    metrics.push_back(bench::count_metric(
        m + ".neon.remainder_elems", remainder_elems(neon_code.report)));
    metrics.push_back(bench::count_metric(
        m + ".sve.simd_instructions",
        static_cast<double>(sve_code.simd_instructions.size())));
  }

  // Timing leg on the prime length, where the tail strategy actually
  // matters: one predicated loop vs vector body + 1021%lanes scalar steps.
  try {
    Model model = resolved(benchmodels::fir_model(1021));
    bench::IoBinding io = bench::bind_io(model);
    codegen::GeneratedCode sve_code = emit_with(model, "sve");
    codegen::GeneratedCode neon_code = emit_with(model, "neon_sim");

    toolchain::CompiledModel sve_bin = bench::compile(sve_code);
    bench::verify_against_oracle(sve_bin, model, io, 2e-2);
    const double sve_s =
        bench::time_steps(sve_bin, io.in_ptrs, io.out_ptrs).seconds_per_step;

    toolchain::CompiledModel neon_bin = bench::compile(neon_code);
    bench::verify_against_oracle(neon_bin, model, io, 2e-2);
    const double neon_s =
        bench::time_steps(neon_bin, io.in_ptrs, io.out_ptrs).seconds_per_step;

    const double step = bench::measured("fir1021.sve_step_seconds", sve_s);
    metrics.push_back(bench::time_metric("fir1021.sve_step_seconds", step));
    metrics.push_back(bench::ratio_metric(
        "fir1021.predicated_vs_remainder", neon_s / std::max(step, 1e-12)));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "warning: sve suite skipped timing leg: %s\n",
                 e.what());
  }
  return metrics;
}

/// Range-driven lane narrowing: the rangepipe workload's declared Inport
/// ranges prove every intermediate fits i16, so at -O1 its region re-plans
/// at 8 NEON lanes instead of 4 (deterministic count facts), while the
/// identical graph without range facts must stay at i32.  The timing leg
/// runs both compiled pipelines on the same range-respecting inputs — the
/// measured narrowing win, gated against the committed baseline.
std::vector<bench::BenchMetric> suite_range() {
  std::vector<bench::BenchMetric> metrics;
  Model narrow = resolved(benchmodels::rangepipe_model(4096, true));
  Model wide = resolved(benchmodels::rangepipe_model(4096, false));
  synth::SelectionHistory history;
  codegen::GeneratedCode narrow_code = emit_hcg(narrow, &history);
  codegen::GeneratedCode wide_code = emit_hcg(wide, &history);
  metrics.push_back(bench::count_metric("rangepipe.o1.regions_narrowed",
                                        narrow_code.report.regions_narrowed));
  metrics.push_back(bench::count_metric("rangepipe.o1.narrowing_blocked",
                                        narrow_code.report.narrowing_blocked));
  metrics.push_back(bench::count_metric("rangepipe_wide.o1.regions_narrowed",
                                        wide_code.report.regions_narrowed));
  metrics.push_back(bench::count_metric(
      "rangepipe.o1.simd_instructions",
      static_cast<double>(narrow_code.simd_instructions.size())));

  try {
    bench::IoBinding io = bench::bind_io(narrow);  // honors declared ranges

    toolchain::CompiledModel narrow_bin = bench::compile(narrow_code);
    bench::verify_against_oracle(narrow_bin, narrow, io, 2e-2);
    const double narrow_s =
        bench::time_steps(narrow_bin, io.in_ptrs, io.out_ptrs)
            .seconds_per_step;

    // Same port layout, so the wide binary binds the same inputs.
    toolchain::CompiledModel wide_bin = bench::compile(wide_code);
    bench::verify_against_oracle(wide_bin, wide, io, 2e-2);
    const double wide_s =
        bench::time_steps(wide_bin, io.in_ptrs, io.out_ptrs).seconds_per_step;

    const double step =
        bench::measured("rangepipe.step_seconds", narrow_s);
    metrics.push_back(bench::time_metric("rangepipe.step_seconds", step));
    metrics.push_back(bench::ratio_metric("rangepipe.narrow_speedup_vs_wide",
                                          wide_s / std::max(step, 1e-12)));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "warning: range suite skipped timing leg: %s\n",
                 e.what());
  }
  return metrics;
}

/// Parallel synthesis engine: jobs sweep speedup (noisy) plus the
/// single-flight dedup counters (deterministic).
std::vector<bench::BenchMetric> suite_parallel() {
  std::vector<bench::BenchMetric> metrics;

  auto farm_seconds = [](const Model& model, int jobs) {
    codegen::EmitConfig config;
    config.tool_name = "hcg";
    config.batch_mode = codegen::BatchMode::kRegions;
    config.isa = &isa::builtin("neon_sim");
    config.select_intensive = true;  // fresh history: every key measures
    config.fold_scalar_expressions = true;
    config.reuse_buffers = true;
    config.jobs = jobs;
    double best = 1e30;
    for (int rep = 0; rep < 3; ++rep) {
      Stopwatch timer;
      codegen::GeneratedCode code = codegen::emit_model(model, config);
      (void)code;
      best = std::min(best, timer.elapsed_seconds());
    }
    return best;
  };

  const Model distinct = benchmodels::intensive_farm_model(kFarmActors, true);
  const double serial = farm_seconds(distinct, 1);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const double wide = farm_seconds(distinct, static_cast<int>(hw));
  metrics.push_back(bench::time_metric(
      "farm.codegen_seconds",
      bench::measured("farm.codegen_seconds", serial)));
  metrics.push_back(bench::ratio_metric("farm.speedup_jobs",
                                        serial / std::max(wide, 1e-12)));

  const Model duplicated =
      benchmodels::intensive_farm_model(kFarmActors, false);
  obs::Counter& precalc =
      obs::Registry::instance().counter("synth.precalc.runs");
  obs::Counter& dedup =
      obs::Registry::instance().counter("synth.pool.dedup_hits");
  const std::uint64_t precalc_before = precalc.value();
  const std::uint64_t dedup_before = dedup.value();
  (void)farm_seconds(duplicated, 1);  // 3 emits; counters split evenly
  metrics.push_back(bench::count_metric(
      "farm.precalc_runs",
      static_cast<double>((precalc.value() - precalc_before) / 3)));
  metrics.push_back(bench::count_metric(
      "farm.dedup_hits",
      static_cast<double>((dedup.value() - dedup_before) / 3)));
  return metrics;
}

struct Suite {
  const char* name;
  /// Instruction table the suite's codegen targets; recorded in the env
  /// fingerprint so baselines from different ISAs never gate each other.
  const char* isa;
  std::function<std::vector<bench::BenchMetric>()> run;
};

const Suite kSuites[] = {
    {"codegen", "neon_sim", suite_codegen},
    {"exec", "neon_sim", suite_exec},
    {"sve", "sve", suite_sve},
    {"range", "neon_sim", suite_range},
    {"parallel", "neon_sim", suite_parallel},
};

// ---- baseline comparison --------------------------------------------------

struct CheckStats {
  int compared = 0;
  int regressions = 0;
  int skipped = 0;
  int warnings = 0;
};

const bench::BenchMetric* find_metric(
    const std::vector<bench::BenchMetric>& metrics, std::string_view name) {
  for (const bench::BenchMetric& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

/// Compares the freshly measured `current` metrics against one suite's
/// committed baseline document.
void check_suite(const std::string& suite, const obs::JsonValue& baseline,
                 const std::vector<bench::BenchMetric>& current,
                 const bench::BenchEnv& env, double threshold_pct, bool strict,
                 CheckStats& stats) {
  // Environment fingerprint: noisy metrics only gate when every recorded
  // field matches.  `mismatch` names the first disagreeing field so the
  // skip line says *why* the baseline does not apply here.  Fields the
  // baseline never recorded (older schema) constrain nothing.
  const obs::JsonValue* base_env = baseline.find("env");
  std::string mismatch;
  char detail[160] = "";
  if (const obs::JsonValue* v = base_env ? base_env->find("cpus") : nullptr) {
    const auto base_cpus = static_cast<std::uint64_t>(v->number);
    if (base_cpus != env.cpus) {
      mismatch = "cpus";
      std::snprintf(detail, sizeof(detail), "baseline cpus=%llu, here %u",
                    static_cast<unsigned long long>(base_cpus), env.cpus);
    }
  }
  if (mismatch.empty()) {
    if (const obs::JsonValue* v =
            base_env ? base_env->find("jobs") : nullptr) {
      const auto base_jobs = static_cast<std::uint64_t>(v->number);
      if (base_jobs != env.jobs) {
        mismatch = "jobs";
        std::snprintf(detail, sizeof(detail),
                      "baseline HCG_JOBS=%llu, here %u",
                      static_cast<unsigned long long>(base_jobs), env.jobs);
      }
    }
  }
  if (mismatch.empty()) {
    if (const obs::JsonValue* v = base_env ? base_env->find("cc") : nullptr) {
      if (v->string != env.cc) {
        mismatch = "cc";
        std::snprintf(detail, sizeof(detail),
                      "baseline cc '%s', here '%s'", v->string.c_str(),
                      env.cc.c_str());
      }
    }
  }
  if (mismatch.empty()) {
    if (const obs::JsonValue* v = base_env ? base_env->find("isa") : nullptr) {
      if (v->string != env.isa) {
        mismatch = "isa";
        std::snprintf(detail, sizeof(detail),
                      "baseline isa '%s', here '%s'", v->string.c_str(),
                      env.isa.c_str());
      }
    }
  }
  const bool env_match = mismatch.empty();

  const obs::JsonValue* base_metrics = baseline.find("metrics");
  if (base_metrics == nullptr || !base_metrics->is_array()) {
    std::fprintf(stderr, "warning: baseline for '%s' has no metrics array\n",
                 suite.c_str());
    ++stats.warnings;
    return;
  }

  for (const obs::JsonValue& entry : base_metrics->array) {
    const obs::JsonValue* name_v = entry.find("name");
    const obs::JsonValue* value_v = entry.find("value");
    const obs::JsonValue* kind_v = entry.find("kind");
    if (name_v == nullptr || value_v == nullptr || kind_v == nullptr) continue;
    const std::string& name = name_v->string;
    const double base = value_v->number;
    const std::string& kind = kind_v->string;
    const obs::JsonValue* hb = entry.find("higher_better");
    const bool higher_better = hb != nullptr && hb->boolean;

    const bench::BenchMetric* cur = find_metric(current, name);
    if (cur == nullptr) {
      std::printf("  MISSING    %-34s (baseline %.6g; not measured)\n",
                  name.c_str(), base);
      ++stats.warnings;
      continue;
    }

    if (kind == "count") {
      ++stats.compared;
      if (std::fabs(cur->value - base) > 1e-9) {
        std::printf("  DRIFT      %-34s %.6g -> %.6g (count must match "
                    "exactly; re-record the baseline if intended)\n",
                    name.c_str(), base, cur->value);
        ++stats.regressions;
      } else {
        std::printf("  OK         %-34s %.6g\n", name.c_str(), cur->value);
      }
      continue;
    }

    // Noisy metric: only gate on a matching environment fingerprint.
    if (!env_match && !strict) {
      std::printf("  SKIP       %-34s (env '%s' differs: %s)\n", name.c_str(),
                  mismatch.c_str(), detail);
      ++stats.skipped;
      continue;
    }

    ++stats.compared;
    const double ratio = threshold_pct / 100.0;
    const bool worse = higher_better ? cur->value < base * (1.0 - ratio)
                                     : cur->value > base * (1.0 + ratio);
    const bool better = higher_better ? cur->value > base * (1.0 + ratio)
                                      : cur->value < base * (1.0 - ratio);
    const char* verdict = worse ? "REGRESSION" : better ? "IMPROVED" : "OK";
    std::printf("  %-10s %-34s %.6g -> %.6g %s (threshold %.0f%%)\n", verdict,
                name.c_str(), base, cur->value, cur->unit.c_str(),
                threshold_pct);
    if (worse) ++stats.regressions;
  }
}

void usage(FILE* out) {
  std::fprintf(out,
               "usage: bench_runner [--record | --check] [options]\n"
               "  --record            run suites, write BENCH_<suite>.json "
               "(default mode)\n"
               "  --check             also compare against --baseline; exit "
               "%d on regression\n"
               "  --baseline DIR      directory with committed "
               "BENCH_<suite>.json files\n"
               "  --out DIR           where to write results (default .)\n"
               "  --suite NAME        run one suite (repeatable; default "
               "all: codegen exec sve range parallel)\n"
               "  --threshold PCT     relative tolerance for time/ratio "
               "metrics (default 40)\n"
               "  --strict            gate noisy metrics even when the cpu "
               "fingerprint differs\n"
               "  --list              print suite names and exit\n",
               kExitRegression);
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  bool strict = false;
  std::string out_dir = ".";
  std::string baseline_dir;
  double threshold_pct = 40.0;
  std::vector<std::string> selected;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--record") {
      check = false;
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--strict") {
      strict = true;
    } else if (arg == "--out") {
      out_dir = next("--out");
    } else if (arg == "--baseline") {
      baseline_dir = next("--baseline");
    } else if (arg == "--suite") {
      selected.push_back(next("--suite"));
    } else if (arg == "--threshold") {
      threshold_pct = std::atof(next("--threshold"));
    } else if (arg == "--list") {
      for (const Suite& suite : kSuites) std::printf("%s\n", suite.name);
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", arg.c_str());
      usage(stderr);
      return 2;
    }
  }
  if (check && baseline_dir.empty()) {
    std::fprintf(stderr, "error: --check requires --baseline DIR\n");
    return 2;
  }
  for (const std::string& name : selected) {
    bool known = false;
    for (const Suite& suite : kSuites) known |= name == suite.name;
    if (!known) {
      std::fprintf(stderr, "error: unknown suite '%s' (see --list)\n",
                   name.c_str());
      return 2;
    }
  }

  const bench::BenchEnv env = bench::bench_env();
  std::printf("bench_runner: cpus=%u flags=%s git=%s mode=%s\n", env.cpus,
              env.flags.c_str(), env.git_rev.c_str(),
              check ? "check" : "record");

  CheckStats stats;
  for (const Suite& suite : kSuites) {
    if (!selected.empty() &&
        std::find(selected.begin(), selected.end(), suite.name) ==
            selected.end()) {
      continue;
    }
    std::printf("\n== suite %s ==\n", suite.name);
    bench::BenchEnv suite_env = env;
    suite_env.isa = suite.isa;
    const std::vector<bench::BenchMetric> metrics = suite.run();
    const std::string path =
        bench::write_bench_json(out_dir, suite.name, suite_env, metrics);
    std::printf("wrote %s (%zu metrics)\n", path.c_str(), metrics.size());

    if (!check) continue;
    const std::string base_path =
        baseline_dir + "/BENCH_" + suite.name + ".json";
    obs::JsonValue baseline;
    try {
      baseline = obs::json_parse(read_file(base_path));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "warning: no usable baseline at %s: %s\n",
                   base_path.c_str(), e.what());
      ++stats.warnings;
      continue;
    }
    check_suite(suite.name, baseline, metrics, suite_env, threshold_pct,
                strict, stats);
  }

  if (check) {
    std::printf("\n%d compared, %d regressions, %d skipped, %d warnings\n",
                stats.compared, stats.regressions, stats.skipped,
                stats.warnings);
    if (stats.regressions > 0) return kExitRegression;
  }
  return 0;
}
