// Experiment E1 — paper Figure 1: the time cost of different FFT
// implementations across input data lengths.  The paper's point: no single
// implementation wins at every scale (Mix-FFT wins large sizes, loses small
// ones), which is why Algorithm 1 pre-calculates per input scale.
//
// Sizes: powers of two 16..8192 (all impls) plus non-power-of-two lengths
// (only mixed/Bluestein/naive can handle those).
#include <benchmark/benchmark.h>

#include <vector>

#include "kernels/kernels.h"
#include "support/rng.hpp"

namespace {

using FftFn = void (*)(const float*, float*, int, int);

void run_fft(benchmark::State& state, FftFn fn) {
  const int n = static_cast<int>(state.range(0));
  hcg::Rng rng(1234);
  std::vector<float> in = rng.signal_f32(static_cast<size_t>(n) * 2);
  std::vector<float> out(static_cast<size_t>(n) * 2);
  for (auto _ : state) {
    fn(in.data(), out.data(), n, 0);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetComplexityN(n);
}

bool is_pow2(int n) { return (n & (n - 1)) == 0; }
bool is_pow4(int n) { return is_pow2(n) && (n & 0x55555555); }
bool is_smooth(int n) {
  for (int p : {2, 3, 5}) {
    while (n % p == 0) n /= p;
  }
  return n == 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<int> pow2_sizes = {16, 64, 256, 1024, 4096, 8192};
  const std::vector<int> odd_sizes = {60, 360, 1000, 1500, 997};

  auto reg = [](const std::string& name, FftFn fn, int n) {
    benchmark::RegisterBenchmark(name.c_str(),
                                 [fn](benchmark::State& s) { run_fft(s, fn); })
        ->Arg(n)
        ->Unit(benchmark::kMicrosecond);
  };

  for (int n : pow2_sizes) {
    reg("fft_dft", &hcg_fft_dft, n);
    reg("fft_radix2", &hcg_fft_radix2, n);
    reg("fft_radix2_tab", &hcg_fft_radix2_tab, n);
    if (is_pow4(n)) reg("fft_radix4", &hcg_fft_radix4, n);
    reg("fft_mixed", &hcg_fft_mixed, n);
    reg("fft_bluestein", &hcg_fft_bluestein, n);
  }
  for (int n : odd_sizes) {
    if (n <= 1024) reg("fft_dft", &hcg_fft_dft, n);
    if (is_smooth(n)) reg("fft_mixed", &hcg_fft_mixed, n);
    reg("fft_bluestein", &hcg_fft_bluestein, n);
    if (!is_smooth(n)) reg("fft_mixed_prime_fallback", &hcg_fft_mixed, n);
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
