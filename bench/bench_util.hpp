// Shared benchmark harness helpers: compile-and-time generated models,
// calibrated repetition counts, and aligned table printing.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "actors/resolve.hpp"
#include "benchmodels/benchmodels.hpp"
#include "codegen/generator.hpp"
#include "obs/metrics.hpp"
#include "support/fileio.hpp"
#include "support/logging.hpp"
#include "support/stopwatch.hpp"
#include "toolchain/compiled_model.hpp"
#include "vm/interpreter.hpp"

namespace hcg::bench {

/// Target wall time per measurement; override with HCG_BENCH_SECONDS.
inline double target_seconds() {
  if (const char* env = std::getenv("HCG_BENCH_SECONDS")) {
    return std::atof(env);
  }
  return 0.25;
}

/// Benchmark binaries honor HCG_LOG and, when HCG_METRICS_OUT names a file,
/// dump the process-wide metrics registry there as JSON on exit — the same
/// writer `hcgc --report` uses, so bench results and codegen reports share
/// one machine-readable format.
inline const bool kObsEnvApplied = [] {
  apply_log_env();
  if (const char* path = std::getenv("HCG_METRICS_OUT");
      path != nullptr && *path != '\0') {
    static std::string out_path = path;
    std::atexit([] {
      try {
        write_file(out_path, obs::Registry::instance().to_json());
      } catch (...) {
        // Never let a metrics dump turn a successful bench into a failure.
      }
    });
  }
  return true;
}();

/// Compiles a generated model and returns it ready to step.
inline toolchain::CompiledModel compile(const codegen::GeneratedCode& code,
                                        const std::string& opt_flags = "-O2") {
  toolchain::CompileOptions options;
  options.opt_flags = opt_flags;
  return toolchain::CompiledModel(code, options);
}

struct TimedRun {
  double seconds_per_step = 0.0;
  int repetitions = 0;
};

/// Runs `step` repeatedly with calibrated repetitions (one probe step, then
/// enough steps to fill target_seconds()), returning seconds per step.
inline TimedRun time_steps(toolchain::CompiledModel& compiled,
                           const std::vector<const void*>& inputs,
                           const std::vector<void*>& outputs) {
  compiled.init();
  compiled.step(inputs, outputs);  // warm-up
  Stopwatch probe;
  compiled.step(inputs, outputs);
  const double once = std::max(probe.elapsed_seconds(), 1e-9);
  const int reps = static_cast<int>(
      std::clamp(target_seconds() / once, 3.0, 200000.0));
  Stopwatch timer;
  for (int i = 0; i < reps; ++i) compiled.step(inputs, outputs);
  const double per_step = timer.elapsed_seconds() / reps;
  obs::Registry::instance().histogram("bench.step_ns").observe(per_step * 1e9);
  return TimedRun{per_step, reps};
}

/// Binds tensors to raw pointer vectors for step().
struct IoBinding {
  std::vector<Tensor> inputs;
  std::vector<Tensor> outputs;
  std::vector<const void*> in_ptrs;
  std::vector<void*> out_ptrs;
};

inline IoBinding bind_io(const Model& resolved_model, std::uint64_t seed = 42) {
  IoBinding io;
  io.inputs = benchmodels::workload(resolved_model, seed);
  for (const Tensor& t : io.inputs) io.in_ptrs.push_back(t.data());
  for (ActorId id : resolved_model.outports()) {
    io.outputs.push_back(make_tensor(resolved_model.actor(id).input(0)));
  }
  for (Tensor& t : io.outputs) io.out_ptrs.push_back(t.data());
  return io;
}

/// Verifies a compiled model against the interpreter oracle before timing;
/// aborts the bench with a message on mismatch (never report numbers from
/// wrong code).
inline void verify_against_oracle(toolchain::CompiledModel& compiled,
                                  const Model& resolved_model,
                                  const IoBinding& io, double tolerance) {
  Interpreter oracle(resolved_model);
  oracle.init();
  std::vector<Tensor> expected = oracle.step(io.inputs);
  compiled.init();
  std::vector<Tensor> got = compiled.step_tensors(resolved_model, io.inputs);
  for (size_t i = 0; i < got.size(); ++i) {
    const double diff = got[i].max_abs_difference(expected[i]);
    if (diff > tolerance) {
      std::fprintf(stderr,
                   "FATAL: generated code disagrees with oracle on '%s' "
                   "(output %zu, max diff %g)\n",
                   resolved_model.name().c_str(), i, diff);
      std::exit(1);
    }
  }
}

/// Prints an aligned table: first row is the header.
inline void print_table(const std::vector<std::vector<std::string>>& rows) {
  std::vector<size_t> width;
  for (const auto& row : rows) {
    if (width.size() < row.size()) width.resize(row.size(), 0);
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  for (size_t r = 0; r < rows.size(); ++r) {
    std::string line;
    for (size_t c = 0; c < rows[r].size(); ++c) {
      std::string cell = rows[r][c];
      cell.resize(width[c], ' ');
      line += cell;
      if (c + 1 < rows[r].size()) line += "  ";
    }
    std::printf("%s\n", line.c_str());
    if (r == 0) {
      std::string rule;
      for (size_t c = 0; c < width.size(); ++c) {
        rule += std::string(width[c], '-');
        if (c + 1 < width.size()) rule += "  ";
      }
      std::printf("%s\n", rule.c_str());
    }
  }
}

inline std::string format_seconds(double seconds) {
  char buf[64];
  if (seconds < 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.1f ns", seconds * 1e9);
  } else if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
  }
  return buf;
}

inline std::string format_percent(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

}  // namespace hcg::bench
