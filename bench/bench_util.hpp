// Shared benchmark harness helpers: compile-and-time generated models,
// calibrated repetition counts, aligned table printing, and the one
// "hcg-bench-v1" writer every BENCH_*.json goes through (one escaper, one
// formatter, one environment fingerprint — docs/PROFILING.md).
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "actors/resolve.hpp"
#include "benchmodels/benchmodels.hpp"
#include "codegen/generator.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "support/faults.hpp"
#include "support/fileio.hpp"
#include "support/logging.hpp"
#include "support/stopwatch.hpp"
#include "support/subprocess.hpp"
#include "toolchain/compiled_model.hpp"
#include "vm/interpreter.hpp"

namespace hcg::bench {

/// Target wall time per measurement; override with HCG_BENCH_SECONDS.
inline double target_seconds() {
  if (const char* env = std::getenv("HCG_BENCH_SECONDS")) {
    return std::atof(env);
  }
  return 0.25;
}

/// Benchmark binaries honor HCG_LOG and, when HCG_METRICS_OUT names a file,
/// dump the process-wide metrics registry there as JSON on exit — the same
/// writer `hcgc --report` uses, so bench results and codegen reports share
/// one machine-readable format.
inline const bool kObsEnvApplied = [] {
  apply_log_env();
  if (const char* path = std::getenv("HCG_METRICS_OUT");
      path != nullptr && *path != '\0') {
    static std::string out_path = path;
    std::atexit([] {
      try {
        write_file(out_path, obs::Registry::instance().to_json());
      } catch (...) {
        // Never let a metrics dump turn a successful bench into a failure.
      }
    });
  }
  return true;
}();

/// Compiles a generated model and returns it ready to step.
inline toolchain::CompiledModel compile(const codegen::GeneratedCode& code,
                                        const std::string& opt_flags = "-O2") {
  toolchain::CompileOptions options;
  options.opt_flags = opt_flags;
  return toolchain::CompiledModel(code, options);
}

struct TimedRun {
  double seconds_per_step = 0.0;
  int repetitions = 0;
};

/// Runs `step` repeatedly with calibrated repetitions (one probe step, then
/// enough steps to fill target_seconds()), returning seconds per step.
inline TimedRun time_steps(toolchain::CompiledModel& compiled,
                           const std::vector<const void*>& inputs,
                           const std::vector<void*>& outputs) {
  compiled.init();
  compiled.step(inputs, outputs);  // warm-up
  Stopwatch probe;
  compiled.step(inputs, outputs);
  const double once = std::max(probe.elapsed_seconds(), 1e-9);
  const int reps = static_cast<int>(
      std::clamp(target_seconds() / once, 3.0, 200000.0));
  Stopwatch timer;
  for (int i = 0; i < reps; ++i) compiled.step(inputs, outputs);
  const double per_step = timer.elapsed_seconds() / reps;
  obs::Registry::instance().histogram("bench.step_ns").observe(per_step * 1e9);
  return TimedRun{per_step, reps};
}

/// Binds tensors to raw pointer vectors for step().
struct IoBinding {
  std::vector<Tensor> inputs;
  std::vector<Tensor> outputs;
  std::vector<const void*> in_ptrs;
  std::vector<void*> out_ptrs;
};

inline IoBinding bind_io(const Model& resolved_model, std::uint64_t seed = 42) {
  IoBinding io;
  io.inputs = benchmodels::workload(resolved_model, seed);
  for (const Tensor& t : io.inputs) io.in_ptrs.push_back(t.data());
  for (ActorId id : resolved_model.outports()) {
    io.outputs.push_back(make_tensor(resolved_model.actor(id).input(0)));
  }
  for (Tensor& t : io.outputs) io.out_ptrs.push_back(t.data());
  return io;
}

/// Verifies a compiled model against the interpreter oracle before timing;
/// aborts the bench with a message on mismatch (never report numbers from
/// wrong code).
inline void verify_against_oracle(toolchain::CompiledModel& compiled,
                                  const Model& resolved_model,
                                  const IoBinding& io, double tolerance) {
  Interpreter oracle(resolved_model);
  oracle.init();
  std::vector<Tensor> expected = oracle.step(io.inputs);
  compiled.init();
  std::vector<Tensor> got = compiled.step_tensors(resolved_model, io.inputs);
  for (size_t i = 0; i < got.size(); ++i) {
    const double diff = got[i].max_abs_difference(expected[i]);
    if (diff > tolerance) {
      std::fprintf(stderr,
                   "FATAL: generated code disagrees with oracle on '%s' "
                   "(output %zu, max diff %g)\n",
                   resolved_model.name().c_str(), i, diff);
      std::exit(1);
    }
  }
}

/// Prints an aligned table: first row is the header.
inline void print_table(const std::vector<std::vector<std::string>>& rows) {
  std::vector<size_t> width;
  for (const auto& row : rows) {
    if (width.size() < row.size()) width.resize(row.size(), 0);
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  for (size_t r = 0; r < rows.size(); ++r) {
    std::string line;
    for (size_t c = 0; c < rows[r].size(); ++c) {
      std::string cell = rows[r][c];
      cell.resize(width[c], ' ');
      line += cell;
      if (c + 1 < rows[r].size()) line += "  ";
    }
    std::printf("%s\n", line.c_str());
    if (r == 0) {
      std::string rule;
      for (size_t c = 0; c < width.size(); ++c) {
        rule += std::string(width[c], '-');
        if (c + 1 < width.size()) rule += "  ";
      }
      std::printf("%s\n", rule.c_str());
    }
  }
}

inline std::string format_seconds(double seconds) {
  char buf[64];
  if (seconds < 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.1f ns", seconds * 1e9);
  } else if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
  }
  return buf;
}

inline std::string format_percent(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

// ---- hcg-bench-v1: the one schema every BENCH_*.json uses -----------------
//
//   { "schema": "hcg-bench-v1", "suite": "codegen",
//     "env": { "cpus": 8, "flags": "release", "git_rev": "ec5f69f" },
//     "metrics": [ { "name": "fir.emit_seconds", "kind": "time",
//                    "value": 0.0042, "unit": "s", "higher_better": false },
//                  ... ] }
//
// `kind` decides how the regression gate (bench_runner --check) treats the
// metric: "count" metrics are deterministic and compare exactly; "time" and
// "ratio" metrics are noisy and compare against a threshold, and only when
// the environment fingerprint matches the baseline's.

struct BenchMetric {
  std::string name;
  std::string kind;  // "count" | "time" | "ratio"
  double value = 0.0;
  std::string unit;  // "s", "x", "" for plain counts
  bool higher_better = false;
};

inline BenchMetric count_metric(std::string name, double value,
                                std::string unit = "") {
  return BenchMetric{std::move(name), "count", value, std::move(unit), false};
}

inline BenchMetric time_metric(std::string name, double seconds) {
  return BenchMetric{std::move(name), "time", seconds, "s", false};
}

inline BenchMetric ratio_metric(std::string name, double value,
                                bool higher_better = true) {
  return BenchMetric{std::move(name), "ratio", value, "x", higher_better};
}

/// Environment fingerprint recorded with every bench run; --check refuses to
/// gate noisy metrics when the current fingerprint disagrees with the
/// baseline's (a 2-cpu CI runner must not fail a 32-cpu workstation's
/// numbers).
struct BenchEnv {
  unsigned cpus = 0;
  /// HCG_JOBS at record time (0 = unset): a baseline recorded with pinned
  /// worker threads must not gate a run using the hardware default.
  unsigned jobs = 0;
  /// First line of `gcc --version` ("unknown" without a toolchain): exec
  /// suite numbers depend on the compiler that built the generated code.
  std::string cc;
  /// Instruction table the suite generated code for (e.g. "neon_sim",
  /// "sve").  Part of the fingerprint so a scalable-ISA baseline can never
  /// silently gate a fixed-width run or vice versa — the two emit different
  /// loop forms and their numbers are not comparable.
  std::string isa;
  std::string flags;    // "release" | "debug"
  std::string git_rev;  // short rev, "unknown" when git is unavailable
};

inline BenchEnv bench_env() {
  BenchEnv env;
  env.cpus = std::thread::hardware_concurrency();
  if (const char* jobs_env = std::getenv("HCG_JOBS");
      jobs_env != nullptr && *jobs_env != '\0') {
    const int parsed = std::atoi(jobs_env);
    if (parsed > 0) env.jobs = static_cast<unsigned>(parsed);
  }
#ifdef NDEBUG
  env.flags = "release";
#else
  env.flags = "debug";
#endif
  env.cc = "unknown";
  try {
    SubprocessOptions cc_options;
    cc_options.timeout_seconds = 10.0;
    SubprocessResult cc = run_subprocess({"gcc", "--version"}, cc_options);
    if (cc.ok() && !cc.output.empty()) {
      const std::size_t eol = cc.output.find('\n');
      env.cc = cc.output.substr(0, eol);
    }
  } catch (...) {
    // Fingerprint stays "unknown"; never fail a bench over a missing cc.
  }
  env.git_rev = "unknown";
  try {
    // HCG_DATA_DIR lives inside the source tree, so -C works from there.
    SubprocessOptions options;
    options.timeout_seconds = 10.0;
    SubprocessResult git = run_subprocess(
        {"git", "-C", HCG_DATA_DIR, "rev-parse", "--short", "HEAD"}, options);
    if (git.ok()) {
      std::string rev = git.output;
      while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r')) {
        rev.pop_back();
      }
      if (!rev.empty()) env.git_rev = rev;
    }
  } catch (...) {
    // Fingerprint stays "unknown"; never fail a bench over missing git.
  }
  return env;
}

/// Wraps a measured duration in the "bench.measure" fault probe: any armed
/// action inflates the reading 16x, which is how tests (and the CI smoke
/// job) prove the regression gate actually fires.  All timing metrics must
/// pass through here before being recorded.
inline double measured(std::string_view metric_name, double seconds) {
  if (faults::probe("bench.measure", metric_name) != faults::Action::kNone) {
    return seconds * 16.0;
  }
  return seconds;
}

/// Serializes one suite's result as an hcg-bench-v1 document.
inline std::string bench_json(const std::string& suite, const BenchEnv& env,
                              const std::vector<BenchMetric>& metrics) {
  obs::JsonWriter json;
  json.begin_object();
  json.key("schema").value("hcg-bench-v1");
  json.key("suite").value(suite);
  json.key("env").begin_object();
  json.key("cpus").value(static_cast<std::uint64_t>(env.cpus));
  json.key("jobs").value(static_cast<std::uint64_t>(env.jobs));
  json.key("cc").value(env.cc);
  json.key("isa").value(env.isa);
  json.key("flags").value(env.flags);
  json.key("git_rev").value(env.git_rev);
  json.end_object();
  json.key("metrics").begin_array();
  for (const BenchMetric& m : metrics) {
    json.begin_object();
    json.key("name").value(m.name);
    json.key("kind").value(m.kind);
    json.key("value").value(m.value);
    json.key("unit").value(m.unit);
    json.key("higher_better").value(m.higher_better);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.take();
}

/// Writes BENCH_<suite>.json (hcg-bench-v1) into `dir` and returns the path.
inline std::string write_bench_json(const std::string& dir,
                                    const std::string& suite,
                                    const BenchEnv& env,
                                    const std::vector<BenchMetric>& metrics) {
  const std::string path = dir + "/BENCH_" + suite + ".json";
  write_file(path, bench_json(suite, env, metrics));
  return path;
}

}  // namespace hcg::bench
