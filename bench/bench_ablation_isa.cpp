// Experiment E9 — instruction-set richness ablation: how much of HCG's win
// comes from *compound* instructions (vmla/vhadd/vaba) versus plain
// vectorization?  We strip every multi-node pattern from the NEON table and
// re-run the batch models.
#include "bench_util.hpp"
#include "isa/builtin.hpp"

using namespace hcg;

namespace {

isa::VectorIsa basic_only(const isa::VectorIsa& full) {
  isa::VectorIsa basic = full;
  basic.name = full.name + "_basic";
  basic.instructions.clear();
  for (const isa::Instruction& ins : full.instructions) {
    if (ins.node_count() == 1) basic.instructions.push_back(ins);
  }
  return basic;
}

}  // namespace

int main() {
  const isa::VectorIsa& full = isa::builtin("neon_sim");
  const isa::VectorIsa basic = basic_only(full);

  std::printf("== ISA richness ablation (NEON-sim, -O2): full table vs "
              "single-op-only table ==\n\n");
  std::vector<std::vector<std::string>> table;
  table.push_back({"Model", "Scalar (DFSynth)", "HCG basic ISA",
                   "HCG full ISA", "full vs basic", "instrs (full)"});

  std::vector<Model> models;
  models.push_back(benchmodels::fir_model());
  models.push_back(benchmodels::highpass_model());
  models.push_back(benchmodels::paper_fig4_model(1024));

  for (Model& raw : models) {
    Model model = resolved(std::move(raw));
    bench::IoBinding io = bench::bind_io(model);

    auto dfsynth = codegen::make_dfsynth_generator();
    auto hcg_basic = codegen::make_hcg_generator(basic);
    auto hcg_full = codegen::make_hcg_generator(full);

    codegen::Generator* tools[3] = {dfsynth.get(), hcg_basic.get(),
                                    hcg_full.get()};
    double seconds[3] = {0, 0, 0};
    codegen::GeneratedCode full_code;
    for (int t = 0; t < 3; ++t) {
      codegen::GeneratedCode code = tools[t]->generate(model);
      toolchain::CompiledModel compiled = bench::compile(code);
      bench::verify_against_oracle(compiled, model, io, 2e-2);
      seconds[t] = bench::time_steps(compiled, io.in_ptrs, io.out_ptrs)
                       .seconds_per_step;
      if (t == 2) full_code = std::move(code);
    }

    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.2fx", seconds[1] / seconds[2]);
    std::string instructions;
    for (const std::string& name : full_code.simd_instructions) {
      instructions += name + " ";
    }
    table.push_back({model.name(), bench::format_seconds(seconds[0]),
                     bench::format_seconds(seconds[1]),
                     bench::format_seconds(seconds[2]), ratio, instructions});
  }
  bench::print_table(table);
  return 0;
}
