// Experiment E4 — §4.1 code-generation time: the paper reports ~2 s for
// Simulink Coder and ~1 s for DFSynth and HCG across the benchmark set.
// HCG's generation time includes Algorithm 1's pre-calculation, so we
// report it twice: with a cold selection history (pre-calculation runs)
// and a warm one (history hit, Algorithm 1 lines 3-6).
#include "bench_util.hpp"
#include "isa/builtin.hpp"

using namespace hcg;

int main() {
  const isa::VectorIsa& neon = isa::builtin("neon_sim");

  std::vector<std::vector<std::string>> table;
  table.push_back(
      {"Model", "Simulink", "DFSynth", "HCG (cold)", "HCG (warm history)"});

  double totals[4] = {0, 0, 0, 0};
  for (Model& raw : benchmodels::paper_models()) {
    Model model = resolved(std::move(raw));

    auto time_generation = [&](codegen::Generator& tool) {
      Stopwatch timer;
      codegen::GeneratedCode code = tool.generate(model);
      (void)code;
      return timer.elapsed_seconds();
    };

    auto simulink = codegen::make_simulink_generator();
    auto dfsynth = codegen::make_dfsynth_generator();
    synth::SelectionHistory history;
    auto hcg = codegen::make_hcg_generator(neon, &history);

    const double t_sc = time_generation(*simulink);
    const double t_df = time_generation(*dfsynth);
    const double t_hcg_cold = time_generation(*hcg);  // fills the history
    const double t_hcg_warm = time_generation(*hcg);  // history hits

    totals[0] += t_sc;
    totals[1] += t_df;
    totals[2] += t_hcg_cold;
    totals[3] += t_hcg_warm;
    table.push_back({model.name(), bench::format_seconds(t_sc),
                     bench::format_seconds(t_df),
                     bench::format_seconds(t_hcg_cold),
                     bench::format_seconds(t_hcg_warm)});
  }
  table.push_back({"TOTAL", bench::format_seconds(totals[0]),
                   bench::format_seconds(totals[1]),
                   bench::format_seconds(totals[2]),
                   bench::format_seconds(totals[3])});

  std::printf("== Code-generation time (paper §4.1: SC ~2 s, DFSynth ~1 s, "
              "HCG ~1 s for the whole set) ==\n\n");
  bench::print_table(table);
  return 0;
}
