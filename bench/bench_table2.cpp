// Experiment E2 — paper Table 2: execution time of the six benchmark models
// under Simulink Coder, DFSynth and HCG on the ARM backend (NEON-sim) with
// compiler configuration cc-A (-O2), plus the §4.1 memory-usage parity check
// (E5).
//
// Every generated binary is verified against the interpreter oracle before
// being timed.
#include "bench_util.hpp"
#include "isa/builtin.hpp"

using namespace hcg;

int main() {
  std::printf("== Table 2: execution time per step, ARM backend (NEON-sim), "
              "gcc %s ==\n", "-O2");
  std::printf("   (paper: HCG improves 41.3%%-71.9%% over Simulink Coder and "
              "41.2%%-75.4%% over DFSynth)\n\n");

  const isa::VectorIsa& neon = isa::builtin("neon_sim");
  synth::SelectionHistory history;

  std::vector<std::vector<std::string>> table;
  table.push_back({"Model", "Simulink", "DFSynth", "HCG", "impr(SC)",
                   "impr(DF)", "mem SC", "mem DF", "mem HCG"});
  std::vector<std::vector<std::string>> detail;
  detail.push_back({"Model", "HCG intensive choice", "HCG SIMD instructions"});

  for (Model& raw : benchmodels::paper_models()) {
    Model model = resolved(std::move(raw));
    bench::IoBinding io = bench::bind_io(model);

    auto simulink = codegen::make_simulink_generator();
    auto dfsynth = codegen::make_dfsynth_generator();
    auto hcg = codegen::make_hcg_generator(neon, &history);

    double seconds[3] = {0, 0, 0};
    std::size_t mem[3] = {0, 0, 0};
    codegen::GeneratedCode hcg_code;
    codegen::Generator* tools[3] = {simulink.get(), dfsynth.get(), hcg.get()};
    for (int t = 0; t < 3; ++t) {
      codegen::GeneratedCode code = tools[t]->generate(model);
      toolchain::CompiledModel compiled = bench::compile(code);
      bench::verify_against_oracle(compiled, model, io, 2e-2);
      seconds[t] = bench::time_steps(compiled, io.in_ptrs, io.out_ptrs)
                       .seconds_per_step;
      mem[t] = code.static_buffer_bytes;
      if (t == 2) hcg_code = std::move(code);
    }

    table.push_back({model.name(),
                     bench::format_seconds(seconds[0]),
                     bench::format_seconds(seconds[1]),
                     bench::format_seconds(seconds[2]),
                     bench::format_percent(1.0 - seconds[2] / seconds[0]),
                     bench::format_percent(1.0 - seconds[2] / seconds[1]),
                     std::to_string(mem[0]) + "B", std::to_string(mem[1]) + "B",
                     std::to_string(mem[2]) + "B"});

    std::string choices;
    for (const auto& [actor, impl] : hcg_code.intensive_choices) {
      choices += actor + "->" + impl + " ";
    }
    std::string instructions;
    for (const std::string& name : hcg_code.simd_instructions) {
      instructions += name + " ";
    }
    detail.push_back({model.name(), choices.empty() ? "-" : choices,
                      instructions.empty() ? "-" : instructions});
  }

  bench::print_table(table);
  std::printf("\n-- HCG synthesis decisions --\n");
  bench::print_table(detail);
  return 0;
}
