#!/bin/sh
# Refreshes the committed bench baseline (bench/baseline/BENCH_*.json).
#
# Run this deliberately when a codegen change moves a deterministic count
# metric (the gate fails with DRIFT until the baseline matches again) or
# when the standing performance level legitimately changed.  Commit the
# regenerated JSON together with the change that moved the numbers.
#
#   tools/bench_baseline.sh [build-dir]
#
# The recorded environment fingerprint (cpu count, build flags, git rev) is
# embedded in each file; `bench_runner --check` only gates noisy time/ratio
# metrics when the checking machine's cpu count matches it.
set -eu

repo_dir=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_dir/build"}
runner="$build_dir/bench/bench_runner"

if [ ! -x "$runner" ]; then
  echo "building bench_runner..." >&2
  cmake --build "$build_dir" --target bench_runner -j
fi

"$runner" --record --out "$repo_dir/bench/baseline"
echo "baseline refreshed; review and commit bench/baseline/BENCH_*.json" >&2
