// Quickstart: build a model with the public API, generate C code with HCG,
// compile it with the host toolchain, and run one step.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "actors/resolve.hpp"
#include "codegen/generator.hpp"
#include "isa/builtin.hpp"
#include "model/builder.hpp"
#include "support/rng.hpp"
#include "toolchain/compiled_model.hpp"

int main() {
  using namespace hcg;

  // 1. Describe the model: y[i] = (x[i] * taps[i]) + acc[i] over int32x256.
  ModelBuilder builder("quick_fir");
  PortRef x = builder.inport("x", DataType::kInt32, Shape({256}));
  PortRef acc = builder.inport("acc", DataType::kInt32, Shape({256}));
  PortRef taps = builder.constant("taps", DataType::kInt32, Shape({256}), "3");
  PortRef m = builder.actor("m", "Mul", {x, taps});
  PortRef sum = builder.actor("sum", "Add", {m, acc});
  builder.outport("y", sum);
  Model model = resolved(builder.take());

  // 2. Generate C code with HCG against the (simulated) NEON table.
  auto generator = codegen::make_hcg_generator(isa::builtin("neon_sim"));
  codegen::GeneratedCode code = generator->generate(model);

  std::printf("== SIMD instructions selected by Algorithm 2 ==\n");
  for (const auto& name : code.simd_instructions) {
    std::printf("  %s\n", name.c_str());
  }
  std::printf("\n== generated C ==\n%s\n", code.source.c_str());

  // 3. Compile with the host gcc, load, and run one synchronous step.
  toolchain::CompiledModel compiled(code);
  compiled.init();

  Rng rng(1);
  Tensor in_x(DataType::kInt32, Shape({256}));
  Tensor in_acc(DataType::kInt32, Shape({256}));
  for (int i = 0; i < 256; ++i) {
    in_x.as<int32_t>()[i] = static_cast<int32_t>(rng.uniform_int(-100, 100));
    in_acc.as<int32_t>()[i] = static_cast<int32_t>(rng.uniform_int(-100, 100));
  }
  std::vector<Tensor> out = compiled.step_tensors(model, {in_x, in_acc});

  std::printf("== first eight outputs ==\n");
  for (int i = 0; i < 8; ++i) {
    std::printf("  y[%d] = %d (x=%d, acc=%d)\n", i, out[0].as<int32_t>()[i],
                in_x.as<int32_t>()[i], in_acc.as<int32_t>()[i]);
  }
  return 0;
}
