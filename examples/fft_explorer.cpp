// Algorithm 1 in action: for a range of FFT sizes, run the pre-calculation
// and print every candidate's measured cost plus the winner — the dynamic
// the paper's Figure 1 motivates (no implementation wins at every scale).
//
//   $ ./examples/fft_explorer [sizes...]
#include <cstdio>
#include <cstdlib>

#include "actors/resolve.hpp"
#include "benchmodels/benchmodels.hpp"
#include "synth/intensive.hpp"

int main(int argc, char** argv) {
  using namespace hcg;

  std::vector<int> sizes = {16, 64, 256, 1024, 4096, 600, 1000};
  if (argc > 1) {
    sizes.clear();
    for (int i = 1; i < argc; ++i) sizes.push_back(std::atoi(argv[i]));
  }

  synth::SelectionHistory history;
  for (int n : sizes) {
    Model model = resolved(benchmodels::fft_model(n));
    const Actor& fft = model.actor_by_name("fft");

    synth::IntensiveOptions options;
    options.repetitions = 5;
    synth::IntensiveSelection selection =
        synth::select_implementation(fft, history, options);

    std::printf("FFT size %5d -> %s%s\n", n, selection.impl->id.c_str(),
                selection.from_history ? "  (from history)" : "");
    for (const auto& [impl, seconds] : selection.measured_costs) {
      std::printf("    %-16s %10.2f us%s\n", impl.c_str(), seconds * 1e6,
                  impl == selection.impl->id ? "   <== selected" : "");
    }
  }

  std::printf("\nselection history after the sweep:\n%s",
              history.serialize().c_str());
  std::printf("\nre-running size %d hits the history:\n", sizes.front());
  Model model = resolved(benchmodels::fft_model(sizes.front()));
  auto again =
      synth::select_implementation(model.actor_by_name("fft"), history, {});
  std::printf("  %s (from_history=%s)\n", again.impl->id.c_str(),
              again.from_history ? "true" : "false");
  return 0;
}
