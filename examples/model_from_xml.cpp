// Loads a model from its XML file (examples/models/lowpass.xml), resolves
// it, simulates one frame with the interpreter, and generates deployable C
// with each tool — the full pipeline starting from a model file on disk.
//
//   $ ./examples/model_from_xml [path/to/model.xml]
#include <cstdio>

#include "actors/catalog.hpp"
#include "actors/resolve.hpp"
#include "benchmodels/benchmodels.hpp"
#include "codegen/generator.hpp"
#include "isa/builtin.hpp"
#include "model/loader.hpp"
#include "toolchain/compiled_model.hpp"
#include "vm/interpreter.hpp"

int main(int argc, char** argv) {
  using namespace hcg;

  const std::string path = argc > 1
                               ? argv[1]
                               : std::string(HCG_EXAMPLE_DIR) +
                                     "/models/lowpass.xml";
  std::printf("loading %s\n", path.c_str());
  Model model = load_model_file(path);
  resolve_model(model);

  std::printf("model '%s': %d actors\n", model.name().c_str(),
              model.actor_count());
  for (const Actor& actor : model.actors()) {
    std::printf("  %-4s %-10s", actor.name().c_str(), actor.type().c_str());
    if (actor.output_count() > 0) {
      std::printf(" -> %s", actor.output(0).to_string().c_str());
    }
    std::printf("   [%s]\n",
                std::string(kind_name(classify(model, actor.id()))).c_str());
  }

  // Simulate one frame.
  std::vector<Tensor> inputs = benchmodels::workload(model, 99);
  Interpreter oracle(model);
  oracle.init();
  std::vector<Tensor> expected = oracle.step(inputs);
  std::printf("\nsimulated frame: y[0..3] = %g %g %g %g\n",
              expected[0].as<float>()[0], expected[0].as<float>()[1],
              expected[0].as<float>()[2], expected[0].as<float>()[3]);

  // Generate with each tool and confirm the deployable code agrees.
  for (auto& generator :
       {codegen::make_simulink_generator(), codegen::make_dfsynth_generator(),
        codegen::make_hcg_generator(isa::builtin("neon_sim"))}) {
    codegen::GeneratedCode code = generator->generate(model);
    toolchain::CompiledModel compiled(code);
    compiled.init();
    std::vector<Tensor> got = compiled.step_tensors(model, inputs);
    std::printf("%-10s max diff vs simulation: %.2e", code.tool_name.c_str(),
                got[0].max_abs_difference(expected[0]));
    if (!code.simd_instructions.empty()) {
      std::printf("   SIMD:");
      for (const auto& name : code.simd_instructions) {
        std::printf(" %s", name.c_str());
      }
    }
    std::printf("\n");
  }
  return 0;
}
