// A 2-D image pipeline mixing intensive and batch actors: Gaussian-ish blur
// via Conv2D, then an edge map via element-wise ops on the blurred frame.
// Shows the generator handling 2-D intensive actors and a batch region in
// the same model.
//
//   $ ./examples/image_pipeline
#include <cstdio>

#include "actors/resolve.hpp"
#include "codegen/generator.hpp"
#include "isa/builtin.hpp"
#include "model/builder.hpp"
#include "support/rng.hpp"
#include "toolchain/compiled_model.hpp"
#include "vm/interpreter.hpp"

int main() {
  using namespace hcg;

  constexpr int kRows = 62, kCols = 62;      // blur output: 64x64
  constexpr int kOutRows = 64, kOutCols = 64;

  ModelBuilder b("image_pipe");
  PortRef img = b.inport("img", DataType::kFloat32, Shape({kRows, kCols}));
  PortRef ref = b.inport("ref", DataType::kFloat32,
                         Shape({kOutRows, kOutCols}));
  // 3x3 binomial blur kernel (sums to 1).
  PortRef kern = b.constant(
      "kern", DataType::kFloat32, Shape({3, 3}),
      "0.0625,0.125,0.0625,0.125,0.25,0.125,0.0625,0.125,0.0625");
  PortRef blur = b.actor("blur", "Conv2D", {img, kern});
  // Edge map: |blurred - reference|, thresholded to suppress noise.
  PortRef diff = b.actor("diff", "Abd", {blur, ref});
  PortRef gain = b.actor("gain", "Gain", {diff}, {{"gain", "4.0"}});
  PortRef floor_ = b.constant("floor", DataType::kFloat32,
                              Shape({kOutRows, kOutCols}), "0.05");
  PortRef edges = b.actor("edges", "Max", {gain, floor_});
  b.outport("edge_map", edges);
  Model model = resolved(b.take());

  auto generator = codegen::make_hcg_generator(isa::builtin("avx2"));
  codegen::GeneratedCode code = generator->generate(model);
  std::printf("intensive choices:\n");
  for (const auto& [actor, impl] : code.intensive_choices) {
    std::printf("  %s -> %s\n", actor.c_str(), impl.c_str());
  }
  std::printf("batch SIMD (edge map, %dx%d = %d floats per frame):\n  ",
              kOutRows, kOutCols, kOutRows * kOutCols);
  for (const auto& name : code.simd_instructions) {
    std::printf("%s ", name.c_str());
  }
  std::printf("\n");

  toolchain::CompiledModel compiled(code);
  compiled.init();

  Rng rng(6);
  Tensor in_img(DataType::kFloat32, Shape({kRows, kCols}));
  Tensor in_ref(DataType::kFloat32, Shape({kOutRows, kOutCols}));
  for (int i = 0; i < in_img.elements(); ++i) {
    in_img.as<float>()[i] = static_cast<float>(rng.uniform_real(0.0, 1.0));
  }
  for (int i = 0; i < in_ref.elements(); ++i) {
    in_ref.as<float>()[i] = static_cast<float>(rng.uniform_real(0.0, 1.0));
  }

  std::vector<Tensor> out = compiled.step_tensors(model, {in_img, in_ref});

  Interpreter oracle(model);
  oracle.init();
  std::vector<Tensor> expected = oracle.step({in_img, in_ref});
  std::printf("max diff vs simulation: %.2e\n",
              out[0].max_abs_difference(expected[0]));

  // Crude ASCII rendering of the top-left corner of the edge map.
  std::printf("edge map (16x32 corner):\n");
  const char* shades = " .:-=+*#%@";
  for (int r = 0; r < 16; ++r) {
    for (int c = 0; c < 32; ++c) {
      float v = out[0].as<float>()[r * kOutCols + c];
      int level = static_cast<int>(v * 9.0f);
      if (level < 0) level = 0;
      if (level > 9) level = 9;
      std::putchar(shades[level]);
    }
    std::putchar('\n');
  }
  return 0;
}
