// A realistic frame-based signal-processing pipeline: generate the same
// high-pass filter with all three tools, verify they agree, and time them —
// a miniature of the paper's Table 2 over one model.
//
//   $ ./examples/signal_pipeline
#include <cstdio>

#include "actors/resolve.hpp"
#include "benchmodels/benchmodels.hpp"
#include "codegen/generator.hpp"
#include "isa/builtin.hpp"
#include "support/stopwatch.hpp"
#include "toolchain/compiled_model.hpp"
#include "vm/interpreter.hpp"

int main() {
  using namespace hcg;

  Model model = resolved(benchmodels::highpass_model(1024));
  std::vector<Tensor> inputs = benchmodels::workload(model, 2024);

  // Reference output from the interpreter oracle.
  Interpreter oracle(model);
  oracle.init();
  std::vector<Tensor> expected = oracle.step(inputs);

  struct Tool {
    const char* label;
    std::unique_ptr<codegen::Generator> generator;
  };
  Tool tools[3] = {
      {"Simulink Coder (unroll/loops)", codegen::make_simulink_generator()},
      {"DFSynth (per-actor loops)", codegen::make_dfsynth_generator()},
      {"HCG (fused NEON SIMD)",
       codegen::make_hcg_generator(isa::builtin("neon_sim"))},
  };

  std::printf("high-pass filter, f32 x 1024 per frame\n\n");
  for (Tool& tool : tools) {
    codegen::GeneratedCode code = tool.generator->generate(model);
    toolchain::CompiledModel compiled(code);
    compiled.init();

    // Correctness first.
    std::vector<Tensor> got = compiled.step_tensors(model, inputs);
    const double diff = got[0].max_abs_difference(expected[0]);

    // Then timing: enough frames for a stable number.
    std::vector<const void*> in_ptrs;
    for (const Tensor& t : inputs) in_ptrs.push_back(t.data());
    Tensor out = make_tensor(model.actor_by_name("y").input(0));
    std::vector<void*> out_ptrs{out.data()};
    const int frames = 20000;
    Stopwatch timer;
    for (int f = 0; f < frames; ++f) compiled.step(in_ptrs, out_ptrs);
    const double per_frame = timer.elapsed_seconds() / frames;

    std::printf("%-32s %8.1f ns/frame  (max diff vs oracle %.2e)\n",
                tool.label, per_frame * 1e9, diff);
    if (!code.simd_instructions.empty()) {
      std::printf("%-32s SIMD: ", "");
      for (const auto& name : code.simd_instructions) {
        std::printf("%s ", name.c_str());
      }
      std::printf("\n");
    }
  }
  return 0;
}
