// The worked example of the paper (Figure 4 / Listing 1): builds the sample
// model, shows the dataflow graph Algorithm 2 constructs, and prints the
// SIMD loop it synthesizes — which maps to exactly the instructions the
// paper lists: vsubq_s32, vhaddq_s32, vmlaq_s32.
//
//   $ ./examples/paper_sample
#include <cstdio>

#include "actors/resolve.hpp"
#include "benchmodels/benchmodels.hpp"
#include "codegen/generator.hpp"
#include "graph/regions.hpp"
#include "isa/builtin.hpp"
#include "synth/batch.hpp"

int main() {
  using namespace hcg;

  Model model = resolved(benchmodels::paper_fig4_model(1024));
  const isa::VectorIsa& neon = isa::builtin("neon");

  std::printf("== Figure 4(b): the directed dataflow graph ==\n");
  auto regions = find_batch_regions(model, neon);
  for (const BatchRegion& region : regions) {
    std::printf("%s\n", region.graph.to_string().c_str());
  }

  std::printf("== Algorithm 2: iterative graph mapping ==\n");
  synth::BatchSynthResult result = synth::synthesize_batch(
      model, regions.at(0), neon,
      [&model](ActorId id, int) { return model.actor(id).name() + "_buf"; });
  std::printf("batch size %d, batch count %d, remainder %d\n",
              result.batch_size, result.batch_count, result.offset);
  std::printf("instructions selected (paper Listing 1: vsubq_s32, "
              "vhaddq_s32, vmlaq_s32):\n");
  for (const auto& name : result.instructions_used) {
    std::printf("  %s\n", name.c_str());
  }
  std::printf("\n== synthesized SIMD loop ==\n%s\n", result.code.c_str());

  std::printf("== full generated translation unit (HCG) ==\n");
  auto generator = codegen::make_hcg_generator(neon);
  codegen::GeneratedCode code = generator->generate(model);
  std::printf("%s", code.source.c_str());
  return 0;
}
