// Porting HCG to a new architecture is pure data (paper §3.3): this example
// authors a miniature instruction table at runtime — including a line in the
// exact "Graph: ... ; Code: ..." form printed in the paper — and generates
// code against it.  The fictional target "vec2" is a 64-bit vector unit with
// two 32-bit lanes whose intrinsics are ordinary C macros, so the generated
// code even compiles and runs.
//
//   $ ./examples/custom_isa
#include <cstdio>

#include "actors/resolve.hpp"
#include "benchmodels/benchmodels.hpp"
#include "codegen/generator.hpp"
#include "isa/isa_parse.hpp"
#include "toolchain/compiled_model.hpp"
#include "vm/interpreter.hpp"

namespace {

constexpr const char* kVec2Table = R"(# a fictional 64-bit, 2-lane vector unit
isa vec2
width 64
header vec2_intrinsics.h
simulated
vtype i32 2 v2i32

load  i32 O = v2_load(P);
store i32 v2_store(P, V);
dup   i32 O = v2_dup(C);

ins v2_add i32 Add(I1,I2) :: O = v2_add(I1, I2);
ins v2_mul i32 Mul(I1,I2) :: O = v2_mul(I1, I2);
ins v2_mla i32 Add(Mul(I1,I2),I3) :: O = v2_mla(I3, I1, I2);
# the exact single-op form from the paper's section 3.3:
Graph: Sub, i32, 2, I1, I2, O1 ; Code: O1 = v2_sub(I1, I2);
)";

// The "intrinsics header" for the fictional unit, injected into the
// generated source in place of a real vendor header.
constexpr const char* kVec2Header = R"(
typedef struct { int32_t lane[2]; } v2i32;
static inline v2i32 v2_load(const int32_t* p) { v2i32 v = {{p[0], p[1]}}; return v; }
static inline void v2_store(int32_t* p, v2i32 v) { p[0] = v.lane[0]; p[1] = v.lane[1]; }
static inline v2i32 v2_dup(int32_t c) { v2i32 v = {{c, c}}; return v; }
static inline v2i32 v2_add(v2i32 a, v2i32 b) { v2i32 v = {{a.lane[0] + b.lane[0], a.lane[1] + b.lane[1]}}; return v; }
static inline v2i32 v2_sub(v2i32 a, v2i32 b) { v2i32 v = {{a.lane[0] - b.lane[0], a.lane[1] - b.lane[1]}}; return v; }
static inline v2i32 v2_mul(v2i32 a, v2i32 b) { v2i32 v = {{a.lane[0] * b.lane[0], a.lane[1] * b.lane[1]}}; return v; }
static inline v2i32 v2_mla(v2i32 a, v2i32 b, v2i32 c) { v2i32 v = {{a.lane[0] + b.lane[0] * c.lane[0], a.lane[1] + b.lane[1] * c.lane[1]}}; return v; }
)";

}  // namespace

int main() {
  using namespace hcg;

  const isa::VectorIsa vec2 = isa::parse_isa(kVec2Table);
  std::printf("parsed isa '%s': %d-bit vectors, %zu instructions, "
              "largest pattern %d nodes\n\n",
              vec2.name.c_str(), vec2.width_bits, vec2.instructions.size(),
              vec2.max_pattern_nodes());

  Model model = resolved(benchmodels::fir_model(10));  // 10 = 5 batches of 2
  auto generator = codegen::make_hcg_generator(vec2);
  codegen::GeneratedCode code = generator->generate(model);

  std::printf("Algorithm 2 selected:");
  for (const auto& name : code.simd_instructions) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n\n");

  // Swap the header include for the inline intrinsics, then compile and run
  // to prove the ported table produces working code.
  const std::string include_line = "#include \"vec2_intrinsics.h\"";
  const size_t pos = code.source.find(include_line);
  if (pos != std::string::npos) {
    code.source.replace(pos, include_line.size(), kVec2Header);
  }
  code.needs_neon_sim = false;

  std::printf("== generated code for the fictional unit ==\n%s\n",
              code.source.c_str());

  toolchain::CompiledModel compiled(code);
  compiled.init();
  std::vector<Tensor> inputs = benchmodels::workload(model, 5);
  std::vector<Tensor> got = compiled.step_tensors(model, inputs);

  Interpreter oracle(model);
  oracle.init();
  std::vector<Tensor> expected = oracle.step(inputs);
  std::printf("max difference vs oracle: %g\n",
              got[0].max_abs_difference(expected[0]));
  return got[0].bytes_equal(expected[0]) ? 0 : 1;
}
