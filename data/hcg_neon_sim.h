/* hcg_neon_sim.h — portable implementation of the ARM NEON intrinsics used
 * by HCG-generated code, built on GCC/Clang vector extensions.
 *
 * This header lets code emitted for the "neon" instruction table compile and
 * run on any host (the DESIGN.md substitution for the paper's Cortex-A72
 * board).  Semantics follow the Arm ACLE definitions: vcvt truncates toward
 * zero, vhadd halves in widened precision, shifts are per-lane.
 */
#ifndef HCG_NEON_SIM_H
#define HCG_NEON_SIM_H

#include <stdint.h>

typedef int8_t   int8x16_t   __attribute__((vector_size(16)));
typedef uint8_t  uint8x16_t  __attribute__((vector_size(16)));
typedef int16_t  int16x8_t   __attribute__((vector_size(16)));
typedef uint16_t uint16x8_t  __attribute__((vector_size(16)));
typedef int32_t  int32x4_t   __attribute__((vector_size(16)));
typedef uint32_t uint32x4_t  __attribute__((vector_size(16)));
typedef uint64_t uint64x2_t  __attribute__((vector_size(16)));
typedef float    float32x4_t __attribute__((vector_size(16)));
typedef double   float64x2_t __attribute__((vector_size(16)));

/* Ops shared by every element type. */
#define HCG_DEF_COMMON(S, T, VT, N)                                          \
  static inline VT vld1q_##S(const T* p) {                                   \
    VT v;                                                                    \
    __builtin_memcpy(&v, p, sizeof(VT));                                     \
    return v;                                                                \
  }                                                                          \
  static inline void vst1q_##S(T* p, VT v) {                                 \
    __builtin_memcpy(p, &v, sizeof(VT));                                     \
  }                                                                          \
  static inline VT vdupq_n_##S(T c) {                                        \
    VT v;                                                                    \
    for (int i = 0; i < N; ++i) v[i] = c;                                    \
    return v;                                                                \
  }                                                                          \
  static inline VT vaddq_##S(VT a, VT b) { return a + b; }                   \
  static inline VT vsubq_##S(VT a, VT b) { return a - b; }                   \
  static inline VT vminq_##S(VT a, VT b) {                                   \
    VT r;                                                                    \
    for (int i = 0; i < N; ++i) r[i] = a[i] < b[i] ? a[i] : b[i];            \
    return r;                                                                \
  }                                                                          \
  static inline VT vmaxq_##S(VT a, VT b) {                                   \
    VT r;                                                                    \
    for (int i = 0; i < N; ++i) r[i] = a[i] > b[i] ? a[i] : b[i];            \
    return r;                                                                \
  }                                                                          \
  static inline VT vabdq_##S(VT a, VT b) {                                   \
    VT r;                                                                    \
    for (int i = 0; i < N; ++i)                                              \
      r[i] = a[i] > b[i] ? (T)(a[i] - b[i]) : (T)(b[i] - a[i]);              \
    return r;                                                                \
  }

/* Integer-only ops; WT is the widened type used by vhadd. */
#define HCG_DEF_INT(S, T, VT, N, WT)                                         \
  static inline VT vmulq_##S(VT a, VT b) { return a * b; }                   \
  static inline VT vandq_##S(VT a, VT b) { return a & b; }                   \
  static inline VT vorrq_##S(VT a, VT b) { return a | b; }                   \
  static inline VT veorq_##S(VT a, VT b) { return a ^ b; }                   \
  static inline VT vmvnq_##S(VT a) { return ~a; }                            \
  static inline VT vshlq_n_##S(VT a, const int n) { return a << n; }         \
  static inline VT vshrq_n_##S(VT a, const int n) { return a >> n; }         \
  static inline VT vmlaq_##S(VT a, VT b, VT c) { return a + b * c; }         \
  static inline VT vmlsq_##S(VT a, VT b, VT c) { return a - b * c; }         \
  /* SHADD/UHADD halves in widened precision; (a>>1)+(b>>1)+(a&b&1) is the  \
   * same value without widening, so hosts can keep it vectorized.  WT       \
   * documents the architectural intermediate type. */                       \
  static inline VT vhaddq_##S(VT a, VT b) {                                  \
    VT r;                                                                    \
    for (int i = 0; i < N; ++i) {                                            \
      (void)sizeof(WT);                                                      \
      r[i] = (T)((T)(a[i] >> 1) + (T)(b[i] >> 1) + (T)(a[i] & b[i] & 1));    \
    }                                                                        \
    return r;                                                                \
  }                                                                          \
  static inline VT vabaq_##S(VT a, VT b, VT c) {                             \
    VT r;                                                                    \
    for (int i = 0; i < N; ++i) {                                            \
      T d = b[i] > c[i] ? (T)(b[i] - c[i]) : (T)(c[i] - b[i]);               \
      r[i] = (T)(a[i] + d);                                                  \
    }                                                                        \
    return r;                                                                \
  }                                                                          \
  static inline VT vmulq_n_##S(VT a, T c) { return a * vdupq_n_##S(c); }

#define HCG_DEF_SIGNED_ABS(S, T, VT, N)                                      \
  static inline VT vabsq_##S(VT a) {                                         \
    VT r;                                                                    \
    for (int i = 0; i < N; ++i) r[i] = a[i] < 0 ? (T)(-a[i]) : a[i];         \
    return r;                                                                \
  }

#define HCG_DEF_FLOAT(S, T, VT, N, SQRT)                                     \
  static inline VT vmulq_##S(VT a, VT b) { return a * b; }                   \
  static inline VT vdivq_##S(VT a, VT b) { return a / b; }                   \
  static inline VT vsqrtq_##S(VT a) {                                        \
    VT r;                                                                    \
    for (int i = 0; i < N; ++i) r[i] = SQRT(a[i]);                           \
    return r;                                                                \
  }                                                                          \
  static inline VT vmlaq_##S(VT a, VT b, VT c) { return a + b * c; }         \
  static inline VT vmlsq_##S(VT a, VT b, VT c) { return a - b * c; }         \
  static inline VT vmulq_n_##S(VT a, T c) { return a * vdupq_n_##S(c); }

HCG_DEF_COMMON(s8, int8_t, int8x16_t, 16)
HCG_DEF_COMMON(u8, uint8_t, uint8x16_t, 16)
HCG_DEF_COMMON(s16, int16_t, int16x8_t, 8)
HCG_DEF_COMMON(u16, uint16_t, uint16x8_t, 8)
HCG_DEF_COMMON(s32, int32_t, int32x4_t, 4)
HCG_DEF_COMMON(u32, uint32_t, uint32x4_t, 4)
HCG_DEF_COMMON(f32, float, float32x4_t, 4)
HCG_DEF_COMMON(f64, double, float64x2_t, 2)

HCG_DEF_INT(s8, int8_t, int8x16_t, 16, int16_t)
HCG_DEF_INT(u8, uint8_t, uint8x16_t, 16, uint16_t)
HCG_DEF_INT(s16, int16_t, int16x8_t, 8, int32_t)
HCG_DEF_INT(u16, uint16_t, uint16x8_t, 8, uint32_t)
HCG_DEF_INT(s32, int32_t, int32x4_t, 4, int64_t)
HCG_DEF_INT(u32, uint32_t, uint32x4_t, 4, uint64_t)

HCG_DEF_SIGNED_ABS(s8, int8_t, int8x16_t, 16)
HCG_DEF_SIGNED_ABS(s16, int16_t, int16x8_t, 8)
HCG_DEF_SIGNED_ABS(s32, int32_t, int32x4_t, 4)
HCG_DEF_SIGNED_ABS(f32, float, float32x4_t, 4)
HCG_DEF_SIGNED_ABS(f64, double, float64x2_t, 2)

HCG_DEF_FLOAT(f32, float, float32x4_t, 4, __builtin_sqrtf)
HCG_DEF_FLOAT(f64, double, float64x2_t, 2, __builtin_sqrt)

/* Compare-greater-than (all-ones / all-zeros masks) and bit-select, used by
 * the Switch actor's Sel lowering. */
#define HCG_DEF_CGT_BSL(S, T, VT, MT, N)                                     \
  static inline MT vcgtq_##S(VT a, VT b) {                                  \
    MT r;                                                                   \
    for (int i = 0; i < N; ++i) r[i] = a[i] > b[i] ? ~(typeof(r[0]))0 : 0;  \
    return r;                                                               \
  }                                                                         \
  static inline VT vbslq_##S(MT m, VT a, VT b) {                            \
    VT r;                                                                   \
    for (int i = 0; i < N; ++i) r[i] = m[i] ? a[i] : b[i];                  \
    return r;                                                               \
  }

HCG_DEF_CGT_BSL(s8, int8_t, int8x16_t, uint8x16_t, 16)
HCG_DEF_CGT_BSL(s16, int16_t, int16x8_t, uint16x8_t, 8)
HCG_DEF_CGT_BSL(s32, int32_t, int32x4_t, uint32x4_t, 4)
HCG_DEF_CGT_BSL(f32, float, float32x4_t, uint32x4_t, 4)
HCG_DEF_CGT_BSL(f64, double, float64x2_t, uint64x2_t, 2)
#undef HCG_DEF_CGT_BSL

/* Conversions: truncate toward zero, matching both ACLE and C casts. */
static inline int32x4_t vcvtq_s32_f32(float32x4_t a) {
  int32x4_t r;
  for (int i = 0; i < 4; ++i) r[i] = (int32_t)a[i];
  return r;
}
static inline float32x4_t vcvtq_f32_s32(int32x4_t a) {
  float32x4_t r;
  for (int i = 0; i < 4; ++i) r[i] = (float)a[i];
  return r;
}
static inline uint32x4_t vcvtq_u32_f32(float32x4_t a) {
  uint32x4_t r;
  for (int i = 0; i < 4; ++i) r[i] = (uint32_t)a[i];
  return r;
}
static inline float32x4_t vcvtq_f32_u32(uint32x4_t a) {
  float32x4_t r;
  for (int i = 0; i < 4; ++i) r[i] = (float)a[i];
  return r;
}

#undef HCG_DEF_COMMON
#undef HCG_DEF_INT
#undef HCG_DEF_SIGNED_ABS
#undef HCG_DEF_FLOAT

#endif /* HCG_NEON_SIM_H */
