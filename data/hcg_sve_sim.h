/* hcg_sve_sim.h — portable implementation of the ARM SVE intrinsics used by
 * HCG-generated code, built on GCC/Clang vector extensions.
 *
 * This header lets code emitted for the scalable "sve" instruction table
 * compile and run on any host (the same DESIGN.md substitution as
 * hcg_neon_sim.h).  The simulated vector length is fixed at 256 bits — the
 * table's declared minimum granule — but generated code never depends on
 * that number: it steps by svcntw()-style runtime queries and governs every
 * load, store and op with a whilelt predicate, exactly as on real hardware.
 *
 * The predicate is one flag byte per vector *byte* (real SVE uses one bit
 * per byte); a lane is active iff its first byte's flag is set, and whilelt
 * sets all bytes of each active lane.  Masked loads read only active lanes
 * (inactive lanes are zeroed, never dereferenced — the tail of a predicated
 * loop stays clean under AddressSanitizer) and masked stores write only
 * active lanes.  The _x op forms compute full-width; their inactive lanes
 * are never observable because stores are governed.
 */
#ifndef HCG_SVE_SIM_H
#define HCG_SVE_SIM_H

#include <stdint.h>

#define HCG_SVE_BYTES 32

typedef int8_t   svint8_t    __attribute__((vector_size(HCG_SVE_BYTES)));
typedef uint8_t  svuint8_t   __attribute__((vector_size(HCG_SVE_BYTES)));
typedef int16_t  svint16_t   __attribute__((vector_size(HCG_SVE_BYTES)));
typedef uint16_t svuint16_t  __attribute__((vector_size(HCG_SVE_BYTES)));
typedef int32_t  svint32_t   __attribute__((vector_size(HCG_SVE_BYTES)));
typedef uint32_t svuint32_t  __attribute__((vector_size(HCG_SVE_BYTES)));
typedef float    svfloat32_t __attribute__((vector_size(HCG_SVE_BYTES)));
typedef double   svfloat64_t __attribute__((vector_size(HCG_SVE_BYTES)));

typedef struct {
  uint8_t b[HCG_SVE_BYTES];
} svbool_t;

/* Runtime lane counts (the "vl" expressions of the table). */
static inline int svcntb(void) { return HCG_SVE_BYTES; }
static inline int svcnth(void) { return HCG_SVE_BYTES / 2; }
static inline int svcntw(void) { return HCG_SVE_BYTES / 4; }
static inline int svcntd(void) { return HCG_SVE_BYTES / 8; }

/* whilelt: lane l is active iff i + l < n.  ESIZE bytes per lane. */
#define HCG_SVE_WHILELT(BS, ESIZE)                                           \
  static inline svbool_t svwhilelt_##BS(int i, int n) {                      \
    svbool_t g;                                                              \
    for (int l = 0; l < HCG_SVE_BYTES / ESIZE; ++l) {                        \
      uint8_t on = (i + l < n) ? 1 : 0;                                      \
      for (int e = 0; e < ESIZE; ++e) g.b[l * ESIZE + e] = on;               \
    }                                                                        \
    return g;                                                                \
  }

HCG_SVE_WHILELT(b8, 1)
HCG_SVE_WHILELT(b16, 2)
HCG_SVE_WHILELT(b32, 4)
HCG_SVE_WHILELT(b64, 8)
#undef HCG_SVE_WHILELT

/* Ops shared by every element type.  N lanes of ESIZE bytes each. */
#define HCG_SVE_COMMON(S, T, VT, ESIZE, N)                                   \
  static inline VT svld1_##S(svbool_t g, const T* p) {                       \
    VT v;                                                                    \
    for (int i = 0; i < N; ++i) v[i] = g.b[i * ESIZE] ? p[i] : (T)0;         \
    return v;                                                                \
  }                                                                          \
  static inline void svst1_##S(svbool_t g, T* p, VT v) {                     \
    for (int i = 0; i < N; ++i) {                                            \
      if (g.b[i * ESIZE]) p[i] = v[i];                                       \
    }                                                                        \
  }                                                                          \
  static inline VT svdup_n_##S(T c) {                                        \
    VT v;                                                                    \
    for (int i = 0; i < N; ++i) v[i] = c;                                    \
    return v;                                                                \
  }                                                                          \
  static inline VT svadd_##S##_x(svbool_t g, VT a, VT b) {                   \
    (void)g;                                                                 \
    return a + b;                                                            \
  }                                                                          \
  static inline VT svsub_##S##_x(svbool_t g, VT a, VT b) {                   \
    (void)g;                                                                 \
    return a - b;                                                            \
  }                                                                          \
  static inline VT svadd_n_##S##_x(svbool_t g, VT a, T c) {                  \
    (void)g;                                                                 \
    return a + svdup_n_##S(c);                                               \
  }                                                                          \
  static inline VT svmin_##S##_x(svbool_t g, VT a, VT b) {                   \
    VT r;                                                                    \
    (void)g;                                                                 \
    for (int i = 0; i < N; ++i) r[i] = a[i] < b[i] ? a[i] : b[i];            \
    return r;                                                                \
  }                                                                          \
  static inline VT svmax_##S##_x(svbool_t g, VT a, VT b) {                   \
    VT r;                                                                    \
    (void)g;                                                                 \
    for (int i = 0; i < N; ++i) r[i] = a[i] > b[i] ? a[i] : b[i];            \
    return r;                                                                \
  }                                                                          \
  static inline VT svabd_##S##_x(svbool_t g, VT a, VT b) {                   \
    VT r;                                                                    \
    (void)g;                                                                 \
    for (int i = 0; i < N; ++i)                                              \
      r[i] = a[i] > b[i] ? (T)(a[i] - b[i]) : (T)(b[i] - a[i]);              \
    return r;                                                                \
  }                                                                          \
  static inline VT svaba_##S##_x(svbool_t g, VT a, VT b, VT c) {             \
    VT r;                                                                    \
    (void)g;                                                                 \
    for (int i = 0; i < N; ++i) {                                            \
      T d = b[i] > c[i] ? (T)(b[i] - c[i]) : (T)(c[i] - b[i]);               \
      r[i] = (T)(a[i] + d);                                                  \
    }                                                                        \
    return r;                                                                \
  }                                                                          \
  static inline svbool_t svcmpgt_n_##S(svbool_t g, VT a, T c) {              \
    svbool_t r;                                                              \
    for (int i = 0; i < N; ++i) {                                            \
      uint8_t on = (g.b[i * ESIZE] && a[i] > c) ? 1 : 0;                     \
      for (int e = 0; e < ESIZE; ++e) r.b[i * ESIZE + e] = on;               \
    }                                                                        \
    return r;                                                                \
  }                                                                          \
  static inline VT svsel_##S(svbool_t g, VT a, VT b) {                       \
    VT r;                                                                    \
    for (int i = 0; i < N; ++i) r[i] = g.b[i * ESIZE] ? a[i] : b[i];         \
    return r;                                                                \
  }

/* Integer-only ops; SHR is the shift-right mnemonic (asr signed, lsr
 * unsigned), WT the widened type svhadd architecturally computes through. */
#define HCG_SVE_INT(S, T, VT, ESIZE, N, SHR, WT)                             \
  static inline VT svmul_##S##_x(svbool_t g, VT a, VT b) {                   \
    (void)g;                                                                 \
    return a * b;                                                            \
  }                                                                          \
  static inline VT svand_##S##_x(svbool_t g, VT a, VT b) {                   \
    (void)g;                                                                 \
    return a & b;                                                            \
  }                                                                          \
  static inline VT svorr_##S##_x(svbool_t g, VT a, VT b) {                   \
    (void)g;                                                                 \
    return a | b;                                                            \
  }                                                                          \
  static inline VT sveor_##S##_x(svbool_t g, VT a, VT b) {                   \
    (void)g;                                                                 \
    return a ^ b;                                                            \
  }                                                                          \
  static inline VT svnot_##S##_x(svbool_t g, VT a) {                         \
    (void)g;                                                                 \
    return ~a;                                                               \
  }                                                                          \
  static inline VT svlsl_n_##S##_x(svbool_t g, VT a, const int n) {          \
    (void)g;                                                                 \
    return a << n;                                                           \
  }                                                                          \
  static inline VT sv##SHR##_n_##S##_x(svbool_t g, VT a, const int n) {      \
    (void)g;                                                                 \
    return a >> n;                                                           \
  }                                                                          \
  static inline VT svmla_##S##_x(svbool_t g, VT a, VT b, VT c) {             \
    (void)g;                                                                 \
    return a + b * c;                                                        \
  }                                                                          \
  static inline VT svmls_##S##_x(svbool_t g, VT a, VT b, VT c) {             \
    (void)g;                                                                 \
    return a - b * c;                                                        \
  }                                                                          \
  static inline VT svmul_n_##S##_x(svbool_t g, VT a, T c) {                  \
    (void)g;                                                                 \
    return a * svdup_n_##S(c);                                               \
  }                                                                          \
  /* See hcg_neon_sim.h: same value as the widened halving add without      \
   * actually widening, so hosts can keep it vectorized. */                  \
  static inline VT svhadd_##S##_x(svbool_t g, VT a, VT b) {                  \
    VT r;                                                                    \
    (void)g;                                                                 \
    for (int i = 0; i < N; ++i) {                                            \
      (void)sizeof(WT);                                                      \
      r[i] = (T)((T)(a[i] >> 1) + (T)(b[i] >> 1) + (T)(a[i] & b[i] & 1));    \
    }                                                                        \
    return r;                                                                \
  }

#define HCG_SVE_SIGNED_ABS(S, T, VT, N)                                      \
  static inline VT svabs_##S##_x(svbool_t g, VT a) {                         \
    VT r;                                                                    \
    (void)g;                                                                 \
    for (int i = 0; i < N; ++i) r[i] = a[i] < 0 ? (T)(-a[i]) : a[i];         \
    return r;                                                                \
  }

#define HCG_SVE_FLOAT(S, T, VT, N, SQRT)                                     \
  static inline VT svmul_##S##_x(svbool_t g, VT a, VT b) {                   \
    (void)g;                                                                 \
    return a * b;                                                            \
  }                                                                          \
  static inline VT svdiv_##S##_x(svbool_t g, VT a, VT b) {                   \
    /* Inactive lanes are 0/0 = nan after a masked load; harmless, since    \
     * governed stores never write them back. */                             \
    (void)g;                                                                 \
    return a / b;                                                            \
  }                                                                          \
  static inline VT svsqrt_##S##_x(svbool_t g, VT a) {                        \
    VT r;                                                                    \
    (void)g;                                                                 \
    for (int i = 0; i < N; ++i) r[i] = SQRT(a[i]);                           \
    return r;                                                                \
  }                                                                          \
  static inline VT svmla_##S##_x(svbool_t g, VT a, VT b, VT c) {             \
    (void)g;                                                                 \
    return a + b * c;                                                        \
  }                                                                          \
  static inline VT svmls_##S##_x(svbool_t g, VT a, VT b, VT c) {             \
    (void)g;                                                                 \
    return a - b * c;                                                        \
  }                                                                          \
  static inline VT svmul_n_##S##_x(svbool_t g, VT a, T c) {                  \
    (void)g;                                                                 \
    return a * svdup_n_##S(c);                                               \
  }

HCG_SVE_COMMON(s8, int8_t, svint8_t, 1, 32)
HCG_SVE_COMMON(u8, uint8_t, svuint8_t, 1, 32)
HCG_SVE_COMMON(s16, int16_t, svint16_t, 2, 16)
HCG_SVE_COMMON(u16, uint16_t, svuint16_t, 2, 16)
HCG_SVE_COMMON(s32, int32_t, svint32_t, 4, 8)
HCG_SVE_COMMON(u32, uint32_t, svuint32_t, 4, 8)
HCG_SVE_COMMON(f32, float, svfloat32_t, 4, 8)
HCG_SVE_COMMON(f64, double, svfloat64_t, 8, 4)

HCG_SVE_INT(s8, int8_t, svint8_t, 1, 32, asr, int16_t)
HCG_SVE_INT(u8, uint8_t, svuint8_t, 1, 32, lsr, uint16_t)
HCG_SVE_INT(s16, int16_t, svint16_t, 2, 16, asr, int32_t)
HCG_SVE_INT(u16, uint16_t, svuint16_t, 2, 16, lsr, uint32_t)
HCG_SVE_INT(s32, int32_t, svint32_t, 4, 8, asr, int64_t)
HCG_SVE_INT(u32, uint32_t, svuint32_t, 4, 8, lsr, uint64_t)

HCG_SVE_SIGNED_ABS(s8, int8_t, svint8_t, 32)
HCG_SVE_SIGNED_ABS(s16, int16_t, svint16_t, 16)
HCG_SVE_SIGNED_ABS(s32, int32_t, svint32_t, 8)
HCG_SVE_SIGNED_ABS(f32, float, svfloat32_t, 8)
HCG_SVE_SIGNED_ABS(f64, double, svfloat64_t, 4)

HCG_SVE_FLOAT(f32, float, svfloat32_t, 8, __builtin_sqrtf)
HCG_SVE_FLOAT(f64, double, svfloat64_t, 4, __builtin_sqrt)

/* Conversions: truncate toward zero, matching both ACLE and C casts. */
static inline svint32_t svcvt_s32_f32_x(svbool_t g, svfloat32_t a) {
  svint32_t r;
  (void)g;
  for (int i = 0; i < 8; ++i) r[i] = (int32_t)a[i];
  return r;
}
static inline svfloat32_t svcvt_f32_s32_x(svbool_t g, svint32_t a) {
  svfloat32_t r;
  (void)g;
  for (int i = 0; i < 8; ++i) r[i] = (float)a[i];
  return r;
}
static inline svuint32_t svcvt_u32_f32_x(svbool_t g, svfloat32_t a) {
  svuint32_t r;
  (void)g;
  for (int i = 0; i < 8; ++i) r[i] = (uint32_t)a[i];
  return r;
}
static inline svfloat32_t svcvt_f32_u32_x(svbool_t g, svuint32_t a) {
  svfloat32_t r;
  (void)g;
  for (int i = 0; i < 8; ++i) r[i] = (float)a[i];
  return r;
}

#undef HCG_SVE_COMMON
#undef HCG_SVE_INT
#undef HCG_SVE_SIGNED_ABS
#undef HCG_SVE_FLOAT

#endif /* HCG_SVE_SIM_H */
