// Unit tests for src/support: strings, file I/O, RNG, logging, errors.
#include <gtest/gtest.h>

#include <filesystem>

#include "support/error.hpp"
#include "support/fileio.hpp"
#include "support/logging.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"
#include "support/strings.hpp"

namespace hcg {
namespace {

// ---------------------------------------------------------------------------
// strings
// ---------------------------------------------------------------------------

TEST(Strings, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim("hello"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(trim("a b"), "a b");
}

TEST(Strings, SplitKeepsEmptyPiecesAndTrims) {
  EXPECT_EQ(split("a, b ,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("one", ','), (std::vector<std::string>{"one"}));
}

TEST(Strings, SplitWhitespaceDropsEmptyPieces) {
  EXPECT_EQ(split_whitespace("  a\t b \n c  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(split_whitespace("   ").empty());
  EXPECT_TRUE(split_whitespace("").empty());
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("hcg_fft", "hcg_"));
  EXPECT_FALSE(starts_with("hcg", "hcg_"));
  EXPECT_TRUE(ends_with("file.isa", ".isa"));
  EXPECT_FALSE(ends_with("isa", ".isa"));
  EXPECT_TRUE(starts_with("x", ""));
  EXPECT_TRUE(ends_with("x", ""));
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(replace_all("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(replace_all("hello", "xyz", "q"), "hello");
  EXPECT_EQ(replace_all("abc", "", "x"), "abc");
  EXPECT_EQ(replace_all("isa neon isa", "isa", "ISA"), "ISA neon ISA");
}

TEST(Strings, ToLower) {
  EXPECT_EQ(to_lower("HeLLo_123"), "hello_123");
}

TEST(Strings, ParseIntAcceptsDecimals) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("  -17 "), -17);
  EXPECT_EQ(parse_int("0"), 0);
}

TEST(Strings, ParseIntRejectsGarbage) {
  EXPECT_THROW(parse_int("12x"), ParseError);
  EXPECT_THROW(parse_int(""), ParseError);
  EXPECT_THROW(parse_int("1.5"), ParseError);
  EXPECT_THROW(parse_int("abc"), ParseError);
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(parse_double("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(parse_double(" -2e3 "), -2000.0);
  EXPECT_THROW(parse_double("nope"), ParseError);
  EXPECT_THROW(parse_double(""), ParseError);
  EXPECT_THROW(parse_double("1.5garbage"), ParseError);
}

TEST(Strings, IsIdentifier) {
  EXPECT_TRUE(is_identifier("abc"));
  EXPECT_TRUE(is_identifier("_x9"));
  EXPECT_FALSE(is_identifier("9x"));
  EXPECT_FALSE(is_identifier(""));
  EXPECT_FALSE(is_identifier("a-b"));
  EXPECT_FALSE(is_identifier("a b"));
}

TEST(Strings, SanitizeIdentifier) {
  EXPECT_EQ(sanitize_identifier("a-b c"), "a_b_c");
  EXPECT_EQ(sanitize_identifier("9lives"), "_9lives");
  EXPECT_EQ(sanitize_identifier(""), "_");
  EXPECT_EQ(sanitize_identifier("ok_name"), "ok_name");
}

// ---------------------------------------------------------------------------
// error hierarchy
// ---------------------------------------------------------------------------

TEST(Errors, ParseErrorFormatsPosition) {
  ParseError e("bad token", 3, 7);
  EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  EXPECT_NE(std::string(e.what()).find("column 7"), std::string::npos);
  EXPECT_EQ(e.line(), 3);
  EXPECT_EQ(e.column(), 7);
}

TEST(Errors, ParseErrorWithoutPosition) {
  ParseError e("bad");
  EXPECT_EQ(std::string(e.what()), "bad");
}

TEST(Errors, HierarchyIsCatchableAsBase) {
  EXPECT_THROW(throw ModelError("x"), Error);
  EXPECT_THROW(throw SynthesisError("x"), Error);
  EXPECT_THROW(throw ToolchainError("x"), Error);
  EXPECT_THROW(throw CodegenError("x"), Error);
}

TEST(Errors, RequireThrowsInternalError) {
  EXPECT_NO_THROW(require(true, "fine"));
  EXPECT_THROW(require(false, "boom"), InternalError);
}

// ---------------------------------------------------------------------------
// fileio
// ---------------------------------------------------------------------------

TEST(FileIo, WriteThenReadRoundTrips) {
  TempDir dir;
  const auto path = dir.path() / "sub" / "file.txt";
  write_file(path, "payload\nline2");
  EXPECT_EQ(read_file(path), "payload\nline2");
}

TEST(FileIo, ReadMissingFileThrows) {
  EXPECT_THROW(read_file("/nonexistent/definitely/missing"), Error);
}

TEST(FileIo, TempDirIsRemovedOnDestruction) {
  std::filesystem::path where;
  {
    TempDir dir;
    where = dir.path();
    write_file(where / "x", "1");
    EXPECT_TRUE(std::filesystem::exists(where));
  }
  EXPECT_FALSE(std::filesystem::exists(where));
}

TEST(FileIo, TempDirKeepLeavesDirectory) {
  std::filesystem::path where;
  {
    TempDir dir;
    dir.keep();
    where = dir.path();
  }
  EXPECT_TRUE(std::filesystem::exists(where));
  std::filesystem::remove_all(where);
}

TEST(FileIo, TempDirsAreUnique) {
  TempDir a, b;
  EXPECT_NE(a.path(), b.path());
}

// ---------------------------------------------------------------------------
// rng
// ---------------------------------------------------------------------------

TEST(Rng, SameSeedSameSequence) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000000), b.uniform_int(0, 1000000));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_different = false;
  for (int i = 0; i < 32; ++i) {
    if (a.uniform_int(0, 1 << 30) != b.uniform_int(0, 1 << 30)) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

// The bounded draws are a cross-platform contract (fuzz seeds minimized on
// one stdlib must reproduce byte-for-byte on another), so the exact values
// are pinned.  A failure here means the mapping from the mt19937_64 stream
// to draws changed — which invalidates every committed fuzz reproducer.
TEST(Rng, PinnedValuesAreStdlibIndependent) {
  Rng ints(7);
  EXPECT_EQ(ints.uniform_int(0, 1000000), 754386);
  EXPECT_EQ(ints.uniform_int(0, 1000000), 949302);
  EXPECT_EQ(ints.uniform_int(0, 1000000), 117414);
  EXPECT_EQ(ints.uniform_int(0, 1000000), 891914);
  EXPECT_EQ(ints.uniform_int(0, 1000000), 141271);

  Rng small(7);
  EXPECT_EQ(small.uniform_int(-5, 5), 3);
  EXPECT_EQ(small.uniform_int(-5, 5), 5);
  EXPECT_EQ(small.uniform_int(-5, 5), -4);

  Rng reals(7);
  EXPECT_DOUBLE_EQ(reals.uniform_real(0.0, 1.0), 0.75438530415285798);
  EXPECT_DOUBLE_EQ(reals.uniform_real(0.0, 1.0), 0.94930120289264419);
  EXPECT_DOUBLE_EQ(reals.uniform_real(0.0, 1.0), 0.11741428103451801);

  Rng floats(42);
  const auto f = floats.signal_f32(2);
  EXPECT_FLOAT_EQ(f[0], 0.510311067f);
  EXPECT_FLOAT_EQ(f[1], 0.278062791f);

  Rng i32s(42);
  const auto i = i32s.signal_i32(2);
  EXPECT_EQ(i[0], 511);
  EXPECT_EQ(i[1], 278);

  // The full 64-bit span routes straight to the engine word.
  Rng full(9);
  EXPECT_EQ(full.uniform_int(INT64_MIN, INT64_MAX), 341617132996341335ll);
}

TEST(Rng, SignalsHaveRequestedSizeAndRange) {
  Rng rng(4);
  const auto f = rng.signal_f32(257);
  EXPECT_EQ(f.size(), 257u);
  for (float v : f) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LT(v, 1.0f);
  }
  const auto i = rng.signal_i32(64, -3, 3);
  EXPECT_EQ(i.size(), 64u);
  for (auto v : i) {
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

// ---------------------------------------------------------------------------
// stopwatch & logging
// ---------------------------------------------------------------------------

TEST(Stopwatch, ElapsedIsMonotonic) {
  Stopwatch timer;
  const double a = timer.elapsed_seconds();
  const double b = timer.elapsed_seconds();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

TEST(Stopwatch, ResetRestarts) {
  Stopwatch timer;
  (void)timer.elapsed_nanoseconds();
  timer.reset();
  EXPECT_LT(timer.elapsed_seconds(), 10.0);
}

TEST(Logging, LevelRoundTrips) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(before);
}

TEST(Logging, WritingBelowThresholdIsSafe) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kOff);
  log_debug() << "never shown " << 42;
  log_error() << "also suppressed";
  set_log_level(before);
}

}  // namespace
}  // namespace hcg
