// Unit tests for the actor reference semantics and the interpreter oracle.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "actors/exec.hpp"
#include "actors/resolve.hpp"
#include "model/builder.hpp"
#include "support/error.hpp"
#include "vm/interpreter.hpp"

namespace hcg {
namespace {

Tensor make_f32(std::initializer_list<float> values) {
  Tensor t(DataType::kFloat32, Shape({static_cast<int>(values.size())}));
  int i = 0;
  for (float v : values) t.as<float>()[i++] = v;
  return t;
}

Tensor make_i32(std::initializer_list<std::int32_t> values) {
  Tensor t(DataType::kInt32, Shape({static_cast<int>(values.size())}));
  int i = 0;
  for (auto v : values) t.as<std::int32_t>()[i++] = v;
  return t;
}

// ---------------------------------------------------------------------------
// eval_elementwise
// ---------------------------------------------------------------------------

TEST(Elementwise, BinaryOpsInt32) {
  Tensor a = make_i32({6, -4, 7, 0});
  Tensor b = make_i32({3, 5, -7, 9});
  Tensor out(DataType::kInt32, Shape({4}));

  eval_elementwise(BatchOp::kAdd, &a, &b, &out, 0, 0);
  EXPECT_EQ(out.get_int(0), 9);
  EXPECT_EQ(out.get_int(2), 0);
  eval_elementwise(BatchOp::kSub, &a, &b, &out, 0, 0);
  EXPECT_EQ(out.get_int(1), -9);
  eval_elementwise(BatchOp::kMul, &a, &b, &out, 0, 0);
  EXPECT_EQ(out.get_int(3), 0);
  EXPECT_EQ(out.get_int(0), 18);
  eval_elementwise(BatchOp::kMin, &a, &b, &out, 0, 0);
  EXPECT_EQ(out.get_int(1), -4);
  eval_elementwise(BatchOp::kMax, &a, &b, &out, 0, 0);
  EXPECT_EQ(out.get_int(1), 5);
  eval_elementwise(BatchOp::kAbd, &a, &b, &out, 0, 0);
  EXPECT_EQ(out.get_int(0), 3);
  EXPECT_EQ(out.get_int(2), 14);
}

TEST(Elementwise, BitOpsInt32) {
  Tensor a = make_i32({0b1100, -1, 0, 0b1010});
  Tensor b = make_i32({0b1010, 0, -1, 0b0101});
  Tensor out(DataType::kInt32, Shape({4}));
  eval_elementwise(BatchOp::kAnd, &a, &b, &out, 0, 0);
  EXPECT_EQ(out.get_int(0), 0b1000);
  eval_elementwise(BatchOp::kOr, &a, &b, &out, 0, 0);
  EXPECT_EQ(out.get_int(3), 0b1111);
  eval_elementwise(BatchOp::kXor, &a, &b, &out, 0, 0);
  EXPECT_EQ(out.get_int(1), -1);
  eval_elementwise(BatchOp::kNot, &a, nullptr, &out, 0, 0);
  EXPECT_EQ(out.get_int(1), 0);
  EXPECT_EQ(out.get_int(2), -1);
}

TEST(Elementwise, ShiftsMatchCSemantics) {
  Tensor a = make_i32({8, -8, 5, 1});
  Tensor out(DataType::kInt32, Shape({4}));
  eval_elementwise(BatchOp::kShr, &a, nullptr, &out, 2, 0);
  EXPECT_EQ(out.get_int(0), 2);
  EXPECT_EQ(out.get_int(1), -2);  // arithmetic shift
  eval_elementwise(BatchOp::kShl, &a, nullptr, &out, 3, 0);
  EXPECT_EQ(out.get_int(2), 40);
}

TEST(Elementwise, FloatOps) {
  Tensor a = make_f32({4.0f, -2.0f, 0.25f});
  Tensor b = make_f32({2.0f, 2.0f, 0.5f});
  Tensor out(DataType::kFloat32, Shape({3}));
  eval_elementwise(BatchOp::kDiv, &a, &b, &out, 0, 0);
  EXPECT_FLOAT_EQ(out.as<float>()[0], 2.0f);
  eval_elementwise(BatchOp::kRecp, &a, nullptr, &out, 0, 0);
  EXPECT_FLOAT_EQ(out.as<float>()[2], 4.0f);
  eval_elementwise(BatchOp::kSqrt, &b, nullptr, &out, 0, 0);
  EXPECT_FLOAT_EQ(out.as<float>()[0], std::sqrt(2.0f));
  eval_elementwise(BatchOp::kAbs, &a, nullptr, &out, 0, 0);
  EXPECT_FLOAT_EQ(out.as<float>()[1], 2.0f);
}

TEST(Elementwise, ScalarOperandOps) {
  Tensor a = make_f32({1.0f, 2.0f});
  Tensor out(DataType::kFloat32, Shape({2}));
  eval_elementwise(BatchOp::kMulC, &a, nullptr, &out, 0, 2.5);
  EXPECT_FLOAT_EQ(out.as<float>()[1], 5.0f);
  eval_elementwise(BatchOp::kAddC, &a, nullptr, &out, 0, -1.0);
  EXPECT_FLOAT_EQ(out.as<float>()[0], 0.0f);
}

TEST(Elementwise, CastTruncatesTowardZero) {
  Tensor a = make_f32({1.9f, -1.9f, 0.5f});
  Tensor out(DataType::kInt32, Shape({3}));
  eval_elementwise(BatchOp::kCast, &a, nullptr, &out, 0, 0);
  EXPECT_EQ(out.get_int(0), 1);
  EXPECT_EQ(out.get_int(1), -1);
  EXPECT_EQ(out.get_int(2), 0);
}

TEST(Elementwise, CastIntToFloat) {
  Tensor a = make_i32({-3, 7});
  Tensor out(DataType::kFloat32, Shape({2}));
  eval_elementwise(BatchOp::kCast, &a, nullptr, &out, 0, 0);
  EXPECT_FLOAT_EQ(out.as<float>()[0], -3.0f);
}

TEST(Elementwise, CastNarrowingWraps) {
  Tensor a = make_i32({300, -200});
  Tensor out(DataType::kInt8, Shape({2}));
  eval_elementwise(BatchOp::kCast, &a, nullptr, &out, 0, 0);
  EXPECT_EQ(out.get_int(0), static_cast<std::int8_t>(300));
  EXPECT_EQ(out.get_int(1), static_cast<std::int8_t>(-200));
}

// ---------------------------------------------------------------------------
// batch_op helpers
// ---------------------------------------------------------------------------

TEST(BatchOpMeta, NamesRoundTrip) {
  for (BatchOp op : {BatchOp::kAdd, BatchOp::kSub, BatchOp::kMul, BatchOp::kDiv,
                     BatchOp::kMin, BatchOp::kMax, BatchOp::kAbd, BatchOp::kAnd,
                     BatchOp::kOr, BatchOp::kXor, BatchOp::kNot, BatchOp::kAbs,
                     BatchOp::kRecp, BatchOp::kSqrt, BatchOp::kShl,
                     BatchOp::kShr, BatchOp::kMulC, BatchOp::kAddC,
                     BatchOp::kCast}) {
    EXPECT_EQ(parse_batch_op(op_name(op)), op);
  }
  EXPECT_THROW(parse_batch_op("Frobnicate"), ParseError);
}

TEST(BatchOpMeta, ActorTypeMapping) {
  EXPECT_EQ(batch_op_for_actor_type("BitAnd"), BatchOp::kAnd);
  EXPECT_EQ(batch_op_for_actor_type("Gain"), BatchOp::kMulC);
  EXPECT_EQ(batch_op_for_actor_type("Bias"), BatchOp::kAddC);
  EXPECT_EQ(batch_op_for_actor_type("Add"), BatchOp::kAdd);
  EXPECT_THROW(batch_op_for_actor_type("FFT"), ModelError);
}

TEST(BatchOpMeta, ArityAndOperandKinds) {
  EXPECT_EQ(arity(BatchOp::kAdd), 2);
  EXPECT_EQ(arity(BatchOp::kAbs), 1);
  EXPECT_TRUE(has_immediate(BatchOp::kShr));
  EXPECT_FALSE(has_immediate(BatchOp::kAdd));
  EXPECT_TRUE(has_scalar_operand(BatchOp::kMulC));
  EXPECT_TRUE(is_commutative(BatchOp::kAdd));
  EXPECT_FALSE(is_commutative(BatchOp::kSub));
}

// ---------------------------------------------------------------------------
// constant_tensor
// ---------------------------------------------------------------------------

TEST(ConstantTensor, SingleLiteralReplicates) {
  Model m("t");
  Actor& c = m.actor(m.add_actor("c", "Constant"));
  c.set_param("dtype", "i32");
  c.set_param("shape", "4");
  c.set_param("value", "7");
  Tensor t = constant_tensor(c);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(t.get_int(i), 7);
}

TEST(ConstantTensor, ListMustMatchElementCount) {
  Model m("t");
  Actor& c = m.actor(m.add_actor("c", "Constant"));
  c.set_param("dtype", "f32");
  c.set_param("shape", "3");
  c.set_param("value", "1,2,3");
  Tensor t = constant_tensor(c);
  EXPECT_FLOAT_EQ(t.as<float>()[2], 3.0f);
  c.set_param("value", "1,2");
  EXPECT_THROW(constant_tensor(c), ModelError);
}

TEST(ConstantTensor, ComplexTakesRePairs) {
  Model m("t");
  Actor& c = m.actor(m.add_actor("c", "Constant"));
  c.set_param("dtype", "c64");
  c.set_param("shape", "2");
  c.set_param("value", "1,2,3,4");
  Tensor t = constant_tensor(c);
  EXPECT_FLOAT_EQ(t.as<float>()[1], 2.0f);
  EXPECT_FLOAT_EQ(t.as<float>()[3], 4.0f);
}

// ---------------------------------------------------------------------------
// interpreter
// ---------------------------------------------------------------------------

TEST(Interpreter, RunsBatchPipeline) {
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kInt32, Shape({4}));
  PortRef y = b.inport("y", DataType::kInt32, Shape({4}));
  PortRef s = b.actor("s", "Sub", {x, y});
  PortRef sh = b.actor("sh", "Shr", {s}, {{"amount", "1"}});
  b.outport("o", sh);
  Model m = resolved(b.take());

  Interpreter interp(m);
  auto out = interp.step({make_i32({10, 20, 30, 40}), make_i32({2, 4, 6, 8})});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].get_int(0), 4);
  EXPECT_EQ(out[0].get_int(3), 16);
}

TEST(Interpreter, ValidatesInputCountAndSpec) {
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kInt32, Shape({4}));
  b.outport("o", b.actor("a", "Abs", {x}));
  Model m = resolved(b.take());
  Interpreter interp(m);
  EXPECT_THROW(interp.step({}), ModelError);
  EXPECT_THROW(interp.step({make_f32({1, 2, 3, 4})}), ModelError);
}

TEST(Interpreter, UnitDelayShiftsByOneStep) {
  Model m("t");
  ActorId x = m.add_actor("x", "Inport");
  m.actor(x).set_param("dtype", "i32");
  m.actor(x).set_param("shape", "2");
  ActorId d = m.add_actor("d", "UnitDelay");
  m.actor(d).set_param("dtype", "i32");
  m.actor(d).set_param("shape", "2");
  ActorId y = m.add_actor("y", "Outport");
  m.connect(x, 0, d, 0);
  m.connect(d, 0, y, 0);
  resolve_model(m);

  Interpreter interp(m);
  auto out1 = interp.step({make_i32({5, 6})});
  EXPECT_EQ(out1[0].get_int(0), 0);  // initial state
  auto out2 = interp.step({make_i32({7, 8})});
  EXPECT_EQ(out2[0].get_int(0), 5);
  EXPECT_EQ(out2[0].get_int(1), 6);
  interp.init();  // reset state
  auto out3 = interp.step({make_i32({9, 9})});
  EXPECT_EQ(out3[0].get_int(0), 0);
}

TEST(Interpreter, AccumulatorFeedbackLoop) {
  // acc(t) = x(t) + acc(t-1) through a UnitDelay.
  Model m("t");
  ActorId x = m.add_actor("x", "Inport");
  m.actor(x).set_param("dtype", "i32");
  m.actor(x).set_param("shape", "1");
  ActorId add = m.add_actor("acc", "Add");
  ActorId dly = m.add_actor("dly", "UnitDelay");
  m.actor(dly).set_param("dtype", "i32");
  m.actor(dly).set_param("shape", "1");
  ActorId y = m.add_actor("y", "Outport");
  m.connect(x, 0, add, 0);
  m.connect(dly, 0, add, 1);
  m.connect(add, 0, dly, 0);
  m.connect(add, 0, y, 0);
  resolve_model(m);

  Interpreter interp(m);
  EXPECT_EQ(interp.step({make_i32({3})})[0].get_int(0), 3);
  EXPECT_EQ(interp.step({make_i32({4})})[0].get_int(0), 7);
  EXPECT_EQ(interp.step({make_i32({5})})[0].get_int(0), 12);
}

// ---------------------------------------------------------------------------
// intensive reference semantics (mathematical properties)
// ---------------------------------------------------------------------------

TEST(Oracle, FftOfImpulseIsFlat) {
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kComplex64, Shape({8}));
  b.outport("y", b.actor("f", "FFT", {x}));
  Model m = resolved(b.take());
  Interpreter interp(m);

  Tensor impulse(DataType::kComplex64, Shape({8}));
  impulse.as<float>()[0] = 1.0f;  // delta at t=0
  auto out = interp.step({impulse});
  for (int k = 0; k < 8; ++k) {
    EXPECT_NEAR(out[0].as<float>()[2 * k], 1.0f, 1e-5);
    EXPECT_NEAR(out[0].as<float>()[2 * k + 1], 0.0f, 1e-5);
  }
}

TEST(Oracle, IfftInvertsFft) {
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kComplex64, Shape({16}));
  PortRef f = b.actor("f", "FFT", {x});
  PortRef g = b.actor("g", "IFFT", {f});
  b.outport("y", g);
  Model m = resolved(b.take());
  Interpreter interp(m);

  Tensor in(DataType::kComplex64, Shape({16}));
  for (int i = 0; i < 32; ++i) in.as<float>()[i] = std::sin(0.3f * i);
  auto out = interp.step({in});
  EXPECT_LT(out[0].max_abs_difference(in), 1e-4);
}

TEST(Oracle, IdctInvertsDct) {
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kFloat32, Shape({12}));
  PortRef f = b.actor("f", "DCT", {x});
  PortRef g = b.actor("g", "IDCT", {f});
  b.outport("y", g);
  Model m = resolved(b.take());
  Interpreter interp(m);

  Tensor in = make_f32({1, -2, 3, 0.5f, 0, 4, -1, 2, 7, -3, 0.25f, 9});
  auto out = interp.step({in});
  EXPECT_LT(out[0].max_abs_difference(in), 1e-4);
}

TEST(Oracle, ConvWithDeltaIsIdentity) {
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kFloat32, Shape({5}));
  PortRef h = b.inport("h", DataType::kFloat32, Shape({1}));
  b.outport("y", b.actor("c", "Conv", {x, h}));
  Model m = resolved(b.take());
  Interpreter interp(m);
  Tensor sig = make_f32({1, 2, 3, 4, 5});
  Tensor delta = make_f32({1});
  auto out = interp.step({sig, delta});
  EXPECT_LT(out[0].max_abs_difference(sig), 1e-6);
}

TEST(Oracle, MatInvTimesOriginalIsIdentity) {
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kFloat64, Shape({3, 3}));
  PortRef inv = b.actor("inv", "MatInv", {x});
  PortRef prod = b.actor("prod", "MatMul", {x, inv});
  b.outport("y", prod);
  Model m = resolved(b.take());
  Interpreter interp(m);

  Tensor in(DataType::kFloat64, Shape({3, 3}));
  const double values[9] = {4, 1, 0, 1, 5, 2, 0, 2, 6};
  for (int i = 0; i < 9; ++i) in.as<double>()[i] = values[i];
  auto out = interp.step({in});
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_NEAR(out[0].as<double>()[r * 3 + c], r == c ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(Oracle, MatDetOfSingularMatrixIsZero) {
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kFloat32, Shape({2, 2}));
  b.outport("y", b.actor("det", "MatDet", {x}));
  Model m = resolved(b.take());
  Interpreter interp(m);
  Tensor in(DataType::kFloat32, Shape({2, 2}));
  in.as<float>()[0] = 1;
  in.as<float>()[1] = 2;
  in.as<float>()[2] = 2;
  in.as<float>()[3] = 4;
  auto out = interp.step({in});
  EXPECT_NEAR(out[0].as<float>()[0], 0.0f, 1e-6);
}

TEST(Oracle, MatInvRejectsSingularMatrix) {
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kFloat32, Shape({2, 2}));
  b.outport("y", b.actor("inv", "MatInv", {x}));
  Model m = resolved(b.take());
  Interpreter interp(m);
  Tensor in(DataType::kFloat32, Shape({2, 2}));  // all zeros
  EXPECT_THROW(interp.step({in}), ModelError);
}

TEST(Oracle, Dct2dSeparability) {
  // DCT2D of an outer product equals outer product of 1-D DCTs; verify via
  // a constant matrix whose 2-D DCT concentrates in bin (0,0).
  ModelBuilder b("m");
  PortRef x = b.inport("x", DataType::kFloat32, Shape({4, 4}));
  b.outport("y", b.actor("d", "DCT2D", {x}));
  Model m = resolved(b.take());
  Interpreter interp(m);
  Tensor in(DataType::kFloat32, Shape({4, 4}));
  for (int i = 0; i < 16; ++i) in.as<float>()[i] = 1.0f;
  auto out = interp.step({in});
  EXPECT_NEAR(out[0].as<float>()[0], 16.0f, 1e-4);
  for (int i = 1; i < 16; ++i) EXPECT_NEAR(out[0].as<float>()[i], 0.0f, 1e-4);
}

}  // namespace
}  // namespace hcg
