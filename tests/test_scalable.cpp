// PR 8 scalable-backend tests: the lane-width-agnostic vectorization core
// and the SVE-style predicated-tail loop form.  Exec-oracle sweeps cover
// every tail shape around the 8-lane f32 granule plus a million-element
// prime; the grammar tests pin the `.isa` scalable directives (ptype /
// whilelt / vl / G) and their HCG110/HCG111 validation; the determinism
// tests pin dump round-trips and --jobs byte-identity for predicated loops.
#include <gtest/gtest.h>

#include "actors/resolve.hpp"
#include "benchmodels/benchmodels.hpp"
#include "cgir/cgir.hpp"
#include "codegen/generator.hpp"
#include "graph/regions.hpp"
#include "isa/builtin.hpp"
#include "isa/isa_parse.hpp"
#include "model/builder.hpp"
#include "obs/json.hpp"
#include "support/error.hpp"
#include "toolchain/compiled_model.hpp"
#include "vm/interpreter.hpp"

namespace hcg {
namespace {

codegen::EmitConfig sve_config(int opt_level, int jobs = 1) {
  codegen::EmitConfig config;
  config.tool_name = "hcg";
  config.batch_mode = codegen::BatchMode::kRegions;
  config.isa = &isa::builtin("sve");
  config.fold_scalar_expressions = true;
  config.reuse_buffers = true;
  config.opt_level = opt_level;
  config.jobs = jobs;
  return config;
}

/// Two independent Add/Mul chains over f32[n]: two batch regions, each of
/// which must lower to exactly one predicated loop under the scalable table.
Model two_chain_model(int n) {
  ModelBuilder b("svechains" + std::to_string(n));
  for (int chain = 0; chain < 2; ++chain) {
    const std::string tag = std::to_string(chain);
    PortRef x = b.inport("x" + tag, DataType::kFloat32, Shape{n});
    PortRef w = b.inport("w" + tag, DataType::kFloat32, Shape{n});
    PortRef a = b.actor("add" + tag, "Add", {x, w});
    PortRef m = b.actor("mul" + tag, "Mul", {a, w});
    b.outport("y" + tag, m);
  }
  return b.take();
}

bool have_cc() {
  static const bool ok = toolchain::compiler_available();
  return ok;
}

double compare_to_oracle(const Model& model, const codegen::GeneratedCode& code,
                         std::uint64_t seed = 42) {
  const std::vector<Tensor> inputs = benchmodels::workload(model, seed);
  Interpreter oracle(model);
  oracle.init();
  const std::vector<Tensor> expected = oracle.step(inputs);

  toolchain::CompiledModel compiled(code);
  compiled.init();
  const std::vector<Tensor> got = compiled.step_tensors(model, inputs);

  EXPECT_EQ(got.size(), expected.size());
  double worst = 0;
  for (size_t i = 0; i < got.size(); ++i) {
    worst = std::max(worst, got[i].max_abs_difference(expected[i]));
  }
  return worst;
}

int remainder_elems(const obs::Report& report) {
  int total = 0;
  for (const obs::ReportRegion& region : report.regions) {
    total += region.scalar_remainder;
  }
  return total;
}

int predicated_regions(const obs::Report& report) {
  int total = 0;
  for (const obs::ReportRegion& region : report.regions) {
    if (region.predicated) ++total;
  }
  return total;
}

// ---------------------------------------------------------------------------
// Exec oracle sweep: every width from below one granule (8 f32 lanes) to
// past two granules, at every opt level.  The acceptance bar: predicated
// loop count > 0 and zero scalar-remainder elements at EVERY width — the
// whole point of the predicated tail is that n never has to divide vl.
// ---------------------------------------------------------------------------

class ScalableWidths : public ::testing::TestWithParam<int> {};

TEST_P(ScalableWidths, MatchesOracleAtEveryOptLevel) {
  if (!have_cc()) GTEST_SKIP() << "no C compiler available";
  const int n = GetParam();
  const Model model = resolved(two_chain_model(n));

  for (int level : {0, 1, 2}) {
    codegen::EmitConfig config = sve_config(level);
    config.verify_cgir = true;  // HCG310 checks at every pass checkpoint
    codegen::GeneratedCode code = codegen::emit_model(model, config);
    EXPECT_LT(compare_to_oracle(model, code), 1e-6) << "-O" << level
                                                    << ", n=" << n;
    EXPECT_EQ(remainder_elems(code.report), 0) << "-O" << level << ", n=" << n;
    if (n >= 2) {
      // n=1 actors are scalar instances (paper §3.1) and translate
      // conventionally; every larger width must predicate both regions.
      EXPECT_GE(code.report.loops_predicated, 2) << "-O" << level
                                                 << ", n=" << n;
      EXPECT_EQ(predicated_regions(code.report), 2) << "-O" << level
                                                    << ", n=" << n;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ScalableWidths,
                         ::testing::Range(1, 18));

TEST(Scalable, MillionElementPrimeMatchesOracle) {
  if (!have_cc()) GTEST_SKIP() << "no C compiler available";
  // 1000003 is prime, so no fixed lane count divides it; the predicated
  // loop must mask exactly the final partial vector and nothing else.
  const Model model = resolved(two_chain_model(1000003));
  for (int level : {0, 1, 2}) {
    codegen::GeneratedCode code =
        codegen::emit_model(model, sve_config(level));
    EXPECT_LT(compare_to_oracle(model, code), 1e-6) << "-O" << level;
    EXPECT_GE(code.report.loops_predicated, 2) << "-O" << level;
    EXPECT_EQ(remainder_elems(code.report), 0) << "-O" << level;
  }
}

// ---------------------------------------------------------------------------
// The emitted loop form: one VLA loop, whilelt predicate, runtime step,
// and no scalar tail anywhere in the generated unit.
// ---------------------------------------------------------------------------

TEST(Scalable, EmitsWhileltLoopWithoutScalarTail) {
  const Model model = resolved(two_chain_model(37));
  codegen::GeneratedCode code = codegen::emit_model(model, sve_config(0));

  EXPECT_NE(code.source.find("i += svcntw()"), std::string::npos);
  EXPECT_NE(code.source.find("svbool_t pg = svwhilelt_b32(i, 37)"),
            std::string::npos);
  // A fixed-width emission of the same region would open a scalar tail
  // "for (int i = 32; ..." after the vector loop; the scalable one must not.
  EXPECT_EQ(code.source.find("for (int i = 32;"), std::string::npos);

  // The report's machine-readable surface agrees with the source.
  const obs::JsonValue doc =
      obs::json_parse(code.report.to_json(/*include_metrics=*/false));
  EXPECT_GE(doc.at("codegen").at("loops").at("predicated").number, 2);
  for (const obs::JsonValue& region : doc.at("regions").array) {
    EXPECT_EQ(region.at("predicated").boolean, true);
    EXPECT_EQ(region.at("scalar_remainder").number, 0);
  }
}

TEST(Scalable, DumpRoundTripsPredicatedLoops) {
  const Model model = resolved(two_chain_model(37));
  for (int level : {0, 1, 2}) {
    codegen::GeneratedCode code =
        codegen::emit_model(model, sve_config(level));
    ASSERT_FALSE(code.cgir_dump.empty());
    // The dump names the predicated form and its runtime step expression.
    EXPECT_NE(code.cgir_dump.find("pred=1"), std::string::npos) << level;
    EXPECT_NE(code.cgir_dump.find("stepx="), std::string::npos) << level;
    cgir::TranslationUnit reparsed = cgir::parse_dump(code.cgir_dump);
    EXPECT_EQ(cgir::print(reparsed), code.source) << "-O" << level;
  }
}

TEST(Scalable, ByteIdenticalAcrossJobCounts) {
  const Model model = resolved(two_chain_model(1021));
  for (int level : {0, 1, 2}) {
    codegen::GeneratedCode serial =
        codegen::emit_model(model, sve_config(level, /*jobs=*/1));
    codegen::GeneratedCode parallel =
        codegen::emit_model(model, sve_config(level, /*jobs=*/8));
    EXPECT_EQ(serial.source, parallel.source) << "-O" << level;
    EXPECT_EQ(serial.cgir_dump, parallel.cgir_dump) << "-O" << level;
  }
}

// ---------------------------------------------------------------------------
// The capability seam: region planning consumes VectorCapability, so the
// same planner arithmetic serves fixed and scalable tables.
// ---------------------------------------------------------------------------

TEST(Scalable, CapabilityReportsGranuleAndPredication) {
  const isa::VectorIsa& sve = isa::builtin("sve");
  const VectorCapability cap = sve.capability();
  EXPECT_EQ(cap.width_bits, 256);
  EXPECT_EQ(cap.lanes_of(DataType::kFloat32), 8);
  EXPECT_EQ(cap.lanes_of(DataType::kInt8), 32);
  EXPECT_TRUE(cap.predicated_of(DataType::kFloat32));

  const VectorCapability fixed = isa::builtin("neon").capability();
  EXPECT_EQ(fixed.width_bits, 128);
  EXPECT_EQ(fixed.lanes_of(DataType::kFloat32), 4);
  EXPECT_FALSE(fixed.predicated_of(DataType::kFloat32));
}

// ---------------------------------------------------------------------------
// .isa grammar: the scalable directives parse, and the validator rejects
// malformed tables with the HCG110/HCG111 diagnostic codes.
// ---------------------------------------------------------------------------

constexpr const char* kScalableTable = R"(
isa minisve
width 128
header hcg_sve_sim.h
simulated
scalable
vtype i32 4 svint32_t
ptype i32 svbool_t
whilelt i32 O = svwhilelt_b32(I, N);
vl i32 svcntw()
load  i32 O = svld1_s32(G, P);
store i32 svst1_s32(G, P, V);
dup   i32 O = svdup_n_s32(C);
ins svadd_s32_x i32 Add(I1,I2) :: O = svadd_s32_x(G, I1, I2);
)";

TEST(ScalableGrammar, ParsesPredicateKit) {
  isa::VectorIsa table = isa::parse_isa(kScalableTable);
  EXPECT_TRUE(table.scalable);
  EXPECT_TRUE(table.predicated(DataType::kInt32));
  const isa::PredCode* pred = table.find_pred(DataType::kInt32);
  ASSERT_NE(pred, nullptr);
  EXPECT_EQ(pred->c_name, "svbool_t");
  EXPECT_EQ(pred->whilelt, "O = svwhilelt_b32(I, N);");
  EXPECT_EQ(pred->vl_expr, "svcntw()");
  EXPECT_FALSE(table.predicated(DataType::kFloat32));
}

TEST(ScalableGrammar, RejectsWidthMismatchWithHcg110) {
  std::string text = kScalableTable;
  const size_t at = text.find("width 128");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 9, "width 256");  // 4 lanes x 32 bits != 256
  try {
    isa::parse_isa(text);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("HCG110"), std::string::npos);
  }
}

TEST(ScalableGrammar, RejectsDuplicateKitEntriesWithHcg111) {
  for (const char* line :
       {"ptype i32 svbool_t", "whilelt i32 O = svwhilelt_b32(I, N);",
        "vl i32 svcntw()"}) {
    std::string text = std::string(kScalableTable) + line + "\n";
    try {
      isa::parse_isa(text);
      FAIL() << "expected ParseError for duplicated '" << line << "'";
    } catch (const ParseError& e) {
      EXPECT_NE(std::string(e.what()).find("HCG111"), std::string::npos)
          << line;
    }
  }
}

TEST(ScalableGrammar, RejectsDuplicateVtypeWithHcg111) {
  const std::string text =
      std::string(kScalableTable) + "vtype i32 4 svint32_t\n";
  try {
    isa::parse_isa(text);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("HCG111"), std::string::npos);
  }
}

TEST(ScalableGrammar, RejectsIncompletePredicateKit) {
  // Dropping the `vl` directive leaves i32 without a step expression; a
  // scalable table must carry the complete kit for every vectorized type.
  std::string text = kScalableTable;
  const size_t at = text.find("vl i32 svcntw()\n");
  ASSERT_NE(at, std::string::npos);
  text.erase(at, std::string("vl i32 svcntw()\n").size());
  EXPECT_THROW(isa::parse_isa(text), ParseError);
}

TEST(ScalableGrammar, RejectsUngovernedLoadStore) {
  // A scalable load that never takes the G predicate would read past n.
  std::string text = kScalableTable;
  const size_t at = text.find("O = svld1_s32(G, P);");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, std::string("O = svld1_s32(G, P);").size(),
               "O = svld1_s32(P);");
  EXPECT_THROW(isa::parse_isa(text), ParseError);
}

}  // namespace
}  // namespace hcg
